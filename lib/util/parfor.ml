(* A deterministic parallel-for seam.

   A runner fixes a partition [width] and an execution strategy for
   running [width] independent slices. The partition is part of the
   observable protocol (per-slice buffers are merged in slice order),
   so a runner that executes inline and one that executes on real
   domains must produce identical results — which is exactly what the
   GC's parallel≡oracle differential asserts. *)

type t = {
  width : int;  (** number of slices every [run] call is split into *)
  run : (int -> unit) -> unit;
      (** [run f] invokes [f i] exactly once for each [i] in
          [0 .. width-1] and returns when all have finished. The slices
          may execute concurrently: [f] must only read shared state and
          write slice-private buffers (or locations no other slice
          touches). *)
}

let width t = t.width
let run t f = t.run f

let inline_ width =
  if width <= 0 then invalid_arg "Parfor.inline_: width must be positive";
  {
    width;
    run =
      (fun f ->
        for i = 0 to width - 1 do
          f i
        done);
  }

(* Slice [i] of a [width]-way partition of [0 .. len-1]: contiguous,
   covering, and independent of how slices are executed. *)
let slice ~len ~width i =
  let lo = i * len / width and hi = (i + 1) * len / width in
  (lo, hi - 1)
