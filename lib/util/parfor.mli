(** A deterministic parallel-for seam.

    A runner fixes a partition [width] and an execution strategy for
    running [width] independent slices — inline for the sequential path
    and the oracle, on a worker-domain team for the parallel collector.
    Because per-slice results are merged in slice order, the two
    strategies are observationally identical; the width, not the
    strategy, is what the protocol depends on. *)

type t = {
  width : int;  (** number of slices every [run] call is split into *)
  run : (int -> unit) -> unit;
      (** [run f] invokes [f i] exactly once for each [i] in
          [0 .. width-1] and returns when all have finished. Slices may
          execute concurrently: [f] must only read shared state and
          write slice-private buffers. *)
}

val width : t -> int
val run : t -> (int -> unit) -> unit

val inline_ : int -> t
(** A runner of the given width executing every slice sequentially on
    the calling domain, in slice order. *)

val slice : len:int -> width:int -> int -> int * int
(** [slice ~len ~width i] is the [i]-th contiguous index range
    [(lo, hi)] (inclusive; empty when [lo > hi]) of a [width]-way
    partition of [0 .. len-1]. Concatenating the slices in slice order
    re-yields [0 .. len-1] exactly. *)
