(** Log-bucketed (HDR-style) histogram for pause and latency samples.

    Values land in log2 major buckets subdivided into [sub] linear
    sub-buckets, so a bucket's width is at most [1/sub] of its lower
    bound. [quantile] reports the upper bound of the bucket holding
    the nearest-rank sample, which pins the documented error bound:

      exact <= quantile t q <= exact * (1 + 1/sub)

    (modulo one float rounding each side) for samples above
    [unit_value]; samples at or below [unit_value] share bucket 0 and
    report [unit_value]. Values beyond the top octave clamp into the
    last bucket ([max_value] stays exact regardless).

    The state is an int count array plus an exact float maximum, so
    [merge] is element-wise integer addition plus [Float.max] —
    associative and commutative by construction. That is what makes
    merging per-domain histograms deterministic: any merge order
    yields an [equal] result. *)

type t

val create : ?unit_value:float -> ?sub:int -> ?octaves:int -> unit -> t
(** [create ()] uses [unit_value = 1e-3] (1 µs when samples are in
    ms), [sub = 32] sub-buckets per octave (<= 3.125 % relative bucket
    error) and [octaves = 40]. Raises [Invalid_argument] on
    non-positive parameters. *)

val add : t -> float -> unit
val addn : t -> float -> int -> unit

val count : t -> int
val max_value : t -> float
(** Exact maximum of the added samples; [0.0] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: upper bound of the bucket holding
    the nearest-rank sample (rank [max 1 (ceil (q * n))]); [0.0] when
    empty. Raises [Invalid_argument] outside [0,1]. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float
val p999 : t -> float

val relative_error : t -> float
(** The documented bucket error, [1 / sub]. *)

val merge : t -> t -> t
(** Element-wise sum; raises [Invalid_argument] when the two
    histograms were created with different parameters. *)

val equal : t -> t -> bool

val approx_total : t -> float
(** Sum of bucket upper bounds weighted by counts — deterministic
    given the counts, within the bucket error of the true total. *)

val approx_mean : t -> float

val summary : t -> string
(** ["p50=... p90=... p99=... p99.9=... max=... (n=...)"]. *)

(** {2 Serialization support} *)

val unit_value : t -> float
val sub : t -> int
val octaves : t -> int

val nonzero : t -> (int * int) list
(** Non-empty buckets as [(bin, count)] pairs in ascending bin order. *)

val restore :
  unit_value:float -> sub:int -> octaves:int -> max_value:float ->
  (int * int) list -> t
(** Rebuild a histogram from [create] parameters, the exact maximum
    and the [nonzero] bucket list. Raises [Invalid_argument] on
    out-of-range bins or negative counts. *)
