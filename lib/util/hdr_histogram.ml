(* Log-bucketed (HDR-style) histogram: log2 major buckets subdivided
   into [sub] linear sub-buckets, so every recorded value lands in a
   bucket whose width is at most [1/sub] of its lower bound. Quantiles
   report the upper bound of the bucket holding the nearest-rank
   sample, giving the documented guarantee

     exact <= quantile t q <= exact * (1 + 1/sub)

   (modulo one float rounding on each side) for samples above
   [unit_value]; samples at or below [unit_value] share bucket 0 and
   report [unit_value]. State is an int count array plus an exact
   float maximum, so [merge] is element-wise integer addition and
   [Float.max] — associative and commutative by construction, which is
   what makes per-domain histogram merging deterministic. *)

type t = {
  unit_value : float;
  sub : int;
  octaves : int;
  counts : int array; (* 1 + octaves * sub bins; last bin is a clamp *)
  mutable n : int;
  mutable max_v : float; (* exact, not bucketed; 0 when empty *)
}

let create ?(unit_value = 1e-3) ?(sub = 32) ?(octaves = 40) () =
  if unit_value <= 0.0 then invalid_arg "Hdr_histogram.create: unit_value <= 0";
  if sub <= 0 then invalid_arg "Hdr_histogram.create: sub <= 0";
  if octaves <= 0 then invalid_arg "Hdr_histogram.create: octaves <= 0";
  {
    unit_value;
    sub;
    octaves;
    counts = Array.make (1 + (octaves * sub)) 0;
    n = 0;
    max_v = 0.0;
  }

let nbins t = Array.length t.counts

let index t v =
  if v <= t.unit_value then 0
  else begin
    let r = v /. t.unit_value in
    (* frexp is exact: r = m * 2^ex with m in [0.5, 1), so the octave
       floor(log2 r) = ex - 1 without log rounding trouble *)
    let _, ex = Float.frexp r in
    let e = ex - 1 in
    let frac = Float.ldexp r (-e) -. 1.0 in (* in [0, 1) *)
    let k = min (t.sub - 1) (int_of_float (frac *. float_of_int t.sub)) in
    min (nbins t - 1) (1 + (e * t.sub) + k)
  end

(* Upper bound of bin [i] — the value quantiles report. *)
let bin_upper t i =
  if i = 0 then t.unit_value
  else
    let e = (i - 1) / t.sub and k = (i - 1) mod t.sub in
    Float.ldexp
      (t.unit_value *. (1.0 +. (float_of_int (k + 1) /. float_of_int t.sub)))
      e

let addn t v k =
  if k < 0 then invalid_arg "Hdr_histogram.addn: negative count";
  if k > 0 then begin
    let i = index t v in
    t.counts.(i) <- t.counts.(i) + k;
    t.n <- t.n + k;
    if t.n = k || v > t.max_v then t.max_v <- v
  end

let add t v = addn t v 1
let count t = t.n
let max_value t = t.max_v
let unit_value t = t.unit_value
let sub t = t.sub
let octaves t = t.octaves
let relative_error t = 1.0 /. float_of_int t.sub

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Hdr_histogram.quantile: q outside [0,1]";
  if t.n = 0 then 0.0
  else begin
    (* nearest-rank: the smallest sample with cumulative count
       >= ceil(q * n), same rule the QCheck oracle applies to the
       exact sorted array *)
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    let cum = ref 0 and i = ref 0 in
    while !cum < rank && !i < nbins t do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    bin_upper t (!i - 1)
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let same_geometry a b =
  a.unit_value = b.unit_value && a.sub = b.sub && a.octaves = b.octaves

let merge a b =
  if not (same_geometry a b) then invalid_arg "Hdr_histogram.merge: geometry mismatch";
  {
    a with
    counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
    n = a.n + b.n;
    max_v = Float.max a.max_v b.max_v;
  }

let equal a b =
  same_geometry a b && a.n = b.n && a.max_v = b.max_v && a.counts = b.counts

let approx_total t =
  let s = ref 0.0 in
  for i = 0 to nbins t - 1 do
    if t.counts.(i) > 0 then
      s := !s +. (bin_upper t i *. float_of_int t.counts.(i))
  done;
  !s

let approx_mean t = if t.n = 0 then 0.0 else approx_total t /. float_of_int t.n

let nonzero t =
  let acc = ref [] in
  for i = nbins t - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
  done;
  !acc

let restore ~unit_value ~sub ~octaves ~max_value bins =
  let t = create ~unit_value ~sub ~octaves () in
  List.iter
    (fun (i, c) ->
      if i < 0 || i >= nbins t then invalid_arg "Hdr_histogram.restore: bin out of range";
      if c < 0 then invalid_arg "Hdr_histogram.restore: negative count";
      t.counts.(i) <- t.counts.(i) + c;
      t.n <- t.n + c)
    bins;
  t.max_v <- max_value;
  t

let summary t =
  Printf.sprintf "p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f max=%.3f (n=%d)"
    (p50 t) (p90 t) (p99 t) (p999 t) t.max_v t.n
