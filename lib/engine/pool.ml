exception Cancelled

type 'a outcome = Pending | Value of 'a | Failed of exn

type core = {
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  settled : Condition.t;  (* broadcast whenever any future settles *)
  queue : (unit -> unit) Queue.t;  (* thunk runs the job and fills its future *)
  capacity : int;
  njobs : int;
  seed : int;
  created_at : float;
  mutable tickets : int;
  mutable completed : int;
  mutable failed : int;
  mutable cancelled : int;
  mutable busy_s : float;
  mutable first_error : exn option;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type t = core
type 'a future = { core : core; mutable outcome : 'a outcome }

(* SplitMix64-style finalizer over (pool seed, ticket): decorrelated
   per-job seeds that depend only on submission order. *)
let mix seed ticket =
  let z = Int64.of_int ((seed * 0x3779_97f5) lxor (ticket + 0x1234_5678)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land 0x3fff_ffff

let now () = Unix.gettimeofday ()

let worker t () =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.not_empty t.m
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.m
    else begin
      let job = Queue.pop t.queue in
      Condition.broadcast t.not_full;
      Mutex.unlock t.m;
      job ();
      loop ()
    end
  in
  loop ()

let create ?queue_capacity ?(seed = 0) ~jobs () =
  let njobs = max 1 (min jobs 128) in
  let capacity = match queue_capacity with Some c -> max 1 c | None -> 4 * njobs in
  let t =
    {
      m = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      settled = Condition.create ();
      queue = Queue.create ();
      capacity;
      njobs;
      seed;
      created_at = now ();
      tickets = 0;
      completed = 0;
      failed = 0;
      cancelled = 0;
      busy_s = 0.0;
      first_error = None;
      stopping = false;
      workers = [];
    }
  in
  if njobs > 1 then t.workers <- List.init njobs (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.njobs

(* Execute [f] for [fut], settling it and the pool accounting. Called
   from a worker domain (or inline); takes the lock only to settle. *)
let execute t fut f job_seed =
  let cancelled_before_run =
    Mutex.lock t.m;
    let c = t.first_error <> None in
    if c then begin
      fut.outcome <- Failed Cancelled;
      t.cancelled <- t.cancelled + 1;
      Condition.broadcast t.settled
    end;
    Mutex.unlock t.m;
    c
  in
  if not cancelled_before_run then begin
    let t0 = now () in
    let outcome = try Value (f ~seed:job_seed) with e -> Failed e in
    let dt = now () -. t0 in
    Mutex.lock t.m;
    t.busy_s <- t.busy_s +. dt;
    fut.outcome <- outcome;
    (match outcome with
    | Value _ -> t.completed <- t.completed + 1
    | Failed e ->
      t.failed <- t.failed + 1;
      if t.first_error = None then begin
        t.first_error <- Some e;
        (* wake submitters blocked on a full queue: the matrix is
           cancelled, everything they enqueue settles as Cancelled *)
        Condition.broadcast t.not_full
      end
    | Pending -> assert false);
    Condition.broadcast t.settled;
    Mutex.unlock t.m
  end

let submit t f =
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let ticket = t.tickets in
  t.tickets <- ticket + 1;
  let job_seed = mix t.seed ticket in
  let fut = { core = t; outcome = Pending } in
  if t.first_error <> None then begin
    (* fail fast: the matrix is already doomed, don't run stragglers *)
    fut.outcome <- Failed Cancelled;
    t.cancelled <- t.cancelled + 1;
    Condition.broadcast t.settled;
    Mutex.unlock t.m;
    fut
  end
  else if t.njobs <= 1 then begin
    Mutex.unlock t.m;
    execute t fut f job_seed;
    fut
  end
  else begin
    while Queue.length t.queue >= t.capacity && t.first_error = None do
      Condition.wait t.not_full t.m
    done;
    Queue.push (fun () -> execute t fut f job_seed) t.queue;
    Condition.signal t.not_empty;
    Mutex.unlock t.m;
    fut
  end

let await fut =
  let t = fut.core in
  Mutex.lock t.m;
  while fut.outcome = Pending do
    Condition.wait t.settled t.m
  done;
  let o = fut.outcome in
  Mutex.unlock t.m;
  match o with Value v -> v | Failed e -> raise e | Pending -> assert false

let run_all t fs =
  let futs = List.map (submit t) fs in
  let settled =
    List.map (fun fut -> try Ok (await fut) with e -> Error e) futs
  in
  let first_real_error =
    List.find_map (function Error e when e <> Cancelled -> Some e | _ -> None) settled
  in
  List.map
    (function
      | Ok v -> v
      | Error e -> ( match first_real_error with Some e' -> raise e' | None -> raise e))
    settled

type totals = {
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  busy_s : float;
  wall_s : float;
}

let totals t =
  Mutex.lock t.m;
  let r =
    {
      submitted = t.tickets;
      completed = t.completed;
      failed = t.failed;
      cancelled = t.cancelled;
      busy_s = t.busy_s;
      wall_s = now () -. t.created_at;
    }
  in
  Mutex.unlock t.m;
  r

let throughput tot = if tot.wall_s <= 0.0 then 0.0 else float_of_int tot.completed /. tot.wall_s

let shutdown t =
  Mutex.lock t.m;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.not_empty
  end;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.m;
  List.iter Domain.join workers
