type mode = Quiet | Log | Tty

let mode_names = "quiet|log|tty"

let mode_of_string = function
  | "quiet" -> Ok Quiet
  | "log" -> Ok Log
  | "tty" -> Ok Tty
  | s -> Error (Printf.sprintf "unknown progress mode %S (expected %s)" s mode_names)

type t = {
  mode : mode;
  out : out_channel;
  m : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable line_open : bool;  (* a \r status line is on screen *)
}

let create ?(out = stderr) mode = { mode; out; m = Mutex.create (); hits = 0; misses = 0; line_open = false }

let job_done t ~label ~hit ~elapsed_s =
  Mutex.lock t.m;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  (match t.mode with
  | Quiet -> ()
  | Log ->
    Printf.fprintf t.out "[engine] %-50s %6.2fs %s\n%!" label elapsed_s
      (if hit then "cache" else "computed")
  | Tty ->
    t.line_open <- true;
    Printf.fprintf t.out "\r[engine] %d runs resolved (%d cached, %d computed)%!"
      (t.hits + t.misses) t.hits t.misses);
  Mutex.unlock t.m

let hits t =
  Mutex.lock t.m;
  let h = t.hits in
  Mutex.unlock t.m;
  h

let misses t =
  Mutex.lock t.m;
  let m' = t.misses in
  Mutex.unlock t.m;
  m'

let finish t =
  Mutex.lock t.m;
  if t.line_open then begin
    output_char t.out '\n';
    flush t.out;
    t.line_open <- false
  end;
  Mutex.unlock t.m
