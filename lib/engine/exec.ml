module E = Kg_sim.Experiments

type t = {
  o : E.opts;
  pool : Pool.t;
  store : Store.t option;
  progress : Progress.t;
  memo : (string, Kg_sim.Run.result) Hashtbl.t;
  memo_m : Mutex.t;
}

let create ?(jobs = 1) ?(cache = true) ?cache_dir ?progress o =
  {
    o;
    pool = Pool.create ~jobs ~seed:o.E.seed ();
    store = (if cache then Some (Store.create ?dir:cache_dir ()) else None);
    progress = (match progress with Some p -> p | None -> Progress.create Progress.Quiet);
    memo = Hashtbl.create 256;
    memo_m = Mutex.create ();
  }

let opts t = t.o
let pool t = t.pool
let store t = t.store

let memo_find t key =
  Mutex.lock t.memo_m;
  let r = Hashtbl.find_opt t.memo key in
  Mutex.unlock t.memo_m;
  r

let memo_add t key r =
  Mutex.lock t.memo_m;
  Hashtbl.replace t.memo key r;
  Mutex.unlock t.memo_m

let label (j : E.job) =
  Printf.sprintf "%s/%s/%s%s%s"
    (match j.E.mode with Kg_sim.Run.Simulate -> "sim" | Kg_sim.Run.Count -> "cnt")
    (Kg_sim.Run.label j.E.spec)
    j.E.bench.Kg_workload.Descriptor.name
    (if j.E.trace then "+trace" else if j.E.threads > 1 then Printf.sprintf "x%d" j.E.threads else "")
    (match j.E.serve with None -> "" | Some r -> Printf.sprintf "@%drps" r)

(* Resolve a miss (not in the memo): store first, then compute and
   publish. Runs in whatever domain the pool put it on; everything it
   touches is either freshly created (the run) or mutex-guarded (memo,
   store file via atomic rename, progress). *)
let resolve t key j =
  let hit =
    match t.store with
    | None -> None
    | Some s -> Store.find s key
  in
  match hit with
  | Some r ->
    memo_add t key r;
    Progress.job_done t.progress ~label:(label j) ~hit:true ~elapsed_s:0.0;
    r
  | None ->
    let t0 = Unix.gettimeofday () in
    let r = E.run_job t.o j in
    (match t.store with None -> () | Some s -> Store.store s key r);
    memo_add t key r;
    Progress.job_done t.progress ~label:(label j) ~hit:false
      ~elapsed_s:(Unix.gettimeofday () -. t0);
    r

let fetch t j =
  let key = Store.key ~opts:t.o j in
  match memo_find t key with Some r -> r | None -> resolve t key j

let env t = E.make_env_with ~fetch:(fetch t) t.o

let prefetch t jobs =
  (* One pool job per distinct key the memo does not hold yet. *)
  let seen = Hashtbl.create 64 in
  let pending =
    List.filter_map
      (fun j ->
        let key = Store.key ~opts:t.o j in
        if Hashtbl.mem seen key || memo_find t key <> None then None
        else begin
          Hashtbl.add seen key ();
          Some (key, j)
        end)
      jobs
  in
  ignore
    (Pool.run_all t.pool
       (List.map (fun (key, j) ~seed:_ -> ignore (resolve t key j)) pending));
  Progress.finish t.progress

let prefetch_experiments t ids =
  prefetch t
    (List.concat_map
       (fun id ->
         match List.find_opt (fun (e : E.experiment) -> e.E.id = id) E.all with
         | Some e -> e.E.runs t.o
         | None -> [])
       ids)

let hits t = Progress.hits t.progress
let misses t = Progress.misses t.progress

let summary t =
  let tot = Pool.totals t.pool in
  Printf.sprintf
    "engine: %d runs, %d hits, %d misses (jobs=%d, wall %.1f s, %.2f runs/s busy %.1f s)"
    (hits t + misses t)
    (hits t) (misses t) (Pool.jobs t.pool) tot.Pool.wall_s (Pool.throughput tot)
    tot.Pool.busy_s

let shutdown t = Pool.shutdown t.pool
