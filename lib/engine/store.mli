(** Content-addressed on-disk result cache.

    One file per run, named by the MD5 of the run's canonical key
    ({!Kg_sim.Experiments.job_key} prefixed with the store format
    version), holding two JSONL lines: a header identifying the format
    version and the full canonical key (collision/version check and
    human debuggability), and the complete {!Kg_sim.Run.result}
    serialisation. Floats are stored as OCaml [%h] hex literals so
    every counter round-trips bit-exactly — a warm-cache figure is
    byte-identical to a cold one.

    Writes go through a temp file plus atomic rename, so concurrent
    writers (pool workers, or two processes racing on the same matrix)
    can only ever publish complete entries. Reads treat anything
    unexpected — unparseable JSON, a version bump, a foreign key in
    the header, an unknown benchmark — as a miss: the entry is deleted
    and the caller recomputes. A corrupted cache can cost time, never
    correctness. *)

type t

val format_version : int
(** Bumped whenever the serialisation or the key scheme changes;
    entries from other versions are invalidated on read. *)

val default_dir : string
(** ["results/.cache"]. *)

val create : ?dir:string -> unit -> t
(** Opens (and creates, including parents) the cache directory. *)

val dir : t -> string

val key : opts:Kg_sim.Experiments.opts -> Kg_sim.Experiments.job -> string
(** Canonical key: [v<version>;<job_key>]. Stable across processes and
    pool widths; changes whenever any input that can change the result
    changes (spec, options, benchmark, mode, seed, format version). *)

val path : t -> string -> string
(** On-disk location for a key (exposed for tests and tooling). *)

val find : t -> string -> Kg_sim.Run.result option
(** [None] on miss or on any invalid entry (which is removed). *)

val store : t -> string -> Kg_sim.Run.result -> unit
(** Atomically publish a result under a key. *)

(**/ **)

val to_json : Kg_sim.Run.result -> string
(** One-line JSON serialisation (exposed for tests). *)

val of_json : string -> Kg_sim.Run.result
(** Raises [Failure] on malformed input (exposed for tests). *)
