(** The experiment engine: {!Pool} + {!Store} + {!Progress} behind an
    {!Kg_sim.Experiments.env}.

    Resolution order for a run: in-process memo table, then the
    persistent store, then {!Kg_sim.Experiments.run_job}. Computed
    results are published to the store, so any later process is
    incremental over this one.

    Parallelism comes from {!prefetch}: the declared run matrix of the
    selected experiments is deduplicated by cache key and every miss is
    scheduled onto the pool; the table renderers then find every cell
    already memoised. A run's value depends only on its key — each job
    builds its own runtime, heap, caches, RNG and statistics from the
    options' seed ({!Kg_sim.Run.run} shares no mutable state between
    calls) — so a pool of any width, with or without a warm store,
    produces field-for-field identical results and byte-identical
    tables. *)

type t

val create :
  ?jobs:int ->
  ?cache:bool ->
  ?cache_dir:string ->
  ?progress:Progress.t ->
  Kg_sim.Experiments.opts ->
  t
(** [jobs] (default 1) sizes the domain pool; [cache] (default true)
    enables the persistent store in [cache_dir] (default
    {!Store.default_dir}); [progress] defaults to a quiet reporter. *)

val env : t -> Kg_sim.Experiments.env
(** The environment to hand to table renderers; its fetch resolves
    through this engine. *)

val opts : t -> Kg_sim.Experiments.opts
val pool : t -> Pool.t
val store : t -> Store.t option

val fetch : t -> Kg_sim.Experiments.job -> Kg_sim.Run.result
(** Resolve one run in the calling domain (memo, store, compute). *)

val prefetch : t -> Kg_sim.Experiments.job list -> unit
(** Deduplicate by key, drop what the memo already holds, resolve the
    rest on the pool, and wait. The first failing job cancels the rest
    and re-raises here. *)

val prefetch_experiments : t -> string list -> unit
(** {!prefetch} the declared run matrix of the named experiments
    (unknown ids are ignored — the renderer will reject them with a
    proper error). *)

val hits : t -> int
(** Runs served from the persistent store so far. *)

val misses : t -> int
(** Runs computed so far. *)

val summary : t -> string
(** One line: run counts, hit/miss split, pool width, wall clock and
    throughput. The CI smoke job parses this. *)

val shutdown : t -> unit
(** Drain and join the pool (results already published remain valid). *)
