open Kg_util
module E = Kg_sim.Experiments
module R = Kg_sim.Run
module GS = Kg_gc.Gc_stats

(* v2: multicore mutator domains — threaded runs now simulate real
   domain interleavings (per-domain nurseries, ports, sharded mature
   allocation), so cached threaded results from v1 are stale.
   v3: serve-mode results carry request counters and pause/latency
   histograms in a new [serve] field. *)
let format_version = 3
let default_dir = Filename.concat "results" ".cache"

type t = { dir : string }

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
  end

let create ?(dir = default_dir) () =
  mkdir_p dir;
  { dir }

let dir t = t.dir
let key ~opts j = Printf.sprintf "v%d;%s" format_version (E.job_key opts j)
let path t k = Filename.concat t.dir (Digest.to_hex (Digest.string k) ^ ".json")

(* ------------------------------------------------------------------ *)
(* Minimal JSON: exactly what our own writer emits. Floats never
   appear as JSON numbers — they are quoted "%h" hex literals, the
   only representation that survives a text round trip bit-exactly
   (including infinities, which matter for death stamps). *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Str s ->
    Buffer.add_char b '"';
    buf_escape b s;
    Buffer.add_char b '"'
  | Arr l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      l;
    Buffer.add_char b ']'
  | Obj l ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        write b (Str k);
        Buffer.add_char b ':';
        write b v)
      l;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 4096 in
  write b j;
  Buffer.contents b

exception Malformed of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r') do
      incr pos
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %C" c) in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 'b' -> Buffer.add_char b '\b'; advance ()
        | 'f' -> Buffer.add_char b '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s !pos 4)
            with Failure _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else fail "non-ASCII \\u escape"
        | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); Obj [])
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ()
          | '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); Arr [])
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements ()
          | ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ ->
      let start = !pos in
      if peek () = '-' then advance ();
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = start then fail "expected a value";
      Int (int_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* accessors *)
let member k = function
  | Obj l -> ( match List.assoc_opt k l with Some v -> v | None -> raise (Malformed ("missing field " ^ k)))
  | _ -> raise (Malformed ("not an object looking up " ^ k))

let to_int = function Int i -> i | _ -> raise (Malformed "expected int")
let to_str = function Str s -> s | _ -> raise (Malformed "expected string")
let to_bool = function Bool b -> b | _ -> raise (Malformed "expected bool")
let to_arr = function Arr l -> l | _ -> raise (Malformed "expected array")

let float_j f = Str (Printf.sprintf "%h" f)

let to_float = function
  | Str s -> (
    match float_of_string_opt s with
    | Some f -> f
    | None -> raise (Malformed ("bad float " ^ s)))
  | _ -> raise (Malformed "expected float string")

let opt_j f = function None -> Null | Some v -> f v
let to_opt f = function Null -> None | v -> Some (f v)

(* ------------------------------------------------------------------ *)
(* Run.spec *)

let system_j = function
  | Kg_sim.Machine.Dram_only -> Str "dram"
  | Kg_sim.Machine.Pcm_only -> Str "pcm"
  | Kg_sim.Machine.Hybrid -> Str "hybrid"

let system_of_j j =
  match to_str j with
  | "dram" -> Kg_sim.Machine.Dram_only
  | "pcm" -> Kg_sim.Machine.Pcm_only
  | "hybrid" -> Kg_sim.Machine.Hybrid
  | s -> raise (Malformed ("unknown system " ^ s))

let collector_j = function
  | Kg_gc.Gc_config.Gen_immix -> Obj [ ("kind", Str "genimmix") ]
  | Kg_gc.Gc_config.Kg_nursery -> Obj [ ("kind", Str "kgn") ]
  | Kg_gc.Gc_config.Kg_writers { loo; mdo; pm } ->
    Obj [ ("kind", Str "kgw"); ("loo", Bool loo); ("mdo", Bool mdo); ("pm", Bool pm) ]

let collector_of_j j =
  match to_str (member "kind" j) with
  | "genimmix" -> Kg_gc.Gc_config.Gen_immix
  | "kgn" -> Kg_gc.Gc_config.Kg_nursery
  | "kgw" ->
    Kg_gc.Gc_config.Kg_writers
      {
        loo = to_bool (member "loo" j);
        mdo = to_bool (member "mdo" j);
        pm = to_bool (member "pm" j);
      }
  | s -> raise (Malformed ("unknown collector " ^ s))

let spec_j (s : R.spec) =
  Obj
    [
      ("system", system_j s.R.system);
      ("collector", collector_j s.R.collector);
      ("nursery_mb", Int s.R.nursery_mb);
      ("wp", Bool s.R.wp);
      ("observer_mb", opt_j (fun m -> Int m) s.R.observer_mb);
      ("write_threshold", Int s.R.write_threshold);
      ("pcm_write_trigger_mb", opt_j (fun m -> Int m) s.R.pcm_write_trigger_mb);
    ]

let spec_of_j j =
  {
    R.system = system_of_j (member "system" j);
    collector = collector_of_j (member "collector" j);
    nursery_mb = to_int (member "nursery_mb" j);
    wp = to_bool (member "wp" j);
    observer_mb = to_opt to_int (member "observer_mb" j);
    write_threshold = to_int (member "write_threshold" j);
    pcm_write_trigger_mb = to_opt to_int (member "pcm_write_trigger_mb" j);
  }

(* ------------------------------------------------------------------ *)
(* Gc_stats *)

let stats_j (st : GS.t) =
  Obj
    [
      ("app_writes_nursery", Int st.GS.app_writes_nursery);
      ("app_writes_observer", Int st.GS.app_writes_observer);
      ("app_writes_mature", Int st.GS.app_writes_mature);
      ("app_write_bytes_dram", Int st.GS.app_write_bytes_dram);
      ("app_write_bytes_pcm", Int st.GS.app_write_bytes_pcm);
      ("ref_writes", Int st.GS.ref_writes);
      ("prim_writes", Int st.GS.prim_writes);
      ("reads", Int st.GS.reads);
      ("gen_remset_inserts", Int st.GS.gen_remset_inserts);
      ("obs_remset_inserts", Int st.GS.obs_remset_inserts);
      ("monitor_header_writes", Int st.GS.monitor_header_writes);
      ("barrier_fast_paths", Int st.GS.barrier_fast_paths);
      ("nursery_gcs", Int st.GS.nursery_gcs);
      ("observer_gcs", Int st.GS.observer_gcs);
      ("major_gcs", Int st.GS.major_gcs);
      ("copied_bytes_nursery", Int st.GS.copied_bytes_nursery);
      ("copied_bytes_observer", Int st.GS.copied_bytes_observer);
      ("copied_bytes_major", Int st.GS.copied_bytes_major);
      ("remset_slot_updates", Int st.GS.remset_slot_updates);
      ("mark_header_writes", Int st.GS.mark_header_writes);
      ("mark_table_writes", Int st.GS.mark_table_writes);
      ("scanned_objects", Int st.GS.scanned_objects);
      ("nursery_alloc_bytes", Int st.GS.nursery_alloc_bytes);
      ("nursery_survived_bytes", Int st.GS.nursery_survived_bytes);
      ("observer_in_bytes", Int st.GS.observer_in_bytes);
      ("observer_survived_bytes", Int st.GS.observer_survived_bytes);
      ("observer_to_dram_bytes", Int st.GS.observer_to_dram_bytes);
      ("observer_to_pcm_bytes", Int st.GS.observer_to_pcm_bytes);
      ("large_allocs", Int st.GS.large_allocs);
      ("large_allocs_in_nursery", Int st.GS.large_allocs_in_nursery);
      ("mature_moves_to_dram", Int st.GS.mature_moves_to_dram);
      ("mature_moves_to_pcm", Int st.GS.mature_moves_to_pcm);
      ("los_moves_to_dram", Int st.GS.los_moves_to_dram);
      ( "retired_mature_writes",
        Arr (Array.to_list (Array.map (fun w -> Int w) (Vec.to_array st.GS.retired_mature_writes)))
      );
      ( "collection_log",
        Arr
          (Array.to_list
             (Array.map
                (fun (p, c, s) -> Arr [ Int (Kg_gc.Phase.to_tag p); Int c; Int s ])
                (Vec.to_array st.GS.collection_log))) );
    ]

let stats_of_j j =
  let st = GS.create () in
  let i k = to_int (member k j) in
  st.GS.app_writes_nursery <- i "app_writes_nursery";
  st.GS.app_writes_observer <- i "app_writes_observer";
  st.GS.app_writes_mature <- i "app_writes_mature";
  st.GS.app_write_bytes_dram <- i "app_write_bytes_dram";
  st.GS.app_write_bytes_pcm <- i "app_write_bytes_pcm";
  st.GS.ref_writes <- i "ref_writes";
  st.GS.prim_writes <- i "prim_writes";
  st.GS.reads <- i "reads";
  st.GS.gen_remset_inserts <- i "gen_remset_inserts";
  st.GS.obs_remset_inserts <- i "obs_remset_inserts";
  st.GS.monitor_header_writes <- i "monitor_header_writes";
  st.GS.barrier_fast_paths <- i "barrier_fast_paths";
  st.GS.nursery_gcs <- i "nursery_gcs";
  st.GS.observer_gcs <- i "observer_gcs";
  st.GS.major_gcs <- i "major_gcs";
  st.GS.copied_bytes_nursery <- i "copied_bytes_nursery";
  st.GS.copied_bytes_observer <- i "copied_bytes_observer";
  st.GS.copied_bytes_major <- i "copied_bytes_major";
  st.GS.remset_slot_updates <- i "remset_slot_updates";
  st.GS.mark_header_writes <- i "mark_header_writes";
  st.GS.mark_table_writes <- i "mark_table_writes";
  st.GS.scanned_objects <- i "scanned_objects";
  st.GS.nursery_alloc_bytes <- i "nursery_alloc_bytes";
  st.GS.nursery_survived_bytes <- i "nursery_survived_bytes";
  st.GS.observer_in_bytes <- i "observer_in_bytes";
  st.GS.observer_survived_bytes <- i "observer_survived_bytes";
  st.GS.observer_to_dram_bytes <- i "observer_to_dram_bytes";
  st.GS.observer_to_pcm_bytes <- i "observer_to_pcm_bytes";
  st.GS.large_allocs <- i "large_allocs";
  st.GS.large_allocs_in_nursery <- i "large_allocs_in_nursery";
  st.GS.mature_moves_to_dram <- i "mature_moves_to_dram";
  st.GS.mature_moves_to_pcm <- i "mature_moves_to_pcm";
  st.GS.los_moves_to_dram <- i "los_moves_to_dram";
  List.iter
    (fun w -> Vec.push st.GS.retired_mature_writes (to_int w))
    (to_arr (member "retired_mature_writes" j));
  List.iter
    (fun e ->
      match to_arr e with
      | [ p; c; s ] ->
        Vec.push st.GS.collection_log (Kg_gc.Phase.of_tag (to_int p), to_int c, to_int s)
      | _ -> raise (Malformed "bad collection_log entry"))
    (to_arr (member "collection_log" j));
  st

(* ------------------------------------------------------------------ *)
(* Run.result *)

let parts_j (p : Kg_sim.Time_model.parts) =
  let module T = Kg_sim.Time_model in
  Obj
    [
      ("app_ns", float_j p.T.app_ns);
      ("gc_ns", float_j p.T.gc_ns);
      ("remset_ns", float_j p.T.remset_ns);
      ("monitor_ns", float_j p.T.monitor_ns);
      ("mem_base_ns", float_j p.T.mem_base_ns);
      ("mem_pcm_extra_ns", float_j p.T.mem_pcm_extra_ns);
    ]

let parts_of_j j =
  let f k = to_float (member k j) in
  {
    Kg_sim.Time_model.app_ns = f "app_ns";
    gc_ns = f "gc_ns";
    remset_ns = f "remset_ns";
    monitor_ns = f "monitor_ns";
    mem_base_ns = f "mem_base_ns";
    mem_pcm_extra_ns = f "mem_pcm_extra_ns";
  }

let energy_j (e : Kg_sim.Energy.t) =
  let module En = Kg_sim.Energy in
  Obj
    [
      ("cpu_j", float_j e.En.cpu_j);
      ("static_dram_j", float_j e.En.static_dram_j);
      ("static_pcm_j", float_j e.En.static_pcm_j);
      ("dynamic_j", float_j e.En.dynamic_j);
    ]

let energy_of_j j =
  let f k = to_float (member k j) in
  {
    Kg_sim.Energy.cpu_j = f "cpu_j";
    static_dram_j = f "static_dram_j";
    static_pcm_j = f "static_pcm_j";
    dynamic_j = f "dynamic_j";
  }

let hist_j h =
  let module H = Kg_util.Hdr_histogram in
  Obj
    [
      ("unit_value", float_j (H.unit_value h));
      ("sub", Int (H.sub h));
      ("octaves", Int (H.octaves h));
      ("max_value", float_j (H.max_value h));
      ( "bins",
        Arr (List.map (fun (bin, count) -> Arr [ Int bin; Int count ]) (H.nonzero h)) );
    ]

let hist_of_j j =
  let module H = Kg_util.Hdr_histogram in
  H.restore ~unit_value:(to_float (member "unit_value" j))
    ~sub:(to_int (member "sub" j))
    ~octaves:(to_int (member "octaves" j))
    ~max_value:(to_float (member "max_value" j))
    (List.map
       (fun e ->
         match to_arr e with
         | [ bin; count ] -> (to_int bin, to_int count)
         | _ -> raise (Malformed "bad histogram bin"))
       (to_arr (member "bins" j)))

let serve_j (s : R.serve_metrics) =
  Obj
    [
      ("requests", Int s.R.requests);
      ("rate", float_j s.R.rate);
      ("t1_hits", Int s.R.t1_hits);
      ("t2_hits", Int s.R.t2_hits);
      ("backend_fills", Int s.R.backend_fills);
      ("sessions_churned", Int s.R.sessions_churned);
      ("pause_hist", hist_j s.R.pause_hist);
      ("latency_hist", hist_j s.R.latency_hist);
    ]

let serve_of_j j =
  {
    R.requests = to_int (member "requests" j);
    rate = to_float (member "rate" j);
    t1_hits = to_int (member "t1_hits" j);
    t2_hits = to_int (member "t2_hits" j);
    backend_fills = to_int (member "backend_fills" j);
    sessions_churned = to_int (member "sessions_churned" j);
    pause_hist = hist_of_j (member "pause_hist" j);
    latency_hist = hist_of_j (member "latency_hist" j);
  }

let result_j (r : R.result) =
  Obj
    [
      ("bench", Str r.R.bench.Kg_workload.Descriptor.name);
      ("spec", spec_j r.R.spec);
      ("stats", stats_j r.R.stats);
      ("alloc_bytes", Int r.R.alloc_bytes);
      ("mem_pcm_write_bytes", float_j r.R.mem_pcm_write_bytes);
      ("mem_dram_write_bytes", float_j r.R.mem_dram_write_bytes);
      ("mem_pcm_read_bytes", float_j r.R.mem_pcm_read_bytes);
      ("mem_dram_read_bytes", float_j r.R.mem_dram_read_bytes);
      ( "pcm_writes_by_phase",
        Arr (Array.to_list (Array.map float_j r.R.pcm_writes_by_phase)) );
      ("wear_cov", float_j r.R.wear_cov);
      ("migration_pcm_bytes", float_j r.R.migration_pcm_bytes);
      ("wp_dram_mb", float_j r.R.wp_dram_mb);
      ("time_parts", parts_j r.R.time_parts);
      ("time_s", float_j r.R.time_s);
      ("energy", opt_j energy_j r.R.energy);
      ("edp", float_j r.R.edp);
      ("dram_avg_mb", float_j r.R.dram_avg_mb);
      ("dram_max_mb", float_j r.R.dram_max_mb);
      ("pcm_avg_mb", float_j r.R.pcm_avg_mb);
      ("pcm_max_mb", float_j r.R.pcm_max_mb);
      ("mature_dram_avg_mb", float_j r.R.mature_dram_avg_mb);
      ("meta_mb", float_j r.R.meta_mb);
      ( "trace",
        Arr
          (List.map
             (fun (clock, pcm, dram) -> Arr [ float_j clock; float_j pcm; float_j dram ])
             r.R.trace) );
      ("check_violations", Arr (List.map (fun v -> Str v) r.R.check_violations));
      ("serve", opt_j serve_j r.R.serve);
    ]

let result_of_j j =
  let f k = to_float (member k j) in
  let bench_name = to_str (member "bench" j) in
  let bench =
    match Kg_workload.Descriptor.find bench_name with
    | b -> b
    | exception Not_found -> raise (Malformed ("unknown benchmark " ^ bench_name))
  in
  {
    R.bench = bench;
    spec = spec_of_j (member "spec" j);
    stats = stats_of_j (member "stats" j);
    alloc_bytes = to_int (member "alloc_bytes" j);
    mem_pcm_write_bytes = f "mem_pcm_write_bytes";
    mem_dram_write_bytes = f "mem_dram_write_bytes";
    mem_pcm_read_bytes = f "mem_pcm_read_bytes";
    mem_dram_read_bytes = f "mem_dram_read_bytes";
    pcm_writes_by_phase =
      Array.of_list (List.map to_float (to_arr (member "pcm_writes_by_phase" j)));
    wear_cov = f "wear_cov";
    migration_pcm_bytes = f "migration_pcm_bytes";
    wp_dram_mb = f "wp_dram_mb";
    time_parts = parts_of_j (member "time_parts" j);
    time_s = f "time_s";
    energy = to_opt energy_of_j (member "energy" j);
    edp = f "edp";
    dram_avg_mb = f "dram_avg_mb";
    dram_max_mb = f "dram_max_mb";
    pcm_avg_mb = f "pcm_avg_mb";
    pcm_max_mb = f "pcm_max_mb";
    mature_dram_avg_mb = f "mature_dram_avg_mb";
    meta_mb = f "meta_mb";
    trace =
      List.map
        (fun e ->
          match to_arr e with
          | [ clock; pcm; dram ] -> (to_float clock, to_float pcm, to_float dram)
          | _ -> raise (Malformed "bad trace entry"))
        (to_arr (member "trace" j));
    check_violations = List.map to_str (to_arr (member "check_violations" j));
    serve = to_opt serve_of_j (member "serve" j);
  }

let to_json r = to_string (result_j r)

let of_json line =
  match parse line with
  | j -> ( try result_of_j j with Malformed m -> failwith ("Store.of_json: " ^ m))
  | exception Malformed m -> failwith ("Store.of_json: " ^ m)

(* ------------------------------------------------------------------ *)
(* Files *)

let header_j k =
  to_string
    (Obj [ ("store", Str "kingsguard-result"); ("v", Int format_version); ("key", Str k) ])

let store t k r =
  let file = path t k in
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  Out_channel.with_open_text tmp (fun oc ->
      output_string oc (header_j k);
      output_char oc '\n';
      output_string oc (to_json r);
      output_char oc '\n');
  Sys.rename tmp file

let find t k =
  let file = path t k in
  if not (Sys.file_exists file) then None
  else begin
    let entry =
      try
        In_channel.with_open_text file (fun ic ->
            match (In_channel.input_line ic, In_channel.input_line ic) with
            | Some header, Some payload ->
              let h = parse header in
              if to_str (member "store" h) <> "kingsguard-result" then
                raise (Malformed "not a result entry");
              if to_int (member "v" h) <> format_version then
                raise (Malformed "format version mismatch");
              if to_str (member "key" h) <> k then raise (Malformed "key collision");
              Some (of_json payload)
            | _ -> raise (Malformed "truncated entry"))
      with _ -> None
    in
    (* Invalid entries (old format, corruption, hash collision) are a
       recompute, never a crash — and we drop them so the next pass
       writes a clean one. *)
    if entry = None then (try Sys.remove file with Sys_error _ -> ());
    entry
  end
