(** Pluggable, domain-safe progress reporting for the engine.

    Pool workers report every resolved run here; the reporter keeps
    store hit/miss counters and, depending on the mode, narrates:

    - [Quiet]: counters only, no output (the default — table output
      must stay byte-identical across runs, so narration never goes to
      stdout anyway; all modes write to [out], default stderr).
    - [Log]: one line per resolved run with its timing and whether it
      came from the store.
    - [Tty]: a single carriage-return-updated status line. *)

type mode = Quiet | Log | Tty

val mode_of_string : string -> (mode, string) result
val mode_names : string

type t

val create : ?out:out_channel -> mode -> t
val job_done : t -> label:string -> hit:bool -> elapsed_s:float -> unit

val hits : t -> int
(** Runs served from the persistent store. *)

val misses : t -> int
(** Runs that had to be computed. *)

val finish : t -> unit
(** Terminate a [Tty] status line (no-op otherwise). *)
