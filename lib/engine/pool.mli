(** Fixed-size domain worker pool with a bounded work queue.

    Jobs are submitted from one coordinating domain and executed by
    [jobs] worker domains ([jobs <= 1] degenerates to inline execution
    in the submitting domain, so sequential and parallel runs share one
    code path). Each job receives a seed derived deterministically from
    the pool seed and its submission ticket — never from scheduling
    order or wall clock — so a pool of any width resolves the same
    submissions to the same results.

    The first job that raises cancels everything still queued: their
    futures settle with {!Cancelled}, and the pool refuses further
    submissions the same way. Jobs already running are left to finish
    (the simulator has no preemption points, and a partial heap is
    worthless anyway). *)

type t

exception Cancelled
(** The job never ran: an earlier job failed first. *)

val create : ?queue_capacity:int -> ?seed:int -> jobs:int -> unit -> t
(** [jobs] worker domains (clamped to [1 .. 128]; [<= 1] means inline
    execution, no domains spawned). [queue_capacity] bounds how many
    submitted-but-unclaimed jobs may exist before {!submit} blocks
    (default [4 * jobs]). [seed] (default 0) is the base of per-job
    seed derivation. *)

val jobs : t -> int
(** Worker count (1 for an inline pool). *)

type 'a future

val submit : t -> (seed:int -> 'a) -> 'a future
(** Enqueue a job; blocks while the queue is full. The job's [seed] is
    [mix pool_seed ticket] where tickets count submissions, so it is
    stable across pool widths and re-runs. *)

val await : 'a future -> 'a
(** Block until the job settles; returns its value or re-raises its
    exception ({!Cancelled} if it was discarded). *)

val run_all : t -> (seed:int -> 'a) list -> 'a list
(** Submit everything, await everything (in submission order), and
    return the values. If any job failed, re-raises the error of the
    earliest-submitted failed job after all futures have settled. *)

type totals = {
  submitted : int;
  completed : int;  (** jobs that returned a value *)
  failed : int;  (** jobs that raised *)
  cancelled : int;  (** jobs discarded after the first failure *)
  busy_s : float;  (** job execution time summed across workers *)
  wall_s : float;  (** wall-clock time since {!create} *)
}

val totals : t -> totals

val throughput : totals -> float
(** Completed jobs per wall-clock second (0 for an idle pool). *)

val shutdown : t -> unit
(** Wait for queued and running jobs to drain, then join the worker
    domains. Idempotent; submitting after shutdown raises
    [Invalid_argument]. *)
