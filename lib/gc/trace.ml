open Kg_util
module O = Kg_heap.Object_model

type event =
  | Alloc of { id : int; size : int; heat : O.heat; death : float; ref_fields : int }
  | Alloc_boot of { id : int; size : int; heat : O.heat; ref_fields : int }
  | Write_ref of { src : int; tgt : int }
  | Write_prim of { obj : int }
  | Read of { obj : int }
  | Read_burst of { obj : int; words : int }
  | Major_gc
  | Reset_stats
  | Flush_retirement

type recorder = { evs : event Vec.t }

let recorder () = { evs = Vec.create () }
let record r e = Vec.push r.evs e
let length r = Vec.length r.evs
let events r = Vec.to_array r.evs

(* ------------------------------------------------------------------ *)
(* JSONL serialization                                                 *)

let heat_tag = function O.Cold -> 0 | O.Warm -> 1 | O.Hot -> 2

let heat_of_tag = function
  | 0 -> O.Cold
  | 1 -> O.Warm
  | 2 -> O.Hot
  | n -> invalid_arg (Printf.sprintf "Trace.heat_of_tag: %d" n)

(* Death stamps must survive a file round trip bit-exactly, so they are
   stored as hexadecimal float literals (which also cover "inf"),
   quoted to stay inside JSON syntax. *)
let float_repr f = Printf.sprintf "%h" f

let to_json = function
  | Alloc { id; size; heat; death; ref_fields } ->
    Printf.sprintf {|{"ev":"alloc","id":%d,"size":%d,"heat":%d,"death":"%s","rf":%d}|} id size
      (heat_tag heat) (float_repr death) ref_fields
  | Alloc_boot { id; size; heat; ref_fields } ->
    Printf.sprintf {|{"ev":"boot","id":%d,"size":%d,"heat":%d,"rf":%d}|} id size (heat_tag heat)
      ref_fields
  | Write_ref { src; tgt } -> Printf.sprintf {|{"ev":"wref","src":%d,"tgt":%d}|} src tgt
  | Write_prim { obj } -> Printf.sprintf {|{"ev":"wprim","obj":%d}|} obj
  | Read { obj } -> Printf.sprintf {|{"ev":"read","obj":%d}|} obj
  | Read_burst { obj; words } -> Printf.sprintf {|{"ev":"readb","obj":%d,"n":%d}|} obj words
  | Major_gc -> {|{"ev":"major"}|}
  | Reset_stats -> {|{"ev":"reset"}|}
  | Flush_retirement -> {|{"ev":"flush"}|}

let parse_error line fmt =
  Printf.ksprintf (fun m -> failwith (Printf.sprintf "Trace.of_json: %s in %S" m line)) fmt

(* Raw text of the value following ["key":] (our writer never nests
   objects, so a value always ends at ',' or '}'). *)
let field line key =
  let pat = Printf.sprintf {|"%s":|} key in
  let plen = String.length pat and n = String.length line in
  let rec find i =
    if i + plen > n then parse_error line "missing field %S" key
    else if String.sub line i plen = pat then i + plen
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
    incr stop
  done;
  String.trim (String.sub line start (!stop - start))

let int_field line key =
  let raw = field line key in
  match int_of_string_opt raw with
  | Some i -> i
  | None -> parse_error line "field %S is not an integer (%S)" key raw

let unquote line raw =
  let n = String.length raw in
  if n >= 2 && raw.[0] = '"' && raw.[n - 1] = '"' then String.sub raw 1 (n - 2)
  else parse_error line "expected a quoted value, got %S" raw

let float_field line key =
  let raw = unquote line (field line key) in
  match float_of_string_opt raw with
  | Some f -> f
  | None -> parse_error line "field %S is not a float (%S)" key raw

let of_json line =
  match unquote line (field line "ev") with
  | "alloc" ->
    Alloc
      {
        id = int_field line "id";
        size = int_field line "size";
        heat = heat_of_tag (int_field line "heat");
        death = float_field line "death";
        ref_fields = int_field line "rf";
      }
  | "boot" ->
    Alloc_boot
      {
        id = int_field line "id";
        size = int_field line "size";
        heat = heat_of_tag (int_field line "heat");
        ref_fields = int_field line "rf";
      }
  | "wref" -> Write_ref { src = int_field line "src"; tgt = int_field line "tgt" }
  | "wprim" -> Write_prim { obj = int_field line "obj" }
  | "read" -> Read { obj = int_field line "obj" }
  | "readb" -> Read_burst { obj = int_field line "obj"; words = int_field line "n" }
  | "major" -> Major_gc
  | "reset" -> Reset_stats
  | "flush" -> Flush_retirement
  | ev -> parse_error line "unknown event kind %S" ev

let save file evs =
  Out_channel.with_open_text file (fun oc ->
      Array.iter
        (fun e ->
          output_string oc (to_json e);
          output_char oc '\n')
        evs)

let load file =
  In_channel.with_open_text file (fun ic ->
      let out = Vec.create () in
      let rec go () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          if String.trim line <> "" then Vec.push out (of_json line);
          go ()
      in
      go ();
      Vec.to_array out)
