(** What the runtime needs from the machine below it: a batched
    {!Kg_mem.Port} whose sink selects the measurement mode.

    Accesses are appended as flat records into the port's ring buffer
    and delivered to the sink in batches, in issue order — there is no
    per-access closure dispatch anywhere on this path. Three standard
    assemblies: {!of_hierarchy} drives the full cache/memory simulator
    through {!Kg_cache.Hierarchy.access_run} (architecture-dependent
    results: Figures 5-10), {!counting} tallies raw read/write bytes
    per device with no cache filtering (the architecture-independent
    write-barrier measurements of Figures 2, 11, 12 and Table 4, which
    the paper gathered on real hardware), and {!null} discards traffic
    for tests exercising pure heap logic. Compose richer stacks (trace
    capture, auxiliary metrics) with {!Kg_mem.Port.Tee} and
    {!Kg_mem.Port.set_sink}.

    Phase tags travel with each record: {!set_phase} affects records
    issued afterwards, never records already buffered, so deferred
    flushing is invisible to phase attribution. *)

type t = Kg_mem.Port.t

type counters = Kg_mem.Port.counters = {
  mutable dram_read_bytes : int;
  mutable dram_write_bytes : int;
  mutable pcm_read_bytes : int;
  mutable pcm_write_bytes : int;
  pcm_write_bytes_by_phase : int array;  (** indexed by {!Phase.to_tag} *)
}

type stats = Kg_mem.Port.stats = {
  s_dram_read_bytes : int;
  s_dram_write_bytes : int;
  s_pcm_read_bytes : int;
  s_pcm_write_bytes : int;
  s_pcm_write_bytes_by_phase : int array;
}

val read : t -> addr:int -> size:int -> unit
val write : t -> addr:int -> size:int -> unit

val flush : t -> unit
(** Deliver buffered records to the sink. The runtime flushes at every
    collection-phase boundary; flush explicitly before reading
    counters or controller state mid-run. *)

val set_phase : t -> Phase.t -> unit
val phase : t -> Phase.t

val stats : t -> stats
(** Flush, then read the sink's traffic totals ({!Phase.count}-sized
    phase array), whichever sink is installed. *)

val stats_of_controller : Kg_cache.Controller.t -> stats
(** Controller line counts as port stats (bytes = lines * line size),
    for drivers that front a cache hierarchy. *)

val hierarchy_driver : Kg_cache.Hierarchy.t -> Kg_mem.Port.driver

val of_hierarchy : ?capacity:int -> Kg_cache.Hierarchy.t -> t

val counting : map:Kg_mem.Address_map.t -> t * counters

val null : ?capacity:int -> unit -> t
(** Discards traffic entirely; for tests exercising pure heap logic. *)

val domain_group : t -> int -> t array
(** [domain_group base n] builds [n] per-domain mutator ports sharing
    [base]'s sink behind a {!Kg_mem.Port.sequenced_group}: every
    record is stamped with a group-wide issue counter and any flush
    delivers all domains' buffered records merged by stamp, so the
    sink observes one deterministic total order. *)
