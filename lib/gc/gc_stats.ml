open Kg_util

type t = {
  mutable app_writes_nursery : int;
  mutable app_writes_observer : int;
  mutable app_writes_mature : int;
  mutable app_write_bytes_dram : int;
  mutable app_write_bytes_pcm : int;
  mutable ref_writes : int;
  mutable prim_writes : int;
  mutable reads : int;
  mutable gen_remset_inserts : int;
  mutable obs_remset_inserts : int;
  mutable monitor_header_writes : int;
  mutable barrier_fast_paths : int;
  mutable nursery_gcs : int;
  mutable observer_gcs : int;
  mutable major_gcs : int;
  mutable copied_bytes_nursery : int;
  mutable copied_bytes_observer : int;
  mutable copied_bytes_major : int;
  mutable remset_slot_updates : int;
  mutable mark_header_writes : int;
  mutable mark_table_writes : int;
  mutable scanned_objects : int;
  mutable nursery_alloc_bytes : int;
  mutable nursery_survived_bytes : int;
  mutable observer_in_bytes : int;
  mutable observer_survived_bytes : int;
  mutable observer_to_dram_bytes : int;
  mutable observer_to_pcm_bytes : int;
  mutable large_allocs : int;
  mutable large_allocs_in_nursery : int;
  mutable mature_moves_to_dram : int;
  mutable mature_moves_to_pcm : int;
  mutable los_moves_to_dram : int;
  retired_mature_writes : int Vec.t;
  collection_log : (Phase.t * int * int) Vec.t;
}

let create () =
  {
    app_writes_nursery = 0;
    app_writes_observer = 0;
    app_writes_mature = 0;
    app_write_bytes_dram = 0;
    app_write_bytes_pcm = 0;
    ref_writes = 0;
    prim_writes = 0;
    reads = 0;
    gen_remset_inserts = 0;
    obs_remset_inserts = 0;
    monitor_header_writes = 0;
    barrier_fast_paths = 0;
    nursery_gcs = 0;
    observer_gcs = 0;
    major_gcs = 0;
    copied_bytes_nursery = 0;
    copied_bytes_observer = 0;
    copied_bytes_major = 0;
    remset_slot_updates = 0;
    mark_header_writes = 0;
    mark_table_writes = 0;
    scanned_objects = 0;
    nursery_alloc_bytes = 0;
    nursery_survived_bytes = 0;
    observer_in_bytes = 0;
    observer_survived_bytes = 0;
    observer_to_dram_bytes = 0;
    observer_to_pcm_bytes = 0;
    large_allocs = 0;
    large_allocs_in_nursery = 0;
    mature_moves_to_dram = 0;
    mature_moves_to_pcm = 0;
    los_moves_to_dram = 0;
    retired_mature_writes = Vec.create ();
    collection_log = Vec.create ();
  }

let reset t =
  t.app_writes_nursery <- 0;
  t.app_writes_observer <- 0;
  t.app_writes_mature <- 0;
  t.app_write_bytes_dram <- 0;
  t.app_write_bytes_pcm <- 0;
  t.ref_writes <- 0;
  t.prim_writes <- 0;
  t.reads <- 0;
  t.gen_remset_inserts <- 0;
  t.obs_remset_inserts <- 0;
  t.monitor_header_writes <- 0;
  t.barrier_fast_paths <- 0;
  t.nursery_gcs <- 0;
  t.observer_gcs <- 0;
  t.major_gcs <- 0;
  t.copied_bytes_nursery <- 0;
  t.copied_bytes_observer <- 0;
  t.copied_bytes_major <- 0;
  t.remset_slot_updates <- 0;
  t.mark_header_writes <- 0;
  t.mark_table_writes <- 0;
  t.scanned_objects <- 0;
  t.nursery_alloc_bytes <- 0;
  t.nursery_survived_bytes <- 0;
  t.observer_in_bytes <- 0;
  t.observer_survived_bytes <- 0;
  t.observer_to_dram_bytes <- 0;
  t.observer_to_pcm_bytes <- 0;
  t.large_allocs <- 0;
  t.large_allocs_in_nursery <- 0;
  t.mature_moves_to_dram <- 0;
  t.mature_moves_to_pcm <- 0;
  t.los_moves_to_dram <- 0;
  Vec.clear t.retired_mature_writes;
  Vec.clear t.collection_log

let diff a b =
  let out = ref [] in
  let cmp name va vb =
    if va <> vb then out := Printf.sprintf "%s: %d <> %d" name va vb :: !out
  in
  cmp "app_writes_nursery" a.app_writes_nursery b.app_writes_nursery;
  cmp "app_writes_observer" a.app_writes_observer b.app_writes_observer;
  cmp "app_writes_mature" a.app_writes_mature b.app_writes_mature;
  cmp "app_write_bytes_dram" a.app_write_bytes_dram b.app_write_bytes_dram;
  cmp "app_write_bytes_pcm" a.app_write_bytes_pcm b.app_write_bytes_pcm;
  cmp "ref_writes" a.ref_writes b.ref_writes;
  cmp "prim_writes" a.prim_writes b.prim_writes;
  cmp "reads" a.reads b.reads;
  cmp "gen_remset_inserts" a.gen_remset_inserts b.gen_remset_inserts;
  cmp "obs_remset_inserts" a.obs_remset_inserts b.obs_remset_inserts;
  cmp "monitor_header_writes" a.monitor_header_writes b.monitor_header_writes;
  cmp "barrier_fast_paths" a.barrier_fast_paths b.barrier_fast_paths;
  cmp "nursery_gcs" a.nursery_gcs b.nursery_gcs;
  cmp "observer_gcs" a.observer_gcs b.observer_gcs;
  cmp "major_gcs" a.major_gcs b.major_gcs;
  cmp "copied_bytes_nursery" a.copied_bytes_nursery b.copied_bytes_nursery;
  cmp "copied_bytes_observer" a.copied_bytes_observer b.copied_bytes_observer;
  cmp "copied_bytes_major" a.copied_bytes_major b.copied_bytes_major;
  cmp "remset_slot_updates" a.remset_slot_updates b.remset_slot_updates;
  cmp "mark_header_writes" a.mark_header_writes b.mark_header_writes;
  cmp "mark_table_writes" a.mark_table_writes b.mark_table_writes;
  cmp "scanned_objects" a.scanned_objects b.scanned_objects;
  cmp "nursery_alloc_bytes" a.nursery_alloc_bytes b.nursery_alloc_bytes;
  cmp "nursery_survived_bytes" a.nursery_survived_bytes b.nursery_survived_bytes;
  cmp "observer_in_bytes" a.observer_in_bytes b.observer_in_bytes;
  cmp "observer_survived_bytes" a.observer_survived_bytes b.observer_survived_bytes;
  cmp "observer_to_dram_bytes" a.observer_to_dram_bytes b.observer_to_dram_bytes;
  cmp "observer_to_pcm_bytes" a.observer_to_pcm_bytes b.observer_to_pcm_bytes;
  cmp "large_allocs" a.large_allocs b.large_allocs;
  cmp "large_allocs_in_nursery" a.large_allocs_in_nursery b.large_allocs_in_nursery;
  cmp "mature_moves_to_dram" a.mature_moves_to_dram b.mature_moves_to_dram;
  cmp "mature_moves_to_pcm" a.mature_moves_to_pcm b.mature_moves_to_pcm;
  cmp "los_moves_to_dram" a.los_moves_to_dram b.los_moves_to_dram;
  cmp "retired_mature_writes length" (Vec.length a.retired_mature_writes)
    (Vec.length b.retired_mature_writes);
  if Vec.length a.retired_mature_writes = Vec.length b.retired_mature_writes then
    for i = 0 to Vec.length a.retired_mature_writes - 1 do
      if Vec.get a.retired_mature_writes i <> Vec.get b.retired_mature_writes i then
        out :=
          Printf.sprintf "retired_mature_writes[%d]: %d <> %d" i
            (Vec.get a.retired_mature_writes i)
            (Vec.get b.retired_mature_writes i)
          :: !out
    done;
  cmp "collection_log length" (Vec.length a.collection_log) (Vec.length b.collection_log);
  if Vec.length a.collection_log = Vec.length b.collection_log then
    for i = 0 to Vec.length a.collection_log - 1 do
      let pa, ca, sa = Vec.get a.collection_log i and pb, cb, sb = Vec.get b.collection_log i in
      if pa <> pb || ca <> cb || sa <> sb then
        out :=
          Printf.sprintf "collection_log[%d]: (%s, %d, %d) <> (%s, %d, %d)" i (Phase.to_string pa)
            ca sa (Phase.to_string pb) cb sb
          :: !out
    done;
  List.rev !out

let equal a b = diff a b = []

let log_collection t phase ~copied ~scanned = Vec.push t.collection_log (phase, copied, scanned)

(* Per-collection pause durations. Gc_stats records only the work
   terms (the pause-time model lives above this library), so callers
   supply the model — Run passes Time_model.pause_ms. *)

let pause_log t ~pause_ms =
  Array.init (Vec.length t.collection_log) (fun i ->
      let phase, copied, scanned = Vec.get t.collection_log i in
      (phase, pause_ms phase ~copied ~scanned))

let pause_histogram t ~pause_ms =
  let h = Hdr_histogram.create () in
  for i = 0 to Vec.length t.collection_log - 1 do
    let phase, copied, scanned = Vec.get t.collection_log i in
    Hdr_histogram.add h (pause_ms phase ~copied ~scanned)
  done;
  h

let diff_pauses a b ~pause_ms =
  let out = ref [] in
  let pa = pause_log a ~pause_ms and pb = pause_log b ~pause_ms in
  if Array.length pa <> Array.length pb then
    out :=
      Printf.sprintf "pause count: %d <> %d" (Array.length pa) (Array.length pb) :: !out
  else
    Array.iteri
      (fun i (ka, da) ->
        let kb, db = pb.(i) in
        if ka <> kb || da <> db then
          out :=
            Printf.sprintf "pause[%d]: (%s, %.6f ms) <> (%s, %.6f ms)" i (Phase.to_string ka)
              da (Phase.to_string kb) db
            :: !out)
      pa;
  List.rev !out

let retire t w (o : Kg_heap.Object_model.t) =
  let module O = Kg_heap.Object_model in
  if O.age w o >= 1 then Vec.push t.retired_mature_writes (O.writes w o)

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let nursery_survival t = ratio t.nursery_survived_bytes t.nursery_alloc_bytes
let observer_survival t = ratio t.observer_survived_bytes t.observer_in_bytes

let mature_write_fraction t =
  ratio (t.app_writes_observer + t.app_writes_mature)
    (t.app_writes_nursery + t.app_writes_observer + t.app_writes_mature)

let top_fraction_writes t frac =
  let written =
    Vec.fold (fun acc w -> if w > 0 then w :: acc else acc) [] t.retired_mature_writes
  in
  let counts = Array.of_list written in
  if Array.length counts = 0 then 0.0
  else begin
    Array.sort (fun a b -> compare b a) counts;
    let total = Array.fold_left ( + ) 0 counts in
    let k = max 1 (int_of_float (frac *. float_of_int (Array.length counts))) in
    let top = ref 0 in
    for i = 0 to k - 1 do
      top := !top + counts.(i)
    done;
    ratio !top total
  end
