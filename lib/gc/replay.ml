module O = Kg_heap.Object_model

exception Divergence of string

let fail fmt = Printf.ksprintf (fun m -> raise (Divergence m)) fmt

let step rt objs ev =
  let find who id =
    match Hashtbl.find_opt objs id with
    | Some o -> o
    | None -> fail "%s refers to unknown object id %d" who id
  in
  match (ev : Trace.event) with
  | Trace.Alloc { id; size; heat; death; ref_fields } ->
    let o = Runtime.alloc rt ~size ~heat ~death ~ref_fields in
    if O.id o <> id then
      fail "allocation produced object id %d where the trace recorded %d" (O.id o) id;
    Hashtbl.replace objs id o
  | Trace.Alloc_boot { id; size; heat; ref_fields } ->
    let o = Runtime.alloc_boot rt ~size ~heat ~ref_fields in
    if O.id o <> id then
      fail "boot allocation produced object id %d where the trace recorded %d" (O.id o) id;
    Hashtbl.replace objs id o
  | Trace.Write_ref { src; tgt } ->
    Runtime.write_ref rt ~src:(find "write_ref" src) ~tgt:(find "write_ref" tgt)
  | Trace.Write_prim { obj } -> Runtime.write_prim rt (find "write_prim" obj)
  | Trace.Read { obj } -> Runtime.read_obj rt (find "read" obj)
  | Trace.Read_burst { obj; words } -> Runtime.read_burst rt (find "read_burst" obj) words
  | Trace.Major_gc -> Runtime.major_gc rt
  | Trace.Reset_stats -> Gc_stats.reset (Runtime.stats rt)
  | Trace.Flush_retirement -> Runtime.flush_retirement_stats rt

let run rt events =
  let objs = Hashtbl.create 4096 in
  try
    Array.iteri
      (fun i ev ->
        try step rt objs ev
        with Divergence m -> fail "event %d (%s): %s" i (Trace.to_json ev) m)
      events;
    Ok ()
  with Divergence m -> Error m
