(** Runtime/collector statistics.

    Everything the paper's figures read off the instrumented VM:
    barrier-observed write counts by target space (Figures 2 and 11),
    barrier activity for the overhead breakdown (Figure 9), collection
    counts and copied volumes (Figure 12), survival rates and space
    demographics (Table 4), and the write counts of retired mature
    objects for the top-N% concentration analysis (Figure 2). *)

type t = {
  (* application stores, by where the target object lives *)
  mutable app_writes_nursery : int;
  mutable app_writes_observer : int;
  mutable app_writes_mature : int;  (** any non-nursery, non-observer space *)
  mutable app_write_bytes_dram : int;
  mutable app_write_bytes_pcm : int;
  mutable ref_writes : int;
  mutable prim_writes : int;
  mutable reads : int;
  (* barrier work *)
  mutable gen_remset_inserts : int;
  mutable obs_remset_inserts : int;
  mutable monitor_header_writes : int;
  mutable barrier_fast_paths : int;  (** barrier executions that took no slow path *)
  (* collections *)
  mutable nursery_gcs : int;
  mutable observer_gcs : int;
  mutable major_gcs : int;
  mutable copied_bytes_nursery : int;  (** nursery -> next space *)
  mutable copied_bytes_observer : int;  (** observer -> mature *)
  mutable copied_bytes_major : int;  (** moves between mature spaces *)
  mutable remset_slot_updates : int;
  mutable mark_header_writes : int;  (** in-place mark-state writes *)
  mutable mark_table_writes : int;  (** MDO mark-table writes *)
  mutable scanned_objects : int;
  (* demographics *)
  mutable nursery_alloc_bytes : int;
  mutable nursery_survived_bytes : int;
  mutable observer_in_bytes : int;
  mutable observer_survived_bytes : int;
  mutable observer_to_dram_bytes : int;
  mutable observer_to_pcm_bytes : int;
  mutable large_allocs : int;
  mutable large_allocs_in_nursery : int;
  mutable mature_moves_to_dram : int;
  mutable mature_moves_to_pcm : int;
  mutable los_moves_to_dram : int;
  retired_mature_writes : int Kg_util.Vec.t;
      (** per-object lifetime write counts of objects that survived at
          least one nursery collection, recorded at death (live objects
          are appended by {!val:flush_live}) *)
  collection_log : (Phase.t * int * int) Kg_util.Vec.t;
      (** one entry per collection: (kind, bytes copied, objects
          scanned) — the work terms a pause-time model needs to check
          that observer pauses sit between nursery and full-heap
          pauses (§4.2.1) *)
}

val create : unit -> t

val reset : t -> unit
(** Zero every counter (e.g. after warmup/boot allocation, so measured
    demographics reflect steady state only). *)

val diff : t -> t -> string list
(** Field-by-field comparison (including both log vectors), one line
    per differing counter — the replay-determinism check prints this
    when a replay fails to reproduce a run. Empty when identical. *)

val equal : t -> t -> bool
(** [diff a b = []]. *)

val retire : t -> Kg_heap.Object_model.store -> Kg_heap.Object_model.t -> unit
(** Record a dying object's write count if it reached maturity. *)

val nursery_survival : t -> float
(** Fraction of nursery-allocated bytes that survived a nursery GC. *)

val observer_survival : t -> float

val mature_write_fraction : t -> float
(** Fraction of application writes that hit non-nursery objects. *)

val log_collection : t -> Phase.t -> copied:int -> scanned:int -> unit
(** Append a collection record (called by the runtime at the end of
    each collection with that collection's own work). *)

val pause_log :
  t -> pause_ms:(Phase.t -> copied:int -> scanned:int -> float) -> (Phase.t * float) array
(** Per-collection STW pause durations, in collection order. Gc_stats
    holds only the work terms, so the caller supplies the pause-time
    model (Run passes [Time_model.pause_ms]). *)

val pause_histogram :
  t -> pause_ms:(Phase.t -> copied:int -> scanned:int -> float) -> Kg_util.Hdr_histogram.t
(** The same durations accumulated into a log-bucketed histogram. *)

val diff_pauses :
  t -> t -> pause_ms:(Phase.t -> copied:int -> scanned:int -> float) -> string list
(** {!val:diff}-compatible comparison of two runs' pause profiles, one
    line per differing collection — [kingsguard check] prints these
    when a team run's pauses diverge from the inline oracle. Empty
    when identical. *)

val top_fraction_writes : t -> float -> float
(** [top_fraction_writes t 0.02] is the share of mature-object writes
    captured by the most-written 2 % of mature objects — the Figure 2
    concentration statistic. Only counts objects with at least one
    write, like the paper ("top 10 % of written mature objects"). *)
