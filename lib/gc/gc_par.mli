(** The parallel-collector worker team.

    A lazily-spawned pool of [domains - 1] worker domains (the
    coordinator executes slice 0 itself) parked on a condition variable
    between phase steps, in the style of [Mutator]'s epoch team. The
    team's [runner] is a [Parfor.t] of width [domains]: team-backed
    when the team was created with [parallel:true] and [domains > 1],
    and [Parfor.inline_] otherwise — so [parallel:false] is exactly the
    inline oracle protocol at the same partition width, and never
    spawns a domain. *)

type t

val create : domains:int -> parallel:bool -> t
(** [create ~domains ~parallel] builds a team of width [domains]. No
    domain is spawned until the first team-backed run. Raises
    [Invalid_argument] when [domains <= 0]. *)

val width : t -> int

val parallel : t -> bool
(** Whether [runner] is team-backed ([parallel] was set and
    [domains > 1]). *)

val runner : t -> Kg_util.Parfor.t
(** The team's parallel-for runner. A slice exception is re-raised on
    the calling domain once every slice has finished. *)

val shutdown : t -> unit
(** Stop and join any spawned workers. Idempotent; a no-op on a team
    that never went parallel. *)
