open Kg_util

type entry = { slot_addr : int; target : Kg_heap.Object_model.t }

type t = {
  name : string;
  buffer_base : int;
  buffer_slots : int;
  entries : entry Vec.t;
  mutable cursor : int;
  mutable total : int;
  (* Multicore front end: each mutator domain records barrier hits
     into its own pending buffer (its slice of the metadata store) and
     a handshake at the start of a stop-the-world section publishes
     every pending buffer into [entries] in domain order. Domain 0 of
     a single-domain runtime never goes through here — [insert] is the
     sequential fast path and stays byte-identical to the pre-domain
     code. *)
  domains : int;
  pending : entry Vec.t array;
  pending_cursor : int array;
  mutable handshakes : int;
}

let entry_bytes = Kg_heap.Layout.word

let create ?(domains = 1) ~name ~buffer_base ~buffer_bytes () =
  if domains <= 0 then invalid_arg "Remset.create: domains must be positive";
  {
    name;
    buffer_base;
    buffer_slots = max 1 (buffer_bytes / entry_bytes);
    entries = Vec.create ();
    cursor = 0;
    total = 0;
    domains;
    pending = Array.init domains (fun _ -> Vec.create ());
    pending_cursor = Array.make domains 0;
    handshakes = 0;
  }

let name t = t.name

let insert t ~slot_addr ~target =
  Vec.push t.entries { slot_addr; target };
  let addr = t.buffer_base + (t.cursor * entry_bytes) in
  t.cursor <- (t.cursor + 1) mod t.buffer_slots;
  t.total <- t.total + 1;
  addr

(* Per-domain record: the entry lands in [domain]'s pending buffer and
   the metadata store is sliced so each domain cycles through its own
   region — no two domains ever write the same SSB word between
   handshakes. *)
let record t ~domain ~slot_addr ~target =
  if domain < 0 || domain >= t.domains then
    invalid_arg "Remset.record: bad domain";
  Vec.push t.pending.(domain) { slot_addr; target };
  let slice = max 1 (t.buffer_slots / t.domains) in
  let cur = t.pending_cursor.(domain) in
  let addr = t.buffer_base + (((domain * slice) + cur) * entry_bytes) in
  t.pending_cursor.(domain) <- (cur + 1) mod slice;
  t.total <- t.total + 1;
  addr

(* Publish all pending buffers into the shared set, in domain order —
   the deterministic half of the stop-the-world handshake. Returns the
   number of entries published. *)
let handshake t =
  let published = ref 0 in
  for d = 0 to t.domains - 1 do
    let p = t.pending.(d) in
    Vec.iter (fun e -> Vec.push t.entries e) p;
    published := !published + Vec.length p;
    Vec.clear p
  done;
  t.handshakes <- t.handshakes + 1;
  !published

let pending_total t =
  let n = ref 0 in
  Array.iter (fun p -> n := !n + Vec.length p) t.pending;
  !n

let pending_length t ~domain = Vec.length t.pending.(domain)
let handshakes t = t.handshakes
let domains t = t.domains

let length t = Vec.length t.entries
let iter t f = Vec.iter f t.entries

let clear t =
  Vec.clear t.entries;
  t.cursor <- 0

let total_inserts t = t.total
