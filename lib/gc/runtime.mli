(** The managed runtime: allocation, write barriers, and the three
    collector families of the paper (§4).

    One runtime implements all configurations, exactly as the paper's
    collectors share the GenImmix infrastructure:

    - {b GenImmix} (Figure 3a): DRAM-only or PCM-only. Copying nursery;
      survivors promote to an Immix mature space; large objects go to a
      treadmill space; all spaces and metadata live in the one memory.
    - {b Kingsguard-nursery} (Figure 3b): the nursery maps to DRAM;
      mature, large and metadata spaces map to PCM.
    - {b Kingsguard-writers} (Figure 3c): DRAM nursery and observer
      space; mature DRAM + mature PCM Immix spaces; large DRAM + large
      PCM treadmills; metadata in DRAM. The write barrier monitors all
      non-nursery writes in a header write-word; observer collections
      send written survivors to mature DRAM and the rest to mature PCM;
      major collections move written PCM objects back to DRAM and
      unwritten DRAM objects out to PCM. LOO gives large objects a
      chance to die in the nursery; MDO keeps PCM mark states in DRAM
      tables.

    "Time" throughout is the allocation clock: total bytes allocated so
    far, which is also the unit of the objects' oracle death stamps. *)

type t

type space_usage = {
  nursery_used : int;
  observer_used : int;
  mature_dram_used : int;
  mature_pcm_used : int;
  los_dram_used : int;
  los_pcm_used : int;
  meta_used : int;
}

val create :
  ?domains:int ->
  ?parallel_gc:bool ->
  config:Gc_config.t ->
  mem:Mem_iface.t ->
  map:Kg_mem.Address_map.t ->
  seed:int ->
  unit ->
  t
(** The address map must have a DRAM region for Kingsguard configs and
    at least one region matching each space placement. For GenImmix the
    single region of the map hosts every space.

    [domains] (default 1) is the number of mutator domains. Each
    domain gets a private nursery (an equal slice of the configured
    nursery budget) and a private memory port from
    {!Mem_iface.domain_group}; collections are stop-the-world across
    all domains and begin with a port flush + remembered-set handshake
    (see {!Remset}). With one domain the runtime is byte-identical to
    the pre-domain implementation.

    [parallel_gc] (default [false]) executes every collection phase's
    plan steps on a team of [domains] worker domains instead of inline
    on the collecting domain. The phases follow a "plan in parallel,
    apply in merged order" protocol whose partition width is always
    [domains], so the two settings are observationally identical —
    stats, traces, fixtures and port streams are bit-identical; only
    the modeled (and host) collection time changes. [parallel_gc:false]
    is therefore the oracle for the parallel collector. Runtimes that
    went parallel hold worker domains until {!shutdown}. *)

val shutdown : t -> unit
(** Join any collector worker domains spawned by a [parallel_gc]
    runtime. Idempotent, and a no-op when no worker was ever spawned;
    required before the process can create unboundedly many runtimes
    (OCaml caps the number of domains ever spawned). *)

val parallel_gc : t -> bool
(** Whether collections run their plan steps on a worker team
    ([parallel_gc] was set and [domains > 1]). *)

val config : t -> Gc_config.t
val stats : t -> Gc_stats.t

val words : t -> Kg_heap.Object_model.store
(** The flat-word heap store holding every object's packed metadata;
    all {!Kg_heap.Object_model} accessors on objects of this runtime
    go through it. *)

val now : t -> float
(** Allocation clock: bytes allocated so far. *)

val alloc :
  ?domain:int ->
  t ->
  size:int ->
  heat:Kg_heap.Object_model.heat ->
  death:float ->
  ref_fields:int ->
  Kg_heap.Object_model.t
(** Allocate and zero-initialise an object, collecting first if the
    nursery is full. [death] is an absolute allocation-clock stamp.
    Objects above 8 KB take the large-object path. [domain] (default
    0) selects the allocating domain's nursery and port. *)

val alloc_boot :
  t ->
  size:int ->
  heat:Kg_heap.Object_model.heat ->
  ref_fields:int ->
  Kg_heap.Object_model.t
(** Allocate an immortal boot-image object directly into the mature
    space (large ones into the large object space), bypassing the
    nursery and the demographic counters — like the pre-built boot
    image of a Java-in-Java VM. *)

val write_ref :
  ?domain:int ->
  t ->
  src:Kg_heap.Object_model.t ->
  tgt:Kg_heap.Object_model.t ->
  unit
(** A reference store into a field of [src] pointing at [tgt], running
    the Figure 4 barrier: generational and observer remembered-set
    insertion plus (KG-W) write-word monitoring. With multiple domains
    the remset entry lands in [domain]'s pending buffer and all
    traffic goes through [domain]'s port. *)

val write_prim : ?domain:int -> t -> Kg_heap.Object_model.t -> unit
(** A primitive store into [src]; monitored only when the config has
    primitive monitoring (KG-W vs KG-W–PM). *)

val read_obj : ?domain:int -> t -> Kg_heap.Object_model.t -> unit
(** A field read (load traffic only). *)

val read_burst : ?domain:int -> t -> Kg_heap.Object_model.t -> int -> unit
(** [read_burst t o n] models streaming [n] consecutive words out of
    [o] (array traversal): one contiguous load, [n] read events. *)

val major_gc : t -> unit
(** Force a full-heap collection. *)

val heap_used : t -> int
(** Object-space occupancy driving the full-heap trigger. *)

val usage : t -> space_usage

val dram_used : t -> int
(** Heap + metadata bytes currently in DRAM-backed spaces. *)

val pcm_used : t -> int

val live_large_bytes : t -> int

val set_gc_hook : t -> (Phase.t -> unit) -> unit
(** Invoked at the end of every collection — the Figure 13 heap
    composition traces sample usage from here. *)

val add_gc_hook : t -> (Phase.t -> unit) -> unit
(** Chain another hook after the installed one (the invariant auditor
    attaches itself this way without displacing the sampling hook). *)

val set_event_hook : t -> (Trace.event -> unit) -> unit
(** Observe every mutator-level runtime interaction (allocations with
    their assigned ids, stores, reads, forced majors) — the recording
    half of the deterministic trace/replay subsystem. The default hook
    discards events. *)

val is_young : t -> Kg_heap.Object_model.t -> bool
(** In the nursery or observer space. *)

val in_nursery : t -> Kg_heap.Object_model.t -> bool

val object_in_pcm : t -> Kg_heap.Object_model.t -> bool
(** Does the object currently reside in a PCM-backed space? *)

val flush_retirement_stats : t -> unit
(** Record the write counts of still-live mature objects into the
    Figure 2 concentration statistic (normally only captured at
    death). Call once, at the end of a run. *)

val nursery_free : ?domain:int -> t -> int
(** Allocation headroom before the next nursery collection (the
    lifetime model clamps short-lived objects against it), for the
    given domain's private nursery. *)

val domains : t -> int
(** Number of mutator domains the runtime was created with. *)

val mut_mem : t -> int -> Mem_iface.t
(** The memory port a given domain issues its traffic through —
    [mem t] itself for a single-domain runtime, a member of a
    sequenced port group otherwise. *)

(** {2 Introspection}

    Read-only access to the runtime's spaces and metadata structures,
    used by the {!Verify} auditor and white-box tests. Mutating the
    returned structures voids every invariant. *)

val sp_nursery : int
val sp_observer : int
val sp_mature_dram : int
val sp_mature_pcm : int
val sp_los_dram : int
val sp_los_pcm : int

val address_map : t -> Kg_mem.Address_map.t

val mem : t -> Mem_iface.t
(** The memory port the runtime issues traffic through. *)

val flush_mem : t -> unit
(** Deliver any buffered port records to the sink. The runtime flushes
    before every gc_hook invocation; callers reading device counters
    or controller state at other points must flush first. *)

val nursery_space : t -> Kg_heap.Bump_space.t
(** Domain 0's nursery (the only one for a single-domain runtime). *)

val nursery_spaces : t -> Kg_heap.Bump_space.t array
(** All per-domain nurseries, in domain order. *)

val observer_space : t -> Kg_heap.Bump_space.t option
val mature_pcm_space : t -> Kg_heap.Immix_space.t
val mature_dram_space : t -> Kg_heap.Immix_space.t option
val los_pcm_space : t -> Kg_heap.Los.t
val los_dram_space : t -> Kg_heap.Los.t option
val meta_space : t -> Kg_heap.Meta_space.t
val gen_remset : t -> Remset.t
val obs_remset : t -> Remset.t option

val check_invariants : t -> (unit, string) result
(** Heavy-weight consistency check for tests and debugging: space
    membership matches each object's [space] id, live objects in a
    space never overlap, and usage accounting is internally consistent.
    Returns [Error description] on the first violation. *)
