open Kg_util
module O = Kg_heap.Object_model
module Bump = Kg_heap.Bump_space
module Immix = Kg_heap.Immix_space
module Los = Kg_heap.Los
module Meta = Kg_heap.Meta_space
module Layout = Kg_heap.Layout
module Map = Kg_mem.Address_map
module Device = Kg_mem.Device

type violation = { phase : Phase.t; invariant : string; detail : string }

let to_string v = Printf.sprintf "[%s] %s: %s" (Phase.to_string v.phase) v.invariant v.detail

(* A uniform view over every object-holding space of the runtime. *)
type pop = {
  p_name : string;
  p_id : int;
  p_kind : Device.kind;
  p_iter : (O.t -> unit) -> unit;
}

let populations rt =
  let bump name sp =
    {
      p_name = name;
      p_id = Bump.id sp;
      p_kind = Bump.kind sp;
      p_iter = (fun f -> Vec.iter f (Bump.objects sp));
    }
  in
  let immix name sp =
    {
      p_name = name;
      p_id = Immix.id sp;
      p_kind = Immix.kind sp;
      p_iter = (fun f -> Vec.iter f (Immix.objects sp));
    }
  in
  let los name l =
    { p_name = name; p_id = Los.id l; p_kind = Los.kind l; p_iter = (fun f -> Los.iter l f) }
  in
  List.concat
    [
      (Runtime.nursery_spaces rt |> Array.to_list
      |> List.map (fun sp -> bump (Bump.name sp) sp));
      (match Runtime.observer_space rt with Some s -> [ bump "observer" s ] | None -> []);
      (match Runtime.mature_dram_space rt with Some s -> [ immix "mature-dram" s ] | None -> []);
      [ immix "mature-pcm" (Runtime.mature_pcm_space rt) ];
      (match Runtime.los_dram_space rt with Some l -> [ los "los-dram" l ] | None -> []);
      [ los "los-pcm" (Runtime.los_pcm_space rt) ];
    ]

let live_census rt =
  let w = Runtime.words rt in
  let now = Runtime.now rt in
  let count = ref 0 and bytes = ref 0 in
  List.iter
    (fun p ->
      p.p_iter (fun o ->
          if O.is_live w o now then begin
            incr count;
            bytes := !bytes + O.size w o
          end))
    (populations rt);
  (!count, !bytes)

let audit ?counters ?(phase = Phase.Application) rt =
  (* The counter cross-checks below read the device tallies, so any
     records still buffered in the memory port must reach the sink
     first. *)
  Runtime.flush_mem rt;
  let vs = ref [] in
  let add invariant fmt =
    Printf.ksprintf (fun detail -> vs := { phase; invariant; detail } :: !vs) fmt
  in
  let st = Runtime.stats rt in
  let w = Runtime.words rt in
  let map = Runtime.address_map rt in
  let now = Runtime.now rt in
  let pops = populations rt in

  (* I1: every resident object carries its space's id, lies on the
     device backing that space (checked through the address map at both
     ends, so an object cannot straddle devices either), and resides in
     exactly one space. *)
  let seen = Hashtbl.create 4096 in
  List.iter
    (fun p ->
      p.p_iter (fun o ->
          let oid = O.id o in
          let oaddr = O.addr w o and osize = O.size w o in
          if O.space w o <> p.p_id then
            add "space-id" "%s holds object %d with space id %d (expected %d)" p.p_name oid
              (O.space w o) p.p_id;
          if oaddr < 0 then add "placement" "%s holds unallocated object %d" p.p_name oid
          else begin
            (match Map.kind_of map oaddr with
            | k when k <> p.p_kind ->
              add "placement" "object %d at %#x is on %s but %s is a %s space" oid oaddr
                (Device.kind_to_string k) p.p_name (Device.kind_to_string p.p_kind)
            | _ -> ()
            | exception Invalid_argument _ ->
              add "placement" "object %d at %#x lies outside the address map" oid oaddr);
            match Map.kind_of map (oaddr + osize - 1) with
            | k when k <> p.p_kind ->
              add "placement" "object %d (%#x..%#x) straddles devices" oid oaddr
                (oaddr + osize - 1)
            | _ -> ()
            | exception Invalid_argument _ ->
              add "placement" "object %d at %#x extends outside the address map" oid oaddr
          end;
          match Hashtbl.find_opt seen oid with
          | Some other ->
            add "unique-residence" "object %d resides in both %s and %s" oid other p.p_name
          | None -> Hashtbl.add seen oid p.p_name))
    pops;

  (* I2: bump spaces are contiguous — residents in allocation order
     tile the space from its base, ending at the bump cursor. *)
  let check_bump name sp =
    let cursor = ref (Bump.base sp) in
    Vec.iter
      (fun o ->
        if O.addr w o <> !cursor then
          add "bump-contiguity" "%s object %d sits at %#x, expected %#x" name (O.id o)
            (O.addr w o) !cursor;
        cursor := O.end_addr w o)
      (Bump.objects sp);
    let extent = !cursor - Bump.base sp in
    if extent <> Bump.used_bytes sp then
      add "bump-contiguity" "%s used_bytes %d disagrees with resident extent %d" name
        (Bump.used_bytes sp) extent
  in
  Array.iter
    (fun sp -> check_bump (Bump.name sp) sp)
    (Runtime.nursery_spaces rt);
  Option.iter (check_bump "observer") (Runtime.observer_space rt);

  (* I3: Immix line/block metadata is consistent with the resident
     objects (structural checks always; exact line-mark coverage when no
     allocation has happened since the last sweep — see
     {!Immix_space.audit}). *)
  let check_immix sp = List.iter (fun m -> add "immix" "%s" m) (Immix.audit sp) in
  check_immix (Runtime.mature_pcm_space rt);
  Option.iter check_immix (Runtime.mature_dram_space rt);

  (* LOS occupancy accounting matches its treadmill population. *)
  let check_los name l =
    let bytes = ref 0 and count = ref 0 in
    Los.iter l (fun o ->
        bytes := !bytes + O.size w o;
        incr count);
    if !bytes <> Los.live_bytes l then
      add "los-occupancy" "%s live_bytes %d disagrees with resident bytes %d" name
        (Los.live_bytes l) !bytes;
    if !count <> Los.object_count l then
      add "los-occupancy" "%s object_count %d disagrees with resident count %d" name
        (Los.object_count l) !count
  in
  check_los "los-pcm" (Runtime.los_pcm_space rt);
  Option.iter (check_los "los-dram") (Runtime.los_dram_space rt);

  (* I4: on a hybrid system, spaces sit on the devices Figure 3
     prescribes for the collector configuration. *)
  if Map.dram_size map > 0 && Map.pcm_size map > 0 then begin
    let expect name k want =
      if k <> want then
        add "config-placement" "%s space is on %s, the configuration places it on %s" name
          (Device.kind_to_string k) (Device.kind_to_string want)
    in
    let nursery_kind = Bump.kind (Runtime.nursery_space rt) in
    match (Runtime.config rt).Gc_config.collector with
    | Gc_config.Gen_immix ->
      List.iter
        (fun p ->
          if p.p_kind <> nursery_kind then
            add "config-placement" "GenImmix is single-memory but %s is on %s while the nursery is on %s"
              p.p_name (Device.kind_to_string p.p_kind) (Device.kind_to_string nursery_kind))
        pops;
      expect "metadata" (Meta.kind (Runtime.meta_space rt)) nursery_kind
    | Gc_config.Kg_nursery ->
      expect "nursery" nursery_kind Device.Dram;
      expect "mature-pcm" (Immix.kind (Runtime.mature_pcm_space rt)) Device.Pcm;
      expect "los-pcm" (Los.kind (Runtime.los_pcm_space rt)) Device.Pcm;
      expect "metadata" (Meta.kind (Runtime.meta_space rt)) Device.Pcm
    | Gc_config.Kg_writers _ ->
      expect "nursery" nursery_kind Device.Dram;
      Option.iter (fun s -> expect "observer" (Bump.kind s) Device.Dram) (Runtime.observer_space rt);
      Option.iter
        (fun s -> expect "mature-dram" (Immix.kind s) Device.Dram)
        (Runtime.mature_dram_space rt);
      expect "mature-pcm" (Immix.kind (Runtime.mature_pcm_space rt)) Device.Pcm;
      Option.iter (fun l -> expect "los-dram" (Los.kind l) Device.Dram) (Runtime.los_dram_space rt);
      expect "los-pcm" (Los.kind (Runtime.los_pcm_space rt)) Device.Pcm;
      expect "metadata" (Meta.kind (Runtime.meta_space rt)) Device.Dram
  end;

  (* I5: remembered sets are consumed by the collections that use them
     and never retain entries pointing back into an evacuated space. *)
  let gen = Runtime.gen_remset rt in
  let obs = Runtime.obs_remset rt in
  (match phase with
  | Phase.Nursery_gc | Phase.Observer_gc | Phase.Major_gc ->
    if Remset.length gen <> 0 then
      add "remset" "generational remset holds %d entries after a %s" (Remset.length gen)
        (Phase.to_string phase);
    (* Missed handshake: with multiple domains, every stop-the-world
       section must begin by publishing all per-domain pending entries
       — any still buffered when the collection ends were invisible to
       the collector and could have been dropped as roots. *)
    if Remset.pending_total gen <> 0 then
      add "remset-handshake" "generational remset has %d unpublished pending entries after a %s"
        (Remset.pending_total gen) (Phase.to_string phase);
    Option.iter
      (fun rs ->
        if Remset.pending_total rs <> 0 then
          add "remset-handshake" "observer remset has %d unpublished pending entries after a %s"
            (Remset.pending_total rs) (Phase.to_string phase))
      obs
  | Phase.Application | Phase.Migration -> ());
  (match (phase, obs) with
  | (Phase.Observer_gc | Phase.Major_gc), Some rs ->
    if Remset.length rs <> 0 then
      add "remset" "observer remset holds %d entries after a %s" (Remset.length rs)
        (Phase.to_string phase)
  | Phase.Nursery_gc, Some rs ->
    Remset.iter rs (fun e ->
        if
          O.is_live w e.Remset.target now
          && O.space w e.Remset.target = Runtime.sp_nursery
        then
          add "remset" "observer remset slot %#x still targets live nursery object %d after a nursery collection"
            e.Remset.slot_addr (O.id e.Remset.target))
  | _ -> ());
  if Remset.total_inserts gen < st.Gc_stats.gen_remset_inserts then
    add "remset" "generational remset lifetime inserts %d below the statistics' %d"
      (Remset.total_inserts gen) st.Gc_stats.gen_remset_inserts;
  Option.iter
    (fun rs ->
      if Remset.total_inserts rs < st.Gc_stats.obs_remset_inserts then
        add "remset" "observer remset lifetime inserts %d below the statistics' %d"
          (Remset.total_inserts rs) st.Gc_stats.obs_remset_inserts)
    obs;

  (* I6: counter conservation laws. *)
  let eq inv la a lb b = if a <> b then add inv "%s (%d) <> %s (%d)" la a lb b in
  let le inv la a lb b = if a > b then add inv "%s (%d) exceeds %s (%d)" la a lb b in
  let writes = st.Gc_stats.ref_writes + st.Gc_stats.prim_writes in
  eq "write-conservation" "application writes by target space"
    (st.Gc_stats.app_writes_nursery + st.Gc_stats.app_writes_observer
   + st.Gc_stats.app_writes_mature)
    "ref + prim writes" writes;
  eq "write-conservation" "application write bytes by device"
    (st.Gc_stats.app_write_bytes_dram + st.Gc_stats.app_write_bytes_pcm)
    "word * (ref + prim writes)" (Layout.word * writes);
  le "write-conservation" "barrier fast paths" st.Gc_stats.barrier_fast_paths
    "ref + prim writes" writes;
  eq "copy-conservation" "copied_bytes_nursery" st.Gc_stats.copied_bytes_nursery
    "nursery_survived_bytes" st.Gc_stats.nursery_survived_bytes;
  eq "copy-conservation" "copied_bytes_observer" st.Gc_stats.copied_bytes_observer
    "observer_survived_bytes" st.Gc_stats.observer_survived_bytes;
  le "copy-conservation" "nursery_survived_bytes" st.Gc_stats.nursery_survived_bytes
    "nursery_alloc_bytes" st.Gc_stats.nursery_alloc_bytes;
  le "copy-conservation" "observer_survived_bytes" st.Gc_stats.observer_survived_bytes
    "observer_in_bytes" st.Gc_stats.observer_in_bytes;
  le "demographics" "large_allocs_in_nursery" st.Gc_stats.large_allocs_in_nursery
    "large_allocs" st.Gc_stats.large_allocs;

  (* I7: device traffic tallies agree with the barrier's view. *)
  Option.iter
    (fun (c : Mem_iface.counters) ->
      eq "traffic-conservation" "per-phase PCM write bytes"
        (Array.fold_left ( + ) 0 c.Mem_iface.pcm_write_bytes_by_phase)
        "total PCM write bytes" c.Mem_iface.pcm_write_bytes;
      le "traffic-conservation" "barrier DRAM write bytes" st.Gc_stats.app_write_bytes_dram
        "device DRAM write bytes" c.Mem_iface.dram_write_bytes;
      le "traffic-conservation" "barrier PCM write bytes" st.Gc_stats.app_write_bytes_pcm
        "device PCM write bytes" c.Mem_iface.pcm_write_bytes)
    counters;

  (* The runtime's own heavyweight cross-check (space membership and
     live-object overlap), folded in as one more invariant. *)
  (match Runtime.check_invariants rt with
  | Ok () -> ()
  | Error m -> add "runtime" "%s" m);

  List.rev !vs

let attach ?counters rt =
  let acc = Vec.create () in
  Runtime.add_gc_hook rt (fun phase -> List.iter (Vec.push acc) (audit ?counters ~phase rt));
  acc
