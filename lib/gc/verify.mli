(** Heap invariant auditor.

    Verifies, typically at the end of every collection phase (via
    {!attach}) and once more at the end of a run, that the runtime's
    heap is structurally sound and its statistics obey their
    conservation laws:

    - {b space-id / placement / unique-residence}: every resident
      object carries the id of the space holding it, lies (entirely) on
      the device the address map backs that space with, and resides in
      exactly one space;
    - {b bump-contiguity}: nursery and observer residents tile the
      space contiguously from its base up to the bump cursor;
    - {b immix}: line/block metadata agrees with the resident
      population ({!Kg_heap.Immix_space.audit});
    - {b los-occupancy}: treadmill byte/object accounting matches the
      population;
    - {b config-placement}: on hybrid systems, each space sits on the
      device Figure 3 prescribes for the collector configuration;
    - {b remset}: remembered sets are empty after the collections that
      consume them, retain no entries targeting live nursery objects
      after a nursery collection, and lifetime insert counts are
      consistent with the statistics;
    - {b write-/copy-conservation, demographics}: counter identities
      such as writes-by-space summing to total writes, write bytes
      equalling a word per write, and copied volumes matching survivor
      volumes;
    - {b traffic-conservation}: per-phase device write tallies sum to
      the totals and dominate the barrier's byte counts (when the
      {!Mem_iface.counting} counters are supplied).

    The statistics checks assume {!Gc_stats.reset} is only ever called
    while the young spaces are empty (as the experiment driver does,
    right after boot-image construction). *)

type violation = {
  phase : Phase.t;  (** collection phase after which the audit ran *)
  invariant : string;  (** short invariant tag, e.g. ["bump-contiguity"] *)
  detail : string;
}

val to_string : violation -> string

val audit :
  ?counters:Mem_iface.counters -> ?phase:Phase.t -> Runtime.t -> violation list
(** Run every check once against the current heap. [phase] (default
    [Application]) selects the phase-dependent remembered-set checks
    and tags the violations. *)

val attach : ?counters:Mem_iface.counters -> Runtime.t -> violation Kg_util.Vec.t
(** Chain an auditing hook onto the runtime ({!Runtime.add_gc_hook});
    every collection phase end runs {!audit} and accumulates the
    violations into the returned vector. *)

val live_census : Runtime.t -> int * int
(** Oracle-live (count, bytes) across all object spaces including the
    treadmills — the collector-independent heap state the differential
    tests compare across configurations. *)
