open Kg_util
open Kg_heap
module O = Object_model

(* Fixed space ids; "young" = nursery or observer, tested by ordering. *)
let sp_nursery = 0
let sp_observer = 1
let sp_mature_dram = 2
let sp_mature_pcm = 3
let sp_los_dram = 4
let sp_los_pcm = 5

type space_usage = {
  nursery_used : int;
  observer_used : int;
  mature_dram_used : int;
  mature_pcm_used : int;
  los_dram_used : int;
  los_pcm_used : int;
  meta_used : int;
}

type t = {
  cfg : Gc_config.t;
  words : O.store;
  mem : Mem_iface.t;
  (* One port per mutator domain. With a single domain this is [| mem |]
     — the pre-domain path, bit for bit. With N > 1 the slots come from
     {!Mem_iface.domain_group}: records are stamped with a group-wide
     issue counter and every flush delivers all domains' traffic merged
     by stamp, so the sink order is independent of which buffer fills
     first. *)
  mut_mems : Mem_iface.t array;
  domains : int;
  (* The collector's worker team. Every phase runs the same
     "plan in parallel, apply in merged order" protocol at width
     [domains]; the team only decides whether the plan slices execute
     on real domains ([parallel_gc:true]) or inline on the coordinator
     (the oracle). *)
  par : Gc_par.t;
  map : Kg_mem.Address_map.t;
  stats : Gc_stats.t;
  rng : Rng.t;
  nurseries : Bump_space.t array;  (* one private nursery per domain *)
  observer : Bump_space.t option;
  mature_dram : Immix_space.t option;
  mature_pcm : Immix_space.t;
  los_dram : Los.t option;
  los_pcm : Los.t;
  meta : Meta_space.t;
  gen_remset : Remset.t;
  obs_remset : Remset.t option;
  mature_dram_meta : int Vec.t;  (* line-mark chunk base per 4 MB region *)
  mature_pcm_meta : int Vec.t;
  mdo_tables : (int, int) Hashtbl.t;  (* region base -> mark table base *)
  mutable now : float;
  mutable nursery_alloc_since_gc : int;  (* small objects only *)
  mutable large_alloc_since_gc : int;  (* all large allocation *)
  mutable loo_enabled : bool;
  mutable recent_survival : float;
  mutable gc_hook : Phase.t -> unit;
  mutable event_hook : Trace.event -> unit;
  mutable in_major : bool;
  mutable pcm_writes_at_last_major : int;
}

let config t = t.cfg
let stats t = t.stats
let now t = t.now
let domains t = t.domains
let parallel_gc t = Gc_par.parallel t.par
let shutdown t = Gc_par.shutdown t.par
let words t = t.words
let is_young t o = O.space t.words o <= sp_observer
let in_nursery t o = O.space t.words o = sp_nursery

(* The port a given mutator domain issues its traffic through. *)
let[@inline] mut_mem t domain = t.mut_mems.(domain)

let object_in_pcm t o =
  Kg_mem.Address_map.kind_of t.map (O.addr t.words o) = Kg_mem.Device.Pcm

let set_gc_hook t f = t.gc_hook <- f

(* Chain a hook after whatever is installed: the run driver samples
   heap composition, and the invariant auditor rides along behind it. *)
let add_gc_hook t f =
  let g = t.gc_hook in
  t.gc_hook <- (fun p -> g p; f p)

let set_event_hook t f = t.event_hook <- f

(* ------------------------------------------------------------------ *)
(* Introspection (for the invariant auditor and tests)                 *)

let address_map t = t.map
let mem t = t.mem

(* Push any buffered port records to the sink; callers reading device
   counters or controller state mid-run must flush first. The runtime
   itself flushes before every gc_hook invocation. Domain ports drain
   first (one merged delivery), then the runtime's own port, matching
   program order: mutator records were issued before whatever the
   caller is about to account. *)
let flush_mem t =
  if t.domains > 1 then Mem_iface.flush t.mut_mems.(0);
  Mem_iface.flush t.mem

let nursery_space t = t.nurseries.(0)
let nursery_spaces t = t.nurseries
let observer_space t = t.observer
let mature_pcm_space t = t.mature_pcm
let mature_dram_space t = t.mature_dram
let los_pcm_space t = t.los_pcm
let los_dram_space t = t.los_dram
let meta_space t = t.meta
let gen_remset t = t.gen_remset
let obs_remset t = t.obs_remset

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let line_mark_chunk_bytes = Immix_space.meta_bytes_per_block * (Layout.mature_region / Layout.block)

let create ?(domains = 1) ?(parallel_gc = false) ~config:cfg ~mem ~map ~seed () =
  if domains <= 0 then invalid_arg "Runtime.create: domains must be positive";
  let open Kg_mem in
  let words = Heap_words.create () in
  let arena_of_region kind =
    match kind with
    | Device.Dram ->
      Arena.create ~kind ~base:(Address_map.dram_base map) ~size:(Address_map.dram_size map)
    | Device.Pcm ->
      Arena.create ~kind ~base:(Address_map.pcm_base map) ~size:(Address_map.pcm_size map)
  in
  (* The "main" arena hosts everything that is not explicitly DRAM: the
     single memory for the baselines, PCM for the Kingsguard configs. *)
  let main_arena =
    if Address_map.pcm_size map > 0 then arena_of_region Device.Pcm
    else arena_of_region Device.Dram
  in
  let dram_arena =
    match cfg.Gc_config.collector with
    | Gc_config.Gen_immix -> main_arena
    | _ -> arena_of_region Device.Dram
  in
  let meta_arena =
    match cfg.Gc_config.collector with
    | Gc_config.Kg_writers _ -> dram_arena
    | _ -> main_arena
  in
  let meta = Meta_space.create ~id:6 ~name:"meta" ~arena:meta_arena in
  let mature_pcm_meta = Vec.create () in
  let mature_dram_meta = Vec.create () in
  let mdo_tables = Hashtbl.create 64 in
  let mdo_on =
    match cfg.Gc_config.collector with
    | Gc_config.Kg_writers { mdo; _ } -> mdo
    | _ -> false
  in
  let on_pcm_region ~base =
    Vec.push mature_pcm_meta (Meta_space.alloc_table meta line_mark_chunk_bytes);
    if mdo_on then
      Hashtbl.replace mdo_tables base
        (Meta_space.alloc_table meta Layout.mark_table_bytes_per_region)
  in
  let on_dram_region ~base:_ =
    Vec.push mature_dram_meta (Meta_space.alloc_table meta line_mark_chunk_bytes)
  in
  (* Per-domain private nurseries splitting the configured nursery
     budget, all under the one [sp_nursery] space id. A single domain
     gets one nursery of the full size at the same arena offset as the
     pre-domain runtime — the layout (and so every downstream address)
     is unchanged. *)
  let nurseries =
    Array.init domains (fun d ->
        let name = if d = 0 then "nursery" else Printf.sprintf "nursery-%d" d in
        Bump_space.create ~words ~id:sp_nursery ~name ~arena:dram_arena
          ~size:(cfg.Gc_config.nursery_bytes / domains))
  in
  let has_observer = Gc_config.has_observer cfg in
  let observer =
    if has_observer then
      Some
        (Bump_space.create ~words ~id:sp_observer ~name:"observer" ~arena:dram_arena
           ~size:cfg.Gc_config.observer_bytes)
    else None
  in
  let mature_dram =
    if has_observer then
      Some
        (Immix_space.create ~words ~id:sp_mature_dram ~name:"mature-dram" ~arena:dram_arena
           ~on_new_region:on_dram_region ~shards:domains ())
    else None
  in
  let mature_pcm =
    Immix_space.create ~words ~id:sp_mature_pcm ~name:"mature-pcm" ~arena:main_arena
      ~on_new_region:on_pcm_region ~shards:domains ()
  in
  let los_dram =
    if has_observer then
      Some (Los.create ~words ~id:sp_los_dram ~name:"los-dram" ~arena:dram_arena)
    else None
  in
  let los_pcm = Los.create ~words ~id:sp_los_pcm ~name:"los-pcm" ~arena:main_arena in
  let remset_buffer = Meta_space.alloc_table meta (Units.mib / 4) in
  let gen_remset =
    Remset.create ~domains ~name:"gen" ~buffer_base:remset_buffer
      ~buffer_bytes:(Units.mib / 4) ()
  in
  let obs_remset =
    if has_observer then begin
      let b = Meta_space.alloc_table meta (Units.mib / 4) in
      Some
        (Remset.create ~domains ~name:"observer" ~buffer_base:b
           ~buffer_bytes:(Units.mib / 4) ())
    end
    else None
  in
  let mut_mems =
    if domains = 1 then [| mem |] else Mem_iface.domain_group mem domains
  in
  {
    cfg;
    words;
    mem;
    mut_mems;
    domains;
    par = Gc_par.create ~domains ~parallel:parallel_gc;
    map;
    stats = Gc_stats.create ();
    rng = Rng.of_seed seed;
    nurseries;
    observer;
    mature_dram;
    mature_pcm;
    los_dram;
    los_pcm;
    meta;
    gen_remset;
    obs_remset;
    mature_dram_meta;
    mature_pcm_meta;
    mdo_tables;
    now = 0.0;
    nursery_alloc_since_gc = 0;
    large_alloc_since_gc = 0;
    loo_enabled = false;
    recent_survival = 0.2;
    gc_hook = (fun _ -> ());
    event_hook = (fun _ -> ());
    in_major = false;
    pcm_writes_at_last_major = 0;
  }

(* ------------------------------------------------------------------ *)
(* Usage accounting                                                    *)

let usage t =
  {
    nursery_used =
      Array.fold_left (fun a n -> a + Bump_space.used_bytes n) 0 t.nurseries;
    observer_used = (match t.observer with Some o -> Bump_space.used_bytes o | None -> 0);
    mature_dram_used = (match t.mature_dram with Some s -> Immix_space.live_bytes s | None -> 0);
    mature_pcm_used = Immix_space.live_bytes t.mature_pcm;
    los_dram_used = (match t.los_dram with Some l -> Los.live_bytes l | None -> 0);
    los_pcm_used = Los.live_bytes t.los_pcm;
    meta_used = Meta_space.usage_bytes t.meta;
  }

let heap_used t =
  let u = usage t in
  u.nursery_used + u.observer_used + u.mature_dram_used + u.mature_pcm_used
  + u.los_dram_used + u.los_pcm_used

let live_large_bytes t =
  Los.live_bytes t.los_pcm
  + (match t.los_dram with Some l -> Los.live_bytes l | None -> 0)

let space_kind_is_pcm t base = Kg_mem.Address_map.kind_of t.map base = Kg_mem.Device.Pcm

let dram_used t =
  let u = usage t in
  let add_if_dram base v acc = if space_kind_is_pcm t base then acc else acc + v in
  let acc = 0 in
  let acc = add_if_dram (Bump_space.base t.nurseries.(0)) u.nursery_used acc in
  let acc =
    match t.observer with Some o -> add_if_dram (Bump_space.base o) u.observer_used acc | None -> acc
  in
  let acc = acc + u.mature_dram_used + u.los_dram_used in
  let acc = if Meta_space.kind t.meta = Kg_mem.Device.Dram then acc + u.meta_used else acc in
  acc

let pcm_used t =
  let u = usage t in
  let total =
    u.nursery_used + u.observer_used + u.mature_dram_used + u.mature_pcm_used
    + u.los_dram_used + u.los_pcm_used + u.meta_used
  in
  total - dram_used t

(* ------------------------------------------------------------------ *)
(* Copy machinery                                                      *)

(* Traffic of moving an object: the streaming pass lives with the
   object model ({!O.stream_copy}); the allocation into the destination
   space must already have updated the object's address. *)
let copy_traffic t ~old_addr o = O.stream_copy t.words t.mem ~old_addr o

let alloc_into_immix _t space o =
  if not (Immix_space.alloc space o) then
    failwith (Printf.sprintf "Runtime: %s exhausted" (Immix_space.name space))

(* Model of updating heap references to a moved object. The referrer
   count is small (most objects have one or two incoming pointers); we
   charge the slot writes against a random mature resident, which is
   where old-to-young and old-to-old pointers physically live. *)
let referrer_update_writes t moved =
  let w = t.words in
  let candidates = Immix_space.objects t.mature_pcm in
  let n = if Rng.bernoulli t.rng 0.3 then 2 else 1 in
  if Vec.length candidates > 0 then
    for _ = 1 to n do
      let r = Vec.get candidates (Rng.int t.rng (Vec.length candidates)) in
      if r <> moved then begin
        let slot = Rng.int t.rng 64 mod O.field_slots w r in
        Mem_iface.write t.mem ~addr:(O.field_addr w r slot) ~size:Layout.word;
        t.stats.Gc_stats.remset_slot_updates <- t.stats.Gc_stats.remset_slot_updates + 1
      end
    done

(* ------------------------------------------------------------------ *)
(* Remembered sets                                                     *)

(* Consume a remembered set: read each entry, and update the recorded
   slot if its target survived (and therefore moved). Slots live in the
   writing object's space, so updating a PCM-resident slot is a PCM
   write — the GC-phase PCM traffic of §6.1.6. *)
let process_remset t rs =
  let st = t.stats in
  Remset.iter rs (fun { Remset.slot_addr; target } ->
      st.Gc_stats.scanned_objects <- st.Gc_stats.scanned_objects + 1;
      if O.is_live t.words target t.now then begin
        Mem_iface.write t.mem ~addr:slot_addr ~size:Layout.word;
        st.Gc_stats.remset_slot_updates <- st.Gc_stats.remset_slot_updates + 1
      end);
  Remset.clear rs

(* ------------------------------------------------------------------ *)
(* Plan/apply parallel-phase machinery                                 *)

(* Every collection phase follows one protocol: a *plan* step
   classifies a contiguous slice of the work per team member, writing
   only slice-private buffers (liveness and header predicates are
   stable during the stop-the-world section — [t.now] does not advance
   and no mutator runs), and a sequential *apply* step replays the
   buffers in slice order. [Parfor.slice] ranges concatenate back to
   the original index order, so the apply visits exactly the objects
   the sequential loop visited, in the same order — stats, retirement
   streams, RNG draws, allocation addresses and port records (batch
   boundaries included) are bit-identical at any width, parallel or
   inline. That is why [parallel_gc:false] at the same domain count
   *is* the oracle: the protocol never forks, only the execution of
   the plan slices does. *)
let plan_filter par vec pred =
  let width = Parfor.width par in
  let n = Vec.length vec in
  let picked = Array.init width (fun _ -> Vec.create ()) in
  Parfor.run par (fun i ->
      let lo, hi = Parfor.slice ~len:n ~width i in
      for k = lo to hi do
        let o = Vec.get vec k in
        if pred o then Vec.push picked.(i) o
      done);
  picked

(* In-place header updates (fresh-epoch reset, unmark) run fully
   parallel: a space's population vector holds each object at most
   once between sweeps (movement pushes into the *destination* vector
   and leaves only a stale source entry, which the following sweep
   drops), so the slices write disjoint header words. *)
let parallel_each par vec f =
  let width = Parfor.width par in
  let n = Vec.length vec in
  Parfor.run par (fun i ->
      let lo, hi = Parfor.slice ~len:n ~width i in
      for k = lo to hi do
        f (Vec.get vec k)
      done)

(* ------------------------------------------------------------------ *)
(* Collections                                                         *)

let los_for_large t =
  (* Baselines and KG-N have a single large object space. *)
  t.los_pcm

let adopt_large t los o =
  let old_addr = O.addr t.words o in
  Los.adopt los o;
  copy_traffic t ~old_addr o

(* Copy a nursery survivor to [dst]; with an observer space the
   destination is the observer, falling back to mature PCM if a
   survival spike overflows it. *)
let promote_nursery_object t o =
  let w = t.words in
  let old_addr = O.addr w o in
  (match t.observer with
  | Some obs ->
    (* Large survivors also pass through the observer (§4.2.4); they
       only reach large PCM after surviving an observer collection. *)
    if Bump_space.alloc obs o then begin
      copy_traffic t ~old_addr o;
      t.stats.Gc_stats.observer_in_bytes <-
        t.stats.Gc_stats.observer_in_bytes + O.size w o
    end
    else if O.is_large w o then adopt_large t (los_for_large t) o
    else begin
      alloc_into_immix t t.mature_pcm o;
      copy_traffic t ~old_addr o
    end
  | None ->
    if O.is_large w o then adopt_large t (los_for_large t) o
    else begin
      alloc_into_immix t t.mature_pcm o;
      copy_traffic t ~old_addr o
    end);
  O.set_age w o (min (O.age w o + 1) O.max_age)

let collect_nursery t =
  let w = t.words in
  let st = t.stats in
  st.Gc_stats.nursery_gcs <- st.Gc_stats.nursery_gcs + 1;
  (* A minor collection is stop-the-world across every domain. Plan:
     team member [d] scavenges its own domain's private nursery,
     classifying the survivors. Apply: promote in domain order — the
     sequential evacuation order — before the shared remset is
     consumed. *)
  let survived = ref 0 in
  let used =
    max 1 (Array.fold_left (fun a n -> a + Bump_space.used_bytes n) 0 t.nurseries)
  in
  let par = Gc_par.runner t.par in
  let live = Array.init t.domains (fun _ -> Vec.create ()) in
  Parfor.run par (fun d ->
      Vec.iter
        (fun o -> if O.is_live w o t.now then Vec.push live.(d) o)
        (Bump_space.objects t.nurseries.(d)));
  Array.iteri
    (fun d nursery ->
      Vec.iter
        (fun o ->
          promote_nursery_object t o;
          let osize = O.size w o in
          survived := !survived + osize;
          st.Gc_stats.copied_bytes_nursery <- st.Gc_stats.copied_bytes_nursery + osize)
        live.(d);
      Bump_space.reset nursery)
    t.nurseries;
  st.Gc_stats.nursery_survived_bytes <- st.Gc_stats.nursery_survived_bytes + !survived;
  t.recent_survival <- 0.5 *. (t.recent_survival +. (float_of_int !survived /. float_of_int used));
  process_remset t t.gen_remset;
  (* LOO decision (§4.2.4): enable nursery allocation of large objects
     when large allocation outpaces the nursery. With hysteresis: once
     on, the optimization itself diverts large objects into the
     nursery, so the raw large-PCM rate collapses; only a clear drop in
     large pressure turns it back off. *)
  (match t.cfg.Gc_config.collector with
  | Gc_config.Kg_writers { loo = true; _ } ->
    t.loo_enabled <-
      (if t.loo_enabled then t.large_alloc_since_gc * 4 > t.nursery_alloc_since_gc
       else t.large_alloc_since_gc > t.nursery_alloc_since_gc)
  | _ -> ());
  t.nursery_alloc_since_gc <- 0;
  t.large_alloc_since_gc <- 0

(* Evacuate the observer space: written survivors to mature DRAM,
   read-mostly survivors to mature PCM, large survivors straight to the
   large PCM space (§4.2.1, §4.2.3, §4.2.4). *)
let evacuate_observer t obs =
  let w = t.words in
  let st = t.stats in
  let mature_dram = Option.get t.mature_dram in
  (* Plan: classify each slice of the observer population into dead /
     surviving. Apply per slice: retirements first, then evacuations.
     Relative to the sequential interleaved loop this reorders a
     slice's copies after its retirements, which is observationally
     invisible: retirements touch only the stats accumulators (no port
     traffic), evacuations touch allocation and the port — and within
     each kind the original order is preserved, so the retired-writes
     log and the access stream are both bit-identical. *)
  let par = Gc_par.runner t.par in
  let width = Parfor.width par in
  let objs = Bump_space.objects obs in
  let n = Vec.length objs in
  let dead = Array.init width (fun _ -> Vec.create ()) in
  let live = Array.init width (fun _ -> Vec.create ()) in
  Parfor.run par (fun i ->
      let lo, hi = Parfor.slice ~len:n ~width i in
      for k = lo to hi do
        let o = Vec.get objs k in
        if O.is_live w o t.now then Vec.push live.(i) o else Vec.push dead.(i) o
      done);
  for i = 0 to width - 1 do
    Vec.iter (fun o -> Gc_stats.retire st w o) dead.(i);
    Vec.iter
      (fun o ->
        let osize = O.size w o in
        st.Gc_stats.observer_survived_bytes <- st.Gc_stats.observer_survived_bytes + osize;
        st.Gc_stats.copied_bytes_observer <- st.Gc_stats.copied_bytes_observer + osize;
        let old_addr = O.addr w o in
        if O.is_large w o then adopt_large t t.los_pcm o
        else if O.written w o then begin
          alloc_into_immix t mature_dram o;
          copy_traffic t ~old_addr o;
          O.set_written w o false;
          O.set_epoch_writes w o 0;
          st.Gc_stats.observer_to_dram_bytes <- st.Gc_stats.observer_to_dram_bytes + osize
        end
        else begin
          alloc_into_immix t t.mature_pcm o;
          copy_traffic t ~old_addr o;
          st.Gc_stats.observer_to_pcm_bytes <- st.Gc_stats.observer_to_pcm_bytes + osize
        end;
        O.set_age w o (min (O.age w o + 1) O.max_age))
      live.(i)
  done;
  Bump_space.reset obs

(* Work performed between [snapshot] and now, for the pause log. *)
let copied_scanned st =
  ( st.Gc_stats.copied_bytes_nursery + st.Gc_stats.copied_bytes_observer
    + st.Gc_stats.copied_bytes_major,
    st.Gc_stats.scanned_objects + st.Gc_stats.remset_slot_updates )

let log_pause t phase (copied0, scanned0) =
  let copied, scanned = copied_scanned t.stats in
  Gc_stats.log_collection t.stats phase ~copied:(copied - copied0) ~scanned:(scanned - scanned0)

let collect_observer t =
  match t.observer with
  | None -> ()
  | Some obs ->
    let st = t.stats in
    st.Gc_stats.observer_gcs <- st.Gc_stats.observer_gcs + 1;
    let work0 = copied_scanned st in
    Mem_iface.set_phase t.mem Phase.Observer_gc;
    evacuate_observer t obs;
    (* The nursery is part of an observer collection (§4.2.2). *)
    collect_nursery t;
    Option.iter (process_remset t) t.obs_remset;
    log_pause t Phase.Observer_gc work0;
    Mem_iface.flush t.mem;
    t.gc_hook Phase.Observer_gc

(* Marking a live mature object: trace-read its header and reference
   fields, then record its mark state. MDO redirects the mark write of
   PCM objects above 16 bytes into the DRAM mark table (§4.2.5). *)
let mark_object t ~(mdo : bool) ~in_pcm o =
  let w = t.words in
  let st = t.stats in
  st.Gc_stats.scanned_objects <- st.Gc_stats.scanned_objects + 1;
  let oaddr = O.addr w o in
  Mem_iface.read t.mem ~addr:oaddr
    ~size:(min (O.size w o) (Layout.header_bytes + (O.ref_fields w o * Layout.word)));
  O.set_marked w o true;
  if mdo && in_pcm && not (O.is_small16 w o) then begin
    let rbase = Immix_space.region_base_of_addr t.mature_pcm oaddr in
    let table = Hashtbl.find t.mdo_tables rbase in
    Mem_iface.write t.mem ~addr:(table + ((oaddr - rbase) / Layout.small_mark_threshold)) ~size:1;
    st.Gc_stats.mark_table_writes <- st.Gc_stats.mark_table_writes + 1
  end
  else begin
    Mem_iface.write t.mem ~addr:oaddr ~size:1;
    st.Gc_stats.mark_header_writes <- st.Gc_stats.mark_header_writes + 1
  end

let sweep_immix t space meta_chunks =
  let write_meta ~block_index ~lines =
    let blocks_per_region = Layout.mature_region / Layout.block in
    let chunk = Vec.get meta_chunks (block_index / blocks_per_region) in
    let addr = chunk + (block_index mod blocks_per_region * Immix_space.meta_bytes_per_block) in
    Mem_iface.write t.mem ~addr ~size:lines
  in
  ignore
    (Immix_space.sweep space ~now:t.now ~write_meta
       ~on_dead:(fun o -> Gc_stats.retire t.stats t.words o)
       ~par:(Gc_par.runner t.par) ())

(* Treadmill collection: snapping a live node rewrites two link words
   in its header, in whatever memory holds the object. *)
let collect_los t los ~keep =
  let evicted =
    Los.collect los ~now:t.now ~keep
      ~on_dead:(fun o -> Gc_stats.retire t.stats t.words o)
      ()
  in
  Los.iter los (fun o ->
      Mem_iface.write t.mem ~addr:(O.addr t.words o) ~size:(2 * Layout.word));
  evicted

let major_gc_inner t =
  let w = t.words in
  let st = t.stats in
  st.Gc_stats.major_gcs <- st.Gc_stats.major_gcs + 1;
  let work0 = copied_scanned st in
  (* Collect the young generation(s) first. *)
  (match t.observer with
  | Some _ ->
    Mem_iface.set_phase t.mem Phase.Observer_gc;
    (match t.observer with Some obs -> evacuate_observer t obs | None -> ());
    collect_nursery t;
    Option.iter (process_remset t) t.obs_remset
  | None ->
    Mem_iface.set_phase t.mem Phase.Nursery_gc;
    collect_nursery t);
  Mem_iface.set_phase t.mem Phase.Major_gc;
  let mdo =
    match t.cfg.Gc_config.collector with
    | Gc_config.Kg_writers { mdo; _ } -> mdo
    | _ -> false
  in
  let par = Gc_par.runner t.par in
  (* Mark phase over the mature Immix spaces: plan the live slices in
     parallel, apply [mark_object] (which issues the trace-read and
     mark-write port traffic) in slice order. *)
  let mark_space space ~in_pcm =
    let live = plan_filter par (Immix_space.objects space) (fun o -> O.is_live w o t.now) in
    Array.iter (Vec.iter (fun o -> mark_object t ~mdo ~in_pcm o)) live
  in
  mark_space t.mature_pcm ~in_pcm:true;
  (match t.mature_dram with Some s -> mark_space s ~in_pcm:false | None -> ());
  (* KG-W movement between mature spaces (§4.2.3). Each pass plans its
     candidates (the movement predicate of an object depends only on
     its own liveness and write words, which no other candidate's move
     touches — moves rewrite the mover's addr/space/age and charge
     referrer traffic against stats/mem/rng only) and applies the moves
     in slice order. The PCM pass is planned only after the DRAM pass
     has applied: its moves append to the PCM population, and those
     appended objects — unwritten by construction, so never moved back
     — must still be part of the pass-2 partition, exactly as the
     sequential loop saw them. *)
  (match t.mature_dram with
  | Some mature_dram ->
    let to_pcm =
      plan_filter par (Immix_space.objects mature_dram) (fun o ->
          O.is_live w o t.now && not (O.written w o))
    in
    Array.iter
      (Vec.iter (fun o ->
           let old_addr = O.addr w o in
           alloc_into_immix t t.mature_pcm o;
           copy_traffic t ~old_addr o;
           st.Gc_stats.mature_moves_to_pcm <- st.Gc_stats.mature_moves_to_pcm + 1;
           st.Gc_stats.copied_bytes_major <- st.Gc_stats.copied_bytes_major + O.size w o;
           referrer_update_writes t o))
      to_pcm;
    let to_dram =
      plan_filter par (Immix_space.objects t.mature_pcm) (fun o ->
          O.is_live w o t.now && O.written w o && O.space w o = sp_mature_pcm)
    in
    Array.iter
      (Vec.iter (fun o ->
           let old_addr = O.addr w o in
           alloc_into_immix t mature_dram o;
           copy_traffic t ~old_addr o;
           st.Gc_stats.mature_moves_to_dram <- st.Gc_stats.mature_moves_to_dram + 1;
           st.Gc_stats.copied_bytes_major <- st.Gc_stats.copied_bytes_major + O.size w o;
           referrer_update_writes t o))
      to_dram;
    (* Start a fresh monitoring epoch for the next major cycle. *)
    let fresh o =
      O.set_written w o false;
      O.set_epoch_writes w o 0
    in
    parallel_each par (Immix_space.objects mature_dram) fresh;
    parallel_each par (Immix_space.objects t.mature_pcm) fresh
  | None -> ());
  (* Sweep phase. *)
  sweep_immix t t.mature_pcm t.mature_pcm_meta;
  (match t.mature_dram with Some s -> sweep_immix t s t.mature_dram_meta | None -> ());
  (* Large object spaces: written PCM objects move to the DRAM
     treadmill and never come back (§4.2.4). *)
  (match t.los_dram with
  | Some los_dram ->
    let evicted = collect_los t t.los_pcm ~keep:(fun o -> not (O.written w o)) in
    List.iter
      (fun o ->
        adopt_large t los_dram o;
        O.set_written w o false;
        O.set_epoch_writes w o 0;
        st.Gc_stats.los_moves_to_dram <- st.Gc_stats.los_moves_to_dram + 1)
      evicted;
    ignore (collect_los t los_dram ~keep:(fun _ -> true))
  | None -> ignore (collect_los t t.los_pcm ~keep:(fun _ -> true)));
  parallel_each par (Immix_space.objects t.mature_pcm) (fun o -> O.set_marked w o false);
  (match t.mature_dram with
  | Some s -> parallel_each par (Immix_space.objects s) (fun o -> O.set_marked w o false)
  | None -> ());
  (* Optional Immix defragmentation (§6.3): evacuate the sparsest
     blocks when fragmentation strands too much partial-block memory.
     The copies go through the normal traffic accounting, making the
     writes-vs-space tradeoff measurable. *)
  (match t.cfg.Gc_config.defrag_threshold with
  | Some threshold when Immix_space.fragmentation t.mature_pcm > threshold ->
    let victims =
      Immix_space.defrag_candidates t.mature_pcm ~max_bytes:(Layout.mature_region / 4)
    in
    (* Detach the victims from the space's population before
       re-allocating them, or they would be registered twice. *)
    List.iter (fun o -> O.set_space w o (-1)) victims;
    Immix_space.remove_foreign t.mature_pcm;
    List.iter
      (fun o ->
        if O.is_live w o t.now then begin
          let old_addr = O.addr w o in
          alloc_into_immix t t.mature_pcm o;
          copy_traffic t ~old_addr o;
          st.Gc_stats.copied_bytes_major <- st.Gc_stats.copied_bytes_major + O.size w o
        end)
      victims;
    ignore (Immix_space.sweep t.mature_pcm ~now:t.now ~par:(Gc_par.runner t.par) ())
  | _ -> ());
  log_pause t Phase.Major_gc work0;
  Mem_iface.flush t.mem;
  t.gc_hook Phase.Major_gc

(* Entry into any stop-the-world section. Every domain's buffered port
   records drain first (one merged, stamp-ordered delivery — flushing
   any group member flushes them all), then each domain publishes its
   pending remset entries in domain order. Only after the handshake may
   a collection consume remset entries; {!Verify} flags pending entries
   still unpublished when a collection phase ends. *)
let stw_prologue t =
  if t.domains > 1 then begin
    Mem_iface.flush t.mut_mems.(0);
    ignore (Remset.handshake t.gen_remset);
    Option.iter (fun rs -> ignore (Remset.handshake rs)) t.obs_remset
  end

let run_major t =
  if not t.in_major then begin
    t.in_major <- true;
    stw_prologue t;
    major_gc_inner t;
    Mem_iface.set_phase t.mem Phase.Application;
    t.in_major <- false;
    t.pcm_writes_at_last_major <- t.stats.Gc_stats.app_write_bytes_pcm
  end

(* Only externally forced majors are traced: heap- and write-triggered
   collections re-fire by themselves when a trace is replayed. *)
let major_gc t =
  t.event_hook Trace.Major_gc;
  run_major t

let maybe_major t =
  if heap_used t > t.cfg.Gc_config.heap_bytes then run_major t
  else
    (* Extension (§6.2.1 future work): writes accumulating on PCM
       objects can themselves justify a full collection, which rescues
       the written objects into DRAM well before the heap fills. *)
    match t.cfg.Gc_config.pcm_write_trigger_bytes with
    | Some limit when t.stats.Gc_stats.app_write_bytes_pcm - t.pcm_writes_at_last_major > limit ->
      run_major t
    | _ -> ()

(* A young collection outside a major: nursery only for the baselines;
   for KG-W, a plain nursery GC when the observer has room for the
   expected survivors, otherwise a full observer collection. *)
let young_gc t =
  stw_prologue t;
  (match t.observer with
  | Some obs ->
    let expected =
      int_of_float
        (t.recent_survival
        *. float_of_int
             (Array.fold_left (fun a n -> a + Bump_space.used_bytes n) 0 t.nurseries))
    in
    if Bump_space.free_bytes obs < expected * 3 / 2 then collect_observer t
    else begin
      let work0 = copied_scanned t.stats in
      Mem_iface.set_phase t.mem Phase.Nursery_gc;
      collect_nursery t;
      log_pause t Phase.Nursery_gc work0;
      Mem_iface.flush t.mem;
      t.gc_hook Phase.Nursery_gc
    end
  | None ->
    let work0 = copied_scanned t.stats in
    Mem_iface.set_phase t.mem Phase.Nursery_gc;
    collect_nursery t;
    log_pause t Phase.Nursery_gc work0;
    Mem_iface.flush t.mem;
    t.gc_hook Phase.Nursery_gc);
  Mem_iface.set_phase t.mem Phase.Application;
  maybe_major t

(* ------------------------------------------------------------------ *)
(* Mutator interface                                                   *)

let alloc_large t ~domain o =
  let w = t.words in
  let osize = O.size w o in
  let st = t.stats in
  st.Gc_stats.large_allocs <- st.Gc_stats.large_allocs + 1;
  t.large_alloc_since_gc <- t.large_alloc_since_gc + osize;
  let nursery = t.nurseries.(domain) in
  let in_nursery_ok =
    t.loo_enabled && osize < Bump_space.free_bytes nursery / 2
    && Bump_space.alloc nursery o
  in
  if in_nursery_ok then begin
    st.Gc_stats.large_allocs_in_nursery <- st.Gc_stats.large_allocs_in_nursery + 1;
    st.Gc_stats.nursery_alloc_bytes <- st.Gc_stats.nursery_alloc_bytes + osize
  end
  else if not (Los.alloc (los_for_large t) o) then
    failwith "Runtime: large object space exhausted"

let rec alloc_small t ~domain o =
  if not (Bump_space.alloc t.nurseries.(domain) o) then begin
    young_gc t;
    alloc_small t ~domain o
  end
  else begin
    let osize = O.size t.words o in
    t.stats.Gc_stats.nursery_alloc_bytes <- t.stats.Gc_stats.nursery_alloc_bytes + osize;
    t.nursery_alloc_since_gc <- t.nursery_alloc_since_gc + osize
  end

let alloc ?(domain = 0) t ~size ~heat ~death ~ref_fields =
  let size = Layout.align_object_size size in
  let o = O.make t.words ~size ~heat ~death ~ref_fields in
  if O.is_large t.words o then alloc_large t ~domain o else alloc_small t ~domain o;
  O.stream_init t.words (mut_mem t domain) o;
  t.now <- t.now +. float_of_int size;
  maybe_major t;
  t.event_hook (Trace.Alloc { id = O.id o; size; heat; death; ref_fields });
  o

let alloc_boot t ~size ~heat ~ref_fields =
  let size = Layout.align_object_size size in
  let o = O.make t.words ~size ~heat ~death:infinity ~ref_fields in
  if O.is_large t.words o then begin
    if not (Los.alloc t.los_pcm o) then failwith "Runtime: large object space exhausted"
  end
  else alloc_into_immix t t.mature_pcm o;
  O.set_age t.words o 1;
  O.stream_init t.words t.mem o;
  t.now <- t.now +. float_of_int size;
  t.event_hook (Trace.Alloc_boot { id = O.id o; size; heat; ref_fields });
  o

let classify_app_write t o slot_addr =
  let w = t.words in
  let st = t.stats in
  let sp = O.space w o in
  (* Per-object counts feed the Figure 2 concentration analysis, which
     considers only writes received outside the nursery. *)
  if sp <> sp_nursery then O.set_writes w o (min (O.writes w o + 1) O.max_writes);
  if sp = sp_nursery then
    st.Gc_stats.app_writes_nursery <- st.Gc_stats.app_writes_nursery + 1
  else if sp = sp_observer then
    st.Gc_stats.app_writes_observer <- st.Gc_stats.app_writes_observer + 1
  else st.Gc_stats.app_writes_mature <- st.Gc_stats.app_writes_mature + 1;
  match Kg_mem.Address_map.kind_of t.map slot_addr with
  | Kg_mem.Device.Dram ->
    st.Gc_stats.app_write_bytes_dram <- st.Gc_stats.app_write_bytes_dram + Layout.word
  | Kg_mem.Device.Pcm ->
    st.Gc_stats.app_write_bytes_pcm <- st.Gc_stats.app_write_bytes_pcm + Layout.word

(* The KG-W monitoring slow path (Figure 4, lines 13-17): every store
   to a non-nursery object also sets the write word in its header.
   [mem] is the issuing domain's port (the runtime's own port when the
   GC itself monitors). *)
let monitor_write ?mem t o =
  let w = t.words in
  let mem = Option.value mem ~default:t.mem in
  if O.space w o <> sp_nursery then begin
    (* The write word records a count; "written" for placement means
       reaching the configured threshold (1 reproduces the paper's
       single bit; higher values are the counting extension). *)
    let ew = min (O.epoch_writes w o + 1) O.max_epoch_writes in
    O.set_epoch_writes w o ew;
    if ew >= t.cfg.Gc_config.write_threshold then O.set_written w o true;
    Mem_iface.write mem ~addr:(O.addr w o + Layout.header_bytes) ~size:Layout.word;
    t.stats.Gc_stats.monitor_header_writes <- t.stats.Gc_stats.monitor_header_writes + 1
  end

(* Remset entry via the path matching the runtime's domain count: the
   sequential fast path publishes directly into the shared set; a
   multicore barrier records into the issuing domain's pending buffer,
   published at the next stop-the-world handshake. *)
let remset_note t rs ~domain ~slot_addr ~target =
  if t.domains = 1 then Remset.insert rs ~slot_addr ~target
  else Remset.record rs ~domain ~slot_addr ~target

(* The i-th field slot the barrier touches: uniform over [0, 64) like
   the record heap, wrapped into the object's payload. *)
let[@inline] pick_slot t o =
  Rng.int t.rng 64 mod O.field_slots t.words o

let write_ref ?(domain = 0) t ~src ~tgt =
  let w = t.words in
  t.event_hook (Trace.Write_ref { src = O.id src; tgt = O.id tgt });
  let st = t.stats in
  let mem = mut_mem t domain in
  st.Gc_stats.ref_writes <- st.Gc_stats.ref_writes + 1;
  let slot_addr = O.field_addr w src (pick_slot t src) in
  classify_app_write t src slot_addr;
  let slow = ref false in
  if O.space w src <> sp_nursery && O.space w tgt = sp_nursery then begin
    let maddr = remset_note t t.gen_remset ~domain ~slot_addr ~target:tgt in
    Mem_iface.write mem ~addr:maddr ~size:Layout.word;
    st.Gc_stats.gen_remset_inserts <- st.Gc_stats.gen_remset_inserts + 1;
    slow := true
  end;
  (match t.obs_remset with
  | Some rs when O.space w src > sp_observer && O.space w tgt <= sp_observer ->
    let maddr = remset_note t rs ~domain ~slot_addr ~target:tgt in
    Mem_iface.write mem ~addr:maddr ~size:Layout.word;
    st.Gc_stats.obs_remset_inserts <- st.Gc_stats.obs_remset_inserts + 1;
    slow := true
  | _ -> ());
  (match t.cfg.Gc_config.collector with
  | Gc_config.Kg_writers _ ->
    monitor_write ~mem t src;
    slow := true
  | _ -> ());
  if not !slow then st.Gc_stats.barrier_fast_paths <- st.Gc_stats.barrier_fast_paths + 1;
  Mem_iface.write mem ~addr:slot_addr ~size:Layout.word

let write_prim ?(domain = 0) t o =
  let w = t.words in
  t.event_hook (Trace.Write_prim { obj = O.id o });
  let st = t.stats in
  let mem = mut_mem t domain in
  st.Gc_stats.prim_writes <- st.Gc_stats.prim_writes + 1;
  let slot_addr = O.field_addr w o (pick_slot t o) in
  classify_app_write t o slot_addr;
  (match t.cfg.Gc_config.collector with
  | Gc_config.Kg_writers { pm = true; _ } -> monitor_write ~mem t o
  | _ -> st.Gc_stats.barrier_fast_paths <- st.Gc_stats.barrier_fast_paths + 1);
  Mem_iface.write mem ~addr:slot_addr ~size:Layout.word

let read_obj ?(domain = 0) t o =
  t.event_hook (Trace.Read { obj = O.id o });
  t.stats.Gc_stats.reads <- t.stats.Gc_stats.reads + 1;
  Mem_iface.read (mut_mem t domain)
    ~addr:(O.field_addr t.words o (pick_slot t o))
    ~size:Layout.word

let read_burst ?(domain = 0) t o n =
  let w = t.words in
  t.event_hook (Trace.Read_burst { obj = O.id o; words = n });
  t.stats.Gc_stats.reads <- t.stats.Gc_stats.reads + n;
  let addr = O.field_addr w o (pick_slot t o) in
  let size = min (n * Layout.word) (O.size w o - (addr - O.addr w o)) in
  Mem_iface.read (mut_mem t domain) ~addr ~size:(max Layout.word size)

let flush_retirement_stats t =
  let w = t.words in
  let st = t.stats in
  let each o = if O.is_live w o t.now then Gc_stats.retire st w o in
  Vec.iter each (Immix_space.objects t.mature_pcm);
  (match t.mature_dram with Some s -> Vec.iter each (Immix_space.objects s) | None -> ());
  (match t.observer with Some obs -> Vec.iter each (Bump_space.objects obs) | None -> ());
  Los.iter t.los_pcm each;
  match t.los_dram with Some l -> Los.iter l each | None -> ()

let nursery_free ?(domain = 0) t = Bump_space.free_bytes t.nurseries.(domain)

let check_invariants t =
  let w = t.words in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_population name expected_id objs =
    Vec.fold
      (fun acc o ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if O.space w o <> expected_id then
            fail "%s holds object at %#x with space id %d (expected %d)" name
              (O.addr w o) (O.space w o) expected_id
          else if O.addr w o < 0 then fail "%s holds an unallocated object" name
          else Ok ())
      (Ok ()) objs
  in
  let no_overlap name objs =
    let live =
      Vec.fold (fun acc o -> if O.is_live w o t.now then o :: acc else acc) [] objs
    in
    let sorted = List.sort (fun a b -> compare (O.addr w a) (O.addr w b)) live in
    let rec go = function
      | a :: b :: rest ->
        if O.end_addr w a > O.addr w b then
          fail "%s: live objects overlap at %#x and %#x" name (O.addr w a) (O.addr w b)
        else go (b :: rest)
      | _ -> Ok ()
    in
    go sorted
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let each_nursery f =
    Array.to_list t.nurseries
    |> List.fold_left
         (fun acc n -> match acc with Error _ -> acc | Ok () -> f n)
         (Ok ())
  in
  each_nursery (fun n ->
      check_population (Bump_space.name n) sp_nursery (Bump_space.objects n))
  >>= fun () ->
  (match t.observer with
  | Some obs -> check_population "observer" sp_observer (Bump_space.objects obs)
  | None -> Ok ())
  >>= fun () ->
  check_population "mature-pcm" sp_mature_pcm (Immix_space.objects t.mature_pcm) >>= fun () ->
  (match t.mature_dram with
  | Some s -> check_population "mature-dram" sp_mature_dram (Immix_space.objects s)
  | None -> Ok ())
  >>= fun () ->
  each_nursery (fun n -> no_overlap (Bump_space.name n) (Bump_space.objects n))
  >>= fun () ->
  no_overlap "mature-pcm" (Immix_space.objects t.mature_pcm) >>= fun () ->
  (match t.mature_dram with
  | Some s -> no_overlap "mature-dram" (Immix_space.objects s)
  | None -> Ok ())
  >>= fun () ->
  let u = usage t in
  if
    heap_used t
    <> u.nursery_used + u.observer_used + u.mature_dram_used + u.mature_pcm_used
       + u.los_dram_used + u.los_pcm_used
  then fail "usage components disagree with heap_used"
  else if dram_used t + pcm_used t <> heap_used t + u.meta_used then
    fail "device attribution disagrees with totals"
  else Ok ()
