module Port = Kg_mem.Port

type t = Port.t

type counters = Port.counters = {
  mutable dram_read_bytes : int;
  mutable dram_write_bytes : int;
  mutable pcm_read_bytes : int;
  mutable pcm_write_bytes : int;
  pcm_write_bytes_by_phase : int array;
}

type stats = Port.stats = {
  s_dram_read_bytes : int;
  s_dram_write_bytes : int;
  s_pcm_read_bytes : int;
  s_pcm_write_bytes : int;
  s_pcm_write_bytes_by_phase : int array;
}

(* Eta-expanded (not value aliases) so call sites compile to direct
   known-arity calls that inline the port append, instead of a
   dynamic [caml_apply] through a closure value. *)
let[@inline] read t ~addr ~size = Port.read t ~addr ~size
let[@inline] write t ~addr ~size = Port.write t ~addr ~size
let flush t = Port.flush t
let set_phase t p = Port.set_phase_tag t (Phase.to_tag p)
let phase t = Phase.of_tag (Port.phase_tag t)
let stats t = Port.stats ~phases:Phase.count t

(* Controller line counts, folded into the port's byte-denominated
   stats record: one line written = line_size bytes. *)
let stats_of_controller ctrl =
  let open Kg_cache in
  let ls = Controller.line_size ctrl in
  let by_tag = Controller.writes_by_tag ctrl Kg_mem.Device.Pcm in
  {
    s_dram_read_bytes = Controller.bytes_read ctrl Kg_mem.Device.Dram;
    s_dram_write_bytes = Controller.bytes_written ctrl Kg_mem.Device.Dram;
    s_pcm_read_bytes = Controller.bytes_read ctrl Kg_mem.Device.Pcm;
    s_pcm_write_bytes = Controller.bytes_written ctrl Kg_mem.Device.Pcm;
    s_pcm_write_bytes_by_phase =
      Array.map (fun w -> w * ls) (Array.sub by_tag 0 Phase.count);
  }

let hierarchy_driver h =
  {
    Port.run = (fun b -> Kg_cache.Hierarchy.access_run h b);
    drv_stats = (fun () -> stats_of_controller (Kg_cache.Hierarchy.controller h));
  }

let of_hierarchy ?capacity h =
  Port.create ?capacity ~sink:(Port.Cache_sim (hierarchy_driver h)) ()

let counting ~map =
  let c = Port.fresh_counters ~phases:Phase.count in
  (Port.create ~sink:(Port.Counting (map, c)) (), c)

let null ?capacity () = Port.create ?capacity ~sink:Port.Null ()

(* Per-domain mutator ports in front of [base]'s sink. The group
   shares base's sink and an issue counter, so merged deliveries land
   on the same devices as runtime-side traffic through [base] while
   preserving one global issue order across domains. *)
let domain_group base n =
  Port.sequenced_group ~capacity:(Port.capacity base) ~sink:(Port.sink base) n
