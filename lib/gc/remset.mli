(** Sequential-store-buffer remembered set.

    The write barrier (Figure 4) inserts the address of any slot outside
    the nursery (resp. outside nursery+observer) that is written with a
    pointer into it. Insertion writes an entry word into a metadata
    buffer — traffic the caller accounts — and collections consume the
    entries as roots, updating each recorded slot when its target moves
    (the source of GC-time PCM writes in §6.1.6).

    With [domains > 1] the set grows a multicore front end modelled on
    OCaml 5's minor-heap handshake: each mutator domain {!record}s
    barrier hits into a private pending buffer (its slice of the
    metadata store), and a {!handshake} at the start of every
    stop-the-world section publishes all pending buffers into the
    shared set in domain order. Collections must only consume entries
    after a handshake; {!Verify} treats unpublished pending entries at
    a collection phase as a protocol violation. *)

type entry = { slot_addr : int; target : Kg_heap.Object_model.t }

type t

val create :
  ?domains:int -> name:string -> buffer_base:int -> buffer_bytes:int -> unit -> t
(** [buffer_base]/[buffer_bytes] locate the backing store in the
    metadata space; entry writes cycle through it. [domains] (default
    1) sizes the per-domain pending buffers; each domain cycles
    through its own 1/[domains] slice of the store. *)

val name : t -> string

val insert : t -> slot_addr:int -> target:Kg_heap.Object_model.t -> int
(** Record an entry directly into the shared set (the sequential
    single-domain fast path); returns the metadata address written so
    the caller can issue the store. *)

val record : t -> domain:int -> slot_addr:int -> target:Kg_heap.Object_model.t -> int
(** Record an entry into [domain]'s pending buffer; it becomes visible
    to {!iter} only after the next {!handshake}. Returns the metadata
    address written (inside [domain]'s slice of the store). *)

val handshake : t -> int
(** Publish every domain's pending entries into the shared set, in
    domain order, and clear the pending buffers. Returns the number of
    entries published. Called at entry to each stop-the-world
    section. *)

val pending_total : t -> int
(** Entries recorded but not yet published by a handshake. *)

val pending_length : t -> domain:int -> int

val handshakes : t -> int
(** Lifetime handshake count. *)

val domains : t -> int

val length : t -> int

val iter : t -> (entry -> unit) -> unit

val clear : t -> unit

val total_inserts : t -> int
(** Lifetime insert count (for the Remsets overhead of Figure 9). *)
