(** Deterministic execution traces.

    A trace records every runtime-API interaction of a run — allocation
    (with the object id the runtime assigned, its size, heat class,
    oracle death stamp and reference-field count), reference and
    primitive stores, reads, and externally forced major collections —
    plus the two orchestration markers the experiment driver emits
    (statistics reset after boot-image construction, end-of-run
    retirement flush).

    Because the runtime consumes its PRNG only in response to these
    calls, replaying a trace through a fresh runtime built with the same
    configuration, address map and seed reproduces the original run
    bit-identically (see {!Replay}); any auditor violation therefore
    comes with a minimized, re-runnable reproduction.

    The on-disk format is one JSON object per line, e.g.
    [{"ev":"alloc","id":3,"size":64,"heat":0,"death":"0x1.5p+20","rf":2}].
    Death stamps are quoted hexadecimal float literals so they round
    trip bit-exactly (including ["inf"] for immortal objects). *)

type event =
  | Alloc of {
      id : int;  (** object id the runtime assigned (verified on replay) *)
      size : int;
      heat : Kg_heap.Object_model.heat;
      death : float;
      ref_fields : int;
    }
  | Alloc_boot of { id : int; size : int; heat : Kg_heap.Object_model.heat; ref_fields : int }
  | Write_ref of { src : int; tgt : int }
  | Write_prim of { obj : int }
  | Read of { obj : int }
  | Read_burst of { obj : int; words : int }
  | Major_gc  (** an externally forced full collection (heap- or
                  write-triggered collections replay implicitly) *)
  | Reset_stats  (** driver marker: {!Gc_stats.reset} after boot *)
  | Flush_retirement  (** driver marker: end-of-run retirement flush *)

type recorder

val recorder : unit -> recorder

val record : recorder -> event -> unit
(** Append one event; pass [record r] to {!Runtime.set_event_hook}. *)

val length : recorder -> int
val events : recorder -> event array

val to_json : event -> string
val of_json : string -> event
(** Raises [Failure] on a malformed line. *)

val save : string -> event array -> unit
(** Write a JSONL trace file, one event per line. *)

val load : string -> event array
(** Read a JSONL trace file (blank lines ignored). Raises [Failure] on
    malformed input and [Sys_error] on I/O errors. *)
