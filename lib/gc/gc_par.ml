open Kg_util

(* The parallel-collector worker team.

   Mirrors [Mutator]'s epoch team: [width - 1] real domains parked on a
   condition variable between phase steps, with the coordinator (the
   domain that triggered the collection) executing slice 0 itself while
   it waits. Workers are spawned lazily on the first parallel [run] —
   a runtime created with [parallel:false] (the oracle protocol) never
   spawns a domain — and joined by [shutdown].

   Determinism does not depend on this module: the phase protocol only
   ever writes slice-private buffers during a [run] and merges them in
   slice order afterwards, so executing the slices here or via
   [Parfor.inline_] is observationally identical. *)

type t = {
  width : int;
  parallel : bool;
  tm : Mutex.t;
  tcv : Condition.t;
  mutable t_epoch : int;
  mutable t_done : int;
  mutable t_stop : bool;
  mutable t_job : (int -> unit) option;
  mutable t_exn : (exn * Printexc.raw_backtrace) option;
  mutable workers : unit Domain.t array;
  (* spawned lazily *)
  mutable spawned : bool;
}

let create ~domains ~parallel =
  if domains <= 0 then invalid_arg "Gc_par.create: domains must be positive";
  {
    width = domains;
    parallel = parallel && domains > 1;
    tm = Mutex.create ();
    tcv = Condition.create ();
    t_epoch = 0;
    t_done = 0;
    t_stop = false;
    t_job = None;
    t_exn = None;
    workers = [||];
    spawned = false;
  }

let width t = t.width
let parallel t = t.parallel

let worker t i () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.tm;
    while t.t_epoch = !seen && not t.t_stop do
      Condition.wait t.tcv t.tm
    done;
    if t.t_stop then begin
      running := false;
      Mutex.unlock t.tm
    end
    else begin
      seen := t.t_epoch;
      let job = Option.get t.t_job in
      Mutex.unlock t.tm;
      (try job i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.tm;
         if t.t_exn = None then t.t_exn <- Some (e, bt);
         Mutex.unlock t.tm);
      Mutex.lock t.tm;
      t.t_done <- t.t_done + 1;
      Condition.broadcast t.tcv;
      Mutex.unlock t.tm
    end
  done

let ensure_spawned t =
  if not t.spawned then begin
    t.spawned <- true;
    t.workers <- Array.init (t.width - 1) (fun i -> Domain.spawn (worker t (i + 1)))
  end

(* Run [f 0 .. f (width-1)], slices 1.. on the worker domains and slice
   0 on the calling domain; rethrows the first slice exception on the
   caller once every slice has finished. *)
let run_team t f =
  ensure_spawned t;
  Mutex.lock t.tm;
  t.t_done <- 0;
  t.t_job <- Some f;
  t.t_exn <- None;
  t.t_epoch <- t.t_epoch + 1;
  Condition.broadcast t.tcv;
  Mutex.unlock t.tm;
  let local_exn =
    try
      f 0;
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.tm;
  while t.t_done < t.width - 1 do
    Condition.wait t.tcv t.tm
  done;
  t.t_job <- None;
  let worker_exn = t.t_exn in
  Mutex.unlock t.tm;
  match (local_exn, worker_exn) with
  | Some (e, bt), _ | None, Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None, None -> ()

let runner t : Parfor.t =
  if t.parallel then { Parfor.width = t.width; run = run_team t }
  else Parfor.inline_ t.width

let shutdown t =
  if t.spawned then begin
    Mutex.lock t.tm;
    t.t_stop <- true;
    Condition.broadcast t.tcv;
    Mutex.unlock t.tm;
    Array.iter Domain.join t.workers;
    t.workers <- [||];
    t.spawned <- false
  end
