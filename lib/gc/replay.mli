(** Deterministic trace replay.

    Feeds a recorded {!Trace} back into a fresh runtime. Because the
    runtime consumes randomness and triggers collections only in
    response to these calls, a replay against a runtime built with the
    same configuration, address map, memory interface and seed
    reproduces the original run bit-identically — same statistics, same
    device write counters ({!Kg_sim.Run.replay} wires this up and the
    replay-determinism tests assert it). *)

exception Divergence of string

val step : Runtime.t -> (int, Kg_heap.Object_model.t) Hashtbl.t -> Trace.event -> unit
(** Apply one event, resolving object ids through (and recording new
    allocations into) the table. Raises {!Divergence} when an event
    refers to an id never allocated, or when the runtime assigns an
    allocation a different id than the trace recorded (a replay under a
    mismatched configuration). *)

val run : Runtime.t -> Trace.event array -> (unit, string) result
(** Replay a whole trace; [Error] describes the first divergence with
    its event index. *)
