(** The request/response mutator: server-scale workloads on the same
    generate-then-merge epoch protocol as {!Kg_workload.Mutator}.

    Each mutator domain is one worker serving a deterministic seeded
    open-loop request stream: Poisson arrivals at the configured
    aggregate rate, a session table with TTL churn, a tiered
    in-memory cache (Zipf keys, TTL eviction realised as object death
    stamps, so eviction is mature-space churn), and per-request
    allocation bursts drawn from the {!Kg_workload.Lifetime}
    demographics with descriptor-paced write/read debts.

    Determinism is inherited from the epoch protocol: generation is a
    pure function of per-domain private state plus an epoch-start
    snapshot, streams merge under the schedule PRNG
    ({!Kg_workload.Epoch.merge_schedule}), and the coordinator applies
    ops sequentially — so a run is a pure function of
    [(seed, schedule_seed, domains, config)], with [~oracle] running
    the identical protocol inline for the differential harness.

    Latency model: the domain byte clock doubles as a single-server
    queue — a request's service demand is its allocated bytes, so
    queueing delay emerges as the arrival rate approaches the
    per-domain allocation speed. On top, the coordinator attributes
    modeled STW pauses (supplied by the driver via
    {!attach_pause_recorder}) to the requests in flight while they
    fired. *)

type config = {
  rate : float;  (** open-loop arrival rate, requests/sec across all domains *)
  service_mib_s : float;  (** per-domain allocation-clock speed, MiB/s *)
  req_alloc_mean : int;  (** mean request allocation burst, bytes *)
  sessions : int;  (** session-table slots per domain *)
  session_ttl_ms : float;
  session_churn : float;  (** P(request retires its session early) *)
  tier1_entries : int;  (** per-domain cache shard sizes *)
  tier1_ttl_ms : float;
  tier2_entries : int;
  tier2_ttl_ms : float;
  tier2_insert_p : float;  (** P(backend fill also lands in tier 2) *)
}

val default_config : config
(** 256 req/s, 64 MiB/s per-domain clock, 32 KiB mean bursts, 256
    sessions (2 s TTL), 512-entry tier 1 (250 ms) over 2048-entry
    tier 2 (2 s). *)

type t

val create :
  ?live_mb:int ->
  ?threads:int ->
  ?schedule_seed:int ->
  ?oracle:bool ->
  ?config:config ->
  Kg_workload.Descriptor.t ->
  rt:Kg_gc.Runtime.t ->
  seed:int ->
  t
(** Same contract as [Mutator.create]: [threads > 1] requires [rt]
    built with [~domains:threads]; [oracle] generates every stream
    inline with no [Domain.spawn]. The descriptor supplies the
    lifetime demographics and mutation pacing. *)

val config : t -> config
val descriptor : t -> Kg_workload.Descriptor.t
val runtime : t -> Kg_gc.Runtime.t
val thread_count : t -> int

val attach_pause_recorder :
  t -> pause_ms:(Kg_gc.Phase.t -> copied:int -> scanned:int -> float) -> unit
(** Chain a GC hook that feeds every collection's modeled pause into
    {!pauses} and the latency attribution. Call once, after the boot
    image and stats reset so startup collections are excluded; the
    driver passes [Time_model.pause_ms] with the run's domain count
    applied. Raises [Invalid_argument] on a second attach. *)

val allocate_startup : t -> unit
(** Allocate the immortal base (40 % of the live target), round-robin
    across domains. Run once before {!run}. *)

val run : t -> alloc_bytes:int -> unit
(** Serve requests until [alloc_bytes] more bytes have been
    allocated, through the epoch protocol at any domain count. *)

(** {2 Instrumentation} *)

val latencies : t -> Kg_util.Hdr_histogram.t
(** Per-request end-to-end modeled latency, ms: queueing + service
    + attributed GC pauses. *)

val pauses : t -> Kg_util.Hdr_histogram.t
(** Per-collection modeled STW pauses, ms (empty until
    {!attach_pause_recorder}). *)

val request_count : t -> int
val tier1_hits : t -> int
val tier2_hits : t -> int
val backend_fills : t -> int
val sessions_churned : t -> int
