(* The request/response mutator: a server-shaped workload on top of
   the same generate-then-merge epoch protocol as Kg_workload.Mutator.

   Each mutator domain is one worker serving an open-loop stream of
   requests. Per domain and per epoch, generation is a pure function
   of the domain's private state (PRNG, arrival clock, session table,
   cache shard, recent ring, debts) plus the epoch-start snapshot;
   the op streams are interleaved by the schedule PRNG
   (Epoch.merge_schedule) and applied sequentially on the coordinator
   through the domain-tagged runtime calls. The whole run is therefore
   a pure function of (seed, schedule_seed, domains, config) exactly
   like the batch mutator, and the ~oracle mode runs the identical
   protocol inline for the differential harness.

   Workload shape, per request:
   - an arrival drawn from a per-domain Poisson process (the n domain
     processes superpose to the configured requests/sec), stamped on
     the domain's byte clock;
   - a session-table touch with churn: expired or churned slots are
     refilled with a fresh session root whose death stamp is the
     session TTL (mature-space churn with object turnover);
   - a tiered cache probe (Zipf keys): tier-1 hit reads; tier-1 miss
     falls to tier-2 (hit promotes a copy into tier-1); a full miss
     simulates a backend fill, inserting into tier-1 and sometimes
     tier-2. Every insert allocates with death = TTL, so TTL eviction
     is real heap churn, not bookkeeping;
   - an allocation burst of response scratch drawn from the Lifetime
     demographics, with write/read debts paced by the descriptor as in
     the batch mutator.

   Latency model: the domain byte clock doubles as a single-server
   queue simulation — service demand is the request's allocated
   bytes, so queueing delay = busy_until - arrival (converted to ms
   at the configured per-domain allocation speed). On top of that the
   coordinator attributes STW pauses: every collection's modeled
   pause (Time_model, supplied by the driver) accumulates into a
   running total, and a request's end-to-end latency adds the pause
   time accumulated while its ops were being applied. *)

open Kg_util
open Kg_workload
module O = Kg_heap.Object_model
module Rt = Kg_gc.Runtime

type config = {
  rate : float;  (* open-loop arrival rate, requests/sec, all domains *)
  service_mib_s : float;  (* per-domain allocation speed, MiB of clock per second *)
  req_alloc_mean : int;  (* mean request allocation burst, bytes *)
  sessions : int;  (* session-table slots per domain *)
  session_ttl_ms : float;
  session_churn : float;  (* P(request retires its session early) *)
  tier1_entries : int;  (* per-domain cache shard sizes *)
  tier1_ttl_ms : float;
  tier2_entries : int;
  tier2_ttl_ms : float;
  tier2_insert_p : float;  (* P(backend fill also lands in tier 2) *)
}

let default_config =
  {
    rate = 256.0;
    service_mib_s = 64.0;
    req_alloc_mean = 32 * 1024;
    sessions = 256;
    session_ttl_ms = 2000.0;
    session_churn = 0.05;
    tier1_entries = 512;
    tier1_ttl_ms = 250.0;
    tier2_entries = 2048;
    tier2_ttl_ms = 2000.0;
    tier2_insert_p = 0.25;
  }

let recent_size = 256
let epoch_quantum = 16 * 1024

type target = T_obj of O.t | T_pending of int

type op =
  | Op_alloc of { size : int; heat : O.heat; life : float; ref_fields : int }
  | Op_write_ref of { src : target; tgt : target }
  | Op_write_prim of target
  | Op_read_burst of { tgt : target; words : int }
  | Op_req_begin
  | Op_req_end of { queue_ms : float }

(* A cache entry: the cached object (possibly pending this epoch) and
   its expiry on the owning domain's byte clock. The object's death
   stamp enforces the same TTL on the global allocation clock, so the
   entry bookkeeping and the heap agree about eviction. *)
type entry = { mutable c_tgt : target option; mutable c_expiry : float }

type dstate = {
  d_rng : Rng.t;
  d_recent : target option array;
  mutable d_recent_cursor : int;
  mutable d_write_debt : float;
  mutable d_read_debt : float;
  (* open-loop queue simulation, all on the domain byte clock *)
  mutable d_bytes : float;  (* cumulative bytes this domain generated *)
  mutable d_next_arrival : float;
  mutable d_busy_until : float;
  d_sessions : target option array;
  d_tier1 : entry array;
  d_tier2 : entry array;
  (* per-domain counters, summed deterministically at readout *)
  mutable d_t1_hits : int;
  mutable d_t2_hits : int;
  mutable d_backend_fills : int;
  mutable d_sessions_churned : int;
}

type t = {
  cfg : config;
  desc : Descriptor.t;
  rt : Rt.t;
  words : O.store;
  life : Lifetime.t;
  live_mb : int;
  nthreads : int;
  oracle : bool;
  sched_rng : Rng.t;
  dstates : dstate array;
  (* derived clock constants *)
  bytes_per_ms : float;  (* per-domain byte clock speed *)
  interarrival : float;  (* mean, per-domain, in domain bytes *)
  session_life : float;  (* global allocation-clock bytes *)
  tier1_life : float;
  tier2_life : float;
  (* coordinator-side instrumentation *)
  latencies : Hdr_histogram.t;
  pauses : Hdr_histogram.t;
  mutable pause_acc : float;  (* total pause ms so far *)
  d_pause_mark : float array;  (* pause_acc when each domain's open request began *)
  mutable requests : int;
  mutable pause_model_attached : bool;
}

let config t = t.cfg
let descriptor t = t.desc
let runtime t = t.rt
let thread_count t = t.nthreads
let latencies t = t.latencies
let pauses t = t.pauses
let request_count t = t.requests

let sum_by f t = Array.fold_left (fun acc ds -> acc + f ds) 0 t.dstates
let tier1_hits t = sum_by (fun ds -> ds.d_t1_hits) t
let tier2_hits t = sum_by (fun ds -> ds.d_t2_hits) t
let backend_fills t = sum_by (fun ds -> ds.d_backend_fills) t
let sessions_churned t = sum_by (fun ds -> ds.d_sessions_churned) t

let create ?live_mb ?(threads = 1) ?(schedule_seed = 0) ?(oracle = false) ?(config = default_config)
    desc ~rt ~seed =
  let threads = max 1 threads in
  if threads > 1 && Rt.domains rt <> threads then
    invalid_arg
      (Printf.sprintf "Server.create: %d threads need a runtime with %d domains (has %d)"
         threads threads (Rt.domains rt));
  if config.rate <= 0.0 then invalid_arg "Server.create: rate must be positive";
  let live_mb = Option.value live_mb ~default:(Descriptor.live_mb desc) in
  let life =
    Lifetime.make ~live_mb desc ~nursery_bytes:(4 * Units.mib) ~observer_bytes:(8 * Units.mib)
  in
  let root = Rng.of_seed seed in
  let mk_entry () = { c_tgt = None; c_expiry = 0.0 } in
  let mk_dstate _ =
    {
      d_rng = Rng.split root;
      d_recent = Array.make recent_size None;
      d_recent_cursor = 0;
      d_write_debt = 0.0;
      d_read_debt = 0.0;
      d_bytes = 0.0;
      d_next_arrival = 0.0;
      d_busy_until = 0.0;
      d_sessions = Array.make (max 1 config.sessions) None;
      d_tier1 = Array.init (max 1 config.tier1_entries) (fun _ -> mk_entry ());
      d_tier2 = Array.init (max 1 config.tier2_entries) (fun _ -> mk_entry ());
      d_t1_hits = 0;
      d_t2_hits = 0;
      d_backend_fills = 0;
      d_sessions_churned = 0;
    }
  in
  let bytes_per_ms = config.service_mib_s *. float_of_int Units.mib /. 1000.0 in
  let n = float_of_int threads in
  {
    cfg = config;
    desc;
    rt;
    words = Rt.words rt;
    life;
    live_mb;
    nthreads = threads;
    oracle;
    sched_rng = Rng.of_seed schedule_seed;
    dstates = Array.init threads mk_dstate;
    bytes_per_ms;
    (* per-domain arrival rate is rate/n, so the n Poisson processes
       superpose to the configured total *)
    interarrival = bytes_per_ms *. 1000.0 *. n /. config.rate;
    session_life = config.session_ttl_ms *. bytes_per_ms *. n;
    tier1_life = config.tier1_ttl_ms *. bytes_per_ms *. n;
    tier2_life = config.tier2_ttl_ms *. bytes_per_ms *. n;
    latencies = Hdr_histogram.create ();
    pauses = Hdr_histogram.create ();
    pause_acc = 0.0;
    d_pause_mark = Array.make threads 0.0;
    requests = 0;
    pause_model_attached = false;
  }

(* Feed every collection's modeled STW pause into the histogram and
   the running total the latency attribution reads. The driver calls
   this after Gc_stats.reset (so boot collections are excluded) with
   Time_model.pause_ms partially applied to the run's domain count. *)
let attach_pause_recorder t ~pause_ms =
  if t.pause_model_attached then invalid_arg "Server.attach_pause_recorder: already attached";
  t.pause_model_attached <- true;
  let stats = Rt.stats t.rt in
  Rt.add_gc_hook t.rt (fun phase ->
      let log = stats.Kg_gc.Gc_stats.collection_log in
      if Vec.length log > 0 then begin
        let p, copied, scanned = Vec.get log (Vec.length log - 1) in
        ignore phase;
        let ms = pause_ms p ~copied ~scanned in
        Hdr_histogram.add t.pauses ms;
        t.pause_acc <- t.pause_acc +. ms
      end)

(* ------------------------------------------------------------------ *)
(* Generation (pure per-domain)                                        *)

let draw_scratch_size t rng =
  let mean_words = float_of_int t.desc.Descriptor.mean_small /. 8.0 in
  let p = 1.0 /. Float.max 2.0 mean_words in
  let words = 2 + Rng.geometric rng p in
  min Kg_heap.Layout.max_small_object (max 16 (words * 8))

let session_size t = max 256 (t.desc.Descriptor.mean_small * 4)
let cache_obj_size t = max 128 (t.desc.Descriptor.mean_small * 2)

let push_recent ds tgt =
  ds.d_recent.(ds.d_recent_cursor) <- Some tgt;
  ds.d_recent_cursor <- (ds.d_recent_cursor + 1) mod recent_size

let g_alloc ops ~pending ~size ~heat ~life ~ref_fields =
  Vec.push ops (Op_alloc { size; heat; life; ref_fields });
  let tgt = T_pending !pending in
  incr pending;
  tgt

let g_pick_recent t ds now =
  let rec go a =
    if a = 0 then None
    else
      match ds.d_recent.(Rng.int ds.d_rng recent_size) with
      | Some (T_obj o) when O.is_live t.words o now -> Some (T_obj o)
      | Some (T_pending i) -> Some (T_pending i)
      | _ -> go (a - 1)
  in
  go 4

(* Mature write targets are the server's long-lived churn: session
   roots (Zipf — a few busy sessions dominate) and cache entries. *)
let g_pick_mature t ds now =
  let live = function
    | Some (T_obj o) when not (O.is_live t.words o now) -> None
    | tgt -> tgt
  in
  let pick_session () =
    live ds.d_sessions.(Rng.zipf ds.d_rng ~n:(Array.length ds.d_sessions) ~s:1.2)
  in
  let pick_cache () =
    let tier = if Rng.bernoulli ds.d_rng 0.7 then ds.d_tier1 else ds.d_tier2 in
    let e = tier.(Rng.int ds.d_rng (Array.length tier)) in
    if e.c_expiry > ds.d_bytes then live e.c_tgt else None
  in
  match (if Rng.bernoulli ds.d_rng 0.5 then pick_session () else pick_cache ()) with
  | Some _ as r -> r
  | None -> (
    match pick_session () with Some _ as r -> r | None -> g_pick_recent t ds now)

let g_do_write t ds now ops =
  let src =
    if Rng.bernoulli ds.d_rng t.desc.Descriptor.nursery_write_frac then
      match g_pick_recent t ds now with Some o -> Some o | None -> g_pick_mature t ds now
    else
      match g_pick_mature t ds now with Some o -> Some o | None -> g_pick_recent t ds now
  in
  match src with
  | None -> ()
  | Some src ->
    if Rng.bernoulli ds.d_rng t.desc.Descriptor.ref_write_frac then begin
      let tgt =
        if Rng.bernoulli ds.d_rng 0.5 then
          match g_pick_recent t ds now with Some o -> Some o | None -> g_pick_mature t ds now
        else g_pick_mature t ds now
      in
      match tgt with
      | Some tgt -> Vec.push ops (Op_write_ref { src; tgt })
      | None -> Vec.push ops (Op_write_prim src)
    end
    else Vec.push ops (Op_write_prim src)

let g_do_reads t ds now ops n =
  let target =
    if Rng.bernoulli ds.d_rng 0.6 then g_pick_recent t ds now else g_pick_mature t ds now
  in
  match target with
  | Some tgt -> Vec.push ops (Op_read_burst { tgt; words = n })
  | None -> ()

(* Descriptor-paced mutation debt, charged per allocated object like
   the batch mutator's mutate_for. *)
let g_mutate_debt t ds now ops size =
  ds.d_write_debt <-
    ds.d_write_debt +. (float_of_int size *. t.desc.Descriptor.write_alloc_ratio /. 8.0);
  while ds.d_write_debt >= 1.0 do
    g_do_write t ds now ops;
    ds.d_write_debt <- ds.d_write_debt -. 1.0;
    ds.d_read_debt <- ds.d_read_debt +. t.desc.Descriptor.read_write_ratio;
    if ds.d_read_debt >= 1.0 then begin
      let burst = min 8 (int_of_float ds.d_read_debt) in
      g_do_reads t ds now ops burst;
      ds.d_read_debt <- ds.d_read_debt -. float_of_int burst
    end
  done

let scratch_heat ds = function
  | Lifetime.Short -> O.Cold
  | Lifetime.Medium -> if Rng.bernoulli ds.d_rng 0.02 then O.Warm else O.Cold
  | Lifetime.Long | Lifetime.Immortal -> if Rng.bernoulli ds.d_rng 0.2 then O.Warm else O.Cold

(* One request: session touch + churn, tiered cache probe, response
   scratch burst. Returns the bytes it allocated. *)
let g_request t ds snap ops pending =
  let now, nursery_free = snap in
  let cfg = t.cfg in
  let bytes = ref 0 in
  let alloc ~size ~heat ~life ~ref_fields =
    bytes := !bytes + size;
    g_alloc ops ~pending ~size ~heat ~life ~ref_fields
  in
  let arrival = ds.d_next_arrival in
  ds.d_next_arrival <- arrival +. Rng.exponential ds.d_rng t.interarrival;
  Vec.push ops Op_req_begin;
  (* session touch: refill dead/expired slots, churn live ones *)
  let si = Rng.zipf ds.d_rng ~n:(Array.length ds.d_sessions) ~s:1.2 in
  let slot_live =
    match ds.d_sessions.(si) with
    | Some (T_obj o) -> O.is_live t.words o now
    | Some (T_pending _) -> true
    | None -> false
  in
  let session =
    if (not slot_live) || Rng.bernoulli ds.d_rng cfg.session_churn then begin
      if slot_live then ds.d_sessions_churned <- ds.d_sessions_churned + 1;
      let heat = if Rng.bernoulli ds.d_rng 0.3 then O.Hot else O.Warm in
      let s =
        alloc ~size:(session_size t) ~heat ~life:t.session_life
          ~ref_fields:(max 1 (session_size t / 32))
      in
      ds.d_sessions.(si) <- Some s;
      s
    end
    else Option.get ds.d_sessions.(si)
  in
  Vec.push ops (Op_write_prim session);
  (* tiered cache probe *)
  let probe tier key =
    let e = tier.(key) in
    match e.c_tgt with
    | Some tgt when e.c_expiry > ds.d_bytes -> Some tgt
    | _ -> None
  in
  let insert tier key ~life ~expiry_ms ~heat =
    let e = tier.(key) in
    let tgt =
      alloc ~size:(cache_obj_size t) ~heat ~life ~ref_fields:(max 1 (cache_obj_size t / 32))
    in
    e.c_tgt <- Some tgt;
    e.c_expiry <- ds.d_bytes +. (expiry_ms *. t.bytes_per_ms);
    tgt
  in
  let k1 = Rng.zipf ds.d_rng ~n:(Array.length ds.d_tier1) ~s:1.1 in
  (match probe ds.d_tier1 k1 with
  | Some tgt ->
    ds.d_t1_hits <- ds.d_t1_hits + 1;
    Vec.push ops (Op_read_burst { tgt; words = 16 })
  | None -> (
    let k2 = Rng.zipf ds.d_rng ~n:(Array.length ds.d_tier2) ~s:1.1 in
    match probe ds.d_tier2 k2 with
    | Some tgt ->
      ds.d_t2_hits <- ds.d_t2_hits + 1;
      Vec.push ops (Op_read_burst { tgt; words = 16 });
      (* promote a fresh copy into tier 1 *)
      let promoted =
        insert ds.d_tier1 k1 ~life:t.tier1_life ~expiry_ms:t.cfg.tier1_ttl_ms ~heat:O.Warm
      in
      Vec.push ops (Op_write_ref { src = promoted; tgt })
    | None ->
      (* backend fill *)
      ds.d_backend_fills <- ds.d_backend_fills + 1;
      let filled =
        insert ds.d_tier1 k1 ~life:t.tier1_life ~expiry_ms:t.cfg.tier1_ttl_ms ~heat:O.Warm
      in
      Vec.push ops (Op_write_ref { src = session; tgt = filled });
      if Rng.bernoulli ds.d_rng cfg.tier2_insert_p then
        ignore
          (insert ds.d_tier2 k2 ~life:t.tier2_life ~expiry_ms:t.cfg.tier2_ttl_ms ~heat:O.Cold)));
  (* response scratch burst from the Lifetime demographics *)
  let budget =
    (cfg.req_alloc_mean / 2) + int_of_float (Rng.exponential ds.d_rng (float_of_int cfg.req_alloc_mean /. 2.0))
  in
  while !bytes < budget do
    let cls, life = Lifetime.draw t.life ds.d_rng ~nursery_remaining:nursery_free in
    let size = draw_scratch_size t ds.d_rng in
    let heat = scratch_heat ds cls in
    let tgt = alloc ~size ~heat ~life ~ref_fields:(max 1 (size / 32)) in
    push_recent ds tgt;
    if Rng.bernoulli ds.d_rng 0.25 then Vec.push ops (Op_write_ref { src = session; tgt });
    g_mutate_debt t ds now ops size
  done;
  (* single-server queue: service demand is the bytes we just decided
     to allocate; queueing delay falls out of busy_until *)
  let service = float_of_int !bytes in
  let start = Float.max arrival ds.d_busy_until in
  ds.d_busy_until <- start +. service;
  ds.d_bytes <- ds.d_bytes +. service;
  let queue_ms = (ds.d_busy_until -. arrival) /. t.bytes_per_ms in
  Vec.push ops (Op_req_end { queue_ms });
  !bytes

(* One epoch's op stream for domain [d]: requests until the epoch
   quantum is allocated. Touches only dstates.(d) and read-only
   state. *)
let generate t d (snap_now, snap_free) =
  let ds = t.dstates.(d) in
  let ops = Vec.create () in
  let pending = ref 0 in
  let bytes = ref 0 in
  while !bytes < epoch_quantum do
    bytes := !bytes + g_request t ds (snap_now, float_of_int snap_free.(d)) ops pending
  done;
  ops

(* ------------------------------------------------------------------ *)
(* Apply (coordinator only)                                            *)

let apply_schedule t merged (epoch_allocs : O.t Vec.t array) =
  let resolve d = function
    | T_obj o -> o
    | T_pending i -> Vec.get epoch_allocs.(d) i
  in
  Vec.iter
    (fun (d, op) ->
      match op with
      | Op_alloc { size; heat; life; ref_fields } ->
        let death = Rt.now t.rt +. life in
        let o = Rt.alloc ~domain:d t.rt ~size ~heat ~death ~ref_fields in
        Vec.push epoch_allocs.(d) o
      | Op_write_ref { src; tgt } ->
        Rt.write_ref ~domain:d t.rt ~src:(resolve d src) ~tgt:(resolve d tgt)
      | Op_write_prim tgt -> Rt.write_prim ~domain:d t.rt (resolve d tgt)
      | Op_read_burst { tgt; words } -> Rt.read_burst ~domain:d t.rt (resolve d tgt) words
      | Op_req_begin -> t.d_pause_mark.(d) <- t.pause_acc
      | Op_req_end { queue_ms } ->
        Hdr_histogram.add t.latencies (queue_ms +. (t.pause_acc -. t.d_pause_mark.(d)));
        t.requests <- t.requests + 1)
    merged

(* Epoch barrier: resolve this epoch's pending markers in the recent
   rings, session tables and cache shards to the materialised
   objects. *)
let resolve_slot epoch_allocs d = function
  | Some (T_pending p) -> Some (T_obj (Vec.get epoch_allocs.(d) p))
  | slot -> slot

let epoch_barrier t (epoch_allocs : O.t Vec.t array) =
  Array.iteri
    (fun d ds ->
      for i = 0 to recent_size - 1 do
        ds.d_recent.(i) <- resolve_slot epoch_allocs d ds.d_recent.(i)
      done;
      for i = 0 to Array.length ds.d_sessions - 1 do
        ds.d_sessions.(i) <- resolve_slot epoch_allocs d ds.d_sessions.(i)
      done;
      let resolve_tier tier =
        Array.iter (fun e -> e.c_tgt <- resolve_slot epoch_allocs d e.c_tgt) tier
      in
      resolve_tier ds.d_tier1;
      resolve_tier ds.d_tier2)
    t.dstates

(* ------------------------------------------------------------------ *)
(* Boot image and the run loop                                         *)

let allocate_startup t =
  (* Immortal base (code, config, interned data): 40% of the live
     target, round-robined across domains like the batch mutator's
     startup so no domain starts privileged. *)
  let target = 0.4 *. float_of_int t.live_mb *. float_of_int Units.mib in
  let start = Rt.now t.rt in
  let k = ref 0 in
  while Rt.now t.rt -. start < target do
    let d = !k mod t.nthreads in
    incr k;
    let ds = t.dstates.(d) in
    let size = draw_scratch_size t ds.d_rng in
    let heat = if Rng.bernoulli ds.d_rng 0.05 then O.Warm else O.Cold in
    let o = Rt.alloc_boot t.rt ~size ~heat ~ref_fields:(max 1 (size / 32)) in
    push_recent ds (T_obj o)
  done

let run t ~alloc_bytes =
  let n = t.nthreads in
  let target = Rt.now t.rt +. float_of_int alloc_bytes in
  let streams : op Vec.t array = Array.init n (fun _ -> Vec.create ()) in
  let snap = ref (0.0, [||]) in
  let team = Epoch.spawn ~n ~oracle:(t.oracle || n = 1) (fun d -> streams.(d) <- generate t d !snap) in
  (try
     while Rt.now t.rt < target do
       snap := (Rt.now t.rt, Array.init n (fun d -> Rt.nursery_free ~domain:d t.rt));
       Epoch.round team;
       let merged = Epoch.merge_schedule t.sched_rng streams in
       let epoch_allocs = Array.init n (fun _ -> Vec.create ()) in
       apply_schedule t merged epoch_allocs;
       epoch_barrier t epoch_allocs
     done
   with e ->
     Epoch.finish team;
     raise e);
  Epoch.finish team
