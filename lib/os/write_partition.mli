(** OS Write Partitioning (WP), the state-of-the-art page-granularity
    baseline the paper compares against (§2, §6.1.3) [Zhang & Li,
    PACT'09; Zhou et al., USENIX ATC'01].

    DRAM is treated as a partition for highly mutated pages, found with
    a Multi-Queue ranking: the OS places every new page in PCM; the
    memory controller counts writebacks to each physical page; a page
    with 2^n writes sits in queue n of 8. Each OS time quantum (10 ms),
    pages in the four highest-ranked queues migrate to DRAM; every
    fifth quantum (50 ms) DRAM pages demote one queue, and pages that
    fall below the promotion threshold migrate back to PCM. Page copies
    are DMA at line granularity, bypassing the caches, and the
    PCM-bound halves are the "Migrations" writes of Figure 7.

    Simulated time is driven by demand-access counts: [accesses_per_ms]
    converts the paper's wall-clock quanta into units the simulator
    has. *)

type config = {
  queues : int;  (** 8 *)
  promote_rank : int;  (** queues [promote_rank..queues-1] go to DRAM: 4 *)
  quantum_accesses : int;  (** demand accesses per 10 ms OS quantum *)
  demote_period : int;  (** quanta between DRAM demotions: 5 (= 50 ms) *)
}

val default_config : config

type t

val create :
  ?config:config ->
  hier:Kg_cache.Hierarchy.t ->
  virt_size:int ->
  unit ->
  t
(** [virt_size] bounds the virtual heap range (vaddr 0..virt_size).
    The hierarchy's controller must route over a hybrid address map;
    WP installs itself as the controller's write observer. *)

val port : t -> Kg_gc.Mem_iface.t
(** The translated memory port the runtime should use: batches flush
    through a sink that maps virtual heap addresses to their current
    physical frame before entering the caches, ticking the OS access
    quantum per record. *)

val dram_pages : t -> int
(** Pages currently resident in the DRAM partition. *)

val peak_dram_pages : t -> int
val migrations_to_dram : t -> int
val migrations_to_pcm : t -> int

val migration_pcm_line_writes : t -> int
(** PCM line writes caused by migrating pages back (Figure 7's
    "Migrations" component). *)
