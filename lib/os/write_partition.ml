open Kg_cache

type config = {
  queues : int;
  promote_rank : int;
  quantum_accesses : int;
  demote_period : int;
}

let default_config =
  { queues = 8; promote_rank = 4; quantum_accesses = 500_000; demote_period = 5 }

type page = {
  vpage : int;
  mutable writes : int;
  mutable rank : int;
  mutable dram_frame : int;  (* -1 while resident in PCM *)
}

type t = {
  cfg : config;
  hier : Hierarchy.t;
  ctrl : Controller.t;
  pcm_base : int;
  dram_base : int;
  dram_frames : int;
  pages : (int, page) Hashtbl.t;
  dram_rev : (int, page) Hashtbl.t;  (* dram frame index -> page *)
  mutable dram_cursor : int;  (* next-never-used frame *)
  mutable free_frames : int list;
  mutable accesses : int;
  mutable quantum : int;
  mutable dram_resident : int;
  mutable peak_dram : int;
  mutable to_dram : int;
  mutable to_pcm : int;
  mutable migration_pcm_lines : int;
  mutable migrating : bool;
}

let page_size = Kg_heap.Layout.page
let migration_tag = Kg_gc.Phase.to_tag Kg_gc.Phase.Migration

let create ?(config = default_config) ~hier ~virt_size () =
  let ctrl = Hierarchy.controller hier in
  let map = Controller.map ctrl in
  let t =
    {
      cfg = config;
      hier;
      ctrl;
      pcm_base = Kg_mem.Address_map.pcm_base map;
      dram_base = Kg_mem.Address_map.dram_base map;
      dram_frames = Kg_mem.Address_map.dram_size map / page_size;
      pages = Hashtbl.create 4096;
      dram_rev = Hashtbl.create 4096;
      dram_cursor = 0;
      free_frames = [];
      accesses = 0;
      quantum = 0;
      dram_resident = 0;
      peak_dram = 0;
      to_dram = 0;
      to_pcm = 0;
      migration_pcm_lines = 0;
      migrating = false;
    }
  in
  if virt_size > Kg_mem.Address_map.pcm_size map then
    invalid_arg "Write_partition.create: virtual range exceeds PCM capacity";
  Controller.set_on_write ctrl (fun paddr ->
      (* Count writebacks per page, in whichever device the page lives.
         A migration's own copy traffic must not re-heat the page it is
         demoting, or pages bounce between the partitions forever. *)
      if t.migrating then ()
      else
      let page =
        if paddr >= t.pcm_base then begin
          let vpage = (paddr - t.pcm_base) / page_size in
          match Hashtbl.find_opt t.pages vpage with
          | Some p -> Some p
          | None ->
            let p = { vpage; writes = 0; rank = 0; dram_frame = -1 } in
            Hashtbl.replace t.pages vpage p;
            Some p
        end
        else Hashtbl.find_opt t.dram_rev ((paddr - t.dram_base) / page_size)
      in
      match page with
      | None -> ()
      | Some p ->
        p.writes <- p.writes + 1;
        (* Queue n holds pages with 2^n writes. *)
        let rank = int_of_float (Float.log2 (float_of_int (max 1 p.writes))) in
        p.rank <- min (t.cfg.queues - 1) rank);
  t

let alloc_frame t =
  match t.free_frames with
  | f :: rest ->
    t.free_frames <- rest;
    Some f
  | [] ->
    if t.dram_cursor < t.dram_frames then begin
      let f = t.dram_cursor in
      t.dram_cursor <- f + 1;
      Some f
    end
    else None

(* Page copies are DMA at line granularity, bypassing the caches. *)
let copy_page t ~src ~dst =
  let lines = page_size / Controller.line_size t.ctrl in
  let ls = Controller.line_size t.ctrl in
  t.migrating <- true;
  for i = 0 to lines - 1 do
    Controller.line_read t.ctrl (src + (i * ls));
    Controller.line_write t.ctrl (dst + (i * ls)) ~tag:migration_tag
  done;
  t.migrating <- false

let migrate_to_dram t p =
  match alloc_frame t with
  | None -> ()
  | Some f ->
    copy_page t ~src:(t.pcm_base + (p.vpage * page_size)) ~dst:(t.dram_base + (f * page_size));
    p.dram_frame <- f;
    Hashtbl.replace t.dram_rev f p;
    t.dram_resident <- t.dram_resident + 1;
    if t.dram_resident > t.peak_dram then t.peak_dram <- t.dram_resident;
    t.to_dram <- t.to_dram + 1

let migrate_to_pcm t p =
  let f = p.dram_frame in
  copy_page t ~src:(t.dram_base + (f * page_size)) ~dst:(t.pcm_base + (p.vpage * page_size));
  t.migration_pcm_lines <- t.migration_pcm_lines + (page_size / Controller.line_size t.ctrl);
  p.dram_frame <- -1;
  Hashtbl.remove t.dram_rev f;
  t.free_frames <- f :: t.free_frames;
  t.dram_resident <- t.dram_resident - 1;
  t.to_pcm <- t.to_pcm + 1

let run_quantum t =
  t.quantum <- t.quantum + 1;
  (* Promotion pass: PCM pages in the top-ranked queues move to DRAM. *)
  Hashtbl.iter
    (fun _ p -> if p.dram_frame < 0 && p.rank >= t.cfg.promote_rank then migrate_to_dram t p)
    t.pages;
  if t.quantum mod t.cfg.demote_period = 0 then begin
    (* Demotion pass: every DRAM page drops one queue; pages falling
       below the promotion threshold return to PCM. *)
    let falling = ref [] in
    Hashtbl.iter
      (fun _ p ->
        p.rank <- max 0 (p.rank - 1);
        p.writes <- p.writes / 2;
        if p.rank < t.cfg.promote_rank then falling := p :: !falling)
      t.dram_rev;
    List.iter (migrate_to_pcm t) !falling
  end

let translate t vaddr =
  let vpage = vaddr / page_size in
  match Hashtbl.find_opt t.pages vpage with
  | Some p when p.dram_frame >= 0 -> t.dram_base + (p.dram_frame * page_size) + (vaddr mod page_size)
  | _ -> t.pcm_base + vaddr

let tick t =
  t.accesses <- t.accesses + 1;
  if t.accesses >= t.cfg.quantum_accesses then begin
    t.accesses <- 0;
    run_quantum t
  end

let chunked t vaddr size f =
  (* Translate per page so an access spanning a migration boundary
     hits each page's current frame. *)
  let rec go vaddr size =
    if size > 0 then begin
      let in_page = page_size - (vaddr mod page_size) in
      let n = min size in_page in
      f (translate t vaddr) n;
      go (vaddr + n) (size - n)
    end
  in
  go vaddr size

(* The write-partition sink: each record ticks the access quantum (so
   promotion/demotion passes fire at the same access positions as with
   a per-access interface), translates through the page tables, and
   lands on the cache hierarchy under the phase tag it was issued
   with. *)
let port t =
  let module Port = Kg_mem.Port in
  let run (b : Port.batch) =
    for i = 0 to b.len - 1 do
      tick t;
      let m = Array.unsafe_get b.metas i in
      Hierarchy.set_phase t.hier (Port.tag_of m);
      let write = Port.is_write m in
      chunked t
        (Array.unsafe_get b.addrs i)
        (Array.unsafe_get b.sizes i)
        (fun p n -> Hierarchy.access_range t.hier ~addr:p ~size:n ~write)
    done
  in
  let drv_stats () = Kg_gc.Mem_iface.stats_of_controller t.ctrl in
  Port.create ~sink:(Port.Cache_sim { Port.run; drv_stats }) ()

let dram_pages t = t.dram_resident
let peak_dram_pages t = t.peak_dram
let migrations_to_dram t = t.to_dram
let migrations_to_pcm t = t.to_pcm
let migration_pcm_line_writes t = t.migration_pcm_lines
