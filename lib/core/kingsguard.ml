(** Write-rationing garbage collection for hybrid DRAM-PCM memories.

    Facade over the library stack, bottom-up:

    - {!Util}: PRNG, statistics, tables, vectors.
    - {!Mem}: DRAM/PCM device models, address maps, wear-leveling,
      the analytical lifetime model.
    - {!Cache}: set-associative write-back hierarchy and the memory
      controller that routes line writebacks to a device.
    - {!Heap}: object model, copying/observer bump spaces, the Immix
      mark-region space, large-object treadmills, metadata space.
    - {!Gc}: write barriers, remembered sets, and the GenImmix /
      Kingsguard-nursery / Kingsguard-writers collector plans.
    - {!Os}: page-granularity OS write partitioning (the WP baseline).
    - {!Workload}: DaCapo/pjbb/GraphChi-calibrated synthetic mutators.
    - {!Sim}: machine assembly, time/energy models, experiment runners
      reproducing every table and figure of the paper.
    - {!Engine}: the parallel experiment engine — domain worker pool,
      persistent content-addressed result store, progress reporting. *)

module Util = Kg_util
module Mem = Kg_mem
module Cache = Kg_cache
module Heap = Kg_heap
module Gc = Kg_gc
module Os = Kg_os
module Workload = Kg_workload
module Sim = Kg_sim
module Engine = Kg_engine
