(** One level of set-associative write-back cache.

    Caches absorb most heap writes; only dirty-line evictions reach main
    memory, so modeling them faithfully is essential to reproducing the
    paper's PCM write counts (§6.1: caches "are the first line of
    defense in protecting PCM from writes").

    Each line carries a [tag] identifying the execution phase that last
    wrote it (application, nursery GC, observer GC, major GC). The paper
    modified Sniper the same way for Figure 10: "we modify the simulator
    to track which phase last wrote each cache line, since LRU policies
    evict lines to PCM or DRAM well after their last access". *)

type t

type writeback = { wb_addr : int; wb_tag : int }
(** A dirty line evicted by a fill: its block-aligned address and the
    phase tag that last wrote it. *)

val create : name:string -> size:int -> ways:int -> line_size:int -> latency_ns:float -> t
(** [size] must be divisible by [ways * line_size], and the number of
    sets must be a power of two. *)

val name : t -> string
val line_size : t -> int
val latency_ns : t -> float

val probe : t -> addr:int -> write:bool -> tag:int -> bool
(** [probe t ~addr ~write ~tag] looks up the line containing [addr].
    On a hit it updates LRU state and, for a write, the dirty bit and
    phase tag, returning [true]. On a miss it returns [false] without
    allocating; the caller fetches the line from the next level and
    then calls {!fill}. *)

val probe_fill : t -> addr:int -> write:bool -> tag:int -> int
(** Fused hot-path lookup: one scan over the set resolves the hit, the
    victim choice and the writeback production. Returns [0] on a hit
    (state updated as {!probe}). On a miss the line is filled in place
    (as {!probe} followed by {!fill} — the set cannot change in
    between, so fusing is behaviour-preserving) and the result is [1]
    for a clean or invalid victim, or [2] for a dirty victim whose
    address and phase tag are published in {!last_wb_addr} and
    {!last_wb_tag}. Never allocates. *)

val last_wb_addr : t -> int
(** Address of the dirty victim evicted by the last {!probe_fill} that
    returned [2]. Only meaningful immediately after that call. *)

val last_wb_tag : t -> int
(** Phase tag of that victim. *)

val bump_run : t -> addr:int -> count:int -> dirty:bool -> tag:int -> unit
(** Bulk update for the hierarchy's same-line run coalescer: apply the
    effect of [count] consecutive hits to the resident line containing
    [addr] — [count] hits counted, the LRU clock advanced by [count],
    the line restamped to the final clock value, and, if [dirty], the
    dirty bit set with [tag] as the (last) writer. Raises
    [Invalid_argument] if the line is not resident. *)

val prefetch_set : t -> addr:int -> unit
(** Issue the loads for [addr]'s set so its tag and meta lines are in
    flight while the caller does other work. Purely a host-side
    latency hint: simulator state is not modified. *)

val fill : t -> addr:int -> write:bool -> tag:int -> writeback option
(** Allocate the line containing [addr] (after a miss), evicting the
    LRU way of its set. Returns the dirty victim, if any, which the
    caller must write to the next level. *)

val invalidate_all : t -> writeback list
(** Flush the cache, returning all dirty lines (used at simulation end
    to drain resident dirty data into the traffic counts). The list is
    ordered by ascending way index (set-major scan order), so drain
    writeback order is deterministic and documented. *)

(** Hit/miss/writeback counters. *)
type stats = { hits : int; misses : int; writebacks : int }

val stats : t -> stats
val reset_stats : t -> unit
