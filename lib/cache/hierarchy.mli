(** Three-level write-back cache hierarchy in front of the memory
    controller (Table 2: 32 KB 8-way L1-D, 256 KB 8-way L2, 4 MB 16-way
    shared L3, 64 B lines).

    The hierarchy is non-inclusive with write-allocate demand accesses.
    A dirty line evicted from level N is installed in level N+1 as a
    full-line write (no fetch); dirty L3 victims become memory
    writebacks. This is the path by which mutator and collector writes
    eventually reach DRAM or PCM. *)

type t

type level_config = { size : int; ways : int; latency_ns : float }

val default_l1 : level_config
val default_l2 : level_config
val default_l3 : level_config

val create :
  ?l1:level_config ->
  ?l2:level_config ->
  ?l3:level_config ->
  ?line_size:int ->
  controller:Controller.t ->
  unit ->
  t

val controller : t -> Controller.t
val set_phase : t -> int -> unit
(** Tag subsequent writes with the given phase id (see
    {!Kg_cache.Cache}). *)

val phase : t -> int

val read : t -> int -> unit
(** Demand-read one byte-addressed location (touches one line). *)

val write : t -> int -> unit
(** Demand-write one location, tagged with the current phase. *)

val access_range : t -> addr:int -> size:int -> write:bool -> unit
(** Touch every cache line overlapping [\[addr, addr+size)]. Used for
    object copies and zeroing, which stream over whole objects. *)

val access_run : t -> Kg_mem.Port.batch -> unit
(** Batch entry point for {!Kg_mem.Port} flushes: perform line
    splitting and phase tagging for every record of the batch, in
    order. Each record uses the write flag and phase tag it was issued
    under, not the hierarchy's current phase.

    This is the primary kernel entry point: {!read}, {!write} and
    {!access_range} are thin wrappers over the same fused three-level
    walk. Consecutive single-line records falling in one line are
    coalesced into the first record's demand access plus one O(1)
    bulk stats/LRU update, which is observationally identical to the
    per-access loop (see DESIGN.md, "Cache kernel"). *)

val drain : t -> unit
(** Flush all levels so dirty resident lines reach the traffic counts;
    call once at simulation end. Idempotent: a second drain is a
    no-op (the first already invalidated every line), so writebacks
    are never double-counted. Writeback order is deterministic: L1
    first, then L2, then L3, each emitting its dirty lines in
    ascending way-index order ({!Cache.invalidate_all}), each victim
    cascading through the lower levels before the next is emitted. *)

val drained : t -> bool
(** True once {!drain} has run. Any demand access issued afterwards
    raises [Invalid_argument] — traffic after the final flush would
    silently vanish from the writeback counts. *)

val reopen : t -> unit
(** Clear the drained flag, for deliberate post-drain cold-cache
    measurements (e.g. the allocator-locality experiment traverses the
    heap against a drained hierarchy). *)

val level_stats : t -> Cache.stats array
(** Stats for L1, L2, L3 in order. *)

val hit_time_ns : t -> float
(** Aggregate latency of cache accesses (hits and per-level lookup
    costs), excluding memory device time. Maintained as per-level
    integer visit counters and folded here — bit-identical to the old
    one-add-per-visit accumulation for level latencies that are exact
    multiples of 0.5 ns (the defaults are). *)

val accesses : t -> int
(** Demand accesses issued (reads + writes), before line splitting. *)
