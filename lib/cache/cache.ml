type writeback = { wb_addr : int; wb_tag : int }

type stats = { hits : int; misses : int; writebacks : int }

(* Per-way state is one meta word next to the tag, so the hot probe
   loop walks exactly two int arrays (tags + meta) per set instead of
   the former four (tags, dirty bytes, phase, lru):

     bit  0      dirty
     bits 1-16   phase tag of the last writer
     bits 17-62  LRU stamp (cache-wide use-counter value at last touch)

   The LRU clock is a single cache-wide counter, not per-set as it
   once was: stamps are only ever compared within one set, and
   restricting a strictly increasing global sequence to one set's
   touches still yields strictly increasing stamps, so the
   least-stamp victim choice is identical — while the hot path loses
   a whole per-set counter array (512 KB of simulator state for a
   4 MB cache). 46 stamp bits absorb ~7e13 touches before wrapping,
   far beyond any simulated workload. Phase tags are masked to 16
   bits; real tags are small ints (Kg_gc.Phase.count plus a few OS
   tags).

   Stamps beat the classic per-set recency list here on purpose: the
   min-stamp scan issues all its loads in parallel (two dense array
   walks the CPU can pipeline), where a linked list serializes victim
   lookup into head -> prev -> tags dependent misses on simulator
   metadata that lives in the host's outer cache levels. Measured on
   the random miss storm, the list was ~2x slower per probe. *)

let dirty_bit = 1
let tag_shift = 1
let tag_bits = 16
let tag_mask = (1 lsl tag_bits) - 1
let lru_shift = tag_shift + tag_bits

let[@inline] meta_lru m = m lsr lru_shift
let[@inline] meta_tag m = (m lsr tag_shift) land tag_mask
let[@inline] meta_is_dirty m = m land dirty_bit = dirty_bit

(* Meta for a freshly written / freshly read line at stamp [clk]. *)
let[@inline] meta_write clk tag = (clk lsl lru_shift) lor ((tag land tag_mask) lsl tag_shift) lor dirty_bit
let[@inline] meta_read clk = clk lsl lru_shift

(* Restamp, preserving dirty + tag bits. *)
let[@inline] meta_restamp m clk = (clk lsl lru_shift) lor (m land ((1 lsl lru_shift) - 1))

type t = {
  name : string;
  line_size : int;
  line_bits : int;
  sets : int;
  set_mask : int;
  ways : int;
  latency_ns : float;
  (* Way state, indexed by set * ways + way. tags.(i) = -1 means invalid;
     otherwise it holds the full block address (addr / line_size). *)
  tags : int array;
  meta : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  (* Out-parameters of the last probe_fill that evicted a dirty victim,
     so the fused hot path never allocates a [writeback option]. *)
  mutable pf_wb_addr : int;
  mutable pf_wb_tag : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~size ~ways ~line_size ~latency_ns =
  if ways <= 0 || line_size <= 0 || size mod (ways * line_size) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of ways * line_size";
  let sets = size / (ways * line_size) in
  if not (is_pow2 sets && is_pow2 line_size) then
    invalid_arg "Cache.create: sets and line_size must be powers of two";
  {
    name;
    line_size;
    line_bits = log2 line_size;
    sets;
    set_mask = sets - 1;
    ways;
    latency_ns;
    tags = Array.make (sets * ways) (-1);
    meta = Array.make (sets * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
    pf_wb_addr = 0;
    pf_wb_tag = 0;
  }

let name t = t.name
let line_size t = t.line_size
let latency_ns t = t.latency_ns

let block_of t addr = addr lsr t.line_bits
let set_of t block = block land t.set_mask

(* The single debug-mode bounds assertion guarding the unsafe scans:
   if [base] is in range, so is base + way for way < ways. Compiled
   out by -noassert (the release profile); the hot loops themselves
   perform no bounds checks. *)
let[@inline] check_base t base =
  assert (base >= 0 && base + t.ways <= Array.length t.tags)

let last_wb_addr t = t.pf_wb_addr
let last_wb_tag t = t.pf_wb_tag

(* Issue the loads for [addr]'s set so its tag and meta lines are in
   flight while the caller does other work. Simulator metadata for a
   large cache lives in the host's outer cache levels; the hierarchy
   kernel calls this for the levels it is about to walk so their miss
   latencies overlap instead of serializing (Sys.opaque_identity keeps
   the dead loads from being discarded). *)
let[@inline] prefetch_set t ~addr =
  let base = ((addr lsr t.line_bits) land t.set_mask) * t.ways in
  check_base t base;
  ignore (Sys.opaque_identity (Array.unsafe_get t.tags base));
  ignore (Sys.opaque_identity (Array.unsafe_get t.meta base));
  ignore (Sys.opaque_identity (Array.unsafe_get t.tags (base + t.ways - 1)));
  ignore (Sys.opaque_identity (Array.unsafe_get t.meta (base + t.ways - 1)))

(* Hit-only scan: way holding [block], or -1. First match wins, as the
   pre-rewrite probe loop did. Top-level and tail-recursive so it
   compiles to a register loop — no closure, no ref cells. *)
let rec scan_hit tags base ways block way =
  if way = ways then -1
  else if Array.unsafe_get tags (base + way) = block then way
  else scan_hit tags base ways block (way + 1)

(* Fused hit + victim scan. Returns [(hit_way + 1) lsl 8 lor victim]:
   bits 8+ are hit way + 1, 0 for a miss; bits 0-7 are the victim way
   (first invalid way if any, else the first way with the minimum LRU
   stamp — an invalid way scores -1, below any real stamp, which is
   >= 1 because every resident line has been touched at least once).
   A hit returns immediately — a block resides in at most one way, so
   the first match is the only one, and the victim is only consulted
   on a miss, so the partial victim in a hit's low bits is dead. The
   victim choice over a full scan is identical to the pre-kernel
   two-pass code: first invalid way, else least stamp, first wins. *)
let rec scan_set tags meta base ways block way victim best =
  if way = ways then victim
  else begin
    let i = base + way in
    let tg = Array.unsafe_get tags i in
    if tg = block then ((way + 1) lsl 8) lor victim
    else begin
      let l = if tg = -1 then -1 else meta_lru (Array.unsafe_get meta i) in
      if l < best then scan_set tags meta base ways block (way + 1) way l
      else scan_set tags meta base ways block (way + 1) victim best
    end
  end

(* Fused lookup + victim selection + fill: one scan over the set.
   Returns 0 on a hit; on a miss the line is filled in place and the
   result is 1 (clean or invalid victim) or 2 (dirty victim published
   in [last_wb_addr]/[last_wb_tag], counted in [writebacks]).
   Equivalent to [probe] followed (on miss, after the caller's
   next-level fetch) by [fill]: nothing the caller does between the
   two can touch this cache, so selecting the victim at probe time is
   the same as selecting it at fill time. Never allocates. *)
let probe_fill t ~addr ~write ~tag =
  let block = addr lsr t.line_bits in
  let set = block land t.set_mask in
  let base = set * t.ways in
  check_base t base;
  let r = scan_set t.tags t.meta base t.ways block 0 0 max_int in
  let hit = (r lsr 8) - 1 in
  let clk = t.clock + 1 in
  t.clock <- clk;
  if hit >= 0 then begin
    t.hits <- t.hits + 1;
    let i = base + hit in
    let m = Array.unsafe_get t.meta i in
    Array.unsafe_set t.meta i
      (if write then meta_write clk tag else meta_restamp m clk);
    0
  end
  else begin
    t.misses <- t.misses + 1;
    let i = base + (r land 0xff) in
    let vtag = Array.unsafe_get t.tags i in
    let m = Array.unsafe_get t.meta i in
    let rc =
      if vtag >= 0 && meta_is_dirty m then begin
        t.writebacks <- t.writebacks + 1;
        t.pf_wb_addr <- vtag lsl t.line_bits;
        t.pf_wb_tag <- meta_tag m;
        2
      end
      else 1
    in
    Array.unsafe_set t.tags i block;
    Array.unsafe_set t.meta i (if write then meta_write clk tag else meta_read clk);
    rc
  end

(* Bulk LRU/stats update for the hierarchy's same-line run coalescer:
   apply the effect of [count] consecutive hits to a line that is known
   to be resident (the coalescer just accessed it). Per-access, each
   hit would advance the clock, restamp the way, count a hit, and (if
   a write) set dirty + phase; the fold is exact: the final stamp is
   the final clock value, dirty is set iff any access wrote, and the
   phase is the last writer's tag. *)
let bump_run t ~addr ~count ~dirty ~tag =
  let block = addr lsr t.line_bits in
  let set = block land t.set_mask in
  let base = set * t.ways in
  check_base t base;
  let hit = scan_hit t.tags base t.ways block 0 in
  if hit < 0 then invalid_arg "Cache.bump_run: line not resident";
  let clk = t.clock + count in
  t.clock <- clk;
  t.hits <- t.hits + count;
  let i = base + hit in
  let m = Array.unsafe_get t.meta i in
  Array.unsafe_set t.meta i
    (if dirty then meta_write clk tag else meta_restamp m clk)

let probe t ~addr ~write ~tag =
  let block = addr lsr t.line_bits in
  let set = block land t.set_mask in
  let base = set * t.ways in
  check_base t base;
  let hit = scan_hit t.tags base t.ways block 0 in
  if hit >= 0 then begin
    t.hits <- t.hits + 1;
    let clk = t.clock + 1 in
    t.clock <- clk;
    let i = base + hit in
    let m = Array.unsafe_get t.meta i in
    Array.unsafe_set t.meta i
      (if write then meta_write clk tag else meta_restamp m clk);
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

(* Cold/compat path (tests, external callers): separate victim scan and
   fill, allocating the classic [writeback option]. *)
let fill t ~addr ~write ~tag =
  let block = block_of t addr in
  let set = set_of t block in
  let base = set * t.ways in
  check_base t base;
  let victim = scan_set t.tags t.meta base t.ways (-2) 0 0 max_int land 0xff in
  let idx = base + victim in
  let wb =
    if t.tags.(idx) >= 0 && meta_is_dirty t.meta.(idx) then begin
      t.writebacks <- t.writebacks + 1;
      Some { wb_addr = t.tags.(idx) lsl t.line_bits; wb_tag = meta_tag t.meta.(idx) }
    end
    else None
  in
  let clk = t.clock + 1 in
  t.clock <- clk;
  t.tags.(idx) <- block;
  t.meta.(idx) <- (if write then meta_write clk tag else meta_read clk);
  wb

(* Cold path, safe indexing. Writebacks are emitted in ascending way
   index order (set-major), by consing during a descending scan: the
   drain order is deterministic and documented, where the previous
   implementation consed ascending and so handed the caller a reversed
   list. *)
let invalidate_all t =
  let acc = ref [] in
  for idx = Array.length t.tags - 1 downto 0 do
    if t.tags.(idx) >= 0 && meta_is_dirty t.meta.(idx) then
      acc := { wb_addr = t.tags.(idx) lsl t.line_bits; wb_tag = meta_tag t.meta.(idx) } :: !acc;
    t.tags.(idx) <- -1;
    t.meta.(idx) <- 0
  done;
  !acc

let stats t = { hits = t.hits; misses = t.misses; writebacks = t.writebacks }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0
