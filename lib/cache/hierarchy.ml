type level_config = { size : int; ways : int; latency_ns : float }

let default_l1 = { size = 32 * 1024; ways = 8; latency_ns = 1.0 }
let default_l2 = { size = 256 * 1024; ways = 8; latency_ns = 2.0 }
let default_l3 = { size = 4 * 1024 * 1024; ways = 16; latency_ns = 7.5 }

type t = {
  levels : Cache.t array;
  ctrl : Controller.t;
  line_size : int;
  mutable phase : int;
  mutable accesses : int;
  mutable hit_time_ns : float;
  mutable drained : bool;
}

let create ?(l1 = default_l1) ?(l2 = default_l2) ?(l3 = default_l3) ?(line_size = 64) ~controller () =
  let mk name (c : level_config) =
    Cache.create ~name ~size:c.size ~ways:c.ways ~line_size ~latency_ns:c.latency_ns
  in
  {
    levels = [| mk "L1-D" l1; mk "L2" l2; mk "L3" l3 |];
    ctrl = controller;
    line_size;
    phase = 0;
    accesses = 0;
    hit_time_ns = 0.0;
    drained = false;
  }

let controller t = t.ctrl
let set_phase t p = t.phase <- p
let phase t = t.phase

let nlevels = 3

(* Install a dirty victim one level down. A writeback carries a full
   line, so on miss we fill without fetching from below. *)
let rec writeback t lvl (wb : Cache.writeback) =
  if lvl >= nlevels then Controller.line_write t.ctrl wb.wb_addr ~tag:wb.wb_tag
  else begin
    let c = t.levels.(lvl) in
    if not (Cache.probe c ~addr:wb.wb_addr ~write:true ~tag:wb.wb_tag) then
      match Cache.fill c ~addr:wb.wb_addr ~write:true ~tag:wb.wb_tag with
      | Some victim -> writeback t (lvl + 1) victim
      | None -> ()
  end

(* Demand access: on a miss, fetch the line from the next level (a read,
   regardless of the demand type) and then fill. *)
let rec demand t lvl addr write tag =
  if lvl >= nlevels then Controller.line_read t.ctrl addr
  else begin
    let c = t.levels.(lvl) in
    t.hit_time_ns <- t.hit_time_ns +. Cache.latency_ns c;
    if not (Cache.probe c ~addr ~write ~tag) then begin
      demand t (lvl + 1) addr false tag;
      match Cache.fill c ~addr ~write ~tag with
      | Some victim -> writeback t (lvl + 1) victim
      | None -> ()
    end
  end

(* Accesses after [drain] would silently miss the final writeback
   flush, so they fail fast; call [reopen] first when a post-drain
   cold-cache measurement is the point. *)
let check_open t =
  if t.drained then
    invalid_arg "Kg_cache.Hierarchy: access after drain (use reopen to resume)"

let read t addr =
  check_open t;
  t.accesses <- t.accesses + 1;
  demand t 0 addr false t.phase

let write t addr =
  check_open t;
  t.accesses <- t.accesses + 1;
  demand t 0 addr true t.phase

(* One record's worth of line splitting, shared by the legacy
   per-access entry point and the batch path. *)
let[@inline] split_lines t addr size write tag =
  if size > 0 then begin
    let first = addr / t.line_size in
    let last = (addr + size - 1) / t.line_size in
    for line = first to last do
      let a = line * t.line_size in
      t.accesses <- t.accesses + 1;
      demand t 0 a write tag
    done
  end

let access_range t ~addr ~size ~write =
  check_open t;
  split_lines t addr size write t.phase

let access_run t (b : Kg_mem.Port.batch) =
  check_open t;
  for i = 0 to b.len - 1 do
    let m = Array.unsafe_get b.metas i in
    split_lines t
      (Array.unsafe_get b.addrs i)
      (Array.unsafe_get b.sizes i)
      (Kg_mem.Port.is_write m) (Kg_mem.Port.tag_of m)
  done

let drain t =
  if not t.drained then begin
    for lvl = 0 to nlevels - 1 do
      let wbs = Cache.invalidate_all t.levels.(lvl) in
      List.iter (fun wb -> writeback t (lvl + 1) wb) wbs
    done;
    t.drained <- true
  end

let drained t = t.drained
let reopen t = t.drained <- false

let level_stats t = Array.map Cache.stats t.levels
let hit_time_ns t = t.hit_time_ns
let accesses t = t.accesses
