type level_config = { size : int; ways : int; latency_ns : float }

let default_l1 = { size = 32 * 1024; ways = 8; latency_ns = 1.0 }
let default_l2 = { size = 256 * 1024; ways = 8; latency_ns = 2.0 }
let default_l3 = { size = 4 * 1024 * 1024; ways = 16; latency_ns = 7.5 }

(* Memory spills (L3 demand fetches and dirty-victim writebacks that
   fall out of the bottom of the hierarchy) are buffered in issue order
   and flushed to the controller's batch entry points. The buffer holds
   one homogeneous run at a time — appending an event of the other kind
   flushes first — so event order at the controller is exactly the
   per-access order, while long read or write storms (drain, capacity
   eviction sweeps, streaming inits) are serviced with the map bounds
   and device constants hoisted out of the loop. *)
let spill_cap = 256

type t = {
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  levels : Cache.t array;
  ctrl : Controller.t;
  line_size : int;
  line_bits : int;
  mutable phase : int;
  mutable accesses : int;
  (* Per-level visit counters; folded into hit_time_ns on demand so the
     L1-hit fast path performs no float arithmetic (see hit_time_ns). *)
  mutable visits1 : int;
  mutable visits2 : int;
  mutable visits3 : int;
  sp_addrs : int array;
  sp_tags : int array;
  mutable sp_len : int;
  mutable sp_write : bool;
  mutable drained : bool;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(l1 = default_l1) ?(l2 = default_l2) ?(l3 = default_l3) ?(line_size = 64) ~controller () =
  let mk name (c : level_config) =
    Cache.create ~name ~size:c.size ~ways:c.ways ~line_size ~latency_ns:c.latency_ns
  in
  let c1 = mk "L1-D" l1 and c2 = mk "L2" l2 and c3 = mk "L3" l3 in
  {
    l1 = c1;
    l2 = c2;
    l3 = c3;
    levels = [| c1; c2; c3 |];
    ctrl = controller;
    line_size;
    line_bits = log2 line_size;
    phase = 0;
    accesses = 0;
    visits1 = 0;
    visits2 = 0;
    visits3 = 0;
    sp_addrs = Array.make spill_cap 0;
    sp_tags = Array.make spill_cap 0;
    sp_len = 0;
    sp_write = false;
    drained = false;
  }

let controller t = t.ctrl
let set_phase t p = t.phase <- p
let phase t = t.phase

let flush_spills t =
  if t.sp_len > 0 then begin
    let len = t.sp_len in
    t.sp_len <- 0;
    if t.sp_write then Controller.line_write_run t.ctrl ~addrs:t.sp_addrs ~tags:t.sp_tags ~len
    else Controller.line_read_run t.ctrl ~addrs:t.sp_addrs ~len
  end

let[@inline] spill t ~write addr tag =
  if t.sp_len = spill_cap || t.sp_write <> write then flush_spills t;
  t.sp_write <- write;
  let i = t.sp_len in
  Array.unsafe_set t.sp_addrs i addr;
  Array.unsafe_set t.sp_tags i tag;
  t.sp_len <- i + 1

(* Install a dirty victim one level down, iteratively: a writeback
   carries a full line, so on miss the level fills without fetching
   from below and the chain continues with that level's own victim.
   [lvl] is the target level (1 = L2, 2 = L3, 3 = memory).
   Tail-recursive: compiles to a loop, allocates nothing. *)
let rec cascade t lvl addr tag =
  if lvl >= 3 then spill t ~write:true addr tag
  else begin
    let c = if lvl = 1 then t.l2 else t.l3 in
    if Cache.probe_fill c ~addr ~write:true ~tag = 2 then
      cascade t (lvl + 1) (Cache.last_wb_addr c) (Cache.last_wb_tag c)
  end

(* Demand access to one line: walk the levels with the fused
   probe/fill, then resolve the memory fetch and the dirty-victim
   cascades deepest-first. This is the old recursive demand/writeback
   walk unrolled; the controller event order (fetch read first, then
   the L3 victim, then the L2 victim's chain, then the L1 victim's
   chain) and every per-level state transition match it exactly —
   levels never read each other's state, so filling a level during the
   downward walk instead of on the way back up is unobservable. *)
let access_line t addr write tag =
  t.visits1 <- t.visits1 + 1;
  let rc1 = Cache.probe_fill t.l1 ~addr ~write ~tag in
  if rc1 <> 0 then begin
    (* Get the L2 and L3 set lines in flight before walking them: the
       metadata of the big levels lives in the host's outer caches and
       the demand sets are known from the address alone, so their miss
       latencies overlap the scans instead of serializing after them. *)
    Cache.prefetch_set t.l3 ~addr;
    Cache.prefetch_set t.l2 ~addr;
    let wb1_addr = Cache.last_wb_addr t.l1 and wb1_tag = Cache.last_wb_tag t.l1 in
    t.visits2 <- t.visits2 + 1;
    let rc2 = Cache.probe_fill t.l2 ~addr ~write:false ~tag in
    if rc2 <> 0 then begin
      let wb2_addr = Cache.last_wb_addr t.l2 and wb2_tag = Cache.last_wb_tag t.l2 in
      t.visits3 <- t.visits3 + 1;
      let rc3 = Cache.probe_fill t.l3 ~addr ~write:false ~tag in
      if rc3 <> 0 then begin
        spill t ~write:false addr 0;
        if rc3 = 2 then
          spill t ~write:true (Cache.last_wb_addr t.l3) (Cache.last_wb_tag t.l3)
      end;
      if rc2 = 2 then cascade t 2 wb2_addr wb2_tag
    end;
    if rc1 = 2 then cascade t 1 wb1_addr wb1_tag
  end

(* Accesses after [drain] would silently miss the final writeback
   flush, so they fail fast; call [reopen] first when a post-drain
   cold-cache measurement is the point. *)
let check_open t =
  if t.drained then
    invalid_arg "Kg_cache.Hierarchy: access after drain (use reopen to resume)"

let read t addr =
  check_open t;
  t.accesses <- t.accesses + 1;
  access_line t addr false t.phase;
  flush_spills t

let write t addr =
  check_open t;
  t.accesses <- t.accesses + 1;
  access_line t addr true t.phase;
  flush_spills t

(* One record's worth of line splitting, shared by the legacy
   per-access entry point and the batch path. *)
let[@inline] split_lines t addr size write tag =
  if size > 0 then begin
    let first = addr lsr t.line_bits in
    let last = (addr + size - 1) lsr t.line_bits in
    for line = first to last do
      t.accesses <- t.accesses + 1;
      access_line t (line lsl t.line_bits) write tag
    done
  end

let access_range t ~addr ~size ~write =
  check_open t;
  split_lines t addr size write t.phase;
  flush_spills t

(* Batch entry point, with the same-line run coalescer: a maximal run
   of consecutive single-line records falling in one line is serviced
   as the first record's full demand access — after which the line is
   resident in L1 — plus one O(1) bulk update for the rest
   (Cache.bump_run). The fold is exactly the per-access loop's effect:
   each folded record would hit L1 (nothing between same-line records
   can evict the line), bump the LRU clock and stats, and a write would
   set dirty and overwrite the phase tag, leaving the last writer's.
   Any record touching a different line — including a set conflict that
   would evict the run's line — starts a new run, and multi-line
   records fall back to the split loop. *)
(* Fold records j.. of the batch while they stay single-line records on
   [first]; apply the accumulated run as one bulk update, and return
   the index of the first record not folded. Tail-recursive: the whole
   batch loop runs without allocating. *)
let rec fold_run t addrs sizes metas n lb first j count dirty ltag =
  let continues =
    j < n
    &&
    let a = Array.unsafe_get addrs j in
    let s = Array.unsafe_get sizes j in
    s > 0 && a lsr lb = first && (a + s - 1) lsr lb = first
  in
  if continues then begin
    let mj = Array.unsafe_get metas j in
    if mj land 1 = 1 then
      fold_run t addrs sizes metas n lb first (j + 1) (count + 1) true (mj asr 1)
    else fold_run t addrs sizes metas n lb first (j + 1) (count + 1) dirty ltag
  end
  else begin
    if count > 0 then begin
      t.accesses <- t.accesses + count;
      t.visits1 <- t.visits1 + count;
      Cache.bump_run t.l1 ~addr:(first lsl lb) ~count ~dirty ~tag:ltag
    end;
    j
  end

let rec run_records t addrs sizes metas n lb i =
  if i < n then begin
    let addr = Array.unsafe_get addrs i in
    let size = Array.unsafe_get sizes i in
    let m = Array.unsafe_get metas i in
    if size <= 0 then run_records t addrs sizes metas n lb (i + 1)
    else begin
      let first = addr lsr lb in
      let last = (addr + size - 1) lsr lb in
      if first = last then begin
        t.accesses <- t.accesses + 1;
        access_line t (first lsl lb) (m land 1 = 1) (m asr 1);
        (* Only enter the coalescer if the next record actually
           continues on this line; the common non-coalescible record
           skips the fold_run call entirely. *)
        let j = i + 1 in
        let continues =
          j < n
          &&
          let a = Array.unsafe_get addrs j in
          let s = Array.unsafe_get sizes j in
          s > 0 && a lsr lb = first && (a + s - 1) lsr lb = first
        in
        if continues then
          let j = fold_run t addrs sizes metas n lb first j 0 false 0 in
          run_records t addrs sizes metas n lb j
        else run_records t addrs sizes metas n lb j
      end
      else begin
        split_lines t addr size (m land 1 = 1) (m asr 1);
        run_records t addrs sizes metas n lb (i + 1)
      end
    end
  end

let access_run t (b : Kg_mem.Port.batch) =
  check_open t;
  run_records t b.Kg_mem.Port.addrs b.Kg_mem.Port.sizes b.Kg_mem.Port.metas
    b.Kg_mem.Port.len t.line_bits 0;
  flush_spills t

(* Drain writeback order is deterministic: each level is invalidated in
   ascending way-index order (Cache.invalidate_all) and its victims
   cascade immediately, L1 first, then L2, then L3. *)
let drain t =
  if not t.drained then begin
    for lvl = 0 to 2 do
      let wbs = Cache.invalidate_all t.levels.(lvl) in
      List.iter
        (fun (wb : Cache.writeback) -> cascade t (lvl + 1) wb.Cache.wb_addr wb.Cache.wb_tag)
        wbs
    done;
    flush_spills t;
    t.drained <- true
  end

let drained t = t.drained
let reopen t = t.drained <- false

let level_stats t = Array.map Cache.stats t.levels

(* Folded from the visit counters: level latencies are accumulated as
   integer visit counts and multiplied out here. For latencies that are
   exact multiples of 0.5 (the defaults: 1.0 / 2.0 / 7.5 ns) every
   partial sum of the old one-float-add-per-visit accumulation is
   exactly representable, so this fold is bit-identical to it — the
   rendered figures depending on hit time stay byte-identical. *)
let hit_time_ns t =
  (float_of_int t.visits1 *. Cache.latency_ns t.l1)
  +. (float_of_int t.visits2 *. Cache.latency_ns t.l2)
  +. (float_of_int t.visits3 *. Cache.latency_ns t.l3)

let accesses t = t.accesses
