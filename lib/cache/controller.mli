(** Memory controller: routes line-granularity accesses to DRAM or PCM
    by physical address and tallies per-device traffic.

    Writes to PCM additionally pass through the wear-leveling layer so
    endurance accounting sees the post-remapping line stream. Per-tag
    write counters back Figure 10 (which phase's writes reach PCM). *)

type t

val create :
  ?dram:Kg_mem.Device.t ->
  ?pcm:Kg_mem.Device.t ->
  ?wear:Kg_mem.Wear.t ->
  ?max_tags:int ->
  ?on_write:(int -> unit) ->
  map:Kg_mem.Address_map.t ->
  line_size:int ->
  unit ->
  t
(** [on_write] observes every line writeback's physical address — the
    hook OS write-partitioning uses to count per-page writes in the
    memory controller. *)

val set_on_write : t -> (int -> unit) -> unit

val map : t -> Kg_mem.Address_map.t
val line_size : t -> int

val line_read : t -> int -> unit
(** Service a line fetch at the given physical address. *)

val line_write : t -> int -> tag:int -> unit
(** Service a line writeback. [tag] identifies the phase that produced
    the dirty data. *)

val line_read_run : t -> addrs:int array -> len:int -> unit
(** Service the first [len] addresses of [addrs] as line fetches, in
    order. Equivalent to [len] calls of {!line_read} (bit-identical
    time/energy accumulation), with the address-map bounds and device
    constants hoisted out of the loop. *)

val line_write_run : t -> addrs:int array -> tags:int array -> len:int -> unit
(** Same for line writebacks: element [i] of [addrs]/[tags] is one
    {!line_write}. The [on_write] hook and wear accounting fire per
    event, in order. *)

val reads : t -> Kg_mem.Device.kind -> int
val writes : t -> Kg_mem.Device.kind -> int

val writes_by_tag : t -> Kg_mem.Device.kind -> int array
(** Per-phase write counts (copy). Index = tag. *)

val bytes_written : t -> Kg_mem.Device.kind -> int
val bytes_read : t -> Kg_mem.Device.kind -> int

val access_time_ns : t -> float
(** Sum of device latencies over all serviced accesses: the raw,
    no-overlap memory time used by the time model. *)

val access_energy_j : t -> float
(** Dynamic energy of all serviced accesses. *)

val device : t -> Kg_mem.Device.kind -> Kg_mem.Device.t

val reset : t -> unit
