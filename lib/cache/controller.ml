open Kg_mem

(* Accumulated device time/energy live in a 2-slot float array (slot 0:
   time_ns, slot 1: energy_j) rather than mutable float fields: float
   arrays are unboxed, so the per-event accumulation allocates nothing,
   while performing the same additions in the same order as the old
   per-field code — the sums stay bit-identical. Per-event energies are
   precomputed once at creation (the same doubles Device.read_energy_j
   would produce on every call). *)
type t = {
  map : Address_map.t;
  dram : Device.t;
  pcm : Device.t;
  wear : Wear.t option;
  line_size : int;
  dram_base : int;
  dram_limit : int;
  pcm_base : int;
  pcm_limit : int;
  mutable dram_reads : int;
  mutable dram_writes : int;
  mutable pcm_reads : int;
  mutable pcm_writes : int;
  dram_tag_writes : int array;
  pcm_tag_writes : int array;
  acc : float array;
  lat : float array;  (* 0: dram read, 1: dram write, 2: pcm read, 3: pcm write *)
  energy : float array;  (* same slots *)
  mutable on_write : int -> unit;
}

let create ?(dram = Device.dram) ?(pcm = Device.pcm) ?wear ?(max_tags = 8)
    ?(on_write = fun _ -> ()) ~map ~line_size () =
  let dram_base, dram_limit = Address_map.dram_bounds map in
  let pcm_base, pcm_limit = Address_map.pcm_bounds map in
  {
    map;
    dram;
    pcm;
    wear;
    line_size;
    dram_base;
    dram_limit;
    pcm_base;
    pcm_limit;
    dram_reads = 0;
    dram_writes = 0;
    pcm_reads = 0;
    pcm_writes = 0;
    dram_tag_writes = Array.make max_tags 0;
    pcm_tag_writes = Array.make max_tags 0;
    acc = [| 0.0; 0.0 |];
    lat =
      [|
        dram.Device.read_latency_ns;
        dram.Device.write_latency_ns;
        pcm.Device.read_latency_ns;
        pcm.Device.write_latency_ns;
      |];
    energy =
      [|
        Device.read_energy_j dram;
        Device.write_energy_j dram;
        Device.read_energy_j pcm;
        Device.write_energy_j pcm;
      |];
    on_write;
  }

let set_on_write t f = t.on_write <- f

let map t = t.map
let line_size t = t.line_size

let device t = function Device.Dram -> t.dram | Device.Pcm -> t.pcm

(* An address outside both regions must raise exactly as the routing
   match did: Address_map.kind_of supplies the error. *)
let[@inline never] unmapped t addr = ignore (Address_map.kind_of t.map addr)

let line_read t addr =
  if addr >= t.dram_base && addr < t.dram_limit then begin
    t.dram_reads <- t.dram_reads + 1;
    t.acc.(0) <- t.acc.(0) +. Array.unsafe_get t.lat 0;
    t.acc.(1) <- t.acc.(1) +. Array.unsafe_get t.energy 0
  end
  else if addr >= t.pcm_base && addr < t.pcm_limit then begin
    t.pcm_reads <- t.pcm_reads + 1;
    t.acc.(0) <- t.acc.(0) +. Array.unsafe_get t.lat 2;
    t.acc.(1) <- t.acc.(1) +. Array.unsafe_get t.energy 2
  end
  else unmapped t addr

let[@inline] record_pcm_wear t addr =
  match t.wear with
  | None -> ()
  | Some w ->
    let off = addr - t.pcm_base in
    if off >= 0 && off < t.pcm_limit - t.pcm_base then Wear.record_write w off

let line_write t addr ~tag =
  t.on_write addr;
  if addr >= t.dram_base && addr < t.dram_limit then begin
    t.dram_writes <- t.dram_writes + 1;
    if tag < Array.length t.dram_tag_writes then
      t.dram_tag_writes.(tag) <- t.dram_tag_writes.(tag) + 1;
    t.acc.(0) <- t.acc.(0) +. Array.unsafe_get t.lat 1;
    t.acc.(1) <- t.acc.(1) +. Array.unsafe_get t.energy 1
  end
  else if addr >= t.pcm_base && addr < t.pcm_limit then begin
    t.pcm_writes <- t.pcm_writes + 1;
    if tag < Array.length t.pcm_tag_writes then
      t.pcm_tag_writes.(tag) <- t.pcm_tag_writes.(tag) + 1;
    record_pcm_wear t addr;
    t.acc.(0) <- t.acc.(0) +. Array.unsafe_get t.lat 3;
    t.acc.(1) <- t.acc.(1) +. Array.unsafe_get t.energy 3
  end
  else unmapped t addr

(* Batch entry points for the cache kernel's miss/writeback spills: the
   region bounds and per-event constants are hoisted out of the loop
   (the same trick the Counting port sink uses), the int tallies fold
   in locals, and only the order-sensitive float accumulation still
   runs per event — same additions, same order, so time and energy
   stay bit-identical to the one-call-per-line path. *)
let line_read_run t ~addrs ~len =
  let dram_base = t.dram_base and dram_limit = t.dram_limit in
  let pcm_base = t.pcm_base and pcm_limit = t.pcm_limit in
  let lat_d = Array.unsafe_get t.lat 0 and lat_p = Array.unsafe_get t.lat 2 in
  let e_d = Array.unsafe_get t.energy 0 and e_p = Array.unsafe_get t.energy 2 in
  let acc = t.acc in
  let dr = ref 0 and pr = ref 0 in
  for i = 0 to len - 1 do
    let addr = Array.unsafe_get addrs i in
    if addr >= dram_base && addr < dram_limit then begin
      incr dr;
      Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. lat_d);
      Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. e_d)
    end
    else if addr >= pcm_base && addr < pcm_limit then begin
      incr pr;
      Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. lat_p);
      Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. e_p)
    end
    else unmapped t addr
  done;
  t.dram_reads <- t.dram_reads + !dr;
  t.pcm_reads <- t.pcm_reads + !pr

let line_write_run t ~addrs ~tags ~len =
  let dram_base = t.dram_base and dram_limit = t.dram_limit in
  let pcm_base = t.pcm_base and pcm_limit = t.pcm_limit in
  let lat_d = Array.unsafe_get t.lat 1 and lat_p = Array.unsafe_get t.lat 3 in
  let e_d = Array.unsafe_get t.energy 1 and e_p = Array.unsafe_get t.energy 3 in
  let acc = t.acc in
  let dram_tags = t.dram_tag_writes and pcm_tags = t.pcm_tag_writes in
  let n_dram_tags = Array.length dram_tags and n_pcm_tags = Array.length pcm_tags in
  let dw = ref 0 and pw = ref 0 in
  for i = 0 to len - 1 do
    let addr = Array.unsafe_get addrs i in
    let tag = Array.unsafe_get tags i in
    t.on_write addr;
    if addr >= dram_base && addr < dram_limit then begin
      incr dw;
      if tag < n_dram_tags then dram_tags.(tag) <- dram_tags.(tag) + 1;
      Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. lat_d);
      Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. e_d)
    end
    else if addr >= pcm_base && addr < pcm_limit then begin
      incr pw;
      if tag < n_pcm_tags then pcm_tags.(tag) <- pcm_tags.(tag) + 1;
      record_pcm_wear t addr;
      Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. lat_p);
      Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. e_p)
    end
    else unmapped t addr
  done;
  t.dram_writes <- t.dram_writes + !dw;
  t.pcm_writes <- t.pcm_writes + !pw

let reads t = function Device.Dram -> t.dram_reads | Device.Pcm -> t.pcm_reads
let writes t = function Device.Dram -> t.dram_writes | Device.Pcm -> t.pcm_writes

let writes_by_tag t = function
  | Device.Dram -> Array.copy t.dram_tag_writes
  | Device.Pcm -> Array.copy t.pcm_tag_writes

let bytes_written t kind = writes t kind * t.line_size
let bytes_read t kind = reads t kind * t.line_size
let access_time_ns t = t.acc.(0)
let access_energy_j t = t.acc.(1)

let reset t =
  t.dram_reads <- 0;
  t.dram_writes <- 0;
  t.pcm_reads <- 0;
  t.pcm_writes <- 0;
  Array.fill t.dram_tag_writes 0 (Array.length t.dram_tag_writes) 0;
  Array.fill t.pcm_tag_writes 0 (Array.length t.pcm_tag_writes) 0;
  t.acc.(0) <- 0.0;
  t.acc.(1) <- 0.0
