type region = { base : int; size : int; kind : Device.kind }

(* Maps have at most one DRAM and one PCM region, so lookups reduce to
   two range checks; [kind_of] runs on every simulated memory event. *)
type t = {
  regions : region list;
  dram_base_ : int;
  dram_limit : int;
  pcm_base_ : int;
  pcm_limit : int;
}

let gib = Kg_util.Units.gib

let of_regions regions =
  let find kind =
    match List.find_opt (fun r -> r.kind = kind) regions with
    | Some r -> (r.base, r.base + r.size)
    | None -> (-1, -1)
  in
  let dram_base_, dram_limit = find Device.Dram in
  let pcm_base_, pcm_limit = find Device.Pcm in
  { regions; dram_base_; dram_limit; pcm_base_; pcm_limit }

let dram_only ?(size = 32 * gib) () = of_regions [ { base = 0; size; kind = Dram } ]
let pcm_only ?(size = 32 * gib) () = of_regions [ { base = 0; size; kind = Pcm } ]

let hybrid ?(dram_size = gib) ?(pcm_size = 32 * gib) () =
  of_regions
    [
      { base = 0; size = dram_size; kind = Dram };
      { base = dram_size; size = pcm_size; kind = Pcm };
    ]

let kind_of t addr =
  if addr >= t.dram_base_ && addr < t.dram_limit then Device.Dram
  else if addr >= t.pcm_base_ && addr < t.pcm_limit then Device.Pcm
  else invalid_arg (Printf.sprintf "Address_map.kind_of: address %#x unmapped" addr)

let dram_bounds t = (t.dram_base_, t.dram_limit)
let pcm_bounds t = (t.pcm_base_, t.pcm_limit)

let dram_base t =
  if t.dram_base_ < 0 then invalid_arg "Address_map.dram_base: map has no such region"
  else t.dram_base_

let pcm_base t =
  if t.pcm_base_ < 0 then invalid_arg "Address_map.pcm_base: map has no such region"
  else t.pcm_base_

let dram_size t = if t.dram_base_ < 0 then 0 else t.dram_limit - t.dram_base_
let pcm_size t = if t.pcm_base_ < 0 then 0 else t.pcm_limit - t.pcm_base_
let total_size t = List.fold_left (fun acc r -> acc + r.size) 0 t.regions
