(** Physical address maps for the three memory systems of Table 2.

    A map partitions the physical address space into device-backed
    regions. The heap places spaces into one device or the other by
    allocating their virtual ranges inside the matching region; the
    memory controller consults the map to route each line writeback. *)

type t

val dram_only : ?size:int -> unit -> t
(** 32 GB DRAM-only system (size overridable for tests). *)

val pcm_only : ?size:int -> unit -> t
(** 32 GB PCM-only system. *)

val hybrid : ?dram_size:int -> ?pcm_size:int -> unit -> t
(** 1 GB DRAM + 32 GB PCM. DRAM occupies the low addresses, PCM the
    range above it. *)

val kind_of : t -> int -> Device.kind
(** Device backing the given physical address. Raises
    [Invalid_argument] for addresses outside the map. *)

val dram_bounds : t -> int * int
(** [(base, limit)] of the DRAM region, [(-1, -1)] if the map has
    none. Batch consumers hoist these out of their per-record loops
    instead of calling {!kind_of} per access. *)

val pcm_bounds : t -> int * int
(** [(base, limit)] of the PCM region, [(-1, -1)] if the map has none. *)

val dram_base : t -> int
(** Base address of the DRAM region, or raises if the map has none. *)

val pcm_base : t -> int
(** Base address of the PCM region, or raises if the map has none. *)

val dram_size : t -> int
(** Bytes of DRAM in the map (0 if none). *)

val pcm_size : t -> int
(** Bytes of PCM in the map (0 if none). *)

val total_size : t -> int
