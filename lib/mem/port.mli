(** Batched memory port: the single path by which simulated heap
    traffic reaches the devices.

    Producers append flat access records (addr / size / write flag /
    phase tag) into a per-port ring buffer with no allocation and no
    closure dispatch; a full buffer — or an explicit {!flush} — hands
    the whole batch to a {!sink} pipeline in one call. Deliveries
    happen strictly in issue order, so any sink observes exactly the
    access stream a per-access interface would have seen.

    Sinks are a concrete variant: [Null] discards, [Counting] tallies
    raw per-device bytes (the architecture-independent measurements),
    [Cache_sim] forwards the batch to a driver installed once at
    creation (the cache hierarchy, which lives in a library above this
    one), and [Tee] duplicates the batch to two sinks — making trace
    capture or auxiliary metrics free when not composed in. *)

type batch = {
  mutable len : int;
  addrs : int array;
  sizes : int array;
  metas : int array;  (** bit 0: write flag; bits 1+: phase tag *)
  seqs : int array;
      (** issue-order stamps from a {!sequenced_group}; all zero for a
          standalone port *)
}

val meta : write:bool -> tag:int -> int
(** Pack a write flag and phase tag into a record meta word. *)

val is_write : int -> bool
val tag_of : int -> int

type counters = {
  mutable dram_read_bytes : int;
  mutable dram_write_bytes : int;
  mutable pcm_read_bytes : int;
  mutable pcm_write_bytes : int;
  pcm_write_bytes_by_phase : int array;  (** indexed by phase tag *)
}

val fresh_counters : phases:int -> counters

type stats = {
  s_dram_read_bytes : int;
  s_dram_write_bytes : int;
  s_pcm_read_bytes : int;
  s_pcm_write_bytes : int;
  s_pcm_write_bytes_by_phase : int array;
}
(** The one typed view of sink traffic that consumers (the run driver,
    figure tables) read, whatever sink produced it. *)

val zero_stats : phases:int -> stats
val stats_of_counters : counters -> stats

type driver = {
  run : batch -> unit;  (** deliver one batch; called once per flush *)
  drv_stats : unit -> stats;
}

type sink =
  | Null
  | Counting of Address_map.t * counters
  | Cache_sim of driver
  | Tee of sink * sink

val count_batch : Address_map.t -> counters -> batch -> unit
(** The shared counting implementation (also used by [Counting]). *)

val deliver : sink -> batch -> unit

type t

val default_capacity : int

val create : ?capacity:int -> sink:sink -> unit -> t
val sink : t -> sink
val set_sink : t -> sink -> unit
val capacity : t -> int

val sequenced_group : ?capacity:int -> sink:sink -> int -> t array
(** [sequenced_group ~sink n] creates [n] ports (one per mutator
    domain) sharing [sink] and a group-wide issue counter. Every
    record appended through a member is stamped with the next counter
    value; flushing any member merges the buffered records of all
    members by stamp and delivers them as one batch, so the sink sees
    a single global total order regardless of which member's buffer
    filled first. *)

val merge : batch array -> batch
(** [merge bs] is one batch holding every record of [bs] ordered by
    ascending issue stamp. Each input must itself be stamp-ascending
    (as per-member buffers are); stamps must be unique across inputs.
    The result is independent of the order of [bs] — the
    permutation-stability property the test suite checks. *)

val group_seq : t -> int option
(** Next issue stamp of the port's group, or [None] for a standalone
    port. Exposes merge progress to the differential tests. *)

val read : t -> addr:int -> size:int -> unit
(** Append one read record tagged with the current phase. *)

val write : t -> addr:int -> size:int -> unit
(** Append one write record tagged with the current phase. *)

val flush : t -> unit
(** Deliver any buffered records to the sink, in issue order. *)

val set_phase_tag : t -> int -> unit
(** Tag subsequent records with the given phase id. Takes effect
    immediately — records already buffered keep the tag they were
    issued under. *)

val phase_tag : t -> int

val stats : ?phases:int -> t -> stats
(** Flush, then read the sink's traffic totals. [phases] sizes the
    per-phase array for sinks that track none (default 8). For [Tee]
    the left (primary) arm answers. *)
