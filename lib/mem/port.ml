(* Batched memory port.

   Producers (the GC runtime, heap copy/zeroing paths, the OS write
   partition) append flat access records — addr, size, write flag and
   phase tag packed into parallel int arrays — into a per-port ring
   buffer. When the buffer fills (or on an explicit [flush]) the whole
   batch is delivered to a sink pipeline in one call, so line splitting
   and per-access dispatch happen once per batch instead of once per
   access. Sinks are a concrete variant, not a record of closures: the
   flush loop for [Null] and [Counting] is fully monomorphic here, and
   [Cache_sim] carries a per-batch driver installed once at port
   creation (the cache simulator lives in a library above this one, so
   it plugs in through the driver record — still one indirect call per
   batch, never one per access). *)

type batch = {
  mutable len : int;
  addrs : int array;
  sizes : int array;
  metas : int array;  (* bit 0: write flag; bits 1+: phase tag *)
  seqs : int array;  (* issue-order tags; only meaningful in groups *)
}

let meta ~write ~tag = (tag lsl 1) lor (if write then 1 else 0)
let is_write m = m land 1 = 1
let tag_of m = m asr 1

type counters = {
  mutable dram_read_bytes : int;
  mutable dram_write_bytes : int;
  mutable pcm_read_bytes : int;
  mutable pcm_write_bytes : int;
  pcm_write_bytes_by_phase : int array;
}

let fresh_counters ~phases =
  {
    dram_read_bytes = 0;
    dram_write_bytes = 0;
    pcm_read_bytes = 0;
    pcm_write_bytes = 0;
    pcm_write_bytes_by_phase = Array.make phases 0;
  }

type stats = {
  s_dram_read_bytes : int;
  s_dram_write_bytes : int;
  s_pcm_read_bytes : int;
  s_pcm_write_bytes : int;
  s_pcm_write_bytes_by_phase : int array;
}

let zero_stats ~phases =
  {
    s_dram_read_bytes = 0;
    s_dram_write_bytes = 0;
    s_pcm_read_bytes = 0;
    s_pcm_write_bytes = 0;
    s_pcm_write_bytes_by_phase = Array.make phases 0;
  }

let stats_of_counters c =
  {
    s_dram_read_bytes = c.dram_read_bytes;
    s_dram_write_bytes = c.dram_write_bytes;
    s_pcm_read_bytes = c.pcm_read_bytes;
    s_pcm_write_bytes = c.pcm_write_bytes;
    s_pcm_write_bytes_by_phase = Array.copy c.pcm_write_bytes_by_phase;
  }

type driver = {
  run : batch -> unit;
  drv_stats : unit -> stats;
}

type sink =
  | Null
  | Counting of Address_map.t * counters
  | Cache_sim of driver
  | Tee of sink * sink

(* The one counting implementation: raw per-device byte tallies with
   PCM writes attributed to the phase recorded at issue time. Both the
   standalone counting port (architecture-independent figures) and any
   [Tee]d metrics ride through here, so the two can never drift.

   Routing is the whole per-record cost, and this is where the batch
   interface beats per-access dispatch. The region bounds are hoisted
   out of the loop, and the loop body is branchless: device and write
   bits select a slot in a per-batch accumulator array and mask the
   size, so a random device/write mix causes no mispredicted branches
   (per-access dispatch stalls on exactly those). The accumulators
   fold into [c] once per delivery. Unmapped addresses contribute
   nothing; they are detected by count and re-walked through
   [Address_map.kind_of] for its error after the counted records are
   committed. *)
let count_batch map c (b : batch) =
  let dram_base, dram_limit = Address_map.dram_bounds map in
  let pcm_base, pcm_limit = Address_map.pcm_bounds map in
  (* Slots: 0 dram-read, 1 dram-write, 2 pcm-read, 3 pcm-write. *)
  let acc = [| 0; 0; 0; 0 |] in
  let by_phase = c.pcm_write_bytes_by_phase in
  let unmapped = ref 0 in
  for i = 0 to b.len - 1 do
    let addr = Array.unsafe_get b.addrs i in
    let size = Array.unsafe_get b.sizes i in
    let m = Array.unsafe_get b.metas i in
    let w = m land 1 in
    let d =
      Bool.to_int (addr >= dram_base) land Bool.to_int (addr < dram_limit)
    in
    let p = Bool.to_int (addr >= pcm_base) land Bool.to_int (addr < pcm_limit)
    in
    let mapped = d lor p in
    let slot = (p lsl 1) lor w in
    Array.unsafe_set acc slot (Array.unsafe_get acc slot + (size land -mapped));
    (* Phase attribution only applies to PCM writes: mask both the tag
       and the size so other records add 0 to slot 0. The tag access
       stays bounds-checked — an out-of-range phase tag must still
       raise, exactly as the per-access path did. *)
    let pw = p land w in
    let t = tag_of m land -pw in
    by_phase.(t) <- by_phase.(t) + (size land -pw);
    unmapped := !unmapped + (1 - mapped)
  done;
  c.dram_read_bytes <- c.dram_read_bytes + Array.unsafe_get acc 0;
  c.dram_write_bytes <- c.dram_write_bytes + Array.unsafe_get acc 1;
  c.pcm_read_bytes <- c.pcm_read_bytes + Array.unsafe_get acc 2;
  c.pcm_write_bytes <- c.pcm_write_bytes + Array.unsafe_get acc 3;
  if !unmapped > 0 then
    for i = 0 to b.len - 1 do
      ignore (Address_map.kind_of map (Array.unsafe_get b.addrs i))
    done

let rec deliver sink b =
  match sink with
  | Null -> ()
  | Counting (map, c) -> count_batch map c b
  | Cache_sim d -> d.run b
  | Tee (a, b') ->
    deliver a b;
    deliver b' b

(* A sequenced group ties N ports (one per mutator domain) to one
   shared sink. Every append through a member port is stamped with the
   next value of the group-wide issue counter, and flushing ANY member
   merges the buffered records of ALL members by that stamp before a
   single delivery — so the sink observes one global total order no
   matter which member's buffer happened to fill first. The counter is
   a plain mutable int: records are only issued from the deterministic
   apply loop (one domain at a time), never concurrently. *)
type group = {
  mutable next_seq : int;
  mutable members : t list;
}

and t = {
  batch : batch;
  mutable sink : sink;
  mutable phase_tag : int;
  mutable group : group option;
}

let default_capacity = 1024

let create ?(capacity = default_capacity) ~sink () =
  if capacity <= 0 then invalid_arg "Port.create: capacity must be positive";
  {
    batch =
      {
        len = 0;
        addrs = Array.make capacity 0;
        sizes = Array.make capacity 0;
        metas = Array.make capacity 0;
        seqs = Array.make capacity 0;
      };
    sink;
    phase_tag = 0;
    group = None;
  }

let sink t = t.sink
let set_sink t s = t.sink <- s
let capacity t = Array.length t.batch.addrs

(* Merge member batches into one batch ordered by issue stamp. Each
   member's buffer is already ascending in [seqs] (the group counter is
   monotonic), so this is a k-way merge of sorted runs. Stamps are
   unique, which makes the result a total order independent of the
   arrival order of the input batches — the property the QCheck suite
   pins down. *)
let merge (batches : batch array) : batch =
  let k = Array.length batches in
  let total = Array.fold_left (fun a b -> a + b.len) 0 batches in
  let out =
    {
      len = total;
      addrs = Array.make (max total 1) 0;
      sizes = Array.make (max total 1) 0;
      metas = Array.make (max total 1) 0;
      seqs = Array.make (max total 1) 0;
    }
  in
  let pos = Array.make k 0 in
  for i = 0 to total - 1 do
    (* Pick the member whose next un-consumed record has the smallest
       stamp. k is the domain count (tiny), so a linear scan beats a
       heap here. *)
    let best = ref (-1) in
    let best_seq = ref max_int in
    for j = 0 to k - 1 do
      let b = batches.(j) in
      if pos.(j) < b.len && b.seqs.(pos.(j)) < !best_seq then begin
        best := j;
        best_seq := b.seqs.(pos.(j))
      end
    done;
    let b = batches.(!best) in
    let p = pos.(!best) in
    out.addrs.(i) <- b.addrs.(p);
    out.sizes.(i) <- b.sizes.(p);
    out.metas.(i) <- b.metas.(p);
    out.seqs.(i) <- b.seqs.(p);
    pos.(!best) <- p + 1
  done;
  out

let flush_group g sink =
  let pending =
    List.filter (fun m -> m.batch.len > 0) g.members |> Array.of_list
  in
  if Array.length pending > 0 then begin
    let merged = merge (Array.map (fun m -> m.batch) pending) in
    deliver sink merged;
    Array.iter (fun m -> m.batch.len <- 0) pending
  end

let flush t =
  match t.group with
  | Some g -> flush_group g t.sink
  | None ->
    let b = t.batch in
    if b.len > 0 then begin
      deliver t.sink b;
      b.len <- 0
    end

let sequenced_group ?(capacity = default_capacity) ~sink n =
  if n <= 0 then invalid_arg "Port.sequenced_group: n must be positive";
  let g = { next_seq = 0; members = [] } in
  let members =
    Array.init n (fun _ ->
        let p = create ~capacity ~sink () in
        p.group <- Some g;
        p)
  in
  g.members <- Array.to_list members;
  members

let group_seq t =
  match t.group with None -> None | Some g -> Some g.next_seq

let[@inline] append t ~addr ~size m =
  let b = t.batch in
  if b.len = Array.length b.addrs then flush t;
  let i = b.len in
  Array.unsafe_set b.addrs i addr;
  Array.unsafe_set b.sizes i size;
  Array.unsafe_set b.metas i m;
  (match t.group with
  | None -> ()
  | Some g ->
    Array.unsafe_set b.seqs i g.next_seq;
    g.next_seq <- g.next_seq + 1);
  b.len <- i + 1

let[@inline] read t ~addr ~size = append t ~addr ~size (t.phase_tag lsl 1)
let[@inline] write t ~addr ~size = append t ~addr ~size ((t.phase_tag lsl 1) lor 1)

let set_phase_tag t tag = t.phase_tag <- tag
let phase_tag t = t.phase_tag

let rec sink_stats ~phases = function
  | Null -> zero_stats ~phases
  | Counting (_, c) -> stats_of_counters c
  | Cache_sim d -> d.drv_stats ()
  | Tee (a, _) -> sink_stats ~phases a

let stats ?(phases = 8) t =
  flush t;
  sink_stats ~phases t.sink
