(** Large object space with a treadmill (§3).

    Objects above the 8 KB threshold are never bump-allocated; they
    live on a doubly-linked treadmill of two lists. Collection snaps
    live references from the from-list onto the to-list and reclaims
    whatever was left unsnapped, so large objects are never copied.
    KG-W keeps one treadmill in DRAM and one in PCM and moves written
    objects between them by unsnapping from one list and snapping onto
    the other (§4.2.4). *)

type t

val create :
  words:Object_model.store -> id:int -> name:string -> arena:Arena.t -> t

val id : t -> int
val name : t -> string
val kind : t -> Kg_mem.Device.kind

val alloc : t -> Object_model.t -> bool
(** Reserve page-granularity storage from the arena and snap the object
    onto the from-list. Returns [false] when the arena is exhausted. *)

val adopt : t -> Object_model.t -> unit
(** Take over an object from another space: give it a fresh address
    here and snap it on (the KG-W large PCM -> large DRAM move, and
    promotion of nursery-resident large objects under LOO). *)

val collect :
  t ->
  now:float ->
  keep:(Object_model.t -> bool) ->
  ?on_dead:(Object_model.t -> unit) ->
  unit ->
  Object_model.t list
(** Treadmill collection: objects that are oracle-live at [now] and for
    which [keep] answers [true] are snapped to the to-list (which then
    becomes the from-list); dead ones are reclaimed; live ones with
    [keep o = false] are unsnapped and returned for the caller to move
    elsewhere. *)

val iter : t -> (Object_model.t -> unit) -> unit
(** Visit every resident object (from-list order). *)

val live_bytes : t -> int
val object_count : t -> int
val allocated_bytes_total : t -> int
(** Cumulative allocation volume into this space (drives the LOO
    allocation-rate comparison, §4.2.4). *)
