type t = {
  kind : Kg_mem.Device.kind;
  base : int;
  limit : int;
  mutable cursor : int;
  (* Spaces shared across mutator domains (the sharded Immix mature
     space, the large object spaces) may grow from different domains;
     the bump cursor is the only mutable word, so one lock suffices. *)
  lock : Mutex.t;
}

let create ~kind ~base ~size =
  { kind; base; limit = base + size; cursor = base; lock = Mutex.create () }

let kind t = t.kind

let reserve ?(who = "?") t bytes =
  let bytes = Layout.align_up bytes Layout.page in
  Mutex.lock t.lock;
  if t.cursor + bytes > t.limit then begin
    let left = t.limit - t.cursor in
    let reserved = t.cursor - t.base in
    Mutex.unlock t.lock;
    failwith
      (Printf.sprintf
         "Arena.reserve: %s arena exhausted (%s requested %d, %d left; %d reserved of %d limit)"
         (Kg_mem.Device.kind_to_string t.kind) who bytes left reserved
         (t.limit - t.base))
  end;
  let addr = t.cursor in
  t.cursor <- t.cursor + bytes;
  Mutex.unlock t.lock;
  addr

let reserved_bytes t = t.cursor - t.base
let remaining t = t.limit - t.cursor
let base t = t.base
let limit t = t.limit
