(** Contiguous bump-pointer space: the copying nursery and the KG-W
    observer space.

    Holds the resident object population (as flat-word indices into
    the store given at creation); the collector copies survivors out
    and [reset] recycles the whole region. *)

type t

val create :
  words:Object_model.store ->
  id:int -> name:string -> arena:Arena.t -> size:int -> t
(** Reserve [size] bytes from [arena]; object metadata lives in
    [words]. *)

val id : t -> int
val name : t -> string
val size : t -> int
val base : t -> int
val kind : t -> Kg_mem.Device.kind

val alloc : t -> Object_model.t -> bool
(** Bump-allocate the object; set its [addr]/[space] and register it.
    Returns [false] (heap unchanged) when the space is full. *)

val free_bytes : t -> int
val used_bytes : t -> int
val is_empty : t -> bool

val objects : t -> Object_model.t Kg_util.Vec.t
(** Resident objects in allocation order. The collector consumes this
    during a collection and must call {!reset} afterwards. *)

val reset : t -> unit
(** Drop all residents and rewind the bump pointer. *)

val live_bytes : t -> now:float -> int
(** Oracle-live bytes currently resident (for survival statistics). *)
