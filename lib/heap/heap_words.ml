(* The flat-word heap: all object metadata lives in packed words inside
   flat Bigarray tables, and an object is a dense integer index into
   them.  Allocation bump-advances the table cursor, so the simulator's
   own bookkeeping stops allocating on the host heap and scans become
   linear sweeps (the lhc nursery.c / Nofl side-table layout).

   Tables (one word per object each):
     hdr   packed header: size, heat, space, written/marked flags,
           ref_fields (layout below)
     addr  current virtual address (-1 while unallocated)
     death oracle death time, an IEEE double kept bit-exact in a
           float64 table
     ctr   packed counters: age, epoch_writes, writes

   Header word layout (host ints are 63-bit, all fields fit):
     bits  0..27  size            (bytes, <= 256 MiB)
     bits 28..29  heat            (0 cold, 1 warm, 2 hot)
     bits 30..33  space + 1       (0 encodes the unallocated -1)
     bit  34      written
     bit  35      marked
     bits 36..57  ref_fields      (<= 4 M reference slots)

   Counter word layout:
     bits  0..11  age             (collections survived, < 4096)
     bits 12..31  epoch_writes    (< 2^20)
     bits 32..61  writes          (lifetime count, < 2^30)

   The counters are instrumentation and policy inputs (threshold
   comparisons, the Figure 2 ranking), not identities, so incrementers
   saturate at the [max_*] field capacities instead of overflowing on
   very long runs; the setters still reject out-of-range values as
   caller bugs.

   Index 0 is reserved as the null object, so indices coincide with the
   1-based object ids the runtime has always emitted into traces.  The
   accessors use unsafe Bigarray indexing guarded by asserts that the
   release profile strips with [-noassert]. *)

type heat = Cold | Warm | Hot

type int_table = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type float_table = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable hdr : int_table;
  mutable addr : int_table;
  mutable death : float_table;
  mutable ctr : int_table;
  mutable next : int;  (* bump cursor: next fresh index *)
}

let size_bits = 28
let heat_shift = size_bits
let space_shift = heat_shift + 2
let written_shift = space_shift + 4
let marked_shift = written_shift + 1
let ref_shift = marked_shift + 1

let size_mask = (1 lsl size_bits) - 1
let heat_mask = 3
let space_mask = 15
let ref_mask = (1 lsl 22) - 1

let age_bits = 12
let epoch_shift = age_bits
let writes_shift = 32
let age_mask = (1 lsl age_bits) - 1
let epoch_mask = (1 lsl 20) - 1

let max_age = age_mask
let max_epoch_writes = epoch_mask
let max_writes = (1 lsl 30) - 1

let int_table n : int_table = Bigarray.(Array1.create int c_layout n)
let float_table n : float_table = Bigarray.(Array1.create float64 c_layout n)

let create ?(capacity = 4096) () =
  let capacity = max 16 capacity in
  { hdr = int_table capacity;
    addr = int_table capacity;
    death = float_table capacity;
    ctr = int_table capacity;
    next = 1 }

let capacity t = Bigarray.Array1.dim t.hdr
let length t = t.next - 1

(* Table growth may move the storage, so it must never race with
   concurrent readers; the runtime only creates objects from the
   sequential apply/boot phases, which upholds this. *)
let grow t =
  let old = capacity t in
  let cap = old * 2 in
  let hdr = int_table cap and addr = int_table cap and ctr = int_table cap in
  let death = float_table cap in
  Bigarray.Array1.(blit t.hdr (sub hdr 0 old));
  Bigarray.Array1.(blit t.addr (sub addr 0 old));
  Bigarray.Array1.(blit t.death (sub death 0 old));
  Bigarray.Array1.(blit t.ctr (sub ctr 0 old));
  t.hdr <- hdr;
  t.addr <- addr;
  t.death <- death;
  t.ctr <- ctr

let heat_code = function Cold -> 0 | Warm -> 1 | Hot -> 2
let heat_of_code = function 0 -> Cold | 1 -> Warm | _ -> Hot

let alloc t ~size ~heat ~death ~ref_fields =
  if size < Layout.min_object then
    invalid_arg "Heap_words.alloc: size below minimum";
  assert (size <= size_mask);
  assert (ref_fields >= 0 && ref_fields <= ref_mask);
  if t.next >= capacity t then grow t;
  let i = t.next in
  t.next <- i + 1;
  let hdr =
    size
    lor (heat_code heat lsl heat_shift)
    (* space = -1, stored as 0 in the +1 encoding *)
  in
  let hdr = hdr lor (ref_fields lsl ref_shift) in
  Bigarray.Array1.unsafe_set t.hdr i hdr;
  Bigarray.Array1.unsafe_set t.addr i (-1);
  Bigarray.Array1.unsafe_set t.death i death;
  Bigarray.Array1.unsafe_set t.ctr i 0;
  i

let check t i = assert (i >= 1 && i < t.next)

let[@inline] hdr_word t i =
  check t i;
  Bigarray.Array1.unsafe_get t.hdr i

let[@inline] set_hdr_word t i v = Bigarray.Array1.unsafe_set t.hdr i v

let[@inline] size t i = hdr_word t i land size_mask
let[@inline] heat t i = heat_of_code (hdr_word t i lsr heat_shift land heat_mask)
let[@inline] ref_fields t i = hdr_word t i lsr ref_shift land ref_mask

let[@inline] space t i = (hdr_word t i lsr space_shift land space_mask) - 1

let[@inline] set_space t i sp =
  assert (sp >= -1 && sp < space_mask);
  let h = hdr_word t i in
  set_hdr_word t i
    (h land lnot (space_mask lsl space_shift) lor ((sp + 1) lsl space_shift))

let[@inline] written t i = hdr_word t i land (1 lsl written_shift) <> 0

let[@inline] set_written t i b =
  let h = hdr_word t i in
  set_hdr_word t i
    (if b then h lor (1 lsl written_shift)
     else h land lnot (1 lsl written_shift))

let[@inline] marked t i = hdr_word t i land (1 lsl marked_shift) <> 0

let[@inline] set_marked t i b =
  let h = hdr_word t i in
  set_hdr_word t i
    (if b then h lor (1 lsl marked_shift)
     else h land lnot (1 lsl marked_shift))

let[@inline] addr t i =
  check t i;
  Bigarray.Array1.unsafe_get t.addr i

let[@inline] set_addr t i a =
  check t i;
  Bigarray.Array1.unsafe_set t.addr i a

let[@inline] death t i =
  check t i;
  Bigarray.Array1.unsafe_get t.death i

let[@inline] ctr_word t i =
  check t i;
  Bigarray.Array1.unsafe_get t.ctr i

let[@inline] set_ctr_word t i v = Bigarray.Array1.unsafe_set t.ctr i v

let[@inline] age t i = ctr_word t i land age_mask

let[@inline] set_age t i a =
  assert (a >= 0 && a <= age_mask);
  let c = ctr_word t i in
  set_ctr_word t i (c land lnot age_mask lor a)

let[@inline] epoch_writes t i = ctr_word t i lsr epoch_shift land epoch_mask

let[@inline] set_epoch_writes t i n =
  assert (n >= 0 && n <= epoch_mask);
  let c = ctr_word t i in
  set_ctr_word t i
    (c land lnot (epoch_mask lsl epoch_shift) lor (n lsl epoch_shift))

let[@inline] writes t i = ctr_word t i lsr writes_shift

let[@inline] set_writes t i n =
  assert (n >= 0 && n <= max_writes);
  let c = ctr_word t i in
  set_ctr_word t i (c land ((1 lsl writes_shift) - 1) lor (n lsl writes_shift))
