(** The simulated Java object.

    Liveness is an oracle: the workload stamps each object with the
    global allocation volume at which it becomes unreachable, the
    standard trace-driven alternative to tracing a concrete pointer
    graph. Everything the collectors of the paper observe — size, age
    (which space it has reached), the write word, the mark state — is
    explicit mutable state here. *)

type heat = Cold | Warm | Hot
(** Write-hotness class assigned by the workload: [Hot] objects are the
    top-2 % that take 81 % of mature writes, [Warm] the next 8 % (12 %
    of writes), [Cold] the rest (Figure 2). *)

type t = {
  id : int;
  size : int;  (** bytes, header included, word-aligned *)
  heat : heat;
  death : float;  (** allocation-volume timestamp at which it dies *)
  ref_fields : int;  (** number of reference slots, for barrier traffic *)
  mutable addr : int;  (** current virtual address *)
  mutable space : int;  (** id of the space currently holding it *)
  mutable written : bool;  (** KG-W write-word bit *)
  mutable marked : bool;  (** mark state (header or mark-table backed) *)
  mutable age : int;  (** collections survived *)
  mutable writes : int;  (** lifetime write count (instrumentation for Figure 2) *)
  mutable epoch_writes : int;
      (** monitored writes since the last placement decision — the
          write word's count, enabling threshold placement policies *)
}

val make :
  id:int -> size:int -> heat:heat -> death:float -> ref_fields:int -> t
(** Fresh unallocated object ([addr] = -1, [space] = -1). *)

val is_large : t -> bool
(** Larger than the 8 KB small-object threshold. *)

val is_small16 : t -> bool
(** At most 16 B: keeps its mark bit in the header under MDO. *)

val is_live : t -> float -> bool
(** [is_live o now]: has the oracle death time not yet passed? *)

val end_addr : t -> int

val field_addr : t -> int -> int
(** Address of the i-th word-sized field (for write traffic); wraps
    within the object payload. *)

val stream_init : Kg_mem.Port.t -> t -> unit
(** Zeroing plus constructor initialisation of a freshly allocated
    object: one streaming write pass over its body. *)

val stream_copy : Kg_mem.Port.t -> old_addr:int -> t -> unit
(** Traffic of moving an object: stream-read the old body, write a
    forwarding pointer word, stream-write the new body at [o.addr]
    (which must already point into the destination space). *)
