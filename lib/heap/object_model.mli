(** The simulated Java object, as an index into the flat-word heap.

    Liveness is an oracle: the workload stamps each object with the
    global allocation volume at which it becomes unreachable, the
    standard trace-driven alternative to tracing a concrete pointer
    graph. Everything the collectors of the paper observe — size, age
    (which space it has reached), the write word, the mark state — is
    explicit state, packed into the {!Heap_words} tables.

    An object is a dense integer index (its id) into a {!store}; every
    accessor takes the store first. Index lifetime rules: indices are
    assigned once by {!make}, never recycled, and stay valid for the
    life of the store — death only flips what {!is_live} answers, it
    does not invalidate the index. *)

type heat = Heap_words.heat = Cold | Warm | Hot
(** Write-hotness class assigned by the workload: [Hot] objects are the
    top-2 % that take 81 % of mature writes, [Warm] the next 8 % (12 %
    of writes), [Cold] the rest (Figure 2). *)

type store = Heap_words.t
(** The packed metadata tables all accessors read and write. *)

type t = int
(** A dense object index; equal to the object's trace id. *)

val null : t
(** The reserved index 0 — never returned by {!make}. *)

val is_null : t -> bool

val id : t -> int
(** The object's id — the index itself. *)

val make :
  store -> size:int -> heat:heat -> death:float -> ref_fields:int -> t
(** Fresh unallocated object ([addr] = -1, [space] = -1); ids are
    assigned densely from 1. *)

val size : store -> t -> int
(** Bytes, header included, word-aligned. *)

val heat : store -> t -> heat

val death : store -> t -> float
(** Allocation-volume timestamp at which it dies. *)

val ref_fields : store -> t -> int
(** Number of reference slots, for barrier traffic. *)

val addr : store -> t -> int
(** Current virtual address. *)

val set_addr : store -> t -> int -> unit

val space : store -> t -> int
(** Id of the space currently holding it. *)

val set_space : store -> t -> int -> unit

val written : store -> t -> bool
(** KG-W write-word bit. *)

val set_written : store -> t -> bool -> unit

val marked : store -> t -> bool
(** Mark state (header or mark-table backed). *)

val set_marked : store -> t -> bool -> unit

val max_age : int
val max_epoch_writes : int
val max_writes : int
(** Field capacities of the packed counter word; incrementers saturate
    at these caps (the counters are instrumentation and policy inputs,
    not identities), while the setters reject larger values. *)

val age : store -> t -> int
(** Collections survived. *)

val set_age : store -> t -> int -> unit

val writes : store -> t -> int
(** Lifetime write count (instrumentation for Figure 2). *)

val set_writes : store -> t -> int -> unit

val epoch_writes : store -> t -> int
(** Monitored writes since the last placement decision — the write
    word's count, enabling threshold placement policies. *)

val set_epoch_writes : store -> t -> int -> unit

val is_large : store -> t -> bool
(** Larger than the 8 KB small-object threshold. *)

val is_small16 : store -> t -> bool
(** At most 16 B: keeps its mark bit in the header under MDO. *)

val is_live : store -> t -> float -> bool
(** [is_live w o now]: has the oracle death time not yet passed? *)

val end_addr : store -> t -> int

val field_slots : store -> t -> int
(** Number of word-sized payload slots (at least one). *)

val field_addr : store -> t -> int -> int
(** Address of the i-th word-sized field (for write traffic). The
    index must be in range — out-of-range indices no longer wrap
    silently; debug builds assert (release strips the check with
    [-noassert]). Callers that want wrapping reduce modulo
    {!field_slots} explicitly. *)

val stream_init : store -> Kg_mem.Port.t -> t -> unit
(** Zeroing plus constructor initialisation of a freshly allocated
    object: one streaming write pass over its body. *)

val stream_copy : store -> Kg_mem.Port.t -> old_addr:int -> t -> unit
(** Traffic of moving an object: stream-read the old body, write a
    forwarding pointer word, stream-write the new body at the object's
    current address (which must already point into the destination
    space). *)
