(** Segregated-fit free-list mark-sweep space.

    The allocator family GenImmix is measured against: §3 notes that
    "contiguous allocation is known to outperform free-list allocators
    due to its locality benefits", which is why Immix bump-allocates
    into lines. This space implements the classic alternative — MMTk's
    mark-sweep layout — so the claim is testable here: blocks are
    dedicated to a size class and divided into equal cells; allocation
    pops the class's free list (scattered addresses), and a sweep
    returns dead cells. Objects never move.

    Used by the allocator-comparison experiment and available as a
    drop-in non-moving mature space for custom runtimes. *)

type t

val size_classes : int array
(** Cell sizes in bytes, ascending; requests round up to the next
    class (the last class is the 8 KB small-object limit). *)

val create :
  words:Object_model.store -> id:int -> name:string -> arena:Arena.t -> t

val id : t -> int
val name : t -> string

val alloc : t -> Object_model.t -> bool
(** Place the object in a free cell of its size class, taking fresh
    blocks from the arena as needed. [false] once the arena is
    exhausted. *)

val sweep :
  t -> now:float -> ?on_dead:(Object_model.t -> unit) -> unit -> int
(** Mark-sweep: drop dead objects, return their cells to the free
    lists, and report the bytes reclaimed. *)

val objects : t -> Object_model.t Kg_util.Vec.t
val live_bytes : t -> int
(** Object-level occupancy. *)

val cell_bytes : t -> int
(** Occupancy in cells — [cell_bytes - live_bytes] is the internal
    fragmentation a segregated-fit allocator pays. *)

val footprint_bytes : t -> int
(** Virtual memory reserved from the arena. *)

val free_cells : t -> int
