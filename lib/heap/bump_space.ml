open Kg_util
module O = Object_model

type t = {
  id : int;
  name : string;
  words : O.store;
  base : int;
  limit : int;
  kind : Kg_mem.Device.kind;
  mutable cursor : int;
  objects : O.t Vec.t;
}

let create ~words ~id ~name ~arena ~size =
  let base = Arena.reserve ~who:name arena size in
  {
    id;
    name;
    words;
    base;
    limit = base + size;
    kind = Arena.kind arena;
    cursor = base;
    objects = Vec.create ();
  }

let id t = t.id
let name t = t.name
let size t = t.limit - t.base
let base t = t.base
let kind t = t.kind

let alloc t o =
  let w = t.words in
  let osize = O.size w o in
  if t.cursor + osize > t.limit then false
  else begin
    O.set_addr w o t.cursor;
    O.set_space w o t.id;
    t.cursor <- t.cursor + osize;
    Vec.push t.objects o;
    true
  end

let free_bytes t = t.limit - t.cursor
let used_bytes t = t.cursor - t.base
let is_empty t = Vec.is_empty t.objects

let objects t = t.objects

let reset t =
  Vec.clear t.objects;
  t.cursor <- t.base

let live_bytes t ~now =
  let w = t.words in
  Vec.fold (fun acc o -> if O.is_live w o now then acc + O.size w o else acc) 0 t.objects
