module O = Object_model

(* Treadmill nodes form a circular doubly-linked list anchored at a
   sentinel, so snap/unsnap are O(1) as in the real collector. *)

type node = {
  mutable obj : O.t;  (* O.null for the sentinel *)
  mutable prev : node;
  mutable next : node;
}

type t = {
  id : int;
  name : string;
  words : O.store;
  arena : Arena.t;
  mutable from_anchor : node;
  mutable live_bytes : int;
  mutable count : int;
  mutable total_allocated : int;
}

let new_anchor () =
  let rec n = { obj = O.null; prev = n; next = n } in
  n

let create ~words ~id ~name ~arena =
  { id; name; words; arena; from_anchor = new_anchor (); live_bytes = 0; count = 0;
    total_allocated = 0 }

let id t = t.id
let name t = t.name
let kind t = Arena.kind t.arena

let snap anchor o =
  let n = { obj = o; prev = anchor.prev; next = anchor } in
  anchor.prev.next <- n;
  anchor.prev <- n

let alloc t o =
  let w = t.words in
  let osize = O.size w o in
  if Arena.remaining t.arena < Layout.align_up osize Layout.page then false
  else begin
    O.set_addr w o (Arena.reserve ~who:t.name t.arena osize);
    O.set_space w o t.id;
    snap t.from_anchor o;
    t.live_bytes <- t.live_bytes + osize;
    t.count <- t.count + 1;
    t.total_allocated <- t.total_allocated + osize;
    true
  end

let adopt t o =
  let w = t.words in
  let osize = O.size w o in
  O.set_addr w o (Arena.reserve ~who:t.name t.arena osize);
  O.set_space w o t.id;
  snap t.from_anchor o;
  t.live_bytes <- t.live_bytes + osize;
  t.count <- t.count + 1;
  t.total_allocated <- t.total_allocated + osize

let collect t ~now ~keep ?(on_dead = fun _ -> ()) () =
  let w = t.words in
  let to_anchor = new_anchor () in
  let evicted = ref [] in
  let live = ref 0 and count = ref 0 in
  let rec walk n =
    if n != t.from_anchor then begin
      let next = n.next in
      let o = n.obj in
      if not (O.is_null o) then begin
        if O.is_live w o now then begin
          if keep o then begin
            snap to_anchor o;
            live := !live + O.size w o;
            incr count
          end
          else evicted := o :: !evicted
        end
        else (* not snapped; its pages are reclaimed *) on_dead o
      end;
      walk next
    end
  in
  walk t.from_anchor.next;
  t.from_anchor <- to_anchor;
  t.live_bytes <- !live;
  t.count <- !count;
  !evicted

let iter t f =
  let rec walk n =
    if n != t.from_anchor then begin
      if not (O.is_null n.obj) then f n.obj;
      walk n.next
    end
  in
  walk t.from_anchor.next

let live_bytes t = t.live_bytes
let object_count t = t.count
let allocated_bytes_total t = t.total_allocated
