open Kg_util
module O = Object_model

(* Word-spaced classes up to 128 B, then geometric to the small-object
   limit: the MMTk mark-sweep class ladder. *)
let size_classes =
  [| 16; 24; 32; 40; 48; 56; 64; 80; 96; 112; 128; 160; 192; 256; 320; 384; 512; 640; 768;
     1024; 1280; 1536; 2048; 3072; 4096; 6144; 8192 |]

type t = {
  id : int;
  name : string;
  words : O.store;
  arena : Arena.t;
  free : int list array;  (* per-class free cell addresses *)
  mutable footprint : int;
  mutable live : int;
  mutable cells : int;  (* bytes occupied counted in cell sizes *)
  mutable nfree : int;
  objects : O.t Vec.t;
  class_of_obj : (int, int) Hashtbl.t;  (* keyed by cell address *)
}

let create ~words ~id ~name ~arena =
  {
    id;
    name;
    words;
    arena;
    free = Array.make (Array.length size_classes) [];
    footprint = 0;
    live = 0;
    cells = 0;
    nfree = 0;
    objects = Vec.create ();
    class_of_obj = Hashtbl.create 1024;
  }

let id t = t.id
let name t = t.name

let class_index size =
  let rec go i =
    if i >= Array.length size_classes then
      invalid_arg "Freelist_space.alloc: large object"
    else if size_classes.(i) >= size then i
    else go (i + 1)
  in
  go 0

(* Carve one 32 KB block into cells of one class. *)
let grow_class t ci =
  if Arena.remaining t.arena < Layout.block then false
  else begin
    let base = Arena.reserve ~who:t.name t.arena Layout.block in
    t.footprint <- t.footprint + Layout.block;
    let cell = size_classes.(ci) in
    let n = Layout.block / cell in
    for i = n - 1 downto 0 do
      t.free.(ci) <- (base + (i * cell)) :: t.free.(ci)
    done;
    t.nfree <- t.nfree + n;
    true
  end

let rec alloc t o =
  let w = t.words in
  let osize = O.size w o in
  let ci = class_index osize in
  match t.free.(ci) with
  | addr :: rest ->
    t.free.(ci) <- rest;
    t.nfree <- t.nfree - 1;
    O.set_addr w o addr;
    O.set_space w o t.id;
    t.live <- t.live + osize;
    t.cells <- t.cells + size_classes.(ci);
    Hashtbl.replace t.class_of_obj addr ci;
    Vec.push t.objects o;
    true
  | [] -> grow_class t ci && alloc t o

let sweep t ~now ?(on_dead = fun _ -> ()) () =
  let w = t.words in
  let reclaimed = ref 0 in
  Vec.filter_in_place
    (fun o ->
      if O.space w o <> t.id then false
      else if O.is_live w o now then true
      else begin
        let oaddr = O.addr w o and osize = O.size w o in
        let ci =
          match Hashtbl.find_opt t.class_of_obj oaddr with
          | Some ci -> ci
          | None -> class_index osize
        in
        Hashtbl.remove t.class_of_obj oaddr;
        t.free.(ci) <- oaddr :: t.free.(ci);
        t.nfree <- t.nfree + 1;
        t.live <- t.live - osize;
        t.cells <- t.cells - size_classes.(ci);
        reclaimed := !reclaimed + osize;
        on_dead o;
        false
      end)
    t.objects;
  !reclaimed

let objects t = t.objects
let live_bytes t = t.live
let cell_bytes t = t.cells
let footprint_bytes t = t.footprint
let free_cells t = t.nfree
