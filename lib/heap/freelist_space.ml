open Kg_util
module O = Object_model

(* Word-spaced classes up to 128 B, then geometric to the small-object
   limit: the MMTk mark-sweep class ladder. *)
let size_classes =
  [| 16; 24; 32; 40; 48; 56; 64; 80; 96; 112; 128; 160; 192; 256; 320; 384; 512; 640; 768;
     1024; 1280; 1536; 2048; 3072; 4096; 6144; 8192 |]

type t = {
  id : int;
  name : string;
  words : O.store;
  arena : Arena.t;
  free : int list array;  (* per-class free cell addresses *)
  mutable footprint : int;
  mutable live : int;
  mutable cells : int;  (* bytes occupied counted in cell sizes *)
  mutable nfree : int;
  objects : O.t Vec.t;
  (* Packed per-object size-class side table in the flat-word-heap
     style: one byte per object id, doubled on demand, [\255] meaning
     "not resident here". Replaces a per-object [Hashtbl] keyed by cell
     address — the last hash lookup on the sweep path. *)
  mutable class_of_obj : Bytes.t;
}

let no_class = '\255'

let create ~words ~id ~name ~arena =
  {
    id;
    name;
    words;
    arena;
    free = Array.make (Array.length size_classes) [];
    footprint = 0;
    live = 0;
    cells = 0;
    nfree = 0;
    objects = Vec.create ();
    class_of_obj = Bytes.make 1024 no_class;
  }

let id t = t.id
let name t = t.name

(* O(1) size -> class: a direct-indexed table over every size up to the
   largest class (8 KB of ints, built once). *)
let class_of_size =
  let max_size = size_classes.(Array.length size_classes - 1) in
  let tbl = Array.make (max_size + 1) 0 in
  let ci = ref 0 in
  for size = 0 to max_size do
    if size > size_classes.(!ci) then incr ci;
    tbl.(size) <- !ci
  done;
  tbl

let class_index size =
  if size >= Array.length class_of_size then
    invalid_arg "Freelist_space.alloc: large object"
  else Array.unsafe_get class_of_size size

(* Carve one 32 KB block into cells of one class. *)
let grow_class t ci =
  if Arena.remaining t.arena < Layout.block then false
  else begin
    let base = Arena.reserve ~who:t.name t.arena Layout.block in
    t.footprint <- t.footprint + Layout.block;
    let cell = size_classes.(ci) in
    let n = Layout.block / cell in
    for i = n - 1 downto 0 do
      t.free.(ci) <- (base + (i * cell)) :: t.free.(ci)
    done;
    t.nfree <- t.nfree + n;
    true
  end

let set_class t o ci =
  let id = O.id o in
  let n = Bytes.length t.class_of_obj in
  if id >= n then begin
    let grown = Bytes.make (max (id + 1) (2 * n)) no_class in
    Bytes.blit t.class_of_obj 0 grown 0 n;
    t.class_of_obj <- grown
  end;
  Bytes.set t.class_of_obj id (Char.chr ci)

(* The stored class for [o], clearing the slot; [None] when the object
   was never recorded (resident without a local alloc). *)
let take_class t o =
  let id = O.id o in
  if id >= Bytes.length t.class_of_obj then None
  else
    let c = Bytes.get t.class_of_obj id in
    if c = no_class then None
    else begin
      Bytes.set t.class_of_obj id no_class;
      Some (Char.code c)
    end

let rec alloc t o =
  let w = t.words in
  let osize = O.size w o in
  let ci = class_index osize in
  match t.free.(ci) with
  | addr :: rest ->
    t.free.(ci) <- rest;
    t.nfree <- t.nfree - 1;
    O.set_addr w o addr;
    O.set_space w o t.id;
    t.live <- t.live + osize;
    t.cells <- t.cells + size_classes.(ci);
    set_class t o ci;
    Vec.push t.objects o;
    true
  | [] -> grow_class t ci && alloc t o

let sweep t ~now ?(on_dead = fun _ -> ()) () =
  let w = t.words in
  let reclaimed = ref 0 in
  Vec.filter_in_place
    (fun o ->
      if O.space w o <> t.id then false
      else if O.is_live w o now then true
      else begin
        let oaddr = O.addr w o and osize = O.size w o in
        let ci =
          match take_class t o with
          | Some ci -> ci
          | None -> class_index osize
        in
        t.free.(ci) <- oaddr :: t.free.(ci);
        t.nfree <- t.nfree + 1;
        t.live <- t.live - osize;
        t.cells <- t.cells - size_classes.(ci);
        reclaimed := !reclaimed + osize;
        on_dead o;
        false
      end)
    t.objects;
  !reclaimed

let objects t = t.objects
let live_bytes t = t.live
let cell_bytes t = t.cells
let footprint_bytes t = t.footprint
let free_cells t = t.nfree
