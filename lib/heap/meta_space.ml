type t = {
  id : int;
  name : string;
  arena : Arena.t;
  mutable usage : int;
  mutable high_water : int;
}

let create ~id ~name ~arena = { id; name; arena; usage = 0; high_water = 0 }

let id t = t.id
let kind t = Arena.kind t.arena

let alloc_table t bytes =
  let addr = Arena.reserve ~who:t.name t.arena bytes in
  t.usage <- t.usage + bytes;
  if t.usage > t.high_water then t.high_water <- t.usage;
  addr

let free_table t bytes = t.usage <- max 0 (t.usage - bytes)

let usage_bytes t = t.usage
let high_water_bytes t = t.high_water
