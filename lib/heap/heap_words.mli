(** The flat-word heap store.

    Object metadata lives in packed words inside flat [Bigarray]
    tables; an object is a dense integer index into them, and
    allocation bump-advances the table cursor.  Index 0 is reserved
    (the null object), so indices coincide with the 1-based ids the
    runtime emits into traces.

    One header word packs size, heat, space, the written/marked flags
    and the reference-slot count; a second word holds the address, a
    float64 word the oracle death time (kept as an IEEE double so
    liveness compares bit-identically to the record heap), and a fourth
    word the age / epoch-write / lifetime-write counters.

    Accessors use unsafe Bigarray indexing guarded by [assert]s that
    dev and test builds keep and the release profile strips with
    [-noassert].  Table growth may move storage, so object creation
    must stay confined to the sequential (boot / apply / GC) phases;
    parallel mutator generation only reads. *)

type heat = Cold | Warm | Hot
(** Write-hotness class assigned by the workload (Figure 2). *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh store; [capacity] (default 4096) is the initial table size in
    objects, doubled on demand. *)

val length : t -> int
(** Number of objects ever allocated (the cursor minus the reserved
    null slot). *)

val capacity : t -> int

val alloc :
  t -> size:int -> heat:heat -> death:float -> ref_fields:int -> int
(** Bump-allocate a fresh metadata slot and return its index (also the
    object id).  The object starts unallocated: [addr] and [space] are
    -1, flags clear, counters zero.  Raises [Invalid_argument] if
    [size] is below {!Layout.min_object}. *)

val size : t -> int -> int
val heat : t -> int -> heat
val death : t -> int -> float
val ref_fields : t -> int -> int

val addr : t -> int -> int
val set_addr : t -> int -> int -> unit

val space : t -> int -> int
val set_space : t -> int -> int -> unit

val written : t -> int -> bool
val set_written : t -> int -> bool -> unit

val marked : t -> int -> bool
val set_marked : t -> int -> bool -> unit

val max_age : int
val max_epoch_writes : int
val max_writes : int
(** Field capacities of the packed counter word.  The counters are
    instrumentation and policy inputs, not identities: incrementers
    saturate at these caps on very long runs, while the setters below
    reject out-of-range values as caller bugs. *)

val age : t -> int -> int
val set_age : t -> int -> int -> unit

val epoch_writes : t -> int -> int
val set_epoch_writes : t -> int -> int -> unit

val writes : t -> int -> int
val set_writes : t -> int -> int -> unit
