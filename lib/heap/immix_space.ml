open Kg_util
module O = Object_model

type block = {
  b_base : int;
  b_index : int;
  line_marks : Bytes.t;
  mutable marked_lines : int;
  mutable b_avail : bool;  (* constant-time "is on the allocation list" bit *)
}

type sweep_stats = {
  swept_objects : int;
  swept_bytes : int;
  free_blocks : int;
  recyclable_blocks : int;
  full_blocks : int;
  marked_lines : int;
}

(* One bump cursor into the block currently owned by a shard. Each
   mutator domain allocates through its own shard under the shard's
   lock; shards contend only on the shared block registry (the avail
   list, arena growth, the population vector) — the "sharded
   allocation lock" design. A single shard is exactly the pre-shard
   single-cursor space: the same blocks are taken in the same order,
   so single-domain address streams are unchanged. *)
type shard = {
  mutable cur : block option;
  mutable scan_line : int;  (* next line to consider in [cur] *)
  mutable cursor : int;
  mutable cursor_limit : int;
  lock : Mutex.t;
}

type t = {
  id : int;
  name : string;
  words : O.store;
  arena : Arena.t;
  on_new_region : base:int -> unit;
  blocks : block Vec.t;
  mutable region_bases : int array;  (* sorted, for addr -> block lookup *)
  (* Allocation queue, recyclable then free, consumed head-first via
     [avail_head] (popped slots go stale rather than shifting — the Vec
     is rebuilt wholesale by [sweep]). Each block's [b_avail] bit
     mirrors queue membership so audits stay O(blocks). *)
  avail : block Vec.t;
  mutable avail_head : int;
  shards : shard array;
  registry : Mutex.t;  (* guards avail, arena growth, objects, live_bytes *)
  objects : O.t Vec.t;
  mutable live_bytes : int;
  mutable allocs_since_sweep : int;
}

let blocks_per_region = Layout.mature_region / Layout.block

let fresh_shard () =
  { cur = None; scan_line = 0; cursor = 0; cursor_limit = 0; lock = Mutex.create () }

let create ~words ~id ~name ~arena ?(on_new_region = fun ~base:_ -> ()) ?(shards = 1) () =
  if shards <= 0 then invalid_arg "Immix_space.create: shards must be positive";
  {
    id;
    name;
    words;
    arena;
    on_new_region;
    blocks = Vec.create ();
    region_bases = [||];
    avail = Vec.create ();
    avail_head = 0;
    shards = Array.init shards (fun _ -> fresh_shard ());
    registry = Mutex.create ();
    objects = Vec.create ();
    live_bytes = 0;
    allocs_since_sweep = 0;
  }

let id t = t.id
let name t = t.name
let kind t = Arena.kind t.arena
let objects t = t.objects
let live_bytes t = t.live_bytes
let footprint_bytes t = Array.length t.region_bases * Layout.mature_region
let region_count t = Array.length t.region_bases
let region_bases t = Array.copy t.region_bases
let meta_bytes_per_block = Layout.lines_per_block

let grow_region t =
  let base = Arena.reserve ~who:t.name t.arena Layout.mature_region in
  t.region_bases <- Array.append t.region_bases [| base |];
  Array.sort compare t.region_bases;
  for i = 0 to blocks_per_region - 1 do
    let b =
      {
        b_base = base + (i * Layout.block);
        b_index = Vec.length t.blocks;
        line_marks = Bytes.make Layout.lines_per_block '\000';
        marked_lines = 0;
        b_avail = true;
      }
    in
    Vec.push t.blocks b;
    Vec.push t.avail b
  done;
  t.on_new_region ~base

(* Next run of free lines in [b] starting at or after [from]. *)
let next_free_run b from =
  let n = Layout.lines_per_block in
  let rec find_start i = if i >= n then None else if Bytes.get b.line_marks i = '\000' then Some i else find_start (i + 1) in
  match find_start from with
  | None -> None
  | Some start ->
    let rec find_end i = if i >= n || Bytes.get b.line_marks i <> '\000' then i else find_end (i + 1) in
    Some (start, find_end start)

(* Take the next block off the shared registry, growing the arena by a
   region if the queue is dry. Caller holds [t.registry]. *)
let rec take_avail t =
  if t.avail_head < Vec.length t.avail then begin
    let b = Vec.get t.avail t.avail_head in
    t.avail_head <- t.avail_head + 1;
    b.b_avail <- false;
    Some b
  end
  else if Arena.remaining t.arena >= Layout.mature_region then begin
    grow_region t;
    take_avail t
  end
  else None

let rec refill t sh =
  match sh.cur with
  | Some b -> begin
    match next_free_run b sh.scan_line with
    | Some (start, stop) ->
      sh.cursor <- b.b_base + (start * Layout.line);
      sh.cursor_limit <- b.b_base + (stop * Layout.line);
      sh.scan_line <- stop + 1;
      true
    | None ->
      sh.cur <- None;
      refill t sh
  end
  | None -> begin
    Mutex.lock t.registry;
    let b = take_avail t in
    Mutex.unlock t.registry;
    match b with
    | Some b ->
      sh.cur <- Some b;
      sh.scan_line <- 0;
      sh.cursor <- 0;
      sh.cursor_limit <- 0;
      refill t sh
    | None -> false
  end

let rec alloc_in t sh o =
  let w = t.words in
  let osize = O.size w o in
  if sh.cursor + osize <= sh.cursor_limit then begin
    O.set_addr w o sh.cursor;
    O.set_space w o t.id;
    sh.cursor <- sh.cursor + osize;
    Mutex.lock t.registry;
    t.live_bytes <- t.live_bytes + osize;
    t.allocs_since_sweep <- t.allocs_since_sweep + 1;
    Vec.push t.objects o;
    Mutex.unlock t.registry;
    true
  end
  else if refill t sh then alloc_in t sh o
  else false

let alloc ?(shard = 0) t o =
  if O.size t.words o > Layout.max_small_object then
    invalid_arg "Immix_space.alloc: large object";
  let sh = t.shards.(shard) in
  Mutex.lock sh.lock;
  let ok = alloc_in t sh o in
  Mutex.unlock sh.lock;
  ok

let shard_count t = Array.length t.shards

let region_index_of_addr t addr =
  (* Binary search the region containing [addr]. *)
  let bases = t.region_bases in
  let lo = ref 0 and hi = ref (Array.length bases - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if addr < bases.(mid) then hi := mid - 1
    else if addr >= bases.(mid) + Layout.mature_region then lo := mid + 1
    else begin
      found := mid;
      lo := !hi + 1
    end
  done;
  if !found < 0 then invalid_arg "Immix_space: address not in space";
  !found

let region_base_of_addr t addr = t.region_bases.(region_index_of_addr t addr)

let block_of_addr t addr =
  let found = ref (region_index_of_addr t addr) in
  let base = t.region_bases.(!found) in
  (* Blocks were appended region by region; recover the block id from
     the region's position in allocation order. Regions are reserved
     from a bump arena, so allocation order equals address order. *)
  let region_block0 = !found * blocks_per_region in
  let b = Vec.get t.blocks (region_block0 + ((addr - base) / Layout.block)) in
  b

let remove_foreign t =
  let w = t.words in
  Vec.filter_in_place (fun o -> O.space w o = t.id) t.objects

let recyclable_free_lines t =
  Vec.fold
    (fun acc (b : block) ->
      if b.marked_lines > 0 && b.marked_lines < Layout.lines_per_block then
        acc + (Layout.lines_per_block - b.marked_lines)
      else acc)
    0 t.blocks

let fragmentation t =
  let partial_lines =
    Vec.fold
      (fun acc (b : block) ->
        if b.marked_lines > 0 && b.marked_lines < Layout.lines_per_block then
          acc + Layout.lines_per_block
        else acc)
      0 t.blocks
  in
  if partial_lines = 0 then 0.0
  else float_of_int (recyclable_free_lines t) /. float_of_int partial_lines

let defrag_candidates t ~max_bytes =
  (* Rank recyclable blocks emptiest-first (fewest marked lines), then
     take their residents until the budget is spent: moving the fewest
     objects frees the most blocks, as Immix does. *)
  let w = t.words in
  let sparse =
    Vec.fold
      (fun acc (b : block) ->
        if b.marked_lines > 0 && b.marked_lines < Layout.lines_per_block / 4 then b :: acc
        else acc)
      [] t.blocks
  in
  let sparse = List.sort (fun (a : block) b -> compare a.marked_lines b.marked_lines) sparse in
  let in_block (b : block) o =
    let oaddr = O.addr w o in
    oaddr >= b.b_base && oaddr < b.b_base + Layout.block
  in
  let budget = ref max_bytes in
  let picked = ref [] in
  List.iter
    (fun b ->
      if !budget > 0 then
        Vec.iter
          (fun o ->
            if in_block b o && !budget > 0 then begin
              picked := o :: !picked;
              budget := !budget - O.size w o
            end)
          t.objects)
    sparse;
  !picked

(* ------------------------------------------------------------------ *)
(* Self-audit (heap invariant auditor support)                         *)

let count_marked (b : block) =
  let c = ref 0 in
  for i = 0 to Layout.lines_per_block - 1 do
    if Bytes.get b.line_marks i <> '\000' then incr c
  done;
  !c

let lines_of w o (b : block) =
  let oaddr = O.addr w o and osize = O.size w o in
  ((oaddr - b.b_base) / Layout.line, (oaddr + osize - 1 - b.b_base) / Layout.line)

let audit t =
  let w = t.words in
  let errs = ref [] in
  let err fmt =
    Printf.ksprintf (fun m -> errs := Printf.sprintf "%s: %s" t.name m :: !errs) fmt
  in
  (* Population structure: ownership, residence inside a reserved
     region, block containment (objects may cross lines, not blocks),
     and occupancy accounting. *)
  let size_sum = ref 0 in
  Vec.iter
    (fun o ->
      let oaddr = O.addr w o and osize = O.size w o and osp = O.space w o in
      size_sum := !size_sum + osize;
      if osp <> t.id then
        err "object %d at %#x has space id %d, not %d" (O.id o) oaddr osp t.id;
      if oaddr < 0 then err "object %d is unallocated (addr %d)" (O.id o) oaddr
      else
        match block_of_addr t oaddr with
        | exception Invalid_argument _ ->
          err "object %d at %#x lies outside the space's regions" (O.id o) oaddr
        | b ->
          if oaddr + osize > b.b_base + Layout.block then
            err "object %d at %#x (%d B) crosses a block boundary" (O.id o) oaddr osize)
    t.objects;
  if !size_sum <> t.live_bytes then
    err "live_bytes %d disagrees with resident object bytes %d" t.live_bytes !size_sum;
  (* Block metadata: the cached marked-line count must match the marks. *)
  Vec.iter
    (fun (b : block) ->
      let c = count_marked b in
      if c <> b.marked_lines then
        err "block %d caches %d marked lines but %d marks are set" b.b_index b.marked_lines c)
    t.blocks;
  (* Immediately after a sweep (no allocation since), line marks must
     cover exactly the surviving objects, and every fully-unmarked
     block must be back on the allocation list — a live object on an
     unmarked line or an unrecycled empty block is a sweep bug. *)
  if t.allocs_since_sweep = 0 then begin
    let expected = Array.init (Vec.length t.blocks) (fun _ -> Bytes.make Layout.lines_per_block '\000') in
    Vec.iter
      (fun o ->
        if O.addr w o >= 0 then
          match block_of_addr t (O.addr w o) with
          | exception Invalid_argument _ -> ()
          | b ->
            let first, last = lines_of w o b in
            for l = first to min last (Layout.lines_per_block - 1) do
              Bytes.set expected.(b.b_index) l '\001'
            done)
      t.objects;
    Vec.iter
      (fun (b : block) ->
        for l = 0 to Layout.lines_per_block - 1 do
          let want = Bytes.get expected.(b.b_index) l <> '\000' in
          let got = Bytes.get b.line_marks l <> '\000' in
          if want && not got then
            err "block %d line %d holds a live object but is unmarked" b.b_index l
          else if got && not want then
            err "block %d line %d is marked but holds no live object" b.b_index l
        done;
        if b.marked_lines = 0 && not b.b_avail then
          err "fully-unmarked block %d was not returned to the free list" b.b_index)
      t.blocks
  end;
  List.rev !errs

(* Sweep, in the collector's "plan in parallel, apply in merged order"
   protocol. Phase A (parallel over population ranges) classifies each
   contiguous range into kept / dead lists and computes every kept
   object's line span, bucketed by the owning block's region shard.
   Phase B (sequential) replays the per-range buffers in range order —
   exactly the order the pre-protocol sequential sweep visited the
   population, so the rebuilt vector, the [on_dead] retirement stream
   and the byte accounting are bit-identical at any width. Phase C
   (parallel over region shards) clears and re-applies the line maps:
   shard [j] owns blocks with [region mod width = j], so writes are
   disjoint, and the final marks are a set union — independent of the
   order spans land. Phase D (sequential) walks blocks in index order
   to rebuild the allocation queue and emit [write_meta] records,
   unchanged from the sequential sweep. [Parfor.inline_ 1] therefore
   *is* the old sweep; any width with any runner produces the same
   observable state. *)
let sweep t ~now ?(write_meta = fun ~block_index:_ ~lines:_ -> ()) ?(on_dead = fun _ -> ())
    ?(par = Parfor.inline_ 1) () =
  let w = t.words in
  let width = Parfor.width par in
  let n = Vec.length t.objects in
  let kept = Array.init width (fun _ -> Vec.create ()) in
  let dead = Array.init width (fun _ -> Vec.create ()) in
  let kept_bytes = Array.make width 0 and dead_bytes = Array.make width 0 in
  (* [spans.(i).(j)]: packed [(block lsl 14) lor (first lsl 7) lor last]
     line spans planned by range [i] for region shard [j] — written
     only by slice [i], read only by slice [j] of the next step. *)
  let spans = Array.init width (fun _ -> Array.init width (fun _ -> Vec.create ())) in
  Parfor.run par (fun i ->
      let lo, hi = Parfor.slice ~len:n ~width i in
      for k = lo to hi do
        let o = Vec.get t.objects k in
        if O.space w o = t.id then
          if O.is_live w o now then begin
            let oaddr = O.addr w o and osize = O.size w o in
            Vec.push kept.(i) o;
            kept_bytes.(i) <- kept_bytes.(i) + osize;
            let b = block_of_addr t oaddr in
            let first = (oaddr - b.b_base) / Layout.line in
            let last =
              min ((oaddr + osize - 1 - b.b_base) / Layout.line) (Layout.lines_per_block - 1)
            in
            let shard = b.b_index / blocks_per_region mod width in
            Vec.push spans.(i).(shard) ((b.b_index lsl 14) lor (first lsl 7) lor last)
          end
          else begin
            Vec.push dead.(i) o;
            dead_bytes.(i) <- dead_bytes.(i) + O.size w o
          end
      done);
  Vec.clear t.objects;
  let swept_objects = ref 0 and swept_bytes = ref 0 and live = ref 0 in
  for i = 0 to width - 1 do
    Vec.iter (fun o -> Vec.push t.objects o) kept.(i);
    live := !live + kept_bytes.(i);
    swept_objects := !swept_objects + Vec.length dead.(i);
    swept_bytes := !swept_bytes + dead_bytes.(i);
    Vec.iter on_dead dead.(i)
  done;
  t.live_bytes <- !live;
  Parfor.run par (fun j ->
      for bi = 0 to Vec.length t.blocks - 1 do
        if bi / blocks_per_region mod width = j then begin
          let b = Vec.get t.blocks bi in
          Bytes.fill b.line_marks 0 Layout.lines_per_block '\000';
          b.marked_lines <- 0
        end
      done;
      for i = 0 to width - 1 do
        Vec.iter
          (fun packed ->
            let b = Vec.get t.blocks (packed lsr 14) in
            let first = (packed lsr 7) land 0x7f and last = packed land 0x7f in
            for l = first to last do
              if Bytes.get b.line_marks l = '\000' then begin
                Bytes.set b.line_marks l '\001';
                b.marked_lines <- b.marked_lines + 1
              end
            done)
          spans.(i).(j)
      done);
  Vec.clear t.avail;
  t.avail_head <- 0;
  let free = ref [] in
  let nfree = ref 0 and nrec = ref 0 and nfull = ref 0 and marked = ref 0 in
  Vec.iter
    (fun (b : block) ->
      marked := !marked + b.marked_lines;
      if b.marked_lines = 0 then begin
        incr nfree;
        b.b_avail <- true;
        free := b :: !free
      end
      else if b.marked_lines < Layout.lines_per_block then begin
        incr nrec;
        b.b_avail <- true;
        Vec.push t.avail b;
        write_meta ~block_index:b.b_index ~lines:b.marked_lines
      end
      else begin
        incr nfull;
        b.b_avail <- false;
        write_meta ~block_index:b.b_index ~lines:b.marked_lines
      end)
    t.blocks;
  (* Allocation prefers partially filled blocks, then empty ones (§3). *)
  List.iter (fun b -> Vec.push t.avail b) (List.rev !free);
  Array.iter
    (fun sh ->
      sh.cur <- None;
      sh.cursor <- 0;
      sh.cursor_limit <- 0;
      sh.scan_line <- 0)
    t.shards;
  t.allocs_since_sweep <- 0;
  {
    swept_objects = !swept_objects;
    swept_bytes = !swept_bytes;
    free_blocks = !nfree;
    recyclable_blocks = !nrec;
    full_blocks = !nfull;
    marked_lines = !marked;
  }
