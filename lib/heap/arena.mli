(** Carves virtual address ranges for heap spaces out of a device
    region.

    The simulator identity-maps virtual to physical addresses (except
    under OS write partitioning, which owns its own page table), so
    placing a space in the DRAM or PCM arena decides which device its
    traffic hits. Requests are rounded up to the 4 KB page granularity,
    matching "requests to the OS are at the page granularity" (§4.1). *)

type t

val create : kind:Kg_mem.Device.kind -> base:int -> size:int -> t

val kind : t -> Kg_mem.Device.kind

val reserve : ?who:string -> t -> int -> int
(** [reserve ?who t bytes] returns the base address of a fresh
    page-aligned range. [who] names the requesting space for
    diagnostics. Raises [Failure] when the arena is exhausted; the
    message reports the requester, the rounded request, the bytes
    left, and the reserved-of-limit occupancy. *)

val reserved_bytes : t -> int
val remaining : t -> int
val base : t -> int
val limit : t -> int
