type heat = Heap_words.heat = Cold | Warm | Hot

type store = Heap_words.t
type t = int

let null = 0
let is_null o = o = 0
let id (o : t) = o

let make w ~size ~heat ~death ~ref_fields =
  if size < Layout.min_object then invalid_arg "Object_model.make: size below minimum";
  Heap_words.alloc w ~size ~heat ~death ~ref_fields

let size = Heap_words.size
let heat = Heap_words.heat
let death = Heap_words.death
let ref_fields = Heap_words.ref_fields
let addr = Heap_words.addr
let set_addr = Heap_words.set_addr
let space = Heap_words.space
let set_space = Heap_words.set_space
let written = Heap_words.written
let set_written = Heap_words.set_written
let marked = Heap_words.marked
let set_marked = Heap_words.set_marked
let max_age = Heap_words.max_age
let max_epoch_writes = Heap_words.max_epoch_writes
let max_writes = Heap_words.max_writes
let age = Heap_words.age
let set_age = Heap_words.set_age
let writes = Heap_words.writes
let set_writes = Heap_words.set_writes
let epoch_writes = Heap_words.epoch_writes
let set_epoch_writes = Heap_words.set_epoch_writes

let is_large w o = size w o > Layout.max_small_object
let is_small16 w o = size w o <= Layout.small_mark_threshold
let is_live w o now = death w o > now
let end_addr w o = addr w o + size w o

let field_slots w o =
  max Layout.word (size w o - Layout.header_bytes) / Layout.word

let field_addr w o i =
  (* Out-of-range indices used to wrap silently ([i mod slots]); the
     callers that want wrapping now do it explicitly against
     [field_slots]. *)
  assert (i >= 0 && i < field_slots w o);
  addr w o + Layout.header_bytes + (i * Layout.word)

(* Streaming traffic of the two heap bulk operations, issued straight
   into the batched memory port. *)

let stream_init w port o =
  Kg_mem.Port.write port ~addr:(addr w o) ~size:(size w o)

let stream_copy w port ~old_addr o =
  let size = size w o in
  Kg_mem.Port.read port ~addr:old_addr ~size;
  Kg_mem.Port.write port ~addr:old_addr ~size:Layout.word;
  Kg_mem.Port.write port ~addr:(addr w o) ~size
