type heat = Cold | Warm | Hot

type t = {
  id : int;
  size : int;
  heat : heat;
  death : float;
  ref_fields : int;
  mutable addr : int;
  mutable space : int;
  mutable written : bool;
  mutable marked : bool;
  mutable age : int;
  mutable writes : int;
  mutable epoch_writes : int;
}

let make ~id ~size ~heat ~death ~ref_fields =
  if size < Layout.min_object then invalid_arg "Object_model.make: size below minimum";
  {
    id;
    size;
    heat;
    death;
    ref_fields;
    addr = -1;
    space = -1;
    written = false;
    marked = false;
    age = 0;
    writes = 0;
    epoch_writes = 0;
  }

let is_large o = o.size > Layout.max_small_object
let is_small16 o = o.size <= Layout.small_mark_threshold
let is_live o now = o.death > now
let end_addr o = o.addr + o.size

let field_addr o i =
  let payload = max Layout.word (o.size - Layout.header_bytes) in
  let slots = payload / Layout.word in
  o.addr + Layout.header_bytes + (i mod slots * Layout.word)

(* Streaming traffic of the two heap bulk operations, issued straight
   into the batched memory port. *)

let stream_init port o = Kg_mem.Port.write port ~addr:o.addr ~size:o.size

let stream_copy port ~old_addr o =
  Kg_mem.Port.read port ~addr:old_addr ~size:o.size;
  Kg_mem.Port.write port ~addr:old_addr ~size:Layout.word;
  Kg_mem.Port.write port ~addr:o.addr ~size:o.size
