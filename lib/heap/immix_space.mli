(** Immix mark-region mature space (§3).

    A hierarchy of 32 KB blocks holding 256 B lines. Objects bump-
    allocate contiguously into runs of free lines and may cross lines
    but not blocks. Reclamation is at line/block granularity: a sweep
    recomputes line occupancy from the surviving objects, returns empty
    blocks to the free list and partially filled blocks to a recyclable
    list that allocation fills first.

    The space reserves virtual memory from its arena 4 MB at a time
    (the MDO region granularity of §4.2.5); [on_new_region] lets the
    runtime allocate the matching DRAM mark table.

    Allocation is sharded: each mutator domain bump-allocates through
    its own shard (a private cursor into a block it owns) under the
    shard's lock, and shards contend only on the shared block registry
    when they need a fresh block. One shard (the default) is exactly
    the pre-shard single-cursor space — same blocks in the same order,
    so single-domain address streams are unchanged. *)

type t

type sweep_stats = {
  swept_objects : int;  (** dead objects reclaimed *)
  swept_bytes : int;
  free_blocks : int;  (** wholly empty blocks after the sweep *)
  recyclable_blocks : int;
  full_blocks : int;
  marked_lines : int;  (** line mark bits set, for metadata traffic *)
}

val create :
  words:Object_model.store ->
  id:int ->
  name:string ->
  arena:Arena.t ->
  ?on_new_region:(base:int -> unit) ->
  ?shards:int ->
  unit ->
  t
(** [shards] (default 1) is the number of independent allocation
    cursors — one per mutator domain. *)

val id : t -> int
val name : t -> string
val kind : t -> Kg_mem.Device.kind

val alloc : ?shard:int -> t -> Object_model.t -> bool
(** Allocate into free lines through [shard]'s cursor (default 0),
    preferring recyclable blocks, then free blocks, then fresh arena
    regions. Returns [false] only when the arena is exhausted. Safe to
    call concurrently from different domains on different shards. *)

val shard_count : t -> int

val objects : t -> Object_model.t Kg_util.Vec.t
(** Resident objects (live and not-yet-swept dead). *)

val live_bytes : t -> int
(** Object-level occupancy as of the last sweep plus allocation since. *)

val footprint_bytes : t -> int
(** Virtual memory reserved from the arena. *)

val region_count : t -> int
(** 4 MB regions reserved so far (drives MDO table count). *)

val region_bases : t -> int array
(** Sorted base addresses of the reserved 4 MB regions; MDO locates an
    object's mark-table by the region containing it. *)

val region_base_of_addr : t -> int -> int
(** Base of the 4 MB region containing the address. *)

val meta_bytes_per_block : int
(** Line mark metadata per block (one byte per line). *)

val sweep :
  t ->
  now:float ->
  ?write_meta:(block_index:int -> lines:int -> unit) ->
  ?on_dead:(Object_model.t -> unit) ->
  ?par:Kg_util.Parfor.t ->
  unit ->
  sweep_stats
(** Drop objects that died ([now]) or moved to another space, rebuild
    line occupancy and the free/recyclable lists. [write_meta] is
    called once per block that keeps marked lines, so the caller can
    account the line-mark metadata write traffic.

    [par] (default [Parfor.inline_ 1]) executes the sweep's plan steps:
    population ranges are classified in parallel and the line maps are
    rebuilt per 4 MB region shard, while the [on_dead] stream, the
    rebuilt population order and the [write_meta] record stream are
    replayed sequentially in range / block order — observably identical
    to the width-1 sweep for any runner and width. *)

val remove_foreign : t -> unit
(** Drop objects whose [space] no longer equals this space (moved away
    outside a sweep). *)

val fragmentation : t -> float
(** Fraction of the lines in partially-filled blocks that are free:
    the "fragmentation is preventing the collector from using some
    fraction of the memory in partially filled blocks" measure that
    drives Immix defragmentation (§6.3). 0 when there are no
    recyclable blocks. *)

val defrag_candidates : t -> max_bytes:int -> Object_model.t list
(** Live objects from the sparsest recyclable blocks, up to
    [max_bytes]: evacuating and re-allocating them (the caller copies
    them back via {!alloc}) frees whole blocks, trading copy writes for
    space — exactly the tradeoff §6.3 notes is wrong for PCM, which is
    why the collectors only defragment under memory pressure. *)

val audit : t -> string list
(** Structural self-check; returns human-readable violations (empty
    when consistent). Always verified: every resident object carries
    this space's id, lies inside a reserved region, does not cross a
    block boundary, and their sizes sum to {!live_bytes}; each block's
    cached marked-line count matches its mark bytes. Additionally, when
    no allocation has happened since the last sweep (true at the end of
    a major collection), line marks must cover exactly the resident
    objects and every fully-unmarked block must be on the free list. *)
