(** The generic half of the generate-then-merge epoch protocol shared
    by {!Mutator} and the [Kg_serve] request mutator: the
    schedule-PRNG stream merge and the worker-domain team. Op-type
    agnostic; the determinism argument (pure per-domain generation,
    coordinator-only apply) stays with the callers. *)

val merge_schedule : Kg_util.Rng.t -> 'a Kg_util.Vec.t array -> (int * 'a) Kg_util.Vec.t
(** Interleave per-domain op streams into one schedule, repeatedly
    drawing a live domain and a chunk length (1–8) from the schedule
    PRNG. Preserves each domain's own order, so a same-epoch pending
    reference always resolves to an already-applied allocation of the
    same domain. A pure function of the PRNG state and the streams. *)

type team

val spawn : n:int -> oracle:bool -> (int -> unit) -> team
(** [spawn ~n ~oracle gen]: a team running [gen d] once per round for
    every domain [d]. With [oracle] false and [n > 1], domains
    [1 .. n-1] get real worker Domains parked on a condition variable;
    domain 0 always runs on the coordinator. With [oracle] true (or
    [n = 1]) no Domains are spawned and rounds run inline. *)

val round : team -> unit
(** Run one epoch's generation: workers run [gen d] concurrently while
    the coordinator runs [gen 0], returning once all are done — or, in
    oracle mode, run [gen 0 .. gen (n-1)] inline in domain order. *)

val finish : team -> unit
(** Stop and join the workers. Idempotent. Callers must invoke this on
    both the normal and the exceptional exit path. *)
