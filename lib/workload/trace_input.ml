module O = Kg_heap.Object_model
module Rt = Kg_gc.Runtime

type event =
  | Alloc of { size : int; lifetime : float; heat : O.heat }
  | Write of { back : int; is_ref : bool }
  | Read of { back : int; burst : int }
  | Request of { issue : float }

let window = 4096

let heat_of_string = function
  | "hot" -> Ok O.Hot
  | "warm" -> Ok O.Warm
  | "cold" -> Ok O.Cold
  | s -> Error (Printf.sprintf "unknown heat %S" s)

let int_of field s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> Ok v
  | _ -> Error (Printf.sprintf "bad %s %S" field s)

let ( >>= ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | "alloc" :: size :: lifetime :: rest ->
      int_of "size" size >>= fun size ->
      (if lifetime = "inf" then Ok infinity
       else
         match float_of_string_opt lifetime with
         | Some v when v >= 0.0 -> Ok v
         | _ -> Error (Printf.sprintf "bad lifetime %S" lifetime))
      >>= fun lifetime ->
      (match rest with
      | [] -> Ok O.Cold
      | [ h ] -> heat_of_string h
      | _ -> Error "trailing tokens after alloc")
      >>= fun heat -> Ok (Some (Alloc { size; lifetime; heat }))
    | "write" :: back :: rest ->
      int_of "index" back >>= fun back ->
      (match rest with
      | [] | [ "prim" ] -> Ok false
      | [ "ref" ] -> Ok true
      | _ -> Error "trailing tokens after write")
      >>= fun is_ref -> Ok (Some (Write { back; is_ref }))
    | "read" :: back :: rest ->
      int_of "index" back >>= fun back ->
      (match rest with
      | [] -> Ok 1
      | [ b ] -> int_of "burst" b
      | _ -> Error "trailing tokens after read")
      >>= fun burst -> Ok (Some (Read { back; burst = max 1 burst }))
    | "req" :: stamp :: rest ->
      (match float_of_string_opt stamp with
      | Some v when v >= 0.0 -> Ok v
      | _ -> Error (Printf.sprintf "bad issue stamp %S" stamp))
      >>= fun issue ->
      (match rest with [] -> Ok () | _ -> Error "trailing tokens after req")
      >>= fun () -> Ok (Some (Request { issue }))
    | [ "req" ] -> Error "req needs an issue stamp"
    | verb :: _ -> Error (Printf.sprintf "unknown event %S" verb)
    | [] -> Ok None

let parse_string text =
  let lines = String.split_on_char '\n' text in
  (* Request issue stamps describe an arrival process, so the serve
     replay path requires them to be non-decreasing across the trace. *)
  let rec go n last_issue acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok None -> go (n + 1) last_issue acc rest
      | Ok (Some (Request { issue } as e)) ->
        if issue < last_issue then
          Error
            (Printf.sprintf "line %d: issue stamp out of order: %g after %g" n issue
               last_issue)
        else go (n + 1) issue (e :: acc) rest
      | Ok (Some e) -> go (n + 1) last_issue (e :: acc) rest
      | Error m -> Error (Printf.sprintf "line %d: %s" n m))
  in
  go 1 0.0 [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error m -> Error m

let replay rt events =
  let recent = Array.make window None in
  let cursor = ref 0 in
  let lookup back =
    if back >= window then None
    else
      match recent.((!cursor - 1 - back + (2 * window)) mod window) with
      | Some o when O.is_live (Rt.words rt) o (Rt.now rt) -> Some o
      | _ -> None
  in
  List.iter
    (fun event ->
      match event with
      | Alloc { size; lifetime; heat } ->
        let death = Rt.now rt +. lifetime in
        let o = Rt.alloc rt ~size ~heat ~death ~ref_fields:(max 1 (size / 32)) in
        recent.(!cursor mod window) <- Some o;
        incr cursor
      | Write { back; is_ref } -> (
        match lookup back with
        | None -> ()
        | Some o ->
          if is_ref then
            match lookup 0 with
            | Some tgt -> Rt.write_ref rt ~src:o ~tgt
            | None -> Rt.write_prim rt o
          else Rt.write_prim rt o)
      | Read { back; burst } -> (
        match lookup back with Some o -> Rt.read_burst rt o burst | None -> ())
      | Request _ -> ())
    events
