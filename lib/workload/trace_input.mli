(** Replaying external allocation traces.

    The built-in descriptors are calibrated to the paper's benchmarks,
    but a downstream user evaluating write-rationing on their own
    application can feed a recorded allocation trace instead. The
    format is one event per line:

    {v
    # comment
    alloc <size-bytes> <lifetime-bytes|inf> [hot|warm|cold]
    write <index-back> [ref|prim]
    read <index-back> [burst]
    req <issue-stamp>
    v}

    [index-back] addresses a previously allocated object: 0 is the most
    recent allocation, 1 the one before it, etc. (a sliding window of
    the last 4096 allocations); dead or out-of-window targets are
    skipped. Lifetimes are in bytes of future allocation, matching the
    simulator's allocation clock.

    [req] marks a request boundary for server traces: the events that
    follow (until the next [req]) belong to a request issued at
    [issue-stamp] on the same allocation clock. Issue stamps must be
    non-decreasing across the trace — an open-loop arrival process
    cannot run backwards — and {!val:parse_string} rejects out-of-order
    stamps with a line-numbered error. *)

type event =
  | Alloc of { size : int; lifetime : float; heat : Kg_heap.Object_model.heat }
  | Write of { back : int; is_ref : bool }
  | Read of { back : int; burst : int }
  | Request of { issue : float }

val parse_line : string -> (event option, string) result
(** [Ok None] for blank/comment lines; [Error msg] names the problem. *)

val parse_string : string -> (event list, string) result
(** Parse a whole trace; the error is prefixed with its line number. *)

val load : string -> (event list, string) result
(** Read a trace file. *)

val replay : Kg_gc.Runtime.t -> event list -> unit
(** Execute the events against a runtime (allocation, barriers, GCs
    all behave exactly as under the synthetic mutator). [Request]
    markers carry no heap work of their own and replay as no-ops. *)
