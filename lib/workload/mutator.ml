open Kg_util
open Kg_heap
module O = Object_model
module Rt = Kg_gc.Runtime

let recent_size = 512
let cold_cap = 4096
let large_min = 12 * 1024
let large_alpha = 1.3

(* Per-logical-thread mutator state: its own PRNG stream, window of
   recently allocated objects, and outstanding read/write debts. Pools
   of mature targets are shared (threads share data structures). *)
type thread = {
  rng : Rng.t;
  recent : O.t option array;
  mutable recent_cursor : int;
  mutable write_debt : float;
  mutable read_debt : float;
}

(* Multicore mutator state. With [threads > 1] the round-robin logical
   threads are replaced by real mutator domains running an epoch
   protocol (see [run_epochs] below): each domain *generates* a
   symbolic op stream in parallel as a pure function of its private
   state plus a read-only snapshot, and the coordinator *applies* the
   streams sequentially in a schedule-seeded deterministic merge. A
   generated op names objects that do not exist yet with [T_pending]
   indices into the issuing domain's epoch allocations. *)
type target = T_obj of O.t | T_pending of int

type op =
  | Op_alloc of { size : int; heat : O.heat; life : float; ref_fields : int }
  | Op_write_ref of { src : target; tgt : target }
  | Op_write_prim of target
  | Op_read_burst of { tgt : target; words : int }

(* A mutator domain's private state: PRNG stream, recent-allocation
   ring (holding pending markers until the epoch materialises them)
   and mutation debts. Touched only by its own domain during
   generation and by the coordinator between epochs. *)
type dstate = {
  d_rng : Rng.t;
  d_recent : target option array;
  mutable d_recent_cursor : int;
  mutable d_write_debt : float;
  mutable d_read_debt : float;
}

type t = {
  desc : Descriptor.t;
  rt : Rt.t;
  words : O.store;  (* the runtime's flat-word heap tables *)
  threads : thread array;  (* sequential path; empty when nthreads > 1 *)
  mutable cur : int;  (* round-robin position *)
  life : Lifetime.t;
  hot : O.t Vec.t;
  warm : O.t Vec.t;
  cold : O.t Vec.t;
  mutable allocated : int;  (* objects *)
  p_large : float;
  large_mean : float;
  live_mb : int;
  (* Multicore: *)
  nthreads : int;
  oracle : bool;  (* interleaved oracle: generate inline, no Domains *)
  sched_rng : Rng.t;  (* merge schedule; seeded independently *)
  dstates : dstate array;  (* empty when nthreads = 1 *)
  boot_allocs_by_thread : int array;
}

let descriptor t = t.desc
let runtime t = t.rt
let thread_count t = t.nthreads
let boot_allocs_by_thread t = Array.copy t.boot_allocs_by_thread

let create ?live_mb ?(threads = 1) ?(schedule_seed = 0) ?(oracle = false) desc
    ~rt ~seed =
  (* Calibrated against the default sizes regardless of the collector
     under test: lifetimes are a workload property. *)
  let live_mb = Option.value live_mb ~default:(Descriptor.live_mb desc) in
  let life =
    Lifetime.make ~live_mb desc ~nursery_bytes:(4 * Units.mib) ~observer_bytes:(8 * Units.mib)
  in
  (* Mean of the truncated Pareto large-size distribution, to convert
     the byte fraction of large allocation into a per-object draw. *)
  let large_mean =
    let a = large_alpha and x = float_of_int large_min in
    a *. x /. (a -. 1.0)
  in
  let es = float_of_int desc.Descriptor.mean_small in
  let f = desc.Descriptor.large_frac in
  let p_large = if f <= 0.0 then 0.0 else f *. es /. (((1.0 -. f) *. large_mean) +. (f *. es)) in
  let root = Rng.of_seed seed in
  let threads = max 1 threads in
  if threads > 1 && Rt.domains rt <> threads then
    invalid_arg
      (Printf.sprintf
         "Mutator.create: %d threads need a runtime with %d domains (has %d)"
         threads threads (Rt.domains rt));
  let mk_thread _ =
    {
      rng = Rng.split root;
      recent = Array.make recent_size None;
      recent_cursor = 0;
      write_debt = 0.0;
      read_debt = 0.0;
    }
  in
  let mk_dstate _ =
    {
      d_rng = Rng.split root;
      d_recent = Array.make recent_size None;
      d_recent_cursor = 0;
      d_write_debt = 0.0;
      d_read_debt = 0.0;
    }
  in
  {
    desc;
    rt;
    words = Rt.words rt;
    threads = (if threads = 1 then [| mk_thread 0 |] else [||]);
    cur = 0;
    life;
    hot = Vec.create ();
    warm = Vec.create ();
    cold = Vec.create ();
    allocated = 0;
    p_large;
    large_mean;
    live_mb;
    nthreads = threads;
    oracle;
    sched_rng = Rng.of_seed schedule_seed;
    dstates = (if threads = 1 then [||] else Array.init threads mk_dstate);
    boot_allocs_by_thread = Array.make threads 0;
  }

let draw_small_size_rng t rng =
  (* Geometric in words around the benchmark mean, 16 B..8 KB. *)
  let mean_words = float_of_int t.desc.Descriptor.mean_small /. 8.0 in
  let p = 1.0 /. Float.max 2.0 mean_words in
  let words = 2 + Rng.geometric rng p in
  min Layout.max_small_object (max 16 (words * 8))

let draw_small_size t th = draw_small_size_rng t th.rng

let draw_large_size_rng rng =
  let s = Rng.pareto rng ~alpha:large_alpha ~xmin:(float_of_int large_min) in
  min (2 * Units.mib) (int_of_float s)

let draw_large_size th = draw_large_size_rng th.rng

let assign_heat_rng t rng cls =
  (* Hot objects must end up ~2% of *written* mature objects (Figure
     2). Written mature objects also include the cold sample and the
     warm class, so hot is rare and restricted to long-lived *churn*
     objects (caches, session tables) - allocated at runtime, so they
     pass through the observer where KG-W can classify them. The boot
     image itself is read-mostly static data. *)
  let long_like =
    match cls with
    | Lifetime.Long -> true
    (* Benchmarks with (almost) no long-lived churn still have a hot
       working set; it just lives in the medium class. *)
    | Lifetime.Medium ->
      t.desc.Descriptor.nursery_survival *. t.desc.Descriptor.observer_survival < 0.02
    | _ -> false
  in
  if long_like then begin
    let u = Rng.float rng 1.0 in
    if u < 0.04 then O.Hot else if u < 0.20 then O.Warm else O.Cold
  end
  else
    match cls with
    | Lifetime.Short -> O.Cold
    | Lifetime.Medium -> if Rng.bernoulli rng 0.02 then O.Warm else O.Cold
    | Lifetime.Immortal -> if Rng.bernoulli rng 0.01 then O.Warm else O.Cold
    | Lifetime.Long -> O.Cold

let assign_heat t th cls = assign_heat_rng t th.rng cls

let register t th (o : O.t) =
  th.recent.(th.recent_cursor) <- Some o;
  th.recent_cursor <- (th.recent_cursor + 1) mod recent_size;
  t.allocated <- t.allocated + 1;
  match O.heat t.words o with
  | O.Hot -> Vec.push t.hot o
  | O.Warm -> Vec.push t.warm o
  | O.Cold ->
    if Vec.length t.cold < cold_cap then Vec.push t.cold o
    else if Rng.bernoulli th.rng (float_of_int cold_cap /. float_of_int t.allocated) then
      Vec.set t.cold (Rng.int th.rng cold_cap) o

let allocate_one t th =
  let cls, life =
    Lifetime.draw t.life th.rng ~nursery_remaining:(float_of_int (Rt.nursery_free t.rt))
  in
  let large = Rng.bernoulli th.rng t.p_large in
  let size = if large then draw_large_size th else draw_small_size t th in
  (* Large objects draw from the same lifetime mixture: "we find
     empirically that large objects often follow the weak-generational
     hypothesis, i.e., they die quickly" (4.2.4). *)
  let heat = assign_heat t th cls in
  let death = Rt.now t.rt +. life in
  let ref_fields = max 1 (size / 32) in
  let o = Rt.alloc t.rt ~size ~heat ~death ~ref_fields in
  register t th o;
  o

(* Pick a live object from a pool, pruning dead entries on the way.
   Returns None if the pool is effectively empty. *)
let rec pick_live t th pool attempts =
  if attempts = 0 || Vec.length pool = 0 then None
  else begin
    let i = Rng.int th.rng (Vec.length pool) in
    let o = Vec.get pool i in
    if O.is_live t.words o (Rt.now t.rt) then Some o
    else begin
      ignore (Vec.swap_remove pool i);
      pick_live t th pool (attempts - 1)
    end
  end

let pick_recent t th =
  let rec go attempts =
    if attempts = 0 then None
    else begin
      match th.recent.(Rng.int th.rng recent_size) with
      | Some o when O.is_live t.words o (Rt.now t.rt) -> Some o
      | _ -> go (attempts - 1)
    end
  in
  go 4

(* Writes within the hot class are themselves skewed (a few session
   tables/caches dominate), so rank hot picks with a Zipf draw over
   registration order rather than uniformly. *)
let pick_hot t th attempts =
  let pool = t.hot in
  let rec go attempts =
    if attempts = 0 || Vec.length pool = 0 then None
    else begin
      let i = Rng.zipf th.rng ~n:(Vec.length pool) ~s:1.2 in
      let o = Vec.get pool i in
      if O.is_live t.words o (Rt.now t.rt) then Some o
      else begin
        ignore (Vec.swap_remove pool i);
        go (attempts - 1)
      end
    end
  in
  go attempts

let pick_mature t th =
  let d = t.desc in
  let u = Rng.float th.rng 1.0 in
  let primary =
    if u < d.Descriptor.top2_frac then pick_hot t th 8
    else if u < d.Descriptor.top10_frac then pick_live t th t.warm 8
    else pick_live t th t.cold 8
  in
  match primary with
  | Some _ as r -> r
  | None -> (
    match pick_live t th t.cold 8 with Some _ as r -> r | None -> pick_recent t th)

let pick_write_target t th =
  if Rng.bernoulli th.rng t.desc.Descriptor.nursery_write_frac then
    match pick_recent t th with Some o -> Some o | None -> pick_mature t th
  else match pick_mature t th with Some o -> Some o | None -> pick_recent t th

let do_write t th =
  match pick_write_target t th with
  | None -> ()
  | Some src ->
    if Rng.bernoulli th.rng t.desc.Descriptor.ref_write_frac then begin
      let tgt =
        if Rng.bernoulli th.rng 0.5 then
          match pick_recent t th with Some o -> Some o | None -> pick_mature t th
        else pick_mature t th
      in
      match tgt with
      | Some tgt -> Rt.write_ref t.rt ~src ~tgt
      | None -> Rt.write_prim t.rt src
    end
    else Rt.write_prim t.rt src

(* Reads come in streaming bursts over one object (field walks, array
   scans), so one target pick services several load events. *)
let do_reads t th n =
  let target = if Rng.bernoulli th.rng 0.6 then pick_recent t th else pick_mature t th in
  match target with Some o -> Rt.read_burst t.rt o n | None -> ()

let mutate_for t th (o : O.t) =
  let d = t.desc in
  th.write_debt <-
    th.write_debt
    +. (float_of_int (O.size t.words o) *. d.Descriptor.write_alloc_ratio /. 8.0);
  while th.write_debt >= 1.0 do
    do_write t th;
    th.write_debt <- th.write_debt -. 1.0;
    th.read_debt <- th.read_debt +. d.Descriptor.read_write_ratio;
    if th.read_debt >= 1.0 then begin
      let burst = min 8 (int_of_float th.read_debt) in
      do_reads t th burst;
      th.read_debt <- th.read_debt -. float_of_int burst
    end
  done

(* Register a boot/epoch object against a mutator domain's state. The
   cold-reservoir draws use the domain's own stream here (startup runs
   sequentially, before any worker exists). *)
let register_d t ds (o : O.t) =
  ds.d_recent.(ds.d_recent_cursor) <- Some (T_obj o);
  ds.d_recent_cursor <- (ds.d_recent_cursor + 1) mod recent_size;
  t.allocated <- t.allocated + 1;
  match O.heat t.words o with
  | O.Hot -> Vec.push t.hot o
  | O.Warm -> Vec.push t.warm o
  | O.Cold ->
    if Vec.length t.cold < cold_cap then Vec.push t.cold o
    else if Rng.bernoulli ds.d_rng (float_of_int cold_cap /. float_of_int t.allocated) then
      Vec.set t.cold (Rng.int ds.d_rng cold_cap) o

let allocate_startup t =
  (* Boot image: immortal objects placed directly in the mature space.
     They still join the target pools, so long-lived hot data (session
     tables, caches) receives its share of mature writes. Boot
     allocation round-robins across all mutator threads — every
     thread's PRNG stream and recent window start populated, so thread
     0 has no privileged role once the run begins. *)
  let target = 0.4 *. float_of_int t.live_mb *. float_of_int Units.mib in
  let start = Rt.now t.rt in
  let k = ref 0 in
  while Rt.now t.rt -. start < target do
    let d = !k mod t.nthreads in
    incr k;
    let rng = if t.nthreads = 1 then t.threads.(0).rng else t.dstates.(d).d_rng in
    let large = Rng.bernoulli rng t.p_large in
    let size = if large then draw_large_size_rng rng else draw_small_size_rng t rng in
    let heat = assign_heat_rng t rng Lifetime.Immortal in
    let o = Rt.alloc_boot t.rt ~size ~heat ~ref_fields:(max 1 (size / 32)) in
    if t.nthreads = 1 then register t t.threads.(0) o else register_d t t.dstates.(d) o;
    t.boot_allocs_by_thread.(d) <- t.boot_allocs_by_thread.(d) + 1
  done

(* Each engine step runs one thread for a small burst of allocations,
   then rotates: the coarse interleaving real schedulers produce. *)
let burst_allocs = 16

let run_sequential t ~alloc_bytes ~on_tick ~tick_bytes =
  let start = Rt.now t.rt in
  let next_tick = ref (start +. float_of_int tick_bytes) in
  let target = start +. float_of_int alloc_bytes in
  while Rt.now t.rt < target do
    let th = t.threads.(t.cur) in
    t.cur <- (t.cur + 1) mod Array.length t.threads;
    let deadline = Float.min target (Rt.now t.rt +. float_of_int (burst_allocs * 256)) in
    while Rt.now t.rt < deadline do
      let o = allocate_one t th in
      mutate_for t th o
    done;
    if Rt.now t.rt >= !next_tick then begin
      on_tick (Rt.now t.rt);
      next_tick := !next_tick +. float_of_int tick_bytes
    end
  done

(* ------------------------------------------------------------------ *)
(* Epoch-parallel execution (threads > 1)                              *)
(*                                                                     *)
(* Determinism argument, in three parts:                               *)
(*                                                                     *)
(* 1. Generation is a pure function of the domain's private state      *)
(*    (PRNG, recent ring, debts) and an epoch-start snapshot           *)
(*    (allocation clock, nursery headroom, frozen target pools). No    *)
(*    shared structure is written during generation, so running the N  *)
(*    generators on real Domains or inline in domain order produces    *)
(*    identical op streams — that is exactly what the interleaved      *)
(*    oracle checks.                                                   *)
(* 2. The merge draws only from the schedule PRNG, interleaving        *)
(*    domain streams in chunks while preserving each domain's own      *)
(*    order — so a [T_pending i] reference always resolves to an       *)
(*    already-applied allocation of the same domain.                   *)
(* 3. Apply runs on the coordinator alone, one op at a time, through   *)
(*    the domain-tagged runtime interface; collections fire inside it  *)
(*    exactly where the op stream forces them, and the per-domain      *)
(*    ports stamp every record with the shared issue counter so sink   *)
(*    order is schedule order.                                         *)

type snapshot = { s_now : float; s_nursery_free : int array }

(* Pure pick helpers: same skew as the sequential path but against the
   frozen snapshot — no pruning (pools are read-only during an epoch;
   the coordinator compacts them at the barrier instead). *)

let g_pick_live w rng now pool attempts =
  let rec go a =
    if a = 0 || Vec.length pool = 0 then None
    else begin
      let o = Vec.get pool (Rng.int rng (Vec.length pool)) in
      if O.is_live w o now then Some (T_obj o) else go (a - 1)
    end
  in
  go attempts

let g_pick_recent w ds now =
  let rec go a =
    if a = 0 then None
    else begin
      match ds.d_recent.(Rng.int ds.d_rng recent_size) with
      | Some (T_obj o) when O.is_live w o now -> Some (T_obj o)
      | Some (T_pending i) -> Some (T_pending i)
      | _ -> go (a - 1)
    end
  in
  go 4

let g_pick_hot t rng now attempts =
  let pool = t.hot in
  let rec go a =
    if a = 0 || Vec.length pool = 0 then None
    else begin
      let o = Vec.get pool (Rng.zipf rng ~n:(Vec.length pool) ~s:1.2) in
      if O.is_live t.words o now then Some (T_obj o) else go (a - 1)
    end
  in
  go attempts

let g_pick_mature t ds now =
  let d = t.desc in
  let w = t.words in
  let rng = ds.d_rng in
  let u = Rng.float rng 1.0 in
  let primary =
    if u < d.Descriptor.top2_frac then g_pick_hot t rng now 8
    else if u < d.Descriptor.top10_frac then g_pick_live w rng now t.warm 8
    else g_pick_live w rng now t.cold 8
  in
  match primary with
  | Some _ as r -> r
  | None -> (
    match g_pick_live w rng now t.cold 8 with
    | Some _ as r -> r
    | None -> g_pick_recent w ds now)

let g_pick_write_target t ds now =
  if Rng.bernoulli ds.d_rng t.desc.Descriptor.nursery_write_frac then
    match g_pick_recent t.words ds now with
    | Some o -> Some o
    | None -> g_pick_mature t ds now
  else
    match g_pick_mature t ds now with
    | Some o -> Some o
    | None -> g_pick_recent t.words ds now

let g_do_write t ds now ops =
  match g_pick_write_target t ds now with
  | None -> ()
  | Some src ->
    if Rng.bernoulli ds.d_rng t.desc.Descriptor.ref_write_frac then begin
      let tgt =
        if Rng.bernoulli ds.d_rng 0.5 then
          match g_pick_recent t.words ds now with
          | Some o -> Some o
          | None -> g_pick_mature t ds now
        else g_pick_mature t ds now
      in
      match tgt with
      | Some tgt -> Vec.push ops (Op_write_ref { src; tgt })
      | None -> Vec.push ops (Op_write_prim src)
    end
    else Vec.push ops (Op_write_prim src)

let g_do_reads t ds now ops n =
  let target =
    if Rng.bernoulli ds.d_rng 0.6 then g_pick_recent t.words ds now
    else g_pick_mature t ds now
  in
  match target with
  | Some tgt -> Vec.push ops (Op_read_burst { tgt; words = n })
  | None -> ()

(* Bytes of allocation each domain generates per epoch. Small enough
   that domains interleave at burst granularity, large enough that the
   per-epoch barrier cost is amortised. *)
let epoch_quantum = 4 * 1024

(* Generate one epoch's op stream for domain [d]: the parallel half of
   the protocol. Touches only [t.dstates.(d)] and read-only state. *)
let generate t d snap =
  let ds = t.dstates.(d) in
  let now = snap.s_now in
  let ops = Vec.create () in
  let pending = ref 0 in
  let bytes = ref 0 in
  while !bytes < epoch_quantum do
    let cls, life =
      Lifetime.draw t.life ds.d_rng
        ~nursery_remaining:(float_of_int snap.s_nursery_free.(d))
    in
    let large = Rng.bernoulli ds.d_rng t.p_large in
    let size = if large then draw_large_size_rng ds.d_rng else draw_small_size_rng t ds.d_rng in
    let heat = assign_heat_rng t ds.d_rng cls in
    let ref_fields = max 1 (size / 32) in
    Vec.push ops (Op_alloc { size; heat; life; ref_fields });
    ds.d_recent.(ds.d_recent_cursor) <- Some (T_pending !pending);
    ds.d_recent_cursor <- (ds.d_recent_cursor + 1) mod recent_size;
    incr pending;
    bytes := !bytes + size;
    ds.d_write_debt <-
      ds.d_write_debt +. (float_of_int size *. t.desc.Descriptor.write_alloc_ratio /. 8.0);
    while ds.d_write_debt >= 1.0 do
      g_do_write t ds now ops;
      ds.d_write_debt <- ds.d_write_debt -. 1.0;
      ds.d_read_debt <- ds.d_read_debt +. t.desc.Descriptor.read_write_ratio;
      if ds.d_read_debt >= 1.0 then begin
        let burst = min 8 (int_of_float ds.d_read_debt) in
        g_do_reads t ds now ops burst;
        ds.d_read_debt <- ds.d_read_debt -. float_of_int burst
      end
    done
  done;
  ops

(* The schedule merge itself is op-type agnostic and shared with the
   Kg_serve request mutator — see Epoch.merge_schedule. *)
let merge_schedule t (streams : op Vec.t array) = Epoch.merge_schedule t.sched_rng streams

(* Apply one epoch's merged schedule through the domain-tagged runtime
   interface. Shared-pool registration happens here, on the
   coordinator; reservoir decisions draw from the schedule PRNG so
   generation streams stay untouched. *)
let apply_schedule t merged (epoch_allocs : O.t Vec.t array) =
  let resolve d = function
    | T_obj o -> o
    | T_pending i -> Vec.get epoch_allocs.(d) i
  in
  Vec.iter
    (fun (d, op) ->
      match op with
      | Op_alloc { size; heat; life; ref_fields } ->
        let death = Rt.now t.rt +. life in
        let o = Rt.alloc ~domain:d t.rt ~size ~heat ~death ~ref_fields in
        Vec.push epoch_allocs.(d) o;
        t.allocated <- t.allocated + 1;
        (match heat with
        | O.Hot -> Vec.push t.hot o
        | O.Warm -> Vec.push t.warm o
        | O.Cold ->
          if Vec.length t.cold < cold_cap then Vec.push t.cold o
          else if
            Rng.bernoulli t.sched_rng (float_of_int cold_cap /. float_of_int t.allocated)
          then Vec.set t.cold (Rng.int t.sched_rng cold_cap) o)
      | Op_write_ref { src; tgt } ->
        Rt.write_ref ~domain:d t.rt ~src:(resolve d src) ~tgt:(resolve d tgt)
      | Op_write_prim tgt -> Rt.write_prim ~domain:d t.rt (resolve d tgt)
      | Op_read_burst { tgt; words } -> Rt.read_burst ~domain:d t.rt (resolve d tgt) words)
    merged

(* Epoch barrier: resolve the recent rings' pending markers to the
   objects the epoch materialised, and compact the shared pools
   (the sequential path prunes lazily inside its picks; the parallel
   path must not mutate pools mid-epoch, so it prunes here). *)
let epoch_barrier t (epoch_allocs : O.t Vec.t array) =
  let now = Rt.now t.rt in
  Array.iteri
    (fun d ds ->
      Array.iteri
        (fun i slot ->
          match slot with
          | Some (T_pending p) -> ds.d_recent.(i) <- Some (T_obj (Vec.get epoch_allocs.(d) p))
          | _ -> ())
        ds.d_recent)
    t.dstates;
  Vec.filter_in_place (fun o -> O.is_live t.words o now) t.hot;
  Vec.filter_in_place (fun o -> O.is_live t.words o now) t.warm;
  Vec.filter_in_place (fun o -> O.is_live t.words o now) t.cold

(* The worker team (real Domains above 0, coordinator generating
   domain 0's stream while waiting) is the shared Epoch.team. *)
let run_epochs t ~alloc_bytes ~on_tick ~tick_bytes =
  let n = t.nthreads in
  let start = Rt.now t.rt in
  let next_tick = ref (start +. float_of_int tick_bytes) in
  let target = start +. float_of_int alloc_bytes in
  let streams : op Vec.t array = Array.init n (fun _ -> Vec.create ()) in
  let snap = ref { s_now = 0.0; s_nursery_free = [||] } in
  let team = Epoch.spawn ~n ~oracle:t.oracle (fun d -> streams.(d) <- generate t d !snap) in
  (try
     while Rt.now t.rt < target do
       snap :=
         {
           s_now = Rt.now t.rt;
           s_nursery_free = Array.init n (fun d -> Rt.nursery_free ~domain:d t.rt);
         };
       Epoch.round team;
       let merged = merge_schedule t streams in
       let epoch_allocs = Array.init n (fun _ -> Vec.create ()) in
       apply_schedule t merged epoch_allocs;
       epoch_barrier t epoch_allocs;
       if Rt.now t.rt >= !next_tick then begin
         on_tick (Rt.now t.rt);
         next_tick := !next_tick +. float_of_int tick_bytes
       end
     done
   with e ->
     Epoch.finish team;
     raise e);
  Epoch.finish team

let run t ~alloc_bytes ?(on_tick = fun _ -> ()) ?(tick_bytes = Units.mib) () =
  if t.nthreads = 1 then run_sequential t ~alloc_bytes ~on_tick ~tick_bytes
  else run_epochs t ~alloc_bytes ~on_tick ~tick_bytes

let scaled_alloc_bytes (d : Descriptor.t) ~scale ~cap_mb =
  let scaled = d.alloc_mb / max 1 scale in
  let floor_mb = min d.alloc_mb 96 in
  min cap_mb (max floor_mb scaled) * Units.mib
