(** The synthetic mutator: turns a {!Descriptor} into the allocation,
    write, and read stream the runtime executes.

    Each allocated object gets a size (geometric around the benchmark's
    mean, or a heavy-tailed large size), a lifetime class from
    {!Lifetime}, and a hotness class. Mutation writes follow the
    descriptor's nursery/mature split; mature writes pick their target
    through the hot/warm/cold pools so the top-2 % of mature objects
    absorb the paper's top-2 % write share (Figure 2). Reference writes
    pick targets young often enough to exercise both remembered sets. *)

type t

val create :
  ?live_mb:int ->
  ?threads:int ->
  ?schedule_seed:int ->
  ?oracle:bool ->
  Descriptor.t ->
  rt:Kg_gc.Runtime.t ->
  seed:int ->
  t
(** [live_mb] overrides the benchmark's live-heap target for scaled
    runs; lifetime calibration and the startup base follow it.

    [threads] (default 1) is the number of mutator domains. Each gets
    its own PRNG stream, recent-allocation window and read/write
    debts. With one thread the mutator runs the classic sequential
    loop. With more, [rt] must have been created with
    [~domains:threads], and {!run} executes the epoch protocol: each
    domain {e generates} a symbolic op stream in parallel on a real
    [Domain] as a pure function of its private state plus an
    epoch-start snapshot, and the coordinator {e applies} the streams
    sequentially in a deterministic merge drawn from [schedule_seed]
    (default 0). The result is a bit-reproducible function of
    [(seed, schedule_seed, threads)], independent of OS scheduling.

    [oracle] (default false) runs the identical protocol but generates
    every stream inline on the calling domain, in domain order, with
    no [Domain.spawn] — the single-domain interleaved oracle the
    differential tests compare the parallel path against. *)

val descriptor : t -> Descriptor.t
val runtime : t -> Kg_gc.Runtime.t

val thread_count : t -> int

val boot_allocs_by_thread : t -> int array
(** How many boot-image objects {!allocate_startup} charged to each
    mutator thread; startup round-robins so no thread is privileged. *)

val allocate_startup : t -> unit
(** Allocate the immortal base: 40 % of the benchmark's live target,
    modeling boot images and static data. Run once before {!run}. *)

val run :
  t -> alloc_bytes:int -> ?on_tick:(float -> unit) -> ?tick_bytes:int -> unit -> unit
(** Allocate and mutate until [alloc_bytes] more bytes have been
    allocated. [on_tick] fires roughly every [tick_bytes] (default
    1 MiB) of allocation with the current allocation clock — the hook
    the Figure 13 traces use. *)

val scaled_alloc_bytes : Descriptor.t -> scale:int -> cap_mb:int -> int
(** The run length used by the experiment drivers: the benchmark's
    allocation volume divided by [scale], clamped to at least 48 MB
    (or the full volume when smaller) and at most [cap_mb]. *)
