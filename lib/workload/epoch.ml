(* The generic half of the generate-then-merge epoch protocol, shared
   by Kg_workload.Mutator and Kg_serve: the schedule-PRNG stream merge
   and the worker-domain team. Both are op-type agnostic — the
   determinism argument (pure per-domain generation, PRNG-driven merge
   preserving per-domain order, coordinator-only apply) lives with the
   callers; this module only guarantees that [merge_schedule] is a
   pure function of the PRNG state and the streams, and that [round]
   runs the same per-domain generators whether on real Domains or
   inline in domain order. *)

open Kg_util

(* Interleave the domains' op streams into one schedule: repeatedly
   pick a domain with ops remaining and take a chunk, both drawn from
   the schedule PRNG. Per-domain order is preserved. *)
let merge_schedule rng (streams : 'a Vec.t array) : (int * 'a) Vec.t =
  let n = Array.length streams in
  let pos = Array.make n 0 in
  let remaining = ref 0 in
  Array.iter (fun s -> remaining := !remaining + Vec.length s) streams;
  let out = Vec.create () in
  let alive = Array.make n 0 in
  while !remaining > 0 do
    let na = ref 0 in
    for d = 0 to n - 1 do
      if pos.(d) < Vec.length streams.(d) then begin
        alive.(!na) <- d;
        incr na
      end
    done;
    let d = alive.(Rng.int rng !na) in
    let chunk = 1 + Rng.int rng 8 in
    let len = Vec.length streams.(d) in
    let take = min chunk (len - pos.(d)) in
    for _ = 1 to take do
      Vec.push out (d, Vec.get streams.(d) pos.(d));
      pos.(d) <- pos.(d) + 1
    done;
    remaining := !remaining - take
  done;
  out

(* The worker team: one real Domain per mutator domain above 0 (the
   coordinator runs domain 0's generator itself while waiting), parked
   on a condition variable between epochs. In oracle mode no Domains
   are spawned and [round] runs every generator inline in domain
   order — producing, by purity of the generators, the identical
   streams. *)
type team = {
  n : int;
  oracle : bool;
  gen : int -> unit;
  tm : Mutex.t;
  tcv : Condition.t;
  mutable t_epoch : int;
  mutable t_done : int;
  mutable t_stop : bool;
  mutable workers : unit Domain.t array;
}

let spawn ~n ~oracle gen =
  let team =
    {
      n;
      oracle;
      gen;
      tm = Mutex.create ();
      tcv = Condition.create ();
      t_epoch = 0;
      t_done = 0;
      t_stop = false;
      workers = [||];
    }
  in
  let worker d () =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock team.tm;
      while team.t_epoch = !seen && not team.t_stop do
        Condition.wait team.tcv team.tm
      done;
      if team.t_stop then begin
        running := false;
        Mutex.unlock team.tm
      end
      else begin
        seen := team.t_epoch;
        Mutex.unlock team.tm;
        gen d;
        Mutex.lock team.tm;
        team.t_done <- team.t_done + 1;
        Condition.broadcast team.tcv;
        Mutex.unlock team.tm
      end
    done
  in
  if not (oracle || n <= 1) then
    team.workers <- Array.init (n - 1) (fun i -> Domain.spawn (worker (i + 1)));
  team

let round team =
  if Array.length team.workers = 0 then
    for d = 0 to team.n - 1 do
      team.gen d
    done
  else begin
    Mutex.lock team.tm;
    team.t_done <- 0;
    team.t_epoch <- team.t_epoch + 1;
    Condition.broadcast team.tcv;
    Mutex.unlock team.tm;
    team.gen 0;
    Mutex.lock team.tm;
    while team.t_done < team.n - 1 do
      Condition.wait team.tcv team.tm
    done;
    Mutex.unlock team.tm
  end

let finish team =
  if not team.t_stop then begin
    Mutex.lock team.tm;
    team.t_stop <- true;
    Condition.broadcast team.tcv;
    Mutex.unlock team.tm;
    Array.iter Domain.join team.workers
  end
