open Kg_util
open Kg_gc
open Kg_workload

type mode = Simulate | Count

type spec = {
  system : Machine.system;
  collector : Gc_config.collector;
  nursery_mb : int;
  wp : bool;
  observer_mb : int option;  (* None = the default 2x nursery *)
  write_threshold : int;
  pcm_write_trigger_mb : int option;
}

let kg_n =
  {
    system = Machine.Hybrid;
    collector = Gc_config.Kg_nursery;
    nursery_mb = 4;
    wp = false;
    observer_mb = None;
    write_threshold = 1;
    pcm_write_trigger_mb = None;
  }
let kg_n_12 = { kg_n with nursery_mb = 12 }
let kg_w = { kg_n with collector = Gc_config.kg_w_default }
let kg_w_no_loo = { kg_n with collector = Gc_config.Kg_writers { loo = false; mdo = true; pm = true } }

let kg_w_no_loo_mdo =
  { kg_n with collector = Gc_config.Kg_writers { loo = false; mdo = false; pm = true } }

let kg_w_no_pm = { kg_n with collector = Gc_config.Kg_writers { loo = true; mdo = true; pm = false } }

(* KG-B ("balanced"): KG-W with the observer shrunk to nursery size
   instead of the paper's 2x. Objects spend half as long under write
   observation — shorter observer pauses and less tenured-garbage
   delay, at the cost of classifying on half the write evidence. The
   serve SLO figures sweep it between KG-N and KG-W. *)
let kg_b = { kg_n with collector = Gc_config.kg_w_default; observer_mb = Some 4 }
let dram_only = { kg_n with system = Machine.Dram_only; collector = Gc_config.Gen_immix }
let pcm_only = { dram_only with system = Machine.Pcm_only }
let wp = { kg_n with collector = Gc_config.Gen_immix; wp = true }

let label spec =
  if spec.wp then "WP"
  else if spec = kg_b then "KG-B"
  else
    match spec.collector with
    | Gc_config.Gen_immix -> Machine.system_name spec.system
    | c ->
      Gc_config.name
        (Gc_config.make ~nursery_mb:spec.nursery_mb ~heap_mb:64 c)

(* Everything the SLO figures read off a serve run: the request
   counters plus the two log-bucketed histograms. [rate] is echoed
   from the config so tables can reconstruct the modeled duration
   (requests / rate) without re-deriving the job. *)
type serve_metrics = {
  requests : int;
  rate : float;
  t1_hits : int;
  t2_hits : int;
  backend_fills : int;
  sessions_churned : int;
  pause_hist : Hdr_histogram.t;
  latency_hist : Hdr_histogram.t;
}

type result = {
  bench : Descriptor.t;
  spec : spec;
  stats : Gc_stats.t;
  alloc_bytes : int;
  mem_pcm_write_bytes : float;
  mem_dram_write_bytes : float;
  mem_pcm_read_bytes : float;
  mem_dram_read_bytes : float;
  pcm_writes_by_phase : float array;
  wear_cov : float;
  migration_pcm_bytes : float;
  wp_dram_mb : float;
  time_parts : Time_model.parts;
  time_s : float;
  energy : Energy.t option;
  edp : float;
  dram_avg_mb : float;
  dram_max_mb : float;
  pcm_avg_mb : float;
  pcm_max_mb : float;
  mature_dram_avg_mb : float;
  meta_mb : float;
  trace : (float * float * float) list;
  check_violations : string list;
  serve : serve_metrics option;
}

(* The pause-time model handed to the serve recorder and the pause
   profile helpers: Time_model.pause_ms with the run's domain count
   applied, in the shape Gc_stats.pause_log expects. *)
let pause_model ?(domains = 1) ?(parallel_gc = false) () =
 fun (_ : Phase.t) ~copied ~scanned -> Time_model.pause_ms ~domains ~parallel_gc ~copied ~scanned ()

(* The engine simulates one mutator thread; the paper's 4-core rates
   run the multithreaded benchmarks across all cores, and write rates
   scale near-linearly at low core counts (Table 3 shows >= 5x from 4
   to 32 cores), so one simulated thread ~ a quarter of the machine. *)
let single_thread_to_4core = 4.0

let pcm_write_rate_4core_gbs r =
  if r.time_s <= 0.0 then 0.0
  else r.mem_pcm_write_bytes /. r.time_s /. float_of_int Units.gib *. single_thread_to_4core

let pcm_write_rate_32core_gbs r =
  pcm_write_rate_4core_gbs r *. r.bench.Descriptor.scaling_32core

let lifetime_years ?(endurance = 30e6) r =
  Kg_mem.Lifetime.years
    ~size_bytes:(float_of_int (32 * Units.gib))
    ~endurance
    ~write_rate_bytes_per_s:(pcm_write_rate_32core_gbs r *. float_of_int Units.gib)

(* Scale the live target with the (shortened) run so collections of
   every kind still fire; ratios, not volumes, are what the figures
   report. *)
let live_mb_of ~heap_scale bench = max 16 (Descriptor.live_mb bench / max 1 heap_scale)

(* Record and replay must derive the exact same configuration, so both
   go through here. *)
let config_of ~heap_scale spec bench =
  let live_mb = live_mb_of ~heap_scale bench in
  Gc_config.make ~nursery_mb:spec.nursery_mb ?observer_mb:spec.observer_mb
    ~write_threshold:spec.write_threshold ?pcm_write_trigger_mb:spec.pcm_write_trigger_mb
    ~heap_mb:(2 * live_mb) spec.collector

let run ?(seed = 42) ?(scale = 16) ?(heap_scale = 3) ?(cap_mb = 256) ?(trace = false)
    ?(threads = 1) ?(schedule_seed = 0) ?(oracle = false) ?(parallel_gc = false)
    ?(check = false) ?recorder ?serve ~mode spec bench =
  (* The oracle protocol runs every parallel component inline. The
     requested flag still drives the pause-time model: the oracle
     models the same machine, executed inline, so its pause profile
     must match the team run's bit for bit. *)
  let modeled_parallel_gc = parallel_gc in
  let parallel_gc = parallel_gc && not oracle in
  let live_mb = live_mb_of ~heap_scale bench in
  let cfg = config_of ~heap_scale spec bench in
  let counting_counters = ref None in
  (* Assemble memory system, runtime address map, and memory port. *)
  let machine, wp_engine, runtime_map, mem =
    match (mode, spec.wp) with
    | Simulate, false ->
      let m = Machine.build spec.system in
      (Some m, None, m.Machine.map, Machine.port m)
    | Simulate, true ->
      let m = Machine.build Machine.Hybrid in
      let virt_size = Kg_mem.Address_map.pcm_size m.Machine.map in
      let w = Kg_os.Write_partition.create ~hier:m.Machine.hier ~virt_size () in
      let vmap = Kg_mem.Address_map.pcm_only ~size:virt_size () in
      (Some m, Some w, vmap, Kg_os.Write_partition.port w)
    | Count, _ ->
      let map = Machine.map_of spec.system in
      let iface, c = Mem_iface.counting ~map in
      counting_counters := Some c;
      (None, None, map, iface)
  in
  let rt = Runtime.create ~domains:threads ~parallel_gc ~config:cfg ~mem ~map:runtime_map ~seed () in
  Fun.protect ~finally:(fun () -> Runtime.shutdown rt) @@ fun () ->
  Option.iter (fun r -> Runtime.set_event_hook rt (Trace.record r)) recorder;
  (* Sample heap composition at every collection. *)
  let dram_acc = Stats.Acc.create () and pcm_acc = Stats.Acc.create () in
  let mature_dram_acc = Stats.Acc.create () in
  let trace_acc = ref [] in
  Runtime.set_gc_hook rt (fun _phase ->
      let d = Units.mib_of_bytes (Runtime.dram_used rt) in
      let p = Units.mib_of_bytes (Runtime.pcm_used rt) in
      Stats.Acc.add dram_acc d;
      Stats.Acc.add pcm_acc p;
      Stats.Acc.add mature_dram_acc (Units.mib_of_bytes (Runtime.usage rt).mature_dram_used);
      if trace then trace_acc := (Runtime.now rt, p, d) :: !trace_acc);
  (* The auditor chains onto the sampling hook and re-checks the heap
     at the end of every collection phase. *)
  let audit_acc =
    if check then Some (Verify.attach ?counters:!counting_counters rt) else None
  in
  let alloc_bytes = Mutator.scaled_alloc_bytes bench ~scale ~cap_mb in
  let serve_metrics =
    match serve with
    | None ->
      let mutator =
        Mutator.create ~live_mb ~threads ~schedule_seed ~oracle bench ~rt ~seed:(seed + 1)
      in
      Mutator.allocate_startup mutator;
      (* Demographics reflect steady state, not boot-image construction. *)
      Option.iter (fun r -> Trace.record r Trace.Reset_stats) recorder;
      Gc_stats.reset (Runtime.stats rt);
      Mutator.run mutator ~alloc_bytes ();
      None
    | Some serve_cfg ->
      let module S = Kg_serve.Server in
      let srv =
        S.create ~live_mb ~threads ~schedule_seed ~oracle ~config:serve_cfg bench ~rt
          ~seed:(seed + 1)
      in
      S.allocate_startup srv;
      Option.iter (fun r -> Trace.record r Trace.Reset_stats) recorder;
      Gc_stats.reset (Runtime.stats rt);
      (* Attached after the reset so boot collections stay out of the
         pause profile, like every other steady-state statistic. *)
      S.attach_pause_recorder srv
        ~pause_ms:(pause_model ~domains:threads ~parallel_gc:modeled_parallel_gc ());
      S.run srv ~alloc_bytes;
      Some
        {
          requests = S.request_count srv;
          rate = serve_cfg.S.rate;
          t1_hits = S.tier1_hits srv;
          t2_hits = S.tier2_hits srv;
          backend_fills = S.backend_fills srv;
          sessions_churned = S.sessions_churned srv;
          pause_hist = S.pauses srv;
          latency_hist = S.latencies srv;
        }
  in
  Option.iter (fun r -> Trace.record r Trace.Flush_retirement) recorder;
  Runtime.flush_retirement_stats rt;
  (* Push buffered port records to the sink before the final cache
     drain, then read every device figure from the one stats record —
     whichever sink (counting, cache hierarchy, write partition) was
     installed. *)
  Mem_iface.flush mem;
  Option.iter Machine.drain machine;
  let traffic = Mem_iface.stats mem in
  let stats = Runtime.stats rt in
  let parts =
    Time_model.cpu_parts ~domains:threads ~parallel_gc
      ~intensity:bench.Descriptor.cpu_intensity stats ~alloc_bytes
  in
  let parts = match machine with Some m -> Time_model.with_machine parts m | None -> parts in
  let time_s = Time_model.seconds parts in
  let energy = Option.map (fun m -> Energy.of_run ~machine:m ~time_s) machine in
  let f = float_of_int in
  let migration_pcm_bytes =
    match wp_engine with
    | Some w -> f (Kg_os.Write_partition.migration_pcm_line_writes w * 64)
    | None -> 0.0
  in
  {
    bench;
    spec;
    stats;
    alloc_bytes;
    mem_pcm_write_bytes = f traffic.Mem_iface.s_pcm_write_bytes;
    mem_dram_write_bytes = f traffic.Mem_iface.s_dram_write_bytes;
    mem_pcm_read_bytes = f traffic.Mem_iface.s_pcm_read_bytes;
    mem_dram_read_bytes = f traffic.Mem_iface.s_dram_read_bytes;
    pcm_writes_by_phase = Array.map f traffic.Mem_iface.s_pcm_write_bytes_by_phase;
    wear_cov =
      (match machine with
      | Some { Machine.wear = Some w; _ } -> Kg_mem.Wear.write_distribution_cov w
      | _ -> 0.0);
    migration_pcm_bytes;
    wp_dram_mb =
      (match wp_engine with
      | Some w ->
        Units.mib_of_bytes (Kg_os.Write_partition.peak_dram_pages w * Kg_heap.Layout.page)
      | None -> 0.0);
    time_parts = parts;
    time_s;
    energy;
    edp = (match energy with Some e -> Energy.edp e ~time_s | None -> 0.0);
    dram_avg_mb = Stats.Acc.mean dram_acc;
    dram_max_mb = (if Stats.Acc.count dram_acc = 0 then 0.0 else Stats.Acc.max dram_acc);
    pcm_avg_mb = Stats.Acc.mean pcm_acc;
    pcm_max_mb = (if Stats.Acc.count pcm_acc = 0 then 0.0 else Stats.Acc.max pcm_acc);
    mature_dram_avg_mb = Stats.Acc.mean mature_dram_acc;
    meta_mb = Units.mib_of_bytes (Runtime.usage rt).meta_used;
    trace = List.rev !trace_acc;
    check_violations =
      (match audit_acc with
      | None -> []
      | Some acc ->
        let final =
          Verify.audit ?counters:!counting_counters ~phase:Phase.Application rt
        in
        List.map Verify.to_string (Array.to_list (Vec.to_array acc) @ final));
    serve = serve_metrics;
  }

let record ?seed ?scale ?heap_scale ?cap_mb ?check spec bench =
  let r = Trace.recorder () in
  let result = run ?seed ?scale ?heap_scale ?cap_mb ?check ~recorder:r ~mode:Count spec bench in
  (result, Trace.events r)

let replay ?(seed = 42) ?(heap_scale = 3) spec bench events =
  let cfg = config_of ~heap_scale spec bench in
  let map = Machine.map_of spec.system in
  let mem, counters = Mem_iface.counting ~map in
  let rt = Runtime.create ~config:cfg ~mem ~map ~seed () in
  match Replay.run rt events with
  | Ok () ->
    Mem_iface.flush mem;
    Ok (Runtime.stats rt, counters)
  | Error m -> Error m
