(** Execution-time reconstruction.

    CPU-side time comes from the runtime's event counters (allocation
    volume, access events, copied bytes, barrier activity); memory-side
    time comes from the simulated hierarchy and controller, scaled by
    the memory-level-parallelism overlap factor. In counting mode
    (architecture-independent runs, the paper's real-hardware
    experiments) there is no device time and all latencies are
    effectively uniform, so only the CPU part is meaningful — exactly
    like measuring on a DRAM machine (§6.2). *)

type parts = {
  app_ns : float;  (** mutator: allocation, zeroing, access events *)
  gc_ns : float;  (** collection work: copies, scans, pauses *)
  remset_ns : float;  (** remembered-set barrier slow paths *)
  monitor_ns : float;  (** write-word monitoring slow paths *)
  mem_base_ns : float;  (** stall time if every access cost DRAM latency *)
  mem_pcm_extra_ns : float;  (** additional stalls from PCM's longer latencies *)
}

val total_ns : parts -> float

val cpu_parts :
  ?domains:int ->
  ?parallel_gc:bool ->
  ?intensity:float ->
  Kg_gc.Gc_stats.t ->
  alloc_bytes:int ->
  parts
(** The CPU-side components; memory fields are zero. [intensity]
    scales the application-compute term (benchmarks differ widely in
    work per heap access; the workload descriptor carries the
    calibrated value). [domains] (default 1) divides the mutator-side
    terms — allocation, access, barrier and monitor fast paths run on
    that many cores in parallel — while stop-the-world collection time
    stays sequential by default (Amdahl-style scaling for the simulated
    multicore mutators). [parallel_gc] (default [false]) additionally
    spreads the collection copy/scan work over the same [domains] cores
    inside each pause, charging {!Costs.t_gc_sync_ns} of fork/join and
    merge overhead per collection. *)

val with_machine : parts -> Machine.t -> parts
(** Add memory stall time from the machine's counters. *)

val seconds : parts -> float

val pause_ms :
  ?domains:int -> ?parallel_gc:bool -> copied:int -> scanned:int -> unit -> float
(** Stop-the-world pause estimate for one collection from its work
    terms (used to check the paper's pause ordering: nursery <
    observer < full-heap, §4.2.1). With [parallel_gc] and multiple
    [domains] the work terms divide across the collector team and the
    sync term is added, shrinking the pause itself. *)
