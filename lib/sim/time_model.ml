open Kg_gc

type parts = {
  app_ns : float;
  gc_ns : float;
  remset_ns : float;
  monitor_ns : float;
  mem_base_ns : float;
  mem_pcm_extra_ns : float;
}

let total_ns p =
  p.app_ns +. p.gc_ns +. p.remset_ns +. p.monitor_ns +. p.mem_base_ns +. p.mem_pcm_extra_ns

let cpu_parts ?(domains = 1) ?(parallel_gc = false) ?(intensity = 1.0) (st : Gc_stats.t)
    ~alloc_bytes =
  let f = float_of_int in
  let access_events = st.reads + st.ref_writes + st.prim_writes in
  let copied = st.copied_bytes_nursery + st.copied_bytes_observer + st.copied_bytes_major in
  let collections = st.nursery_gcs + st.observer_gcs + st.major_gcs in
  let app_ns =
    (f alloc_bytes *. Costs.t_alloc_per_byte_ns *. intensity)
    +. (f access_events *. Costs.t_access_ns *. intensity)
    +. (f (st.ref_writes + st.prim_writes) *. Costs.t_barrier_fast_ns)
  in
  let gc_work_ns =
    (f copied *. Costs.t_copy_per_byte_ns)
    +. (f (st.scanned_objects + st.remset_slot_updates) *. Costs.t_scan_per_object_ns)
  in
  let remset_ns =
    f (st.gen_remset_inserts + st.obs_remset_inserts) *. Costs.t_remset_insert_ns
  in
  let monitor_ns = f st.monitor_header_writes *. Costs.t_monitor_ns in
  (* Mutator-side work (allocation, accesses, barrier fast paths,
     remset buffering, write monitoring) runs on [domains] cores in
     parallel. Collections are stop-the-world: sequential by default,
     but with [parallel_gc] the copy/scan work spreads over the same
     [domains] cores inside the pause, at the price of a per-collection
     fork/join-and-merge synchronisation term. *)
  let d = f (max 1 domains) in
  let gc_ns =
    if parallel_gc && domains > 1 then
      (gc_work_ns /. d) +. (f collections *. (Costs.t_gc_fixed_ns +. Costs.t_gc_sync_ns))
    else gc_work_ns +. (f collections *. Costs.t_gc_fixed_ns)
  in
  {
    app_ns = app_ns /. d;
    gc_ns;
    remset_ns = remset_ns /. d;
    monitor_ns = monitor_ns /. d;
    mem_base_ns = 0.0;
    mem_pcm_extra_ns = 0.0;
  }

let with_machine p (m : Machine.t) =
  let open Kg_cache in
  let open Kg_mem in
  let f = float_of_int in
  let dram = Controller.device m.Machine.ctrl Device.Dram in
  let pcm = Controller.device m.Machine.ctrl Device.Pcm in
  let reads k = f (Controller.reads m.Machine.ctrl k) in
  let writes k = f (Controller.writes m.Machine.ctrl k) in
  (* Base: every memory access at DRAM speed, plus cache lookup time.
     Loads stall; stores are posted through the write queue. *)
  let base =
    (Hierarchy.hit_time_ns m.Machine.hier *. Costs.mem_read_overlap)
    +. (reads Device.Dram +. reads Device.Pcm)
       *. dram.Device.read_latency_ns *. Costs.mem_read_overlap
    +. (writes Device.Dram +. writes Device.Pcm)
       *. dram.Device.write_latency_ns *. Costs.mem_write_overlap
  in
  (* Extra: the latency PCM adds over DRAM on its accesses. *)
  let extra =
    (reads Device.Pcm
    *. (pcm.Device.read_latency_ns -. dram.Device.read_latency_ns)
    *. Costs.mem_read_overlap)
    +. writes Device.Pcm
       *. (pcm.Device.write_latency_ns -. dram.Device.write_latency_ns)
       *. Costs.mem_write_overlap
  in
  { p with mem_base_ns = base; mem_pcm_extra_ns = extra }

let seconds p = total_ns p *. 1e-9

let pause_ms ?(domains = 1) ?(parallel_gc = false) ~copied ~scanned () =
  let work =
    (float_of_int copied *. Costs.t_copy_per_byte_ns)
    +. (float_of_int scanned *. Costs.t_scan_per_object_ns)
  in
  (if parallel_gc && domains > 1 then
     Costs.t_gc_fixed_ns +. Costs.t_gc_sync_ns +. (work /. float_of_int domains)
   else Costs.t_gc_fixed_ns +. work)
  *. 1e-6
