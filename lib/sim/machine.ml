open Kg_mem
open Kg_cache

type system = Dram_only | Pcm_only | Hybrid

let system_name = function
  | Dram_only -> "DRAM-only"
  | Pcm_only -> "PCM-only"
  | Hybrid -> "Hybrid"

type t = {
  system : system;
  map : Address_map.t;
  ctrl : Controller.t;
  hier : Hierarchy.t;
  wear : Wear.t option;
}

let dram_gb = 32
let pcm_gb = 32
let hybrid_dram_gb = 1

let gib = Kg_util.Units.gib

let map_of = function
  | Dram_only -> Address_map.dram_only ~size:(dram_gb * gib) ()
  | Pcm_only -> Address_map.pcm_only ~size:(pcm_gb * gib) ()
  | Hybrid -> Address_map.hybrid ~dram_size:(hybrid_dram_gb * gib) ~pcm_size:(pcm_gb * gib) ()

let build ?(endurance = 30e6) system =
  let map = map_of system in
  let has_pcm = Address_map.pcm_size map > 0 in
  let wear =
    if has_pcm then Some (Wear.create ~size:(Address_map.pcm_size map) ()) else None
  in
  let ctrl =
    Controller.create ~pcm:(Device.pcm_with_endurance endurance) ?wear ~map ~line_size:64 ()
  in
  let hier = Hierarchy.create ~controller:ctrl () in
  { system; map; ctrl; hier; wear }

let port t = Kg_gc.Mem_iface.of_hierarchy t.hier

let pcm_write_bytes t = Controller.bytes_written t.ctrl Device.Pcm
let dram_write_bytes t = Controller.bytes_written t.ctrl Device.Dram
let drain t = Hierarchy.drain t.hier
