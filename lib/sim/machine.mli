(** The simulated machine (Table 2): one of the three memory systems,
    with the cache hierarchy and memory controller in front, and
    wear-leveling + endurance accounting on the PCM device. *)

type system = Dram_only | Pcm_only | Hybrid

val system_name : system -> string

type t = {
  system : system;
  map : Kg_mem.Address_map.t;
  ctrl : Kg_cache.Controller.t;
  hier : Kg_cache.Hierarchy.t;
  wear : Kg_mem.Wear.t option;
}

val dram_gb : int
(** 32 GB for the DRAM-only system. *)

val pcm_gb : int
(** 32 GB of PCM. *)

val hybrid_dram_gb : int
(** 1 GB of DRAM in the hybrid system. *)

val map_of : system -> Kg_mem.Address_map.t

val build : ?endurance:float -> system -> t
(** Assemble caches, controller and wear-leveling for a system.
    [endurance] defaults to the paper's 30 M writes/cell. *)

val port : t -> Kg_gc.Mem_iface.t
(** A batched memory port whose [Cache_sim] sink drives this machine's
    cache hierarchy; read traffic totals back with
    {!Kg_gc.Mem_iface.stats}. *)

val pcm_write_bytes : t -> int
val dram_write_bytes : t -> int

val drain : t -> unit
(** Flush the cache hierarchy. Idempotent — see
    {!Kg_cache.Hierarchy.drain}. *)
