(** Run one (benchmark, memory system, collector) combination and
    collect every metric the paper's figures read. *)

type mode =
  | Simulate  (** full cache + memory simulation (the paper's Sniper runs) *)
  | Count  (** architecture-independent barrier-level counting (the
               paper's real-hardware runs) *)

type spec = {
  system : Machine.system;
  collector : Kg_gc.Gc_config.collector;
  nursery_mb : int;
  wp : bool;  (** OS write-partitioning instead of GC-directed placement *)
  observer_mb : int option;  (** [None] = the paper's 2x nursery *)
  write_threshold : int;  (** counting extension; 1 = the paper's bit *)
  pcm_write_trigger_mb : int option;  (** write-triggered major extension *)
}

val kg_n : spec
val kg_n_12 : spec
val kg_w : spec
val kg_w_no_loo : spec
val kg_w_no_loo_mdo : spec
val kg_w_no_pm : spec

val kg_b : spec
(** KG-B ("balanced"): KG-W with a nursery-sized observer instead of
    the paper's 2x — shorter observer pauses on half the write
    evidence. Swept between KG-N and KG-W by the serve SLO figures. *)

val dram_only : spec
val pcm_only : spec
val wp : spec

val label : spec -> string

type serve_metrics = {
  requests : int;
  rate : float;  (** echoed from the serve config; duration_s = requests / rate *)
  t1_hits : int;
  t2_hits : int;
  backend_fills : int;
  sessions_churned : int;
  pause_hist : Kg_util.Hdr_histogram.t;  (** per-collection STW pauses, ms *)
  latency_hist : Kg_util.Hdr_histogram.t;  (** per-request end-to-end latency, ms *)
}

type result = {
  bench : Kg_workload.Descriptor.t;
  spec : spec;
  stats : Kg_gc.Gc_stats.t;
  alloc_bytes : int;
  (* memory-level traffic (Simulate mode; zeros in Count mode) *)
  mem_pcm_write_bytes : float;
  mem_dram_write_bytes : float;
  mem_pcm_read_bytes : float;
  mem_dram_read_bytes : float;
  pcm_writes_by_phase : float array;  (** bytes, by {!Kg_gc.Phase.to_tag} *)
  wear_cov : float;  (** wear-leveling uniformity (0 = uniform) *)
  migration_pcm_bytes : float;  (** WP page copies into PCM *)
  wp_dram_mb : float;  (** peak WP DRAM partition usage *)
  (* time and energy *)
  time_parts : Time_model.parts;
  time_s : float;
  energy : Energy.t option;
  edp : float;  (** 0 in Count mode *)
  (* demographics, sampled at every collection *)
  dram_avg_mb : float;
  dram_max_mb : float;
  pcm_avg_mb : float;
  pcm_max_mb : float;
  mature_dram_avg_mb : float;
  meta_mb : float;
  trace : (float * float * float) list;
      (** (allocation clock, PCM MB, DRAM MB), oldest first, when traced *)
  check_violations : string list;
      (** heap-auditor violations, in detection order ([] unless run
          with [~check:true] — and, hopefully, with it) *)
  serve : serve_metrics option;  (** populated by serve-mode runs only *)
}

val pause_model :
  ?domains:int -> ?parallel_gc:bool -> unit ->
  Kg_gc.Phase.t -> copied:int -> scanned:int -> float
(** {!Time_model.pause_ms} in the shape
    {!Kg_gc.Gc_stats.pause_log} and the serve pause recorder expect. *)

val pcm_write_rate_4core_gbs : result -> float
(** Simulated PCM write rate: writeback bytes / reconstructed time. *)

val pcm_write_rate_32core_gbs : result -> float
(** Scaled by the benchmark's Table 3 factor, as in §5.2.2. *)

val lifetime_years : ?endurance:float -> result -> float
(** Equation 1 with the 32-core write rate. *)

val run :
  ?seed:int ->
  ?scale:int ->
  ?heap_scale:int ->
  ?cap_mb:int ->
  ?trace:bool ->
  ?threads:int ->
  ?schedule_seed:int ->
  ?oracle:bool ->
  ?parallel_gc:bool ->
  ?check:bool ->
  ?recorder:Kg_gc.Trace.recorder ->
  ?serve:Kg_serve.Server.config ->
  mode:mode ->
  spec ->
  Kg_workload.Descriptor.t ->
  result
(** [scale] divides the benchmark's allocation volume (default 16);
    [heap_scale] divides its live-heap target (default 3, floor 16 MB)
    so that observer and major collections still fire in shortened
    runs; [cap_mb] bounds the run length (default 256 MB).

    [threads] (default 1) runs that many mutator domains over a
    runtime created with matching [~domains] — real [Domain]s
    generating op streams merged deterministically by [schedule_seed]
    (default 0); [oracle] (default false) runs the same protocol
    inline on one domain (see {!Kg_workload.Mutator.create}). The
    result is a pure function of the seeds, not of OS scheduling.

    [parallel_gc] (default false) additionally runs the collection
    phases on a team of [threads] worker domains (see
    {!Kg_gc.Runtime.create}). Every counter, trace and traffic figure
    stays bit-identical to the inline collector at the same [threads];
    only the modeled collection time ([time_parts.gc_ns], and so
    [time_s]) shrinks. Forced off by [oracle], which runs every
    parallel component inline.

    [check] (default false) attaches the {!Kg_gc.Verify} heap auditor
    to every collection phase plus a final end-of-run audit, reporting
    violations in [check_violations]. [recorder] records every
    runtime-API event plus the driver's reset/flush markers into a
    replayable {!Kg_gc.Trace}.

    [serve] replaces the batch mutator with the {!Kg_serve.Server}
    request/response mutator at the given config (same epoch protocol,
    so every flag above composes unchanged) and populates
    [result.serve] with the request counters and the pause/latency
    histograms. *)

val record :
  ?seed:int ->
  ?scale:int ->
  ?heap_scale:int ->
  ?cap_mb:int ->
  ?check:bool ->
  spec ->
  Kg_workload.Descriptor.t ->
  result * Kg_gc.Trace.event array
(** A Count-mode {!run} with a recorder attached: the result plus the
    trace that reproduces it. *)

val replay :
  ?seed:int ->
  ?heap_scale:int ->
  spec ->
  Kg_workload.Descriptor.t ->
  Kg_gc.Trace.event array ->
  (Kg_gc.Gc_stats.t * Kg_gc.Mem_iface.counters, string) Stdlib.result
(** Drive a fresh runtime (same derived configuration, address map and
    seed as a Count-mode {!run} — [seed]/[heap_scale] must match the
    recording) from a trace. Returns the replayed statistics and device
    counters, which match the original run bit-for-bit, or [Error] on
    divergence. *)
