(** Calibration constants for the time and energy models.

    The cache/memory simulator produces exact access counts; these
    constants convert counts into time and power the way a mechanistic
    core model would (cf. Sniper's interval model): a per-event CPU
    cost covering application compute, per-byte collector costs, and a
    memory-level-parallelism factor that says how much raw device
    latency is exposed as stall time. They are calibrated once against
    the paper's published baselines (PCM-only ~1.7x DRAM-only
    execution time; KG-W ~7% over KG-N on uniform memory) and then held
    fixed across all experiments. *)

val t_alloc_per_byte_ns : float
(** Mutator allocation + zeroing + initialisation work per byte. *)

val t_access_ns : float
(** Application compute per heap access event (load or store). *)

val t_copy_per_byte_ns : float
(** Collector copy cost per byte (on top of simulated traffic). *)

val t_scan_per_object_ns : float
(** Tracing/scanning cost per object visited. *)

val t_gc_fixed_ns : float
(** Fixed pause cost per collection (root scanning, bookkeeping). *)

val t_gc_sync_ns : float
(** Extra fixed cost per collection when the collector phases run on a
    worker-domain team: fork/join barriers and plan-buffer merging. *)

val t_barrier_fast_ns : float
(** Fast-path reference/primitive barrier, per store. *)

val t_remset_insert_ns : float
(** Slow path: remembered-set insert. *)

val t_monitor_ns : float
(** Slow path: write-word monitoring store. *)

val mem_read_overlap : float
(** Fraction of raw memory read latency exposed as pipeline stalls
    (loads block dependent instructions; MLP hides the rest). *)

val mem_write_overlap : float
(** Fraction of write latency exposed: stores are posted through the
    controller's write queue and rarely stall the pipeline, so PCM's
    12x write latency costs endurance and energy, not much time. *)

val cpu_power_w : float
val dram_static_w_per_gb : float
val pcm_static_w_per_gb : float
