open Kg_util
open Kg_workload

type opts = { scale : int; heap_scale : int; cap_mb : int; seed : int }

let default_opts = { scale = 8; heap_scale = 3; cap_mb = 256; seed = 42 }
let quick_opts = { scale = 64; heap_scale = 8; cap_mb = 24; seed = 42 }

type job = {
  mode : Run.mode;
  spec : Run.spec;
  bench : Descriptor.t;
  trace : bool;
  threads : int;
  parallel_gc : bool;
  cap_mb : int option;
  serve : int option;
}

let job ?(trace = false) ?(threads = 1) ?(parallel_gc = false) ?cap_mb ?serve mode spec
    bench =
  { mode; spec; bench; trace; threads; parallel_gc; cap_mb; serve }

let job_key o j =
  let s = j.spec in
  let opt = function None -> "-" | Some m -> string_of_int m in
  Printf.sprintf
    "mode=%s;sys=%s;col=%s;nur=%d;wp=%b;obs=%s;thr=%d;trig=%s;bench=%s;trace=%b;threads=%d;scale=%d;heap=%d;cap=%d;seed=%d"
    (match j.mode with Run.Simulate -> "sim" | Run.Count -> "cnt")
    (Machine.system_name s.Run.system)
    (match s.Run.collector with
    | Kg_gc.Gc_config.Gen_immix -> "genimmix"
    | Kg_gc.Gc_config.Kg_nursery -> "kgn"
    | Kg_gc.Gc_config.Kg_writers { loo; mdo; pm } ->
      Printf.sprintf "kgw:%b:%b:%b" loo mdo pm)
    s.Run.nursery_mb s.Run.wp (opt s.Run.observer_mb) s.Run.write_threshold
    (opt s.Run.pcm_write_trigger_mb) j.bench.Descriptor.name j.trace j.threads o.scale
    o.heap_scale
    (Option.value j.cap_mb ~default:o.cap_mb)
    o.seed
  (* Appended only when set, so every pre-existing cache key (and the
     stored results behind it) stays valid. *)
  ^ (if j.parallel_gc then ";pargc" else "")
  ^ match j.serve with None -> "" | Some r -> Printf.sprintf ";serve=%d" r

let run_job o j =
  let serve =
    Option.map
      (fun r -> { Kg_serve.Server.default_config with Kg_serve.Server.rate = float_of_int r })
      j.serve
  in
  Run.run ~seed:o.seed ~scale:o.scale ~heap_scale:o.heap_scale
    ~cap_mb:(Option.value j.cap_mb ~default:o.cap_mb)
    ~trace:j.trace ~threads:j.threads ~parallel_gc:j.parallel_gc ?serve ~mode:j.mode j.spec
    j.bench

type env = { o : opts; resolve : job -> Run.result }

let make_env_with ~fetch o = { o; resolve = fetch }

let make_env o =
  let cache = Hashtbl.create 64 in
  make_env_with o ~fetch:(fun j ->
      let key = job_key o j in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
        let r = run_job o j in
        Hashtbl.replace cache key r;
        r)

let opts env = env.o

let fetch env ?trace ?threads ?parallel_gc ?cap_mb ?serve mode spec bench =
  env.resolve (job ?trace ?threads ?parallel_gc ?cap_mb ?serve mode spec bench)

let cap s = String.capitalize_ascii s
let mean = Stats.mean
let pct = Table.cell_pct
let f2 = Table.cell_f

(* ------------------------------------------------------------------ *)

let fig1 env =
  let t =
    Table.create
      ~columns:[ "Endurance"; "PCM-only (years)"; "KG-N (years)"; "KG-W (years)" ]
  in
  let specs = [ Run.pcm_only; Run.kg_n; Run.kg_w ] in
  List.iter
    (fun (label, endurance) ->
      let avg spec =
        mean
          (Array.of_list
             (List.map
                (fun b -> Run.lifetime_years ~endurance (fetch env Run.Simulate spec b))
                Descriptor.simulated))
      in
      Table.add_row t (label :: List.map (fun s -> f2 (avg s)) specs))
    [ ("10 M", 10e6); ("30 M", 30e6); ("100 M", 100e6) ];
  t

let fig2 env =
  let t =
    Table.create
      ~columns:[ "Benchmark"; "Nursery"; "Mature"; "Top 10%"; "Top 2%" ]
  in
  let rows =
    List.map
      (fun b ->
        let r = fetch env Run.Count Run.dram_only b in
        let st = r.Run.stats in
        let mf = Kg_gc.Gc_stats.mature_write_fraction st in
        ( b.Descriptor.name,
          1.0 -. mf,
          mf,
          Kg_gc.Gc_stats.top_fraction_writes st 0.10,
          Kg_gc.Gc_stats.top_fraction_writes st 0.02 ))
      Descriptor.all
  in
  List.iter
    (fun (n, nu, m, t10, t2) -> Table.add_row t [ cap n; pct nu; pct m; pct t10; pct t2 ])
    rows;
  Table.add_rule t;
  let avg f = mean (Array.of_list (List.map f rows)) in
  Table.add_row t
    [
      "Average";
      pct (avg (fun (_, x, _, _, _) -> x));
      pct (avg (fun (_, _, x, _, _) -> x));
      pct (avg (fun (_, _, _, x, _) -> x));
      pct (avg (fun (_, _, _, _, x) -> x));
    ];
  t

let tab1 _env =
  let t =
    Table.create
      ~columns:[ "Configuration"; "monitor writes"; "metadata in DRAM"; "LOO in nursery" ]
  in
  List.iter
    (fun (n, a, b, c) -> Table.add_row t [ n; a; b; c ])
    [
      ("KG-N: Kingsguard-nursery", "no", "no", "no");
      ("KG-W: Kingsguard-writers", "yes", "yes", "yes");
      ("KG-W-LOO", "yes", "yes", "no");
      ("KG-W-LOO-MDO", "yes", "no", "no");
    ];
  t

let tab2 _env =
  let t = Table.create ~columns:[ "Component"; "Parameters" ] in
  List.iter
    (fun (a, b) -> Table.add_row t [ a; b ])
    [
      ("Processor", "1 socket, 4 cores (one simulated mutator thread)");
      ("L1-D", "32 KB, 8 way, 1 ns");
      ("L2", "256 KB per core, 8 way, 2 ns");
      ("L3", "shared 4 MB, 16 way, 7.5 ns");
      ("Memory systems", "32 GB DRAM-only / 32 GB PCM-only / 1 GB DRAM + 32 GB PCM");
      ("DRAM", "45 ns read/write; 0.678 W read, 0.825 W write");
      ("PCM", "180 ns read, 450 ns write; 0.617 W read, 3.0 W write");
      ("PCM endurance", "30 M writes per cell, start-gap line wear-leveling");
      ("Heap", "GenImmix: 4 MB nursery, heap = 2x min live; Immix 32 KB/256 B");
    ];
  t

let tab3 env =
  let t =
    Table.create
      ~columns:
        [ "Benchmark"; "Scaling (paper)"; "Rate GB/s (paper)"; "Rate GB/s (measured)" ]
  in
  List.iter
    (fun b ->
      let r = fetch env Run.Simulate Run.pcm_only b in
      Table.add_row t
        [
          cap b.Descriptor.name;
          Printf.sprintf "%.1fx" b.Descriptor.scaling_32core;
          f2 b.Descriptor.write_rate_gbs;
          f2 (Run.pcm_write_rate_32core_gbs r);
        ])
    Descriptor.simulated;
  t

let add_bench_rows t rows =
  (* rows : (name, cells) list; appends an average row per column *)
  let n = List.length (snd (List.hd rows)) in
  List.iter (fun (name, cells) -> Table.add_row t (cap name :: List.map f2 cells)) rows;
  Table.add_rule t;
  let avg i = mean (Array.of_list (List.map (fun (_, cs) -> List.nth cs i) rows)) in
  Table.add_row t ("Average" :: List.init n (fun i -> f2 (avg i)))

let fig5 env =
  let t = Table.create ~columns:[ "Benchmark"; "KG-N (x)"; "KG-W (x)" ] in
  let life spec b = Run.lifetime_years (fetch env Run.Simulate spec b) in
  let rows =
    List.map
      (fun b ->
        let base = life Run.pcm_only b in
        (b.Descriptor.name, [ life Run.kg_n b /. base; life Run.kg_w b /. base ]))
      Descriptor.simulated
  in
  add_bench_rows t rows;
  t

let pcm_writes (r : Run.result) = r.Run.mem_pcm_write_bytes

let fig6 env =
  let t =
    Table.create
      ~columns:[ "Benchmark"; "KG-N"; "KG-W"; "KG-W-LOO"; "KG-W-LOO-MDO" ]
  in
  let specs = [ Run.kg_n; Run.kg_w; Run.kg_w_no_loo; Run.kg_w_no_loo_mdo ] in
  let rows =
    List.map
      (fun b ->
        let base = pcm_writes (fetch env Run.Simulate Run.pcm_only b) in
        ( b.Descriptor.name,
          List.map (fun s -> pcm_writes (fetch env Run.Simulate s b) /. base) specs ))
      Descriptor.simulated
  in
  add_bench_rows t rows;
  t

let fig7 env =
  let t =
    Table.create
      ~columns:[ "Benchmark"; "KG-N"; "KG-W"; "WP writebacks"; "WP migrations" ]
  in
  let rows =
    List.map
      (fun b ->
        let base = pcm_writes (fetch env Run.Simulate Run.pcm_only b) in
        let wp = fetch env Run.Simulate Run.wp b in
        ( b.Descriptor.name,
          [
            pcm_writes (fetch env Run.Simulate Run.kg_n b) /. base;
            pcm_writes (fetch env Run.Simulate Run.kg_w b) /. base;
            (pcm_writes wp -. wp.Run.migration_pcm_bytes) /. base;
            wp.Run.migration_pcm_bytes /. base;
          ] ))
      Descriptor.simulated
  in
  add_bench_rows t rows;
  t

let fig8 env =
  let t =
    Table.create ~columns:[ "Benchmark"; "DRAM-only"; "PCM-only"; "KG-N"; "KG-W" ]
  in
  let rows =
    List.map
      (fun b ->
        let base = (fetch env Run.Simulate Run.dram_only b).Run.edp in
        ( b.Descriptor.name,
          List.map
            (fun s -> (fetch env Run.Simulate s b).Run.edp /. base)
            [ Run.dram_only; Run.pcm_only; Run.kg_n; Run.kg_w ] ))
      Descriptor.simulated
  in
  add_bench_rows t rows;
  t

let fig9 env =
  let t =
    Table.create
      ~columns:[ "Benchmark"; "PCM"; "Remsets"; "GC"; "Monitoring"; "Other"; "Total" ]
  in
  let rows =
    List.map
      (fun b ->
        let d = fetch env Run.Simulate Run.dram_only b in
        let w = fetch env Run.Simulate Run.kg_w b in
        let td = Time_model.total_ns d.Run.time_parts in
        let pw = w.Run.time_parts and pd = d.Run.time_parts in
        let pcm = pw.Time_model.mem_pcm_extra_ns /. td in
        let remsets = (pw.Time_model.remset_ns -. pd.Time_model.remset_ns) /. td in
        let gc = (pw.Time_model.gc_ns -. pd.Time_model.gc_ns) /. td in
        let monitoring = pw.Time_model.monitor_ns /. td in
        let total = (Time_model.total_ns pw -. td) /. td in
        let other = total -. pcm -. remsets -. gc -. monitoring in
        (b.Descriptor.name, [ pcm; remsets; gc; monitoring; other; total ]))
      Descriptor.simulated
  in
  List.iter
    (fun (name, cells) -> Table.add_row t (cap name :: List.map pct cells))
    rows;
  Table.add_rule t;
  let avg i = mean (Array.of_list (List.map (fun (_, cs) -> List.nth cs i) rows)) in
  Table.add_row t ("Average" :: List.init 6 (fun i -> pct (avg i)));
  t

let fig10 env =
  let t =
    Table.create
      ~columns:
        [ "Benchmark"; "Collector"; "application"; "nursery-GC"; "observer-GC"; "major-GC" ]
  in
  List.iter
    (fun b ->
      let rn = fetch env Run.Simulate Run.kg_n b in
      let rw = fetch env Run.Simulate Run.kg_w b in
      let base = Array.fold_left ( +. ) 0.0 rn.Run.pcm_writes_by_phase in
      let row (r : Run.result) name =
        let p = r.Run.pcm_writes_by_phase in
        let g i = if base = 0.0 then 0.0 else p.(i) /. base in
        Table.add_row t
          [ cap b.Descriptor.name; name; f2 (g 0); f2 (g 1); f2 (g 2); f2 (g 3) ]
      in
      row rn "KG-N";
      row rw "KG-W")
    Descriptor.simulated;
  t

let barrier_pcm (r : Run.result) = float_of_int r.Run.stats.Kg_gc.Gc_stats.app_write_bytes_pcm

let fig11 env =
  let t = Table.create ~columns:[ "Benchmark"; "KG-N-12"; "KG-W"; "KG-W-PM" ] in
  let rows =
    List.map
      (fun b ->
        let base = barrier_pcm (fetch env Run.Count Run.kg_n b) in
        let rel s =
          if base = 0.0 then 0.0 else barrier_pcm (fetch env Run.Count s b) /. base
        in
        (b.Descriptor.name, [ rel Run.kg_n_12; rel Run.kg_w; rel Run.kg_w_no_pm ]))
      Descriptor.all
  in
  add_bench_rows t rows;
  t

let fig12 env =
  let t =
    Table.create
      ~columns:[ "Benchmark"; "KG-W"; "KG-W-LOO"; "KG-W-LOO-MDO"; "KG-W-PM" ]
  in
  let rows =
    List.map
      (fun b ->
        let base = (fetch env Run.Count Run.kg_n b).Run.time_s in
        let rel s = (fetch env Run.Count s b).Run.time_s /. base in
        ( b.Descriptor.name,
          [
            rel Run.kg_w;
            rel Run.kg_w_no_loo;
            rel Run.kg_w_no_loo_mdo;
            rel Run.kg_w_no_pm;
          ] ))
      Descriptor.all
  in
  add_bench_rows t rows;
  t

let fig13 env =
  let t =
    Table.create ~columns:[ "Benchmark"; "Alloc (MB)"; "PCM (MB)"; "DRAM (MB)" ]
  in
  List.iter
    (fun name ->
      let b = Descriptor.find name in
      let r = fetch env ~trace:true Run.Count Run.kg_w b in
      let trace = Array.of_list r.Run.trace in
      let n = Array.length trace in
      let samples = min 16 n in
      for i = 0 to samples - 1 do
        let clock, pcm, dram = trace.(i * n / samples) in
        Table.add_row t
          [ cap name; f2 (clock /. 1048576.0); f2 pcm; f2 dram ]
      done;
      Table.add_rule t)
    [ "pr"; "eclipse" ];
  t

let tab4 env =
  let t =
    Table.create
      ~columns:
        [
          "Benchmark";
          "alloc MB";
          "% nursery surv";
          "KG-N PCM avg/max";
          "KG-W PCM avg/max";
          "KG-W DRAM avg/max";
          "WP DRAM MB";
          "mature DRAM MB";
          "meta MB";
          "% obs surv";
          "% held in DRAM";
        ]
  in
  List.iter
    (fun b ->
      let rn = fetch env Run.Count Run.kg_n b in
      let rw = fetch env Run.Count Run.kg_w b in
      let st = rw.Run.stats in
      let wp_dram =
        if b.Descriptor.simulated then
          f2 (fetch env Run.Simulate Run.wp b).Run.wp_dram_mb
        else "-"
      in
      let held =
        let d = st.Kg_gc.Gc_stats.observer_to_dram_bytes
        and p = st.Kg_gc.Gc_stats.observer_to_pcm_bytes in
        if d + p = 0 then 0.0 else float_of_int d /. float_of_int (d + p)
      in
      Table.add_row t
        [
          cap b.Descriptor.name;
          string_of_int (rw.Run.alloc_bytes / 1048576);
          pct (Kg_gc.Gc_stats.nursery_survival st);
          Printf.sprintf "%s/%s" (f2 rn.Run.pcm_avg_mb) (f2 rn.Run.pcm_max_mb);
          Printf.sprintf "%s/%s" (f2 rw.Run.pcm_avg_mb) (f2 rw.Run.pcm_max_mb);
          Printf.sprintf "%s/%s" (f2 rw.Run.dram_avg_mb) (f2 rw.Run.dram_max_mb);
          wp_dram;
          f2 rw.Run.mature_dram_avg_mb;
          f2 rw.Run.meta_mb;
          pct (Kg_gc.Gc_stats.observer_survival st);
          pct held;
        ])
    Descriptor.all;
  t

(* ------------------------------------------------------------------ *)
(* Extensions: the paper's explicitly-deferred future work              *)

let ext_benchmarks = [ "lusearch"; "xalan"; "hsqldb"; "cc"; "bloat" ]

(* §4.2.2: "Since we have an entire word, the barrier could record the
   number of writes. We leave ... counting writes for future work."
   Requiring k observed writes before an object counts as written
   trades DRAM space for PCM writes. *)
let ext_threshold env =
  let t =
    Table.create
      ~columns:
        [ "Benchmark"; "k"; "PCM writes vs k=1"; "held in DRAM"; "mature DRAM MB" ]
  in
  List.iter
    (fun name ->
      let b = Descriptor.find name in
      let run k = fetch env Run.Count { Run.kg_w with Run.write_threshold = k } b in
      let base = float_of_int (run 1).Run.stats.Kg_gc.Gc_stats.app_write_bytes_pcm in
      List.iter
        (fun k ->
          let r = run k in
          let st = r.Run.stats in
          let d = st.Kg_gc.Gc_stats.observer_to_dram_bytes
          and p = st.Kg_gc.Gc_stats.observer_to_pcm_bytes in
          let held = if d + p = 0 then 0.0 else float_of_int d /. float_of_int (d + p) in
          Table.add_row t
            [
              cap name;
              string_of_int k;
              f2 (float_of_int st.Kg_gc.Gc_stats.app_write_bytes_pcm /. base);
              pct held;
              f2 r.Run.mature_dram_avg_mb;
            ])
        [ 1; 2; 4 ];
      Table.add_rule t)
    ext_benchmarks;
  t

(* §6.2.1: "These behaviors motivate additional policies for mature
   collection to be triggered by writes to PCM. We leave this
   exploration to future work." *)
let ext_write_trigger env =
  let t =
    Table.create ~columns:[ "Benchmark"; "Trigger"; "PCM writes vs none"; "major GCs" ]
  in
  List.iter
    (fun name ->
      let b = Descriptor.find name in
      let run trig =
        fetch env Run.Count { Run.kg_w with Run.pcm_write_trigger_mb = trig } b
      in
      let base = run None in
      let basew = float_of_int base.Run.stats.Kg_gc.Gc_stats.app_write_bytes_pcm in
      List.iter
        (fun (label, trig) ->
          let r = run trig in
          Table.add_row t
            [
              cap name;
              label;
              f2 (float_of_int r.Run.stats.Kg_gc.Gc_stats.app_write_bytes_pcm /. Float.max 1.0 basew);
              string_of_int r.Run.stats.Kg_gc.Gc_stats.major_gcs;
            ])
        [ ("none", None); ("4 MB", Some 4); ("1 MB", Some 1) ];
      Table.add_rule t)
    ext_benchmarks;
  t

(* §5.1: "We empirically find that sizing the observer space to be
   twice that of the nursery is the best compromise between tenured
   garbage and pause time." *)
let ext_observer_size env =
  let t =
    Table.create
      ~columns:
        [ "Benchmark"; "Observer MB"; "PCM writes vs 8MB"; "time vs 8MB"; "obs survival" ]
  in
  List.iter
    (fun name ->
      let b = Descriptor.find name in
      let run mb = fetch env Run.Count { Run.kg_w with Run.observer_mb = Some mb } b in
      let base = run 8 in
      List.iter
        (fun mb ->
          let r = run mb in
          Table.add_row t
            [
              cap name;
              string_of_int mb;
              f2
                (float_of_int r.Run.stats.Kg_gc.Gc_stats.app_write_bytes_pcm
                /. Float.max 1.0 (float_of_int base.Run.stats.Kg_gc.Gc_stats.app_write_bytes_pcm));
              f2 (r.Run.time_s /. base.Run.time_s);
              pct (Kg_gc.Gc_stats.observer_survival r.Run.stats);
            ])
        [ 4; 8; 16 ];
      Table.add_rule t)
    ext_benchmarks;
  t

(* §4.2.1: "An observer collection thus results in pause times longer
   than nursery collections, but shorter than full heap collections." *)
let ext_pauses env =
  let t =
    Table.create
      ~columns:
        [ "Benchmark"; "nursery avg ms"; "observer avg ms"; "major avg ms"; "count n/o/m" ]
  in
  List.iter
    (fun name ->
      let b = Descriptor.find name in
      let r = fetch env Run.Count Run.kg_w b in
      let acc = Hashtbl.create 4 in
      Kg_util.Vec.iter
        (fun (phase, copied, scanned) ->
          let sum, n = Option.value (Hashtbl.find_opt acc phase) ~default:(0.0, 0) in
          Hashtbl.replace acc phase (sum +. Time_model.pause_ms ~copied ~scanned (), n + 1))
        r.Run.stats.Kg_gc.Gc_stats.collection_log;
      let avg phase =
        match Hashtbl.find_opt acc phase with
        | Some (sum, n) when n > 0 -> (sum /. float_of_int n, n)
        | _ -> (0.0, 0)
      in
      let na, nn = avg Kg_gc.Phase.Nursery_gc in
      let oa, on = avg Kg_gc.Phase.Observer_gc in
      let ma, mn = avg Kg_gc.Phase.Major_gc in
      Table.add_row t
        [ cap name; f2 na; f2 oa; f2 ma; Printf.sprintf "%d/%d/%d" nn on mn ])
    [ "hsqldb"; "pjbb"; "pr"; "cc"; "xalan" ];
  t

(* §3's premise: "Contiguous allocation is known to outperform
   free-list allocators due to its locality benefits." Drive the Immix
   mark-region space and a segregated-fit free-list space with an
   identical allocation/death/initialisation stream through the same
   cache hierarchy, and compare footprint, internal fragmentation and
   memory traffic. *)
let ext_allocator env =
  let t =
    Table.create
      ~columns:
        [
          "Allocator";
          "footprint MB";
          "live MB";
          "internal frag";
          "mem writes MB";
          "traversal miss MB";
        ]
  in
  let module H = Kg_heap in
  let drive ~use_immix =
    let map = Kg_mem.Address_map.pcm_only () in
    let ctrl = Kg_cache.Controller.create ~map ~line_size:64 () in
    let hier = Kg_cache.Hierarchy.create ~controller:ctrl () in
    let arena = H.Arena.create ~kind:Kg_mem.Device.Pcm ~base:0 ~size:(2 * Units.gib) in
    let words = H.Heap_words.create () in
    let immix = H.Immix_space.create ~words ~id:3 ~name:"immix" ~arena () in
    let flist = H.Freelist_space.create ~words ~id:3 ~name:"freelist" ~arena in
    let rng = Rng.of_seed env.o.seed in
    let now = ref 0.0 in
    let target = 24 * Units.mib in
    let live_budget = ref (8 * Units.mib) in
    let live = ref 0 in
    while int_of_float !now < target do
      let size = H.Layout.align_object_size (16 + (8 * Rng.geometric rng 0.12)) in
      let death =
        if Rng.bernoulli rng 0.1 then infinity else !now +. Rng.exponential rng 2e6
      in
      let o = H.Object_model.make words ~size ~heat:H.Object_model.Cold ~death ~ref_fields:1 in
      let ok = if use_immix then H.Immix_space.alloc immix o else H.Freelist_space.alloc flist o in
      if not ok then failwith "ext_allocator: arena exhausted";
      (* one zero/init pass: the write stream whose locality differs *)
      Kg_cache.Hierarchy.access_range hier ~addr:(H.Object_model.addr words o) ~size ~write:true;
      now := !now +. float_of_int size;
      live := !live + size;
      if !live > !live_budget then begin
        live :=
          (if use_immix then begin
             ignore (H.Immix_space.sweep immix ~now:!now ());
             H.Immix_space.live_bytes immix
           end
           else begin
             ignore (H.Freelist_space.sweep flist ~now:!now ());
             H.Freelist_space.live_bytes flist
           end);
        (* keep sweeps amortised as the immortal base grows *)
        live_budget := max !live_budget (2 * !live)
      end
    done;
    Kg_cache.Hierarchy.drain hier;
    (* Deliberately measure a cold-cache traversal: drain flushed the
       dirty lines, reopen lets demand accesses resume. *)
    Kg_cache.Hierarchy.reopen hier;
    (* The locality that matters to the mutator: objects allocated
       together are accessed together. Traverse the survivors in
       allocation order and count the reads that miss all the way to
       memory. *)
    let reads_before = Kg_cache.Controller.bytes_read ctrl Kg_mem.Device.Pcm in
    let traverse objs =
      Kg_util.Vec.iter
        (fun o ->
          Kg_cache.Hierarchy.access_range hier ~addr:(H.Object_model.addr words o)
            ~size:(H.Object_model.size words o) ~write:false)
        objs
    in
    if use_immix then traverse (H.Immix_space.objects immix)
    else traverse (H.Freelist_space.objects flist);
    let traversal_reads =
      Kg_cache.Controller.bytes_read ctrl Kg_mem.Device.Pcm - reads_before
    in
    let live_b, footprint, frag =
      if use_immix then
        ( H.Immix_space.live_bytes immix,
          H.Immix_space.footprint_bytes immix,
          H.Immix_space.fragmentation immix )
      else begin
        let lb = H.Freelist_space.live_bytes flist in
        let cb = H.Freelist_space.cell_bytes flist in
        ( lb,
          H.Freelist_space.footprint_bytes flist,
          if cb = 0 then 0.0 else 1.0 -. (float_of_int lb /. float_of_int cb) )
      end
    in
    Table.add_row t
      [
        (if use_immix then "Immix (bump lines)" else "Free-list (segregated fit)");
        f2 (Units.mib_of_bytes footprint);
        f2 (Units.mib_of_bytes live_b);
        pct frag;
        f2 (float_of_int (Kg_cache.Controller.bytes_written ctrl Kg_mem.Device.Pcm) /. 1048576.);
        f2 (float_of_int traversal_reads /. 1048576.);
      ]
  in
  drive ~use_immix:true;
  drive ~use_immix:false;
  t

(* Table 3's premise: write rates grow super-linearly with threads
   because interleaved allocation and shared-cache contention defeat
   locality. Simulate 1, 2 and 4 real mutator domains — interleaved
   allocation through per-domain nurseries and ports onto one cache
   hierarchy, with the mutator-side time model running on that many
   cores — and compare memory-level PCM write rates. The scaling
   column is measured from the simulation; no Table 3 scalar enters
   it. *)
let ext_threads env =
  let t =
    Table.create
      ~columns:
        [ "Benchmark"; "1-thread GB/s"; "2-thread GB/s"; "4-thread GB/s"; "scaling 1->4" ]
  in
  List.iter
    (fun name ->
      let b = Descriptor.find name in
      let run threads =
        fetch env ~threads ~cap_mb:(min env.o.cap_mb 64) Run.Simulate Run.pcm_only b
      in
      let r1 = run 1 and r2 = run 2 and r4 = run 4 in
      let rate (r : Run.result) =
        if r.Run.time_s <= 0.0 then 0.0
        else r.Run.mem_pcm_write_bytes /. r.Run.time_s /. 1073741824.0
      in
      Table.add_row t
        [
          cap name;
          f2 (rate r1);
          f2 (rate r2);
          f2 (rate r4);
          Printf.sprintf "%.2fx" (rate r4 /. Float.max 1e-9 (rate r1));
        ])
    [ "xalan"; "antlr"; "bloat" ];
  t

(* The ext-threads sweep with the collector phases also running on the
   mutator domains (the "Retrofitting Parallelism onto OCaml" template:
   stop-the-world sections with parallel collector threads). The heap
   behaviour — every counter and traffic byte — is identical to
   ext-threads by the plan/apply protocol; what changes is the modeled
   execution time, whose GC term now divides across the team. Shorter
   runs at the same write volume mean higher sustained GB/s, so the
   multi-thread columns rise relative to ext-threads, and the gap
   isolates exactly the Amdahl share the sequential collector was
   costing. *)
let ext_threads_pargc env =
  let t =
    Table.create
      ~columns:
        [
          "Benchmark"; "1-thread GB/s"; "2-thread GB/s"; "4-thread GB/s"; "scaling 1->4";
          "GC-time speedup @4";
        ]
  in
  List.iter
    (fun name ->
      let b = Descriptor.find name in
      let run ~parallel_gc threads =
        fetch env ~threads ~parallel_gc ~cap_mb:(min env.o.cap_mb 64) Run.Simulate
          Run.pcm_only b
      in
      let r1 = run ~parallel_gc:true 1 in
      let r2 = run ~parallel_gc:true 2 in
      let r4 = run ~parallel_gc:true 4 in
      let r4_seq = run ~parallel_gc:false 4 in
      let rate (r : Run.result) =
        if r.Run.time_s <= 0.0 then 0.0
        else r.Run.mem_pcm_write_bytes /. r.Run.time_s /. 1073741824.0
      in
      Table.add_row t
        [
          cap name;
          f2 (rate r1);
          f2 (rate r2);
          f2 (rate r4);
          Printf.sprintf "%.2fx" (rate r4 /. Float.max 1e-9 (rate r1));
          (* At very small scales a benchmark may never collect; 0/0 is
             "no GC time to shrink", not a slowdown. *)
          (if r4_seq.Run.time_parts.Time_model.gc_ns <= 0.0 then "n/a"
           else
             Printf.sprintf "%.2fx"
               (r4_seq.Run.time_parts.Time_model.gc_ns
               /. Float.max 1e-9 r4.Run.time_parts.Time_model.gc_ns));
        ])
    [ "xalan"; "antlr"; "bloat" ];
  t

(* §6.2.1: "Using a larger nursery reduces the writes to PCM ... A
   larger nursery is not effective for applications with more writes in
   the mature space" — sweep the KG-N nursery size. *)
let ext_nursery_size env =
  let t =
    Table.create ~columns:[ "Benchmark"; "Nursery MB"; "barrier PCM writes vs 4MB" ]
  in
  List.iter
    (fun name ->
      let b = Descriptor.find name in
      let run mb = fetch env Run.Count { Run.kg_n with Run.nursery_mb = mb } b in
      let base = barrier_pcm (run 4) in
      List.iter
        (fun mb ->
          Table.add_row t
            [
              cap name;
              string_of_int mb;
              f2 (barrier_pcm (run mb) /. Float.max 1.0 base);
            ])
        [ 4; 12; 32 ];
      Table.add_rule t)
    [ "lusearch"; "pjbb"; "bloat"; "eclipse" ];
  t

(* ------------------------------------------------------------------ *)
(* Serve extension: the paper evaluates batch heaps, where PCM write
   *volume* is the figure of merit. A server heap pins the allocation
   clock to an offered request rate, so the write *rate* — and with it
   Equation 1's lifetime — becomes a function of load: the modeled
   duration of an open-loop run is requests / rate, independent of the
   simulated byte volume. The SLO figure reads the other side of the
   same runs: per-collection pause and per-request latency percentiles
   from the {!Kg_serve.Server} histograms. *)

let serve_rates = [ 256; 1024; 1792 ]
let serve_bench () = Descriptor.find "pjbb"

let serve_lifetime env =
  let t =
    Table.create
      ~columns:[ "Rate (req/s)"; "PCM-only (years)"; "KG-N (years)"; "KG-W (years)" ]
  in
  let b = serve_bench () in
  List.iter
    (fun rate ->
      let life spec =
        let r = fetch env ~serve:rate Run.Simulate spec b in
        match r.Run.serve with
        | Some s when s.Run.requests > 0 ->
          let duration_s = float_of_int s.Run.requests /. s.Run.rate in
          Kg_mem.Lifetime.years
            ~size_bytes:(float_of_int (32 * Units.gib))
            ~endurance:30e6
            ~write_rate_bytes_per_s:(r.Run.mem_pcm_write_bytes /. duration_s)
        | _ -> 0.0
      in
      Table.add_row t
        (string_of_int rate
        :: List.map (fun s -> f2 (life s)) [ Run.pcm_only; Run.kg_n; Run.kg_w ]))
    serve_rates;
  t

let serve_slo env =
  let module H = Hdr_histogram in
  let t =
    Table.create
      ~columns:
        [
          "Rate"; "Collector"; "GC P50 ms"; "GC P99 ms"; "GC P99.9 ms"; "GC max ms";
          "Req P50 ms"; "Req P99 ms"; "Requests";
        ]
  in
  let b = serve_bench () in
  List.iter
    (fun rate ->
      List.iter
        (fun spec ->
          let r = fetch env ~serve:rate Run.Count spec b in
          match r.Run.serve with
          | None -> ()
          | Some s ->
            Table.add_row t
              [
                string_of_int rate;
                Run.label spec;
                f2 (H.p50 s.Run.pause_hist);
                f2 (H.p99 s.Run.pause_hist);
                f2 (H.p999 s.Run.pause_hist);
                f2 (H.max_value s.Run.pause_hist);
                f2 (H.p50 s.Run.latency_hist);
                f2 (H.p99 s.Run.latency_hist);
                string_of_int s.Run.requests;
              ])
        [ Run.dram_only; Run.kg_n; Run.kg_b; Run.kg_w ];
      Table.add_rule t)
    serve_rates;
  t

(* ------------------------------------------------------------------ *)
(* Registry: each experiment declares the run matrix it will fetch so
   an engine can resolve it (in parallel, against a persistent store)
   before the sequential table renderer asks for any cell. *)

type experiment = {
  id : string;
  doc : string;
  runs : opts -> job list;
  table : env -> Kg_util.Table.t;
}

let sim_jobs specs = List.concat_map (fun s -> List.map (job Run.Simulate s) Descriptor.simulated) specs
let cnt_jobs specs benches = List.concat_map (fun s -> List.map (job Run.Count s) benches) specs
let ext_descriptors () = List.map Descriptor.find ext_benchmarks
let static _ = []

let all =
  [
    { id = "tab1"; doc = "Table 1: collector configurations"; runs = static; table = tab1 };
    { id = "tab2"; doc = "Table 2: simulated system parameters"; runs = static; table = tab2 };
    {
      id = "tab3";
      doc = "Table 3: write-rate scaling to 32 cores";
      runs = (fun _ -> sim_jobs [ Run.pcm_only ]);
      table = tab3;
    };
    {
      id = "tab4";
      doc = "Table 4: object demographics and space usage";
      runs = (fun _ -> cnt_jobs [ Run.kg_n; Run.kg_w ] Descriptor.all @ sim_jobs [ Run.wp ]);
      table = tab4;
    };
    {
      id = "fig1";
      doc = "Figure 1: absolute PCM lifetimes vs endurance";
      runs = (fun _ -> sim_jobs [ Run.pcm_only; Run.kg_n; Run.kg_w ]);
      table = fig1;
    };
    {
      id = "fig2";
      doc = "Figure 2: where writes go (nursery/mature, top-N%)";
      runs = (fun _ -> cnt_jobs [ Run.dram_only ] Descriptor.all);
      table = fig2;
    };
    {
      id = "fig5";
      doc = "Figure 5: PCM lifetime relative to PCM-only";
      runs = (fun _ -> sim_jobs [ Run.pcm_only; Run.kg_n; Run.kg_w ]);
      table = fig5;
    };
    {
      id = "fig6";
      doc = "Figure 6: PCM writes relative to PCM-only (+ablations)";
      runs =
        (fun _ ->
          sim_jobs [ Run.pcm_only; Run.kg_n; Run.kg_w; Run.kg_w_no_loo; Run.kg_w_no_loo_mdo ]);
      table = fig6;
    };
    {
      id = "fig7";
      doc = "Figure 7: Kingsguard vs OS write partitioning";
      runs = (fun _ -> sim_jobs [ Run.pcm_only; Run.kg_n; Run.kg_w; Run.wp ]);
      table = fig7;
    };
    {
      id = "fig8";
      doc = "Figure 8: energy-delay product relative to DRAM-only";
      runs = (fun _ -> sim_jobs [ Run.dram_only; Run.pcm_only; Run.kg_n; Run.kg_w ]);
      table = fig8;
    };
    {
      id = "fig9";
      doc = "Figure 9: KG-W overhead breakdown over DRAM-only";
      runs = (fun _ -> sim_jobs [ Run.dram_only; Run.kg_w ]);
      table = fig9;
    };
    {
      id = "fig10";
      doc = "Figure 10: origin of PCM writes by GC phase";
      runs = (fun _ -> sim_jobs [ Run.kg_n; Run.kg_w ]);
      table = fig10;
    };
    {
      id = "fig11";
      doc = "Figure 11: barrier-level PCM writes relative to KG-N";
      runs = (fun _ -> cnt_jobs [ Run.kg_n; Run.kg_n_12; Run.kg_w; Run.kg_w_no_pm ] Descriptor.all);
      table = fig11;
    };
    {
      id = "fig12";
      doc = "Figure 12: execution time relative to KG-N";
      runs =
        (fun _ ->
          cnt_jobs
            [ Run.kg_n; Run.kg_w; Run.kg_w_no_loo; Run.kg_w_no_loo_mdo; Run.kg_w_no_pm ]
            Descriptor.all);
      table = fig12;
    };
    {
      id = "fig13";
      doc = "Figure 13: heap composition over time (PR, eclipse)";
      runs =
        (fun _ ->
          List.map
            (fun n -> job ~trace:true Run.Count Run.kg_w (Descriptor.find n))
            [ "pr"; "eclipse" ]);
      table = fig13;
    };
    {
      id = "ext-threshold";
      doc = "Extension: write-count threshold placement (4.2.2 future work)";
      runs =
        (fun _ ->
          List.concat_map
            (fun b ->
              List.map
                (fun k -> job Run.Count { Run.kg_w with Run.write_threshold = k } b)
                [ 1; 2; 4 ])
            (ext_descriptors ()));
      table = ext_threshold;
    };
    {
      id = "ext-write-trigger";
      doc = "Extension: PCM-write-triggered major GCs (6.2.1 future work)";
      runs =
        (fun _ ->
          List.concat_map
            (fun b ->
              List.map
                (fun trig -> job Run.Count { Run.kg_w with Run.pcm_write_trigger_mb = trig } b)
                [ None; Some 4; Some 1 ])
            (ext_descriptors ()));
      table = ext_write_trigger;
    };
    {
      id = "ext-observer-size";
      doc = "Extension: observer space sizing sweep (5.1)";
      runs =
        (fun _ ->
          List.concat_map
            (fun b ->
              List.map
                (fun mb -> job Run.Count { Run.kg_w with Run.observer_mb = Some mb } b)
                [ 4; 8; 16 ])
            (ext_descriptors ()));
      table = ext_observer_size;
    };
    {
      id = "ext-pauses";
      doc = "Extension: pause ordering nursery < observer < major (4.2.1)";
      runs =
        (fun _ ->
          List.map
            (fun n -> job Run.Count Run.kg_w (Descriptor.find n))
            [ "hsqldb"; "pjbb"; "pr"; "cc"; "xalan" ]);
      table = ext_pauses;
    };
    {
      id = "ext-allocator";
      doc = "Extension: Immix vs free-list locality and fragmentation (3)";
      runs = static;
      table = ext_allocator;
    };
    {
      id = "ext-threads";
      doc = "Extension: write-rate scaling with mutator threads (Table 3)";
      runs =
        (fun o ->
          List.concat_map
            (fun n ->
              List.map
                (fun threads ->
                  job ~threads ~cap_mb:(min o.cap_mb 64) Run.Simulate Run.pcm_only
                    (Descriptor.find n))
                [ 1; 2; 4 ])
            [ "xalan"; "antlr"; "bloat" ]);
      table = ext_threads;
    };
    {
      id = "ext-threads-pargc";
      doc = "Extension: thread scaling with domain-parallel collection phases";
      runs =
        (fun o ->
          List.concat_map
            (fun n ->
              let j ~parallel_gc threads =
                job ~threads ~parallel_gc ~cap_mb:(min o.cap_mb 64) Run.Simulate
                  Run.pcm_only (Descriptor.find n)
              in
              [
                j ~parallel_gc:true 1; j ~parallel_gc:true 2; j ~parallel_gc:true 4;
                j ~parallel_gc:false 4;
              ])
            [ "xalan"; "antlr"; "bloat" ]);
      table = ext_threads_pargc;
    };
    {
      id = "ext-nursery-size";
      doc = "Extension: KG-N nursery size sweep (6.2.1)";
      runs =
        (fun _ ->
          List.concat_map
            (fun n ->
              List.map
                (fun mb -> job Run.Count { Run.kg_n with Run.nursery_mb = mb } (Descriptor.find n))
                [ 4; 12; 32 ])
            [ "lusearch"; "pjbb"; "bloat"; "eclipse" ]);
      table = ext_nursery_size;
    };
    {
      id = "serve-lifetime";
      doc = "Serve: PCM lifetime vs offered request rate (open loop)";
      runs =
        (fun _ ->
          List.concat_map
            (fun rate ->
              List.map
                (fun s -> job ~serve:rate Run.Simulate s (serve_bench ()))
                [ Run.pcm_only; Run.kg_n; Run.kg_w ])
            serve_rates);
      table = serve_lifetime;
    };
    {
      id = "serve-slo";
      doc = "Serve: GC pause and request latency percentiles vs rate";
      runs =
        (fun _ ->
          List.concat_map
            (fun rate ->
              List.map
                (fun s -> job ~serve:rate Run.Count s (serve_bench ()))
                [ Run.dram_only; Run.kg_n; Run.kg_b; Run.kg_w ])
            serve_rates);
      table = serve_slo;
    };
  ]

let run_by_name env name =
  let e = List.find (fun e -> e.id = name) all in
  e.table env
