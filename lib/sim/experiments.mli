(** One runner per table and figure of the paper's evaluation (§6).

    Every runner returns a {!Kg_util.Table.t} whose rows mirror the
    published figure so measured-vs-paper comparison is mechanical.
    Results are memoised per environment: figures share underlying
    (benchmark x system x collector) runs, so regenerating the full set
    costs one pass over the run matrix.

    An environment is parameterised by its fetch function, so the run
    matrix can be resolved by the default in-process memo table or by
    an external engine (see {!Kg_engine.Exec}) that schedules misses
    onto a domain pool and persists results on disk. Each experiment
    additionally declares the jobs it will fetch ([runs]), which is
    what lets an engine resolve a whole figure's matrix in parallel
    before the (sequential) table renderer asks for any of it. *)

type opts = {
  scale : int;  (** divide each benchmark's allocation volume *)
  heap_scale : int;  (** divide each benchmark's live target *)
  cap_mb : int;  (** upper bound on simulated allocation per run *)
  seed : int;
}

val default_opts : opts
(** scale 8, heap_scale 3, cap 256 MB — the setting used for the
    numbers in EXPERIMENTS.md. *)

val quick_opts : opts
(** Small runs for tests and benchmarking harness smoke passes. *)

type job = {
  mode : Run.mode;
  spec : Run.spec;
  bench : Kg_workload.Descriptor.t;
  trace : bool;  (** sample heap composition (Figure 13) *)
  threads : int;  (** logical mutator threads (Table 3 extension) *)
  parallel_gc : bool;  (** collection phases on the worker-domain team *)
  cap_mb : int option;  (** per-job override of [opts.cap_mb] *)
  serve : int option;
      (** request rate (req/s): run the {!Kg_serve.Server} mutator at
          [Kg_serve.Server.default_config] with this rate instead of
          the batch mutator *)
}
(** One cell of the run matrix: everything that determines a
    {!Run.result} besides the environment options. *)

val job :
  ?trace:bool ->
  ?threads:int ->
  ?parallel_gc:bool ->
  ?cap_mb:int ->
  ?serve:int ->
  Run.mode ->
  Run.spec ->
  Kg_workload.Descriptor.t ->
  job

val job_key : opts -> job -> string
(** Canonical textual identity of a job under the given options: every
    spec field, the benchmark name, the mode, the trace/threads/cap
    extras, and every option (including the seed). Two jobs with equal
    keys produce field-for-field identical results; the engine's
    persistent store hashes this string (plus its format version) to
    name cache entries. *)

val run_job : opts -> job -> Run.result
(** Execute the job with {!Run.run}. The single place where an
    environment's options are turned into [Run.run] arguments, so the
    sequential memo, the parallel pool, and the persistent store all
    compute exactly the same thing for a given key. *)

type env

val make_env : opts -> env
(** Sequential environment: an in-process memo table over {!run_job}. *)

val make_env_with : fetch:(job -> Run.result) -> opts -> env
(** Environment with an external resolver (memoisation, scheduling and
    persistence are the resolver's business). *)

val opts : env -> opts

val fetch :
  env ->
  ?trace:bool ->
  ?threads:int ->
  ?parallel_gc:bool ->
  ?cap_mb:int ->
  ?serve:int ->
  Run.mode ->
  Run.spec ->
  Kg_workload.Descriptor.t ->
  Run.result
(** Memoised access to the underlying runs (exposed for tests and for
    the example programs). *)

type experiment = {
  id : string;
  doc : string;
  runs : opts -> job list;
      (** the fetches the table will perform, for prefetching; may
          contain duplicates and may be empty for experiments that do
          not go through {!fetch} (tab1/tab2 are static; ext-allocator
          drives spaces directly) *)
  table : env -> Kg_util.Table.t;
}

val all : experiment list
(** Every experiment: tab1-tab4, fig1, fig2, fig5-fig13, the ext-*
    extensions, and the serve-* request/response figures. *)

val run_by_name : env -> string -> Kg_util.Table.t
(** Raises [Not_found] for an unknown id. *)
