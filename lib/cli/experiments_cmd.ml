(* Regenerate any or all of the paper's tables and figures.

   The run matrix behind the selected experiments is resolved by
   Kg_engine: misses are scheduled across --jobs worker domains and
   published to the persistent store under results/.cache/, so a rerun
   (same options, any pool width) is served from disk. Tables go to
   stdout; engine narration and the final hit/miss summary go to
   stderr so table output stays byte-identical across runs. *)

open Cmdliner
module E = Kg_sim.Experiments

let doc = "Regenerate the paper's tables and figures"

let run_experiments list_only names quick scale heap_scale cap_mb seed csv out_dir jobs
    no_cache cache_dir progress =
  let base = if quick then E.quick_opts else E.default_opts in
  let opts =
    {
      E.scale = Option.value scale ~default:base.E.scale;
      heap_scale = Option.value heap_scale ~default:base.E.heap_scale;
      cap_mb = Option.value cap_mb ~default:base.E.cap_mb;
      seed;
    }
  in
  if list_only then begin
    (* Job counts and cache-key prefixes are functions of the options,
       so --list honours --quick/--scale/... like a real run would. *)
    let lcp a b =
      let n = min (String.length a) (String.length b) in
      let i = ref 0 in
      while !i < n && a.[!i] = b.[!i] do incr i done;
      String.sub a 0 !i
    in
    List.iter
      (fun (e : E.experiment) ->
        let jobs = e.E.runs opts in
        Printf.printf "%-18s %3d jobs  %s\n" e.E.id (List.length jobs) e.E.doc;
        match List.map (fun j -> Kg_engine.Store.key ~opts j) jobs with
        | [] -> ()
        | first :: rest ->
          Printf.printf "%-18s %9s  key: %s...\n" "" "" (List.fold_left lcp first rest))
      E.all;
    exit 0
  end;
  let selected =
    match names with
    | [] -> E.all
    | names ->
      List.filter_map
        (fun n ->
          match List.find_opt (fun (e : E.experiment) -> e.E.id = n) E.all with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment %S (known: %s)\n" n
              (String.concat ", " (List.map (fun (e : E.experiment) -> e.E.id) E.all));
            exit 1)
        names
  in
  let progress =
    match progress with
    | Some m -> Kg_engine.Progress.create m
    | None ->
      (* default: narrate on an interactive stderr, stay quiet in logs *)
      Kg_engine.Progress.create
        (if jobs > 1 && Unix.isatty Unix.stderr then Kg_engine.Progress.Tty
         else Kg_engine.Progress.Quiet)
  in
  let ex =
    Kg_engine.Exec.create ~jobs ~cache:(not no_cache) ?cache_dir ~progress opts
  in
  let env = Kg_engine.Exec.env ex in
  (* Resolve every selected experiment's declared matrix up front — in
     parallel when jobs > 1 — so the sequential renderers below only
     read memoised results. *)
  Kg_engine.Exec.prefetch_experiments ex (List.map (fun (e : E.experiment) -> e.E.id) selected);
  Option.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755) out_dir;
  List.iter
    (fun (e : E.experiment) ->
      Printf.printf "== %s — %s ==\n%!" e.E.id e.E.doc;
      let t0 = Unix.gettimeofday () in
      let table = e.E.table env in
      let rendered = if csv then Kg_util.Table.to_csv table else Kg_util.Table.render table in
      print_string rendered;
      Printf.printf "(%.1f s)\n\n%!" (Unix.gettimeofday () -. t0);
      Option.iter
        (fun d ->
          let oc = open_out (Filename.concat d (e.E.id ^ if csv then ".csv" else ".txt")) in
          output_string oc rendered;
          close_out oc)
        out_dir)
    selected;
  Printf.eprintf "%s\n%!" (Kg_engine.Exec.summary ex);
  Kg_engine.Exec.shutdown ex;
  0

let names_arg =
  let doc = "Experiments to run (default: all). Ids: tab1-tab4, fig1, fig2, fig5-fig13, ext-*." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_arg =
  let doc = "List experiment ids and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let quick_arg =
  let doc = "Use small quick-run parameters (for smoke testing)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let scale_arg = Arg.(value & opt (some int) None & info [ "scale" ] ~doc:"Allocation scale divisor.")
let heap_arg = Arg.(value & opt (some int) None & info [ "heap-scale" ] ~doc:"Live-heap scale divisor.")
let cap_arg = Arg.(value & opt (some int) None & info [ "cap-mb" ] ~doc:"Run length cap (MB).")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")
let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned tables.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc:"Also write each table to DIR.")

let jobs_arg =
  let doc = "Resolve the run matrix on this many worker domains." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc = "Do not read or write the persistent result store." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_dir_arg =
  let doc =
    Printf.sprintf "Persistent result store location (default %s)."
      Kg_engine.Store.default_dir
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let progress_arg =
  let parse s =
    match Kg_engine.Progress.mode_of_string s with
    | Ok m -> Ok (Some m)
    | Error e -> Error (`Msg e)
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "auto"
    | Some Kg_engine.Progress.Quiet -> Format.pp_print_string ppf "quiet"
    | Some Kg_engine.Progress.Log -> Format.pp_print_string ppf "log"
    | Some Kg_engine.Progress.Tty -> Format.pp_print_string ppf "tty"
  in
  let mode_conv = Arg.conv (parse, print) in
  let doc =
    Printf.sprintf "Engine progress on stderr: %s (default: tty when interactive and jobs > 1)."
      Kg_engine.Progress.mode_names
  in
  Arg.(value & opt mode_conv None & info [ "progress" ] ~docv:"MODE" ~doc)

let term =
  Term.(
    const run_experiments $ list_arg $ names_arg $ quick_arg $ scale_arg $ heap_arg $ cap_arg
    $ seed_arg $ csv_arg $ out_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg $ progress_arg)
