(** The [experiments] command, shared between the standalone
    [kingsguard-experiments] binary and the [kingsguard experiments]
    subcommand: regenerate any subset of the paper's tables and
    figures through the parallel experiment engine. *)

val term : int Cmdliner.Term.t
val doc : string
