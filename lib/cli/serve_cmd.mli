(** The [serve] subcommand: run the {!Kg_serve.Server} request/response
    mutator under one collector and print request counters, cache
    behaviour and the pause/latency SLO histograms. [--oracle-check]
    re-runs the configuration through the inline oracle protocol and
    fails on any divergence. *)

val term : int Cmdliner.Term.t
val doc : string
