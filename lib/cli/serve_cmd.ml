(* kingsguard serve: run the request/response mutator under one
   collector and print the SLO view of the run — request counters,
   cache behaviour, and the pause/latency histograms.

   --oracle-check runs the same configuration twice, once on real
   domains and once through the inline oracle protocol, and diffs the
   collector statistics, the per-collection pause profile and both
   histograms; any divergence is a determinism bug and exits 1. *)

open Cmdliner
module R = Kg_sim.Run
module D = Kg_workload.Descriptor
module GS = Kg_gc.Gc_stats
module H = Kg_util.Hdr_histogram
module S = Kg_serve.Server

let doc = "Serve a request/response workload and report pause/latency SLOs"

let spec_of_string = function
  | "dram-only" -> Ok R.dram_only
  | "pcm-only" -> Ok R.pcm_only
  | "kg-n" -> Ok R.kg_n
  | "kg-b" -> Ok R.kg_b
  | "kg-w" -> Ok R.kg_w
  | s -> Error (`Msg (Printf.sprintf "unknown collector %S" s))

let collector_names = "dram-only|pcm-only|kg-n|kg-b|kg-w"

let print_serve (r : R.result) (s : R.serve_metrics) =
  let st = r.R.stats in
  let pctf part whole =
    if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole
  in
  let probes = s.R.t1_hits + s.R.t2_hits + s.R.backend_fills in
  Printf.printf "benchmark        %s\n" r.R.bench.D.name;
  Printf.printf "collector        %s\n" (R.label r.R.spec);
  Printf.printf "offered rate     %.0f req/s\n" s.R.rate;
  Printf.printf "requests         %d (modeled duration %.3f s)\n" s.R.requests
    (if s.R.rate > 0.0 then float_of_int s.R.requests /. s.R.rate else 0.0);
  Printf.printf "cache            tier1 %.1f%%, tier2 %.1f%%, backend %.1f%% of %d probes\n"
    (pctf s.R.t1_hits probes) (pctf s.R.t2_hits probes)
    (pctf s.R.backend_fills probes)
    probes;
  Printf.printf "sessions churned %d\n" s.R.sessions_churned;
  Printf.printf "allocated        %d MB\n" (r.R.alloc_bytes / 1048576);
  (* Observer and major collections subsume a nursery pass, so
     [nursery_gcs] counts every stop-the-world event once — the same
     total the pause histogram's [n] reports. *)
  Printf.printf "collections      %d STW (%d nursery-only, %d observer, %d major)\n"
    st.GS.nursery_gcs
    (st.GS.nursery_gcs - st.GS.observer_gcs - st.GS.major_gcs)
    st.GS.observer_gcs st.GS.major_gcs;
  Printf.printf "gc pause ms      %s\n" (H.summary s.R.pause_hist);
  Printf.printf "req latency ms   %s\n" (H.summary s.R.latency_hist)

let serve_cmd bench collector rate simulate scale heap_scale cap_mb seed domains
    schedule_seed parallel_gc oracle_check =
  match spec_of_string collector with
  | Error (`Msg m) ->
    prerr_endline m;
    1
  | Ok spec -> (
    match D.find bench with
    | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try: %s\n" bench (String.concat ", " (D.names ()));
      1
    | d ->
      let mode = if simulate then R.Simulate else R.Count in
      let serve = { S.default_config with S.rate = float_of_int rate } in
      let run ~oracle =
        R.run ~seed ~scale ~heap_scale ~cap_mb ~threads:domains ~schedule_seed ~oracle
          ~parallel_gc ~serve ~mode spec d
      in
      let r = run ~oracle:false in
      (match r.R.serve with
      | None -> prerr_endline "internal error: serve run produced no serve metrics"; 1
      | Some s ->
        print_serve r s;
        if not oracle_check then 0
        else begin
          let ro = run ~oracle:true in
          let so = Option.get ro.R.serve in
          let pause_ms = R.pause_model ~domains ~parallel_gc () in
          let diffs =
            GS.diff r.R.stats ro.R.stats
            @ GS.diff_pauses r.R.stats ro.R.stats ~pause_ms
            @ (if H.equal s.R.pause_hist so.R.pause_hist then []
               else [ "pause histogram: parallel <> oracle" ])
            @ (if H.equal s.R.latency_hist so.R.latency_hist then []
               else [ "latency histogram: parallel <> oracle" ])
            @
            if s.R.requests = so.R.requests then []
            else Printf.sprintf "requests: %d <> %d" s.R.requests so.R.requests :: []
          in
          match diffs with
          | [] ->
            Printf.printf
              "oracle check     identical: statistics, pause profile and histograms match\n";
            0
          | diffs ->
            Printf.printf "oracle check     DIVERGED in %d place(s):\n" (List.length diffs);
            List.iter (fun m -> Printf.printf "       %s\n" m) diffs;
            1
        end))

let bench_arg =
  let doc = "Benchmark supplying demographics (see `kingsguard list')." in
  Arg.(value & pos 0 string "pjbb" & info [] ~docv:"BENCHMARK" ~doc)

let collector_arg =
  let doc = Printf.sprintf "Collector / memory system: %s." collector_names in
  Arg.(value & opt string "kg-w" & info [ "c"; "collector" ] ~docv:"COLLECTOR" ~doc)

let rate_arg =
  let doc = "Open-loop arrival rate, requests/sec across all domains." in
  Arg.(value & opt int 1024 & info [ "rate" ] ~docv:"REQ_S" ~doc)

let simulate_arg =
  let doc = "Run the full cache/memory simulation instead of barrier-level counting." in
  Arg.(value & flag & info [ "simulate" ] ~doc)

let scale_arg =
  let doc = "Divide the benchmark's allocation volume by this factor." in
  Arg.(value & opt int 8 & info [ "scale" ] ~doc)

let heap_scale_arg =
  let doc = "Divide the benchmark's live-heap target by this factor." in
  Arg.(value & opt int 3 & info [ "heap-scale" ] ~doc)

let cap_arg =
  let doc = "Cap the run length in MB of allocation." in
  Arg.(value & opt int 256 & info [ "cap-mb" ] ~doc)

let seed_arg =
  let doc = "PRNG seed (runs are deterministic given a seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let domains_arg =
  let doc = "Worker domains serving the request stream (the epoch protocol)." in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let schedule_seed_arg =
  let doc = "Seed for the deterministic merge schedule of multi-domain runs." in
  Arg.(value & opt int 0 & info [ "schedule-seed" ] ~doc)

let parallel_gc_arg =
  let doc = "Run collection phases on a worker-domain team." in
  Arg.(value & flag & info [ "parallel-gc" ] ~doc)

let oracle_check_arg =
  let doc =
    "Also run the inline oracle protocol at the same seeds and fail unless statistics, \
     pause profile and histograms are identical."
  in
  Arg.(value & flag & info [ "oracle-check" ] ~doc)

let term =
  Term.(
    const serve_cmd $ bench_arg $ collector_arg $ rate_arg $ simulate_arg $ scale_arg
    $ heap_scale_arg $ cap_arg $ seed_arg $ domains_arg $ schedule_seed_arg $ parallel_gc_arg
    $ oracle_check_arg)
