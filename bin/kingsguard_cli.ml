(* kingsguard: run one benchmark under one collector/memory system and
   print the collector's view of the run. *)

open Cmdliner
module R = Kg_sim.Run
module D = Kg_workload.Descriptor
module GS = Kg_gc.Gc_stats

let spec_of_string = function
  | "dram-only" -> Ok R.dram_only
  | "pcm-only" -> Ok R.pcm_only
  | "kg-n" -> Ok R.kg_n
  | "kg-n-12" -> Ok R.kg_n_12
  | "kg-w" -> Ok R.kg_w
  | "kg-w-loo" -> Ok R.kg_w_no_loo
  | "kg-w-loo-mdo" -> Ok R.kg_w_no_loo_mdo
  | "kg-w-pm" -> Ok R.kg_w_no_pm
  | "wp" -> Ok R.wp
  | s -> Error (`Msg (Printf.sprintf "unknown collector %S" s))

let collector_names =
  "dram-only|pcm-only|kg-n|kg-n-12|kg-w|kg-w-loo|kg-w-loo-mdo|kg-w-pm|wp"

let print_result (r : R.result) simulate =
  let st = r.R.stats in
  let mb x = x /. 1048576.0 in
  Printf.printf "benchmark        %s\n" r.R.bench.D.name;
  Printf.printf "collector        %s\n" (R.label r.R.spec);
  Printf.printf "allocated        %d MB\n" (r.R.alloc_bytes / 1048576);
  Printf.printf "collections      %d nursery, %d observer, %d major\n" st.GS.nursery_gcs
    st.GS.observer_gcs st.GS.major_gcs;
  Printf.printf "nursery survival %.1f%%\n" (100.0 *. GS.nursery_survival st);
  Printf.printf "observer surv.   %.1f%%\n" (100.0 *. GS.observer_survival st);
  Printf.printf "mature writes    %.1f%% of app writes (top2%% take %.1f%%)\n"
    (100.0 *. GS.mature_write_fraction st)
    (100.0 *. GS.top_fraction_writes st 0.02);
  Printf.printf "barrier PCM wr   %.1f MB (DRAM %.1f MB)\n"
    (mb (float_of_int st.GS.app_write_bytes_pcm))
    (mb (float_of_int st.GS.app_write_bytes_dram));
  if simulate then begin
    Printf.printf "memory PCM wr    %.1f MB (DRAM %.1f MB)\n" (mb r.R.mem_pcm_write_bytes)
      (mb r.R.mem_dram_write_bytes);
    Printf.printf "exec time        %.3f s (modeled)\n" r.R.time_s;
    Printf.printf "write rate       %.2f GB/s (4-core) / %.2f GB/s (32-core)\n"
      (R.pcm_write_rate_4core_gbs r) (R.pcm_write_rate_32core_gbs r);
    Printf.printf "PCM lifetime     %.1f years @30M endurance\n" (R.lifetime_years r);
    (match r.R.energy with
    | Some e ->
      Printf.printf "energy           %.3f J, EDP %.4f Js\n" (Kg_sim.Energy.total_j e) r.R.edp
    | None -> ());
    Printf.printf "wear-level CoV   %.4f\n" r.R.wear_cov
  end;
  Printf.printf "heap: DRAM avg/max %.1f/%.1f MB, PCM avg/max %.1f/%.1f MB, meta %.1f MB\n"
    r.R.dram_avg_mb r.R.dram_max_mb r.R.pcm_avg_mb r.R.pcm_max_mb r.R.meta_mb

let run_cmd bench collector simulate scale heap_scale cap_mb seed domains schedule_seed
    parallel_gc threshold trigger observer =
  match spec_of_string collector with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok spec ->
    let spec =
      {
        spec with
        R.write_threshold = threshold;
        pcm_write_trigger_mb = trigger;
        observer_mb = observer;
      }
    in
    (
    match D.find bench with
    | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try: %s\n" bench
        (String.concat ", " (D.names ()));
      1
    | d ->
      let mode = if simulate then R.Simulate else R.Count in
      let r =
        R.run ~seed ~scale ~heap_scale ~cap_mb ~threads:domains ~schedule_seed ~parallel_gc
          ~mode spec d
      in
      print_result r simulate;
      0)

let bench_arg =
  let doc = "Benchmark name (see `kingsguard list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)

let collector_arg =
  let doc = Printf.sprintf "Collector / memory system: %s." collector_names in
  Arg.(value & opt string "kg-w" & info [ "c"; "collector" ] ~docv:"COLLECTOR" ~doc)

let simulate_arg =
  let doc = "Run the full cache/memory simulation (slower) instead of barrier-level counting." in
  Arg.(value & flag & info [ "simulate" ] ~doc)

let scale_arg =
  let doc = "Divide the benchmark's allocation volume by this factor." in
  Arg.(value & opt int 8 & info [ "scale" ] ~doc)

let heap_scale_arg =
  let doc = "Divide the benchmark's live-heap target by this factor." in
  Arg.(value & opt int 3 & info [ "heap-scale" ] ~doc)

let cap_arg =
  let doc = "Cap the run length in MB of allocation." in
  Arg.(value & opt int 256 & info [ "cap-mb" ] ~doc)

let seed_arg =
  let doc = "PRNG seed (runs are deterministic given a seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let domains_arg =
  let doc =
    "Simulated mutator domains; above 1 the run executes the deterministic \
     epoch-parallel protocol on real domains."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let schedule_seed_arg =
  let doc = "Seed for the deterministic merge schedule of multi-domain runs." in
  Arg.(value & opt int 0 & info [ "schedule-seed" ] ~doc)

let parallel_gc_arg =
  let doc =
    "Run collection phases on a worker-domain team (plan-in-parallel, \
     apply-in-merged-order). Deterministic: every counter and table is \
     bit-identical to the inline collector at the same --domains; only the \
     modeled GC time shrinks."
  in
  Arg.(value & flag & info [ "parallel-gc" ] ~doc)

let threshold_arg =
  let doc = "KG-W extension: writes needed before an object counts as written (default 1)." in
  Arg.(value & opt int 1 & info [ "write-threshold" ] ~doc)

let trigger_arg =
  let doc = "KG-W extension: trigger a major GC after this many MB of PCM writes." in
  Arg.(value & opt (some int) None & info [ "pcm-write-trigger-mb" ] ~doc)

let observer_arg =
  let doc = "Observer space size in MB (default 2x nursery)." in
  Arg.(value & opt (some int) None & info [ "observer-mb" ] ~doc)

let run_t =
  Term.(
    const run_cmd $ bench_arg $ collector_arg $ simulate_arg $ scale_arg $ heap_scale_arg
    $ cap_arg $ seed_arg $ domains_arg $ schedule_seed_arg $ parallel_gc_arg $ threshold_arg
    $ trigger_arg $ observer_arg)

(* ------------------------------------------------------------------ *)
(* check: audit heap invariants across benchmarks x collectors         *)

let check_cmd benches scale heap_scale cap_mb seed domains parallel_gc jobs =
  let benches = if benches = [] then [ "lusearch"; "xalan"; "pmd" ] else benches in
  let specs = [ ("genimmix", R.pcm_only); ("kg-n", R.kg_n); ("kg-w", R.kg_w) ] in
  let failures = ref 0 in
  let matrix =
    List.concat_map
      (fun bench ->
        match D.find bench with
        | exception Not_found ->
          Printf.eprintf "unknown benchmark %S; try: %s\n" bench
            (String.concat ", " (D.names ()));
          incr failures;
          []
        | d -> List.map (fun (name, spec) -> (bench, d, name, spec)) specs)
      benches
  in
  (* Resolve the audit matrix on the pool; await in submission order so
     the report reads the same at any --jobs width. *)
  let pool = Kg_engine.Pool.create ~seed ~jobs () in
  let futures =
    List.map
      (fun (bench, d, name, spec) ->
        ( bench,
          name,
          Kg_engine.Pool.submit pool (fun ~seed:_ ->
              R.run ~seed ~scale ~heap_scale ~cap_mb ~threads:domains ~parallel_gc
                ~check:true ~mode:R.Count spec d),
          (* Above one domain, also run the inline oracle so the audit
             covers the team protocol's determinism: statistics and the
             per-collection pause profile must match exactly. *)
          if domains <= 1 then None
          else
            Some
              (Kg_engine.Pool.submit pool (fun ~seed:_ ->
                   R.run ~seed ~scale ~heap_scale ~cap_mb ~threads:domains ~parallel_gc
                     ~oracle:true ~check:true ~mode:R.Count spec d)) ))
      matrix
  in
  List.iter
    (fun (bench, name, fut, oracle_fut) ->
      let r = Kg_engine.Pool.await fut in
      let st = r.R.stats in
      let gcs = st.GS.nursery_gcs + st.GS.observer_gcs + st.GS.major_gcs in
      let oracle_diffs =
        match oracle_fut with
        | None -> []
        | Some f ->
          let ro = Kg_engine.Pool.await f in
          GS.diff r.R.stats ro.R.stats
          @ GS.diff_pauses r.R.stats ro.R.stats
              ~pause_ms:(R.pause_model ~domains ~parallel_gc ())
      in
      match r.R.check_violations @ oracle_diffs with
      | [] ->
        Printf.printf "ok   %-10s %-9s %4d collections audited, 0 violations%s\n" bench name
          gcs
          (if oracle_fut = None then "" else ", pause profile matches oracle")
      | vs ->
        incr failures;
        Printf.printf "FAIL %-10s %-9s %d violation(s) in %d collections:\n" bench name
          (List.length vs) gcs;
        List.iter (fun v -> Printf.printf "       %s\n" v) vs)
    futures;
  Kg_engine.Pool.shutdown pool;
  if !failures > 0 then 1 else 0

let benches_arg =
  let doc = "Benchmarks to audit (default: lusearch xalan pmd)." in
  Arg.(value & pos_all string [] & info [] ~docv:"BENCHMARK" ~doc)

let jobs_arg =
  let doc = "Audit on this many worker domains." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let check_t =
  Term.(
    const check_cmd $ benches_arg $ scale_arg $ heap_scale_arg $ cap_arg $ seed_arg
    $ domains_arg $ parallel_gc_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* replay: record a run, replay its trace, compare bit-for-bit         *)

let replay_cmd bench collector scale heap_scale cap_mb seed trace_file =
  match spec_of_string collector with
  | Error (`Msg m) ->
    prerr_endline m;
    1
  | Ok spec -> (
    match D.find bench with
    | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try: %s\n" bench (String.concat ", " (D.names ()));
      1
    | d ->
      let r, events = R.record ~seed ~scale ~heap_scale ~cap_mb spec d in
      let events =
        match trace_file with
        | None -> events
        | Some f ->
          (* Exercise the serialization too: what we replay is what was
             parsed back from disk. *)
          Kg_gc.Trace.save f events;
          Printf.printf "trace            %s (%d events)\n" f (Array.length events);
          Kg_gc.Trace.load f
      in
      Printf.printf "recorded         %s under %s: %d events, %d MB allocated\n" bench
        (R.label spec) (Array.length events) (r.R.alloc_bytes / 1048576);
      (match R.replay ~seed ~heap_scale spec d events with
      | Error m ->
        Printf.printf "replay DIVERGED: %s\n" m;
        1
      | Ok (st, c) ->
        let stat_diff = GS.diff r.R.stats st in
        let ctr_diff = ref [] in
        let cmp name a b =
          if int_of_float a <> b then
            ctr_diff := Printf.sprintf "%s: %d <> %d" name (int_of_float a) b :: !ctr_diff
        in
        cmp "pcm_write_bytes" r.R.mem_pcm_write_bytes c.Kg_gc.Mem_iface.pcm_write_bytes;
        cmp "dram_write_bytes" r.R.mem_dram_write_bytes c.Kg_gc.Mem_iface.dram_write_bytes;
        cmp "pcm_read_bytes" r.R.mem_pcm_read_bytes c.Kg_gc.Mem_iface.pcm_read_bytes;
        cmp "dram_read_bytes" r.R.mem_dram_read_bytes c.Kg_gc.Mem_iface.dram_read_bytes;
        Array.iteri
          (fun i v ->
            cmp
              (Printf.sprintf "pcm_write_bytes[%s]" (Kg_gc.Phase.to_string (Kg_gc.Phase.of_tag i)))
              v
              c.Kg_gc.Mem_iface.pcm_write_bytes_by_phase.(i))
          r.R.pcm_writes_by_phase;
        let diffs = stat_diff @ List.rev !ctr_diff in
        if diffs = [] then begin
          Printf.printf
            "replay           identical: all statistics and device write counters match\n";
          0
        end
        else begin
          Printf.printf "replay DIVERGED in %d counter(s):\n" (List.length diffs);
          List.iter (fun m -> Printf.printf "       %s\n" m) diffs;
          1
        end))

let trace_file_arg =
  let doc = "Also save the trace to this JSONL file and replay the reloaded copy." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let replay_t =
  Term.(
    const replay_cmd $ bench_arg $ collector_arg $ scale_arg $ heap_scale_arg $ cap_arg
    $ seed_arg $ trace_file_arg)

let list_cmd () =
  List.iter
    (fun (d : D.t) ->
      Printf.printf "%-10s alloc %5d MB, heap %4d MB, nursery survival %5.1f%%%s\n" d.D.name
        d.D.alloc_mb d.D.heap_mb
        (100.0 *. d.D.nursery_survival)
        (if d.D.simulated then "  [simulated subset]" else ""))
    D.all;
  0

let cmds =
  let run =
    Cmd.v (Cmd.info "run" ~doc:"Run one benchmark under one collector") run_t
  in
  let list = Cmd.v (Cmd.info "list" ~doc:"List benchmarks") Term.(const list_cmd $ const ()) in
  let check =
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Audit heap invariants after every collection phase, across benchmarks and the \
            GenImmix/KG-N/KG-W collectors")
      check_t
  in
  let replay =
    Cmd.v
      (Cmd.info "replay"
         ~doc:
           "Record a run as an event trace, replay it through a fresh runtime, and verify the \
            statistics and device write counters reproduce bit-for-bit")
      replay_t
  in
  let experiments =
    Cmd.v (Cmd.info "experiments" ~doc:Kg_cli.Experiments_cmd.doc) Kg_cli.Experiments_cmd.term
  in
  let serve = Cmd.v (Cmd.info "serve" ~doc:Kg_cli.Serve_cmd.doc) Kg_cli.Serve_cmd.term in
  Cmd.group
    (Cmd.info "kingsguard" ~doc:"Write-rationing GC simulator")
    [ run; list; check; replay; experiments; serve ]

let () = exit (Cmd.eval' cmds)
