(* kingsguard-experiments: regenerate any or all of the paper's tables
   and figures. Thin wrapper over the shared command in Kg_cli, which
   also backs `kingsguard experiments'. *)

open Cmdliner

let cmd =
  Cmd.v
    (Cmd.info "kingsguard-experiments" ~doc:Kg_cli.Experiments_cmd.doc)
    Kg_cli.Experiments_cmd.term

let () = exit (Cmd.eval' cmd)
