open Kg_heap
module O = Object_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let mib = Kg_util.Units.mib

let fresh_arena ?(size = 256 * mib) ?(kind = Kg_mem.Device.Pcm) () =
  Arena.create ~kind ~base:(4 * mib) ~size

let fresh_words () = Heap_words.create ()

(* Indices are minted in call order, so a test that cares about ids
   simply allocates in id order (ids start at 1). *)
let obj w ?(size = 64) ?(heat = O.Cold) ?(death = infinity) () =
  O.make w ~size ~heat ~death ~ref_fields:2

(* ------------------------------------------------------------------ *)
(* Layout and object model                                             *)

let test_layout_constants () =
  check_int "line matches PCM line" 256 Layout.line;
  check_int "block" (32 * 1024) Layout.block;
  check_int "lines per block" 128 Layout.lines_per_block;
  check_int "max small" (8 * 1024) Layout.max_small_object;
  check_int "mdo table" (262 * 1024) Layout.mark_table_bytes_per_region

let test_layout_align () =
  check_int "align_up" 16 (Layout.align_up 9 8);
  check_int "align id" 16 (Layout.align_up 16 8);
  check_int "object min" Layout.min_object (Layout.align_object_size 1);
  check_int "object align" 24 (Layout.align_object_size 17)

let test_object_predicates () =
  let w = fresh_words () in
  let small = obj w ~size:16 () in
  let big = obj w ~size:(9 * 1024) () in
  check_bool "small16" true (O.is_small16 w small);
  check_bool "not small16" false (O.is_small16 w (obj w ~size:24 ()));
  check_bool "large" true (O.is_large w big);
  check_bool "not large" false (O.is_large w (obj w ~size:(8 * 1024) ()))

let test_object_liveness () =
  let w = fresh_words () in
  let o = O.make w ~size:64 ~heat:O.Cold ~death:100.0 ~ref_fields:1 in
  check_bool "live before" true (O.is_live w o 99.0);
  check_bool "dead at" false (O.is_live w o 100.0);
  check_bool "immortal" true (O.is_live w (obj w ()) 1e18)

let test_object_ids_dense () =
  let w = fresh_words () in
  check_int "first id" 1 (O.id (obj w ()));
  check_int "second id" 2 (O.id (obj w ()));
  check_bool "null below ids" true (O.is_null O.null && not (O.is_null 1))

let test_object_field_addr () =
  let w = fresh_words () in
  let o = obj w ~size:64 () in
  O.set_addr w o 1000;
  let slots = O.field_slots w o in
  check_int "slots for 64 B" 7 slots;
  for i = 0 to slots - 1 do
    let a = O.field_addr w o i in
    check_bool "within payload" true (a >= 1000 + Layout.header_bytes && a < 1064)
  done;
  check_int "end addr" 1064 (O.end_addr w o)

(* Out-of-range field indices used to wrap silently ([i mod slots]);
   they now trip the debug bounds assert (stripped by -noassert in
   release). Callers that want wrap semantics reduce modulo
   [field_slots] themselves. *)
let test_object_field_addr_bounds () =
  let w = fresh_words () in
  let o = obj w ~size:64 () in
  O.set_addr w o 1000;
  (match O.field_addr w o (O.field_slots w o) with
  | _ -> Alcotest.fail "out-of-range field index must not yield an address"
  | exception Assert_failure _ -> ());
  match O.field_addr w o (-1) with
  | _ -> Alcotest.fail "negative field index must not yield an address"
  | exception Assert_failure _ -> ()

let test_object_size_validation () =
  let w = fresh_words () in
  Alcotest.check_raises "too small" (Invalid_argument "Object_model.make: size below minimum")
    (fun () -> ignore (O.make w ~size:4 ~heat:O.Cold ~death:0.0 ~ref_fields:0))

(* The packed tables start at a small capacity and double; metadata
   must survive growth bit-for-bit. *)
let test_heap_words_growth () =
  let w = Heap_words.create ~capacity:8 () in
  let n = 10_000 in
  let objs =
    Array.init n (fun i ->
        O.make w ~size:(16 + (8 * (i mod 100))) ~heat:(if i mod 7 = 0 then O.Hot else O.Cold)
          ~death:(if i mod 3 = 0 then infinity else float_of_int i)
          ~ref_fields:(i mod 50))
  in
  Array.iteri
    (fun i o ->
      O.set_addr w o (i * 8);
      O.set_writes w o i)
    objs;
  Array.iteri
    (fun i o ->
      if O.size w o <> 16 + (8 * (i mod 100)) then Alcotest.fail "size lost in growth";
      if O.ref_fields w o <> i mod 50 then Alcotest.fail "ref_fields lost in growth";
      if O.addr w o <> i * 8 then Alcotest.fail "addr lost in growth";
      if O.writes w o <> i then Alcotest.fail "writes lost in growth";
      let want = if i mod 3 = 0 then infinity else float_of_int i in
      if O.death w o <> want then Alcotest.fail "death lost in growth")
    objs

(* The packed counter fields saturate rather than overflow: the caps
   are what a saturating incrementer (runtime barrier / copy path)
   clamps to, and the setters accept exactly up to them. *)
let test_heap_words_counter_saturation () =
  let w = fresh_words () in
  let o = obj w () in
  O.set_age w o O.max_age;
  O.set_age w o (min (O.age w o + 1) O.max_age);
  Alcotest.(check int) "age saturates" O.max_age (O.age w o);
  O.set_epoch_writes w o O.max_epoch_writes;
  O.set_epoch_writes w o (min (O.epoch_writes w o + 1) O.max_epoch_writes);
  Alcotest.(check int) "epoch_writes saturates" O.max_epoch_writes (O.epoch_writes w o);
  O.set_writes w o O.max_writes;
  O.set_writes w o (min (O.writes w o + 1) O.max_writes);
  Alcotest.(check int) "writes saturates" O.max_writes (O.writes w o);
  (* the three fields share one word: saturating one must not bleed *)
  Alcotest.(check int) "age intact" O.max_age (O.age w o);
  Alcotest.(check int) "epoch intact" O.max_epoch_writes (O.epoch_writes w o);
  match O.set_epoch_writes w o (O.max_epoch_writes + 1) with
  | () -> Alcotest.fail "expected assert on out-of-range epoch_writes"
  | exception Assert_failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Differential oracle: flat words vs the pre-refactor record model    *)

type diff_op =
  | D_alloc of { size : int; heat : O.heat; death : float; ref_fields : int }
  | D_set_addr of int * int
  | D_set_space of int * int
  | D_set_written of int * bool
  | D_set_marked of int * bool
  | D_set_age of int * int
  | D_set_writes of int * int
  | D_set_epoch_writes of int * int

let diff_op_gen =
  let open QCheck.Gen in
  let death =
    frequency
      [ (1, return infinity); (3, map (fun f -> Float.abs f *. 1e6) float); (1, float_range 0.0 1.0) ]
  in
  let alloc =
    int_range Layout.min_object (256 * 1024) >>= fun size ->
    oneofl [ O.Cold; O.Warm; O.Hot ] >>= fun heat ->
    death >>= fun death ->
    int_range 0 4096 >>= fun ref_fields -> return (D_alloc { size; heat; death; ref_fields })
  in
  let target = int_range 0 63 in
  frequency
    [
      (4, alloc);
      (2, map2 (fun i v -> D_set_addr (i, v)) target (int_range 0 (1 lsl 40)));
      (1, map2 (fun i v -> D_set_space (i, v)) target (int_range (-1) 6));
      (1, map2 (fun i v -> D_set_written (i, v)) target bool);
      (1, map2 (fun i v -> D_set_marked (i, v)) target bool);
      (1, map2 (fun i v -> D_set_age (i, v)) target (int_range 0 100));
      (1, map2 (fun i v -> D_set_writes (i, v)) target (int_range 0 ((1 lsl 30) - 1)));
      (1, map2 (fun i v -> D_set_epoch_writes (i, v)) target (int_range 0 1000));
    ]

let heap_words_differential_qcheck =
  QCheck.Test.make ~name:"flat words match the record-heap oracle" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 200) diff_op_gen))
    (fun ops ->
      let w = Heap_words.create ~capacity:4 () in
      let refs : Reference_heap.t Kg_util.Vec.t = Kg_util.Vec.create () in
      let flats : O.t Kg_util.Vec.t = Kg_util.Vec.create () in
      let pick i = i mod max 1 (Kg_util.Vec.length refs) in
      List.iter
        (fun op ->
          match op with
          | D_alloc { size; heat; death; ref_fields } ->
            let id = Kg_util.Vec.length refs + 1 in
            Kg_util.Vec.push refs (Reference_heap.make ~id ~size ~heat ~death ~ref_fields);
            Kg_util.Vec.push flats (O.make w ~size ~heat ~death ~ref_fields)
          | _ when Kg_util.Vec.is_empty refs -> ()
          | D_set_addr (i, v) ->
            (Kg_util.Vec.get refs (pick i)).Reference_heap.addr <- v;
            O.set_addr w (Kg_util.Vec.get flats (pick i)) v
          | D_set_space (i, v) ->
            (Kg_util.Vec.get refs (pick i)).Reference_heap.space <- v;
            O.set_space w (Kg_util.Vec.get flats (pick i)) v
          | D_set_written (i, v) ->
            (Kg_util.Vec.get refs (pick i)).Reference_heap.written <- v;
            O.set_written w (Kg_util.Vec.get flats (pick i)) v
          | D_set_marked (i, v) ->
            (Kg_util.Vec.get refs (pick i)).Reference_heap.marked <- v;
            O.set_marked w (Kg_util.Vec.get flats (pick i)) v
          | D_set_age (i, v) ->
            (Kg_util.Vec.get refs (pick i)).Reference_heap.age <- v;
            O.set_age w (Kg_util.Vec.get flats (pick i)) v
          | D_set_writes (i, v) ->
            (Kg_util.Vec.get refs (pick i)).Reference_heap.writes <- v;
            O.set_writes w (Kg_util.Vec.get flats (pick i)) v
          | D_set_epoch_writes (i, v) ->
            (Kg_util.Vec.get refs (pick i)).Reference_heap.epoch_writes <- v;
            O.set_epoch_writes w (Kg_util.Vec.get flats (pick i)) v)
        ops;
      let ok = ref true in
      for i = 0 to Kg_util.Vec.length refs - 1 do
        let r = Kg_util.Vec.get refs i and o = Kg_util.Vec.get flats i in
        ok :=
          !ok
          && O.id o = r.Reference_heap.id
          && O.size w o = r.Reference_heap.size
          && O.heat w o = r.Reference_heap.heat
          && O.death w o = r.Reference_heap.death
          && O.ref_fields w o = r.Reference_heap.ref_fields
          && O.addr w o = r.Reference_heap.addr
          && O.space w o = r.Reference_heap.space
          && O.written w o = r.Reference_heap.written
          && O.marked w o = r.Reference_heap.marked
          && O.age w o = r.Reference_heap.age
          && O.writes w o = r.Reference_heap.writes
          && O.epoch_writes w o = r.Reference_heap.epoch_writes
          && O.is_live w o 1e5 = Reference_heap.is_live r 1e5
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Arena                                                               *)

let test_arena_reserve () =
  let a = fresh_arena ~size:(64 * 1024) () in
  let r1 = Arena.reserve a 100 in
  let r2 = Arena.reserve a 100 in
  check_int "page aligned spacing" Layout.page (r2 - r1);
  check_int "reserved" (2 * Layout.page) (Arena.reserved_bytes a);
  check_bool "remaining" true (Arena.remaining a = (64 * 1024) - (2 * Layout.page))

let test_arena_exhaustion () =
  let a = fresh_arena ~size:Layout.page () in
  ignore (Arena.reserve a 1);
  Alcotest.check_raises "exhausted"
    (Failure
       "Arena.reserve: PCM arena exhausted (? requested 4096, 0 left; 4096 reserved of 4096 limit)")
    (fun () -> ignore (Arena.reserve a 1))

(* Spaces tag their reservations, so an exhaustion report names the
   space that asked. *)
let test_arena_exhaustion_names_space () =
  let a = fresh_arena ~size:Layout.page () in
  Alcotest.check_raises "who tag"
    (Failure
       "Arena.reserve: PCM arena exhausted (nurse requested 8192, 4096 left; 0 reserved of 4096 limit)")
    (fun () ->
      ignore
        (Bump_space.create ~words:(fresh_words ()) ~id:0 ~name:"nurse" ~arena:a
           ~size:(2 * Layout.page)))

(* ------------------------------------------------------------------ *)
(* Bump space                                                          *)

let mk_bump ?(arena = fresh_arena ()) ?(size = mib) w () =
  Bump_space.create ~words:w ~id:0 ~name:"n" ~arena ~size

let test_bump_contiguous () =
  let w = fresh_words () in
  let sp = mk_bump w () in
  let o1 = obj w ~size:64 () and o2 = obj w ~size:32 () in
  check_bool "alloc" true (Bump_space.alloc sp o1);
  check_bool "alloc" true (Bump_space.alloc sp o2);
  check_int "contiguous" (O.addr w o1 + 64) (O.addr w o2);
  check_int "space id set" 0 (O.space w o2);
  check_int "used" 96 (Bump_space.used_bytes sp);
  check_int "population" 2 (Kg_util.Vec.length (Bump_space.objects sp))

let test_bump_full_and_reset () =
  let w = fresh_words () in
  let sp = mk_bump ~size:128 w () in
  check_bool "fits" true (Bump_space.alloc sp (obj w ~size:128 ()));
  check_bool "full" false (Bump_space.alloc sp (obj w ~size:8 ()));
  Bump_space.reset sp;
  check_bool "empty after reset" true (Bump_space.is_empty sp);
  check_bool "reusable" true (Bump_space.alloc sp (obj w ~size:8 ()))

let test_bump_live_bytes () =
  let w = fresh_words () in
  let sp = mk_bump w () in
  ignore (Bump_space.alloc sp (obj w ~size:64 ~death:50.0 ()));
  ignore (Bump_space.alloc sp (obj w ~size:32 ~death:200.0 ()));
  check_int "live at 100" 32 (Bump_space.live_bytes sp ~now:100.0)

(* ------------------------------------------------------------------ *)
(* Immix space                                                         *)

let mk_immix ?(arena = fresh_arena ()) w () =
  Immix_space.create ~words:w ~id:3 ~name:"mature" ~arena ()

let test_immix_alloc_in_blocks () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  let o1 = obj w ~size:100 () in
  check_bool "alloc" true (Immix_space.alloc sp o1);
  check_bool "addr assigned" true (O.addr w o1 > 0);
  check_int "space" 3 (O.space w o1);
  check_int "one region" 1 (Immix_space.region_count sp);
  check_int "footprint" Layout.mature_region (Immix_space.footprint_bytes sp)

let test_immix_objects_never_cross_blocks () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  for i = 1 to 5000 do
    let o = obj w ~size:(16 + (8 * (i mod 900))) () in
    check_bool "alloc ok" true (Immix_space.alloc sp o);
    let block_of a = a / Layout.block in
    check_int "within one block" (block_of (O.addr w o)) (block_of (O.end_addr w o - 1))
  done

let test_immix_rejects_large () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  Alcotest.check_raises "large rejected" (Invalid_argument "Immix_space.alloc: large object")
    (fun () -> ignore (Immix_space.alloc sp (obj w ~size:(16 * 1024) ())))

let test_immix_sweep_reclaims () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  for i = 1 to 100 do
    ignore
      (Immix_space.alloc sp (obj w ~size:256 ~death:(if i mod 2 = 0 then 10.0 else infinity) ()))
  done;
  let dead = ref 0 in
  let stats = Immix_space.sweep sp ~now:20.0 ~on_dead:(fun _ -> incr dead) () in
  check_int "dead objects" 50 stats.Immix_space.swept_objects;
  check_int "on_dead callback" 50 !dead;
  check_int "survivors" 50 (Kg_util.Vec.length (Immix_space.objects sp));
  check_int "live bytes" (50 * 256) (Immix_space.live_bytes sp)

let test_immix_recycles_lines () =
  let w = fresh_words () in
  let arena = fresh_arena ~size:(2 * Layout.mature_region) () in
  let sp = mk_immix ~arena w () in
  (* fill one region with short-lived objects, sweep, then refill: the
     space must reuse the freed lines instead of growing *)
  let per_region = Layout.mature_region / 256 in
  for _ = 1 to per_region do
    ignore (Immix_space.alloc sp (obj w ~size:256 ~death:10.0 ()))
  done;
  check_int "one region so far" 1 (Immix_space.region_count sp);
  ignore (Immix_space.sweep sp ~now:20.0 ());
  for _ = 1 to per_region do
    ignore (Immix_space.alloc sp (obj w ~size:256 ()))
  done;
  check_int "no growth after sweep" 1 (Immix_space.region_count sp)

let test_immix_sweep_stats_classify () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  (* one immortal object pins one block's lines *)
  ignore (Immix_space.alloc sp (obj w ~size:256 ()));
  let stats = Immix_space.sweep sp ~now:0.0 () in
  check_int "one recyclable" 1 stats.Immix_space.recyclable_blocks;
  check_int "rest free" (Layout.mature_region / Layout.block - 1) stats.Immix_space.free_blocks;
  check_int "one line marked" 1 stats.Immix_space.marked_lines

let test_immix_write_meta_callback () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  ignore (Immix_space.alloc sp (obj w ~size:600 ()));
  let lines_seen = ref 0 in
  ignore
    (Immix_space.sweep sp ~now:0.0 ~write_meta:(fun ~block_index:_ ~lines -> lines_seen := lines) ());
  (* 600 bytes starting at a line boundary -> 3 lines *)
  check_int "marked lines reported" 3 !lines_seen

(* The sweep's plan/apply protocol must be observation-equivalent at
   any slice width: same stats, same on_dead and write_meta sequences,
   same survivor order, and the same rebuilt allocation queue (pinned
   by the address of the first post-sweep allocation). Width 4 runs on
   a real worker-domain team. *)
let test_immix_parallel_sweep_equiv () =
  let build () =
    let w = fresh_words () in
    let sp = mk_immix ~arena:(fresh_arena ~size:(8 * Layout.mature_region) ()) w () in
    for i = 1 to 40_000 do
      let death = if i mod 3 = 0 then infinity else float_of_int (i mod 11) in
      ignore (Immix_space.alloc sp (obj w ~size:(16 + (8 * (i mod 120))) ~death ()))
    done;
    (w, sp)
  in
  let run par =
    let w, sp = build () in
    let deads = ref [] and metas = ref [] in
    let stats =
      Immix_space.sweep sp ~now:5.5
        ~write_meta:(fun ~block_index ~lines -> metas := (block_index, lines) :: !metas)
        ~on_dead:(fun o -> deads := o :: !deads)
        ?par ()
    in
    let survivors = Kg_util.Vec.to_array (Immix_space.objects sp) in
    let next = obj w ~size:64 () in
    ignore (Immix_space.alloc sp next);
    (stats, List.rev !deads, List.rev !metas, survivors, O.addr w next,
     Immix_space.audit sp)
  in
  let team = Kg_gc.Gc_par.create ~domains:4 ~parallel:true in
  Fun.protect ~finally:(fun () -> Kg_gc.Gc_par.shutdown team) @@ fun () ->
  let s1, d1, m1, v1, a1, audit1 = run None in
  let s4, d4, m4, v4, a4, audit4 = run (Some (Kg_gc.Gc_par.runner team)) in
  check_bool "sweep stats equal" true (s1 = s4);
  check_bool "on_dead order equal" true (d1 = d4);
  check_bool "write_meta sequence equal" true (m1 = m4);
  check_bool "survivor order equal" true (v1 = v4);
  check_int "next alloc address equal" a1 a4;
  Alcotest.(check (list string)) "audit clean (one slice)" [] audit1;
  Alcotest.(check (list string)) "audit clean (team)" [] audit4

let test_immix_region_lookup () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  let o = obj w ~size:64 () in
  ignore (Immix_space.alloc sp o);
  let base = Immix_space.region_base_of_addr sp (O.addr w o) in
  check_bool "addr within region" true
    (O.addr w o >= base && O.addr w o < base + Layout.mature_region);
  check_bool "region registered" true (Array.mem base (Immix_space.region_bases sp))

let test_immix_remove_foreign () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  let o = obj w ~size:64 () in
  ignore (Immix_space.alloc sp o);
  O.set_space w o 2;
  (* simulated move to another space *)
  Immix_space.remove_foreign sp;
  check_int "foreign removed" 0 (Kg_util.Vec.length (Immix_space.objects sp))

let test_immix_fragmentation () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  (* objects spaced so each pins one line of its block, then die in
     alternation: half-empty recyclable blocks result *)
  for i = 1 to 512 do
    ignore
      (Immix_space.alloc sp (obj w ~size:256 ~death:(if i mod 2 = 0 then 10.0 else infinity) ()))
  done;
  check_float "no recyclable blocks yet" 0.0 (Immix_space.fragmentation sp);
  ignore (Immix_space.sweep sp ~now:20.0 ());
  check_bool "fragmentation appears" true (Immix_space.fragmentation sp >= 0.45)

let test_immix_defrag_candidates () =
  let w = fresh_words () in
  let sp = mk_immix w () in
  (* one survivor per block: blocks are maximally sparse *)
  for _ = 1 to 16 do
    ignore (Immix_space.alloc sp (obj w ~size:256 ()));
    for _ = 1 to 127 do
      ignore (Immix_space.alloc sp (obj w ~size:256 ~death:1.0 ()))
    done
  done;
  ignore (Immix_space.sweep sp ~now:5.0 ());
  let victims = Immix_space.defrag_candidates sp ~max_bytes:(4 * 256) in
  check_int "budget-bounded victims" 4 (List.length victims);
  List.iter (fun o -> check_bool "victims live" true (O.is_live w o 5.0)) victims

(* No two live objects may overlap, across arbitrary alloc/sweep
   interleavings: the load-bearing allocator invariant. *)
(* Sharded allocation: real domains bump-allocating through their own
   shards concurrently must produce a consistent population — every
   object registered once, no address overlap, live bytes summing.
   Indices are minted sequentially up front: the flat-word tables only
   grow in sequential phases, so the workers race on the space's
   shards, never on the store. *)
let test_immix_parallel_shards () =
  let shards = 4 and per_domain = 2000 in
  let w = fresh_words () in
  let sp =
    Immix_space.create ~words:w ~id:3 ~name:"mature" ~arena:(fresh_arena ()) ~shards ()
  in
  check_int "shard count" shards (Immix_space.shard_count sp);
  let objs =
    Array.init shards (fun _ ->
        Array.init per_domain (fun i -> obj w ~size:(64 + (16 * (i mod 8))) ()))
  in
  let worker shard () =
    Array.iter
      (fun o -> if not (Immix_space.alloc ~shard sp o) then failwith "arena exhausted")
      objs.(shard)
  in
  let doms = Array.init (shards - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  Array.iter Domain.join doms;
  check_int "all objects registered" (shards * per_domain)
    (Kg_util.Vec.length (Immix_space.objects sp));
  let sum = Kg_util.Vec.fold (fun a o -> a + O.size w o) 0 (Immix_space.objects sp) in
  check_int "live bytes sum" sum (Immix_space.live_bytes sp);
  Alcotest.(check (list string)) "audit clean" [] (Immix_space.audit sp)

let test_immix_one_shard_matches_default () =
  (* shards:1 must be exactly the pre-shard space: same addresses for
     the same allocation sequence. *)
  let w = fresh_words () in
  let run sp =
    List.init 200 (fun i ->
        let o = obj w ~size:(64 + (8 * (i mod 16))) () in
        ignore (Immix_space.alloc sp o);
        O.addr w o)
  in
  let a = run (mk_immix w ()) in
  let b =
    run (Immix_space.create ~words:w ~id:3 ~name:"mature" ~arena:(fresh_arena ()) ~shards:1 ())
  in
  check_bool "identical address streams" true (a = b)

let immix_no_overlap_qcheck =
  QCheck.Test.make ~name:"immix: live objects never overlap" ~count:30
    QCheck.(pair (small_list (int_range 16 4096)) (small_list (int_range 16 4096)))
    (fun (sizes1, sizes2) ->
      let w = fresh_words () in
      let sp = mk_immix w () in
      let now = ref 0.0 in
      let alloc_batch sizes =
        List.iteri
          (fun i s ->
            let death = if i mod 3 = 0 then !now +. 1.0 else infinity in
            ignore
              (Immix_space.alloc sp
                 (O.make w ~size:(Layout.align_object_size s) ~heat:O.Cold ~death ~ref_fields:1)))
          sizes
      in
      alloc_batch sizes1;
      now := !now +. 10.0;
      ignore (Immix_space.sweep sp ~now:!now ());
      alloc_batch sizes2;
      let objs =
        Kg_util.Vec.to_array (Immix_space.objects sp)
        |> Array.to_list
        |> List.filter (fun o -> O.is_live w o !now)
      in
      let sorted = List.sort (fun a b -> compare (O.addr w a) (O.addr w b)) objs in
      let rec no_overlap = function
        | a :: b :: rest -> O.end_addr w a <= O.addr w b && no_overlap (b :: rest)
        | _ -> true
      in
      no_overlap sorted)

(* ------------------------------------------------------------------ *)
(* Large object space                                                  *)

let mk_los ?(arena = fresh_arena ()) ?(id = 5) ?(name = "los") w () =
  Los.create ~words:w ~id ~name ~arena

let test_los_alloc_and_iter () =
  let w = fresh_words () in
  let los = mk_los w () in
  let o = obj w ~size:(16 * 1024) () in
  check_bool "alloc" true (Los.alloc los o);
  check_int "count" 1 (Los.object_count los);
  check_int "live bytes" (16 * 1024) (Los.live_bytes los);
  let seen = ref 0 in
  Los.iter los (fun _ -> incr seen);
  check_int "iter" 1 !seen

let test_los_collect_keep_and_evict () =
  let w = fresh_words () in
  let los = mk_los w () in
  let keepme = obj w ~size:(16 * 1024) () in
  let evictme = obj w ~size:(16 * 1024) () in
  let dead = obj w ~size:(16 * 1024) ~death:5.0 () in
  List.iter (fun o -> ignore (Los.alloc los o)) [ keepme; evictme; dead ];
  O.set_written w evictme true;
  let deaths = ref 0 in
  let evicted =
    Los.collect los ~now:10.0
      ~keep:(fun o -> not (O.written w o))
      ~on_dead:(fun _ -> incr deaths)
      ()
  in
  check_int "one evicted" 1 (List.length evicted);
  check_int "evicted is written one" (O.id evictme) (O.id (List.hd evicted));
  check_int "one died" 1 !deaths;
  check_int "one kept" 1 (Los.object_count los)

let test_los_adopt () =
  let w = fresh_words () in
  let a = mk_los ~name:"a" w () in
  let b = mk_los ~arena:(fresh_arena ~kind:Kg_mem.Device.Dram ()) ~id:4 ~name:"b" w () in
  let o = obj w ~size:(12 * 1024) () in
  ignore (Los.alloc a o);
  let evicted = Los.collect a ~now:0.0 ~keep:(fun _ -> false) () in
  List.iter (Los.adopt b) evicted;
  check_int "moved" 1 (Los.object_count b);
  check_int "source emptied" 0 (Los.object_count a);
  check_int "new space id" 4 (O.space w o)

let test_los_allocation_rate_counter () =
  let w = fresh_words () in
  let los = mk_los w () in
  ignore (Los.alloc los (obj w ~size:(16 * 1024) ()));
  ignore (Los.alloc los (obj w ~size:(16 * 1024) ~death:0.0 ()));
  ignore (Los.collect los ~now:1.0 ~keep:(fun _ -> true) ());
  (* cumulative allocation is unaffected by collection *)
  check_int "total allocated" (32 * 1024) (Los.allocated_bytes_total los)

(* An allocation that lands exactly on the arena limit succeeds; the
   next one reports full (false) without raising. *)
let test_los_alloc_exactly_at_limit () =
  let w = fresh_words () in
  let los = mk_los ~arena:(fresh_arena ~size:(16 * 1024) ()) w () in
  check_bool "exact fit" true (Los.alloc los (obj w ~size:(16 * 1024) ()));
  check_int "arena consumed" 0 (Los.live_bytes los - (16 * 1024));
  check_bool "next refused" false (Los.alloc los (obj w ~size:(16 * 1024) ()))

let test_los_collect_zero_survivors () =
  let w = fresh_words () in
  let los = mk_los w () in
  for _ = 1 to 3 do
    ignore (Los.alloc los (obj w ~size:(16 * 1024) ~death:5.0 ()))
  done;
  let deaths = ref 0 in
  let evicted = Los.collect los ~now:10.0 ~keep:(fun _ -> true) ~on_dead:(fun _ -> incr deaths) () in
  check_int "nothing evicted" 0 (List.length evicted);
  check_int "all died" 3 !deaths;
  check_int "empty" 0 (Los.object_count los);
  check_int "no live bytes" 0 (Los.live_bytes los);
  (* the treadmill is reusable after a wipe-out *)
  check_bool "alloc after collapse" true (Los.alloc los (obj w ~size:(16 * 1024) ()))

(* ------------------------------------------------------------------ *)
(* Free-list mark-sweep space                                          *)

let mk_freelist ?(arena = fresh_arena ()) w () =
  Freelist_space.create ~words:w ~id:3 ~name:"fl" ~arena

let test_freelist_size_classes () =
  let cls = Freelist_space.size_classes in
  check_int "smallest" 16 cls.(0);
  check_int "largest = small-object limit" Layout.max_small_object cls.(Array.length cls - 1);
  Array.iteri (fun i c -> if i > 0 then check_bool "ascending" true (c > cls.(i - 1))) cls

let test_freelist_alloc_rounds_up () =
  let w = fresh_words () in
  let sp = mk_freelist w () in
  let o = obj w ~size:48 () in
  check_bool "alloc" true (Freelist_space.alloc sp o);
  check_int "live is object size" 48 (Freelist_space.live_bytes sp);
  check_int "cell is class size" 48 (Freelist_space.cell_bytes sp);
  let o2 = obj w ~size:50 () in
  ignore (Freelist_space.alloc sp o2);
  (* 50 rounds to the 56-byte class *)
  check_int "rounded cell" (48 + 56) (Freelist_space.cell_bytes sp)

let test_freelist_same_class_adjacent () =
  let w = fresh_words () in
  let sp = mk_freelist w () in
  let a = obj w ~size:64 () and b = obj w ~size:64 () in
  ignore (Freelist_space.alloc sp a);
  ignore (Freelist_space.alloc sp b);
  check_int "consecutive cells" 64 (O.addr w b - O.addr w a)

let test_freelist_sweep_reuses_cells () =
  let w = fresh_words () in
  let sp = mk_freelist w () in
  let doomed = obj w ~size:64 ~death:5.0 () in
  ignore (Freelist_space.alloc sp doomed);
  let dead_addr = O.addr w doomed in
  let reclaimed = Freelist_space.sweep sp ~now:10.0 () in
  check_int "reclaimed bytes" 64 reclaimed;
  check_int "population empty" 0 (Kg_util.Vec.length (Freelist_space.objects sp));
  let fresh = obj w ~size:64 () in
  ignore (Freelist_space.alloc sp fresh);
  check_int "cell reused (LIFO)" dead_addr (O.addr w fresh)

let test_freelist_no_moving () =
  let w = fresh_words () in
  let sp = mk_freelist w () in
  let o = obj w ~size:128 () in
  ignore (Freelist_space.alloc sp o);
  let addr = O.addr w o in
  ignore (Freelist_space.sweep sp ~now:10.0 ());
  check_int "objects never move" addr (O.addr w o)

let test_freelist_rejects_large () =
  let w = fresh_words () in
  let sp = mk_freelist w () in
  Alcotest.check_raises "large rejected"
    (Invalid_argument "Freelist_space.alloc: large object") (fun () ->
      ignore (Freelist_space.alloc sp (obj w ~size:(16 * 1024) ())))

(* One block's worth of cells allocates to the brim; the first alloc
   past the limit reports full instead of raising. *)
let test_freelist_alloc_exactly_at_limit () =
  let w = fresh_words () in
  let sp = mk_freelist ~arena:(fresh_arena ~size:Layout.block ()) w () in
  let per_block = Layout.block / 64 in
  for _ = 1 to per_block do
    check_bool "fills the block" true (Freelist_space.alloc sp (obj w ~size:64 ()))
  done;
  check_int "no free cells left" 0 (Freelist_space.free_cells sp);
  check_bool "next refused" false (Freelist_space.alloc sp (obj w ~size:64 ()));
  check_int "footprint is one block" Layout.block (Freelist_space.footprint_bytes sp)

let test_freelist_sweep_zero_survivors () =
  let w = fresh_words () in
  let sp = mk_freelist w () in
  for _ = 1 to 10 do
    ignore (Freelist_space.alloc sp (obj w ~size:64 ~death:5.0 ()))
  done;
  let free_before = Freelist_space.free_cells sp in
  check_int "everything reclaimed" (10 * 64) (Freelist_space.sweep sp ~now:10.0 ());
  check_int "population empty" 0 (Kg_util.Vec.length (Freelist_space.objects sp));
  check_int "no live bytes" 0 (Freelist_space.live_bytes sp);
  check_int "no cell bytes" 0 (Freelist_space.cell_bytes sp);
  check_int "cells all free again" (free_before + 10) (Freelist_space.free_cells sp)

(* The packed per-object class side table (which replaced a Hashtbl)
   must keep serving classes through its doubling growth and across
   sweep reclaim/reuse cycles: a swept object's cell goes back to the
   class it was allocated from even when its recorded size would round
   to the same class, and ids far past the initial table size work. *)
let test_freelist_class_table_growth () =
  let w = fresh_words () in
  let sp = mk_freelist w () in
  (* push the id space well past the table's initial 1024 slots *)
  for _ = 1 to 3000 do
    ignore (obj w ~size:16 ())
  done;
  let doomed = obj w ~size:50 ~death:5.0 () in
  (* 50 rounds up to the 56-byte class *)
  ignore (Freelist_space.alloc sp doomed);
  check_int "reclaims the rounded cell" 50 (Freelist_space.sweep sp ~now:10.0 ());
  check_int "cell bytes back to zero" 0 (Freelist_space.cell_bytes sp);
  let fresh = obj w ~size:56 () in
  ignore (Freelist_space.alloc sp fresh);
  check_int "56-byte cell reused (same class)" (O.addr w doomed) (O.addr w fresh)

let freelist_no_overlap_qcheck =
  QCheck.Test.make ~name:"freelist: live cells never overlap" ~count:30
    QCheck.(small_list (int_range 16 8192))
    (fun sizes ->
      let w = fresh_words () in
      let sp = mk_freelist w () in
      List.iteri
        (fun i s ->
          let death = if i mod 2 = 0 then 5.0 else infinity in
          ignore
            (Freelist_space.alloc sp
               (O.make w ~size:(Layout.align_object_size s) ~heat:O.Cold ~death ~ref_fields:1)))
        sizes;
      ignore (Freelist_space.sweep sp ~now:10.0 ());
      List.iter
        (fun s ->
          ignore
            (Freelist_space.alloc sp
               (O.make w ~size:(Layout.align_object_size s) ~heat:O.Cold ~death:infinity
                  ~ref_fields:1)))
        sizes;
      let objs = Kg_util.Vec.to_array (Freelist_space.objects sp) in
      let sorted =
        Array.to_list objs |> List.sort (fun a b -> compare (O.addr w a) (O.addr w b))
      in
      let rec ok = function
        | a :: b :: rest -> O.end_addr w a <= O.addr w b && ok (b :: rest)
        | _ -> true
      in
      ok sorted)

(* ------------------------------------------------------------------ *)
(* Meta space                                                          *)

let test_meta_accounting () =
  let m = Meta_space.create ~id:6 ~name:"meta" ~arena:(fresh_arena ()) in
  let a1 = Meta_space.alloc_table m 1000 in
  let a2 = Meta_space.alloc_table m 1000 in
  check_bool "distinct" true (a1 <> a2);
  check_int "usage" 2000 (Meta_space.usage_bytes m);
  Meta_space.free_table m 1000;
  check_int "freed" 1000 (Meta_space.usage_bytes m);
  check_int "high water" 2000 (Meta_space.high_water_bytes m)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kg_heap"
    [
      ( "layout+object",
        [
          Alcotest.test_case "constants" `Quick test_layout_constants;
          Alcotest.test_case "alignment" `Quick test_layout_align;
          Alcotest.test_case "predicates" `Quick test_object_predicates;
          Alcotest.test_case "liveness" `Quick test_object_liveness;
          Alcotest.test_case "dense ids" `Quick test_object_ids_dense;
          Alcotest.test_case "field addresses" `Quick test_object_field_addr;
          Alcotest.test_case "field address bounds" `Quick test_object_field_addr_bounds;
          Alcotest.test_case "size validation" `Quick test_object_size_validation;
          Alcotest.test_case "table growth" `Quick test_heap_words_growth;
          Alcotest.test_case "counter saturation" `Quick test_heap_words_counter_saturation;
          q heap_words_differential_qcheck;
        ] );
      ( "arena",
        [
          Alcotest.test_case "reserve" `Quick test_arena_reserve;
          Alcotest.test_case "exhaustion" `Quick test_arena_exhaustion;
          Alcotest.test_case "exhaustion names space" `Quick test_arena_exhaustion_names_space;
        ] );
      ( "bump_space",
        [
          Alcotest.test_case "contiguous" `Quick test_bump_contiguous;
          Alcotest.test_case "full and reset" `Quick test_bump_full_and_reset;
          Alcotest.test_case "live bytes" `Quick test_bump_live_bytes;
        ] );
      ( "immix",
        [
          Alcotest.test_case "alloc in blocks" `Quick test_immix_alloc_in_blocks;
          Alcotest.test_case "no block crossing" `Quick test_immix_objects_never_cross_blocks;
          Alcotest.test_case "rejects large" `Quick test_immix_rejects_large;
          Alcotest.test_case "sweep reclaims" `Quick test_immix_sweep_reclaims;
          Alcotest.test_case "recycles lines" `Quick test_immix_recycles_lines;
          Alcotest.test_case "sweep classifies blocks" `Quick test_immix_sweep_stats_classify;
          Alcotest.test_case "write_meta callback" `Quick test_immix_write_meta_callback;
          Alcotest.test_case "parallel sweep equivalence" `Quick
            test_immix_parallel_sweep_equiv;
          Alcotest.test_case "region lookup" `Quick test_immix_region_lookup;
          Alcotest.test_case "remove foreign" `Quick test_immix_remove_foreign;
          Alcotest.test_case "fragmentation" `Quick test_immix_fragmentation;
          Alcotest.test_case "defrag candidates" `Quick test_immix_defrag_candidates;
          Alcotest.test_case "parallel shards" `Quick test_immix_parallel_shards;
          Alcotest.test_case "one shard matches default" `Quick
            test_immix_one_shard_matches_default;
          q immix_no_overlap_qcheck;
        ] );
      ( "los",
        [
          Alcotest.test_case "alloc and iter" `Quick test_los_alloc_and_iter;
          Alcotest.test_case "collect keep/evict" `Quick test_los_collect_keep_and_evict;
          Alcotest.test_case "adopt" `Quick test_los_adopt;
          Alcotest.test_case "allocation counter" `Quick test_los_allocation_rate_counter;
          Alcotest.test_case "alloc exactly at limit" `Quick test_los_alloc_exactly_at_limit;
          Alcotest.test_case "collect zero survivors" `Quick test_los_collect_zero_survivors;
        ] );
      ( "freelist",
        [
          Alcotest.test_case "size classes" `Quick test_freelist_size_classes;
          Alcotest.test_case "rounds up" `Quick test_freelist_alloc_rounds_up;
          Alcotest.test_case "same class adjacent" `Quick test_freelist_same_class_adjacent;
          Alcotest.test_case "sweep reuses cells" `Quick test_freelist_sweep_reuses_cells;
          Alcotest.test_case "non-moving" `Quick test_freelist_no_moving;
          Alcotest.test_case "rejects large" `Quick test_freelist_rejects_large;
          Alcotest.test_case "alloc exactly at limit" `Quick test_freelist_alloc_exactly_at_limit;
          Alcotest.test_case "sweep zero survivors" `Quick test_freelist_sweep_zero_survivors;
          Alcotest.test_case "class side table growth" `Quick
            test_freelist_class_table_growth;
          q freelist_no_overlap_qcheck;
        ] );
      ("meta", [ Alcotest.test_case "accounting" `Quick test_meta_accounting ]);
    ]
