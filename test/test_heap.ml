open Kg_heap
module O = Object_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let mib = Kg_util.Units.mib

let fresh_arena ?(size = 256 * mib) ?(kind = Kg_mem.Device.Pcm) () =
  Arena.create ~kind ~base:(4 * mib) ~size

let obj ?(size = 64) ?(heat = O.Cold) ?(death = infinity) id =
  O.make ~id ~size ~heat ~death ~ref_fields:2

(* ------------------------------------------------------------------ *)
(* Layout and object model                                             *)

let test_layout_constants () =
  check_int "line matches PCM line" 256 Layout.line;
  check_int "block" (32 * 1024) Layout.block;
  check_int "lines per block" 128 Layout.lines_per_block;
  check_int "max small" (8 * 1024) Layout.max_small_object;
  check_int "mdo table" (262 * 1024) Layout.mark_table_bytes_per_region

let test_layout_align () =
  check_int "align_up" 16 (Layout.align_up 9 8);
  check_int "align id" 16 (Layout.align_up 16 8);
  check_int "object min" Layout.min_object (Layout.align_object_size 1);
  check_int "object align" 24 (Layout.align_object_size 17)

let test_object_predicates () =
  let small = obj ~size:16 1 in
  let big = obj ~size:(9 * 1024) 2 in
  check_bool "small16" true (O.is_small16 small);
  check_bool "not small16" false (O.is_small16 (obj ~size:24 3));
  check_bool "large" true (O.is_large big);
  check_bool "not large" false (O.is_large (obj ~size:(8 * 1024) 4))

let test_object_liveness () =
  let o = O.make ~id:1 ~size:64 ~heat:O.Cold ~death:100.0 ~ref_fields:1 in
  check_bool "live before" true (O.is_live o 99.0);
  check_bool "dead at" false (O.is_live o 100.0);
  check_bool "immortal" true (O.is_live (obj 2) 1e18)

let test_object_field_addr () =
  let o = obj ~size:64 1 in
  o.O.addr <- 1000;
  for i = 0 to 20 do
    let a = O.field_addr o i in
    check_bool "within payload" true (a >= 1000 + Layout.header_bytes && a < 1064)
  done;
  check_int "end addr" 1064 (O.end_addr o)

let test_object_size_validation () =
  Alcotest.check_raises "too small" (Invalid_argument "Object_model.make: size below minimum")
    (fun () -> ignore (O.make ~id:1 ~size:4 ~heat:O.Cold ~death:0.0 ~ref_fields:0))

(* ------------------------------------------------------------------ *)
(* Arena                                                               *)

let test_arena_reserve () =
  let a = fresh_arena ~size:(64 * 1024) () in
  let r1 = Arena.reserve a 100 in
  let r2 = Arena.reserve a 100 in
  check_int "page aligned spacing" Layout.page (r2 - r1);
  check_int "reserved" (2 * Layout.page) (Arena.reserved_bytes a);
  check_bool "remaining" true (Arena.remaining a = (64 * 1024) - (2 * Layout.page))

let test_arena_exhaustion () =
  let a = fresh_arena ~size:Layout.page () in
  ignore (Arena.reserve a 1);
  Alcotest.check_raises "exhausted"
    (Failure "Arena.reserve: PCM arena exhausted (4096 requested, 0 left)") (fun () ->
      ignore (Arena.reserve a 1))

(* ------------------------------------------------------------------ *)
(* Bump space                                                          *)

let test_bump_contiguous () =
  let sp = Bump_space.create ~id:0 ~name:"n" ~arena:(fresh_arena ()) ~size:mib in
  let o1 = obj ~size:64 1 and o2 = obj ~size:32 2 in
  check_bool "alloc" true (Bump_space.alloc sp o1);
  check_bool "alloc" true (Bump_space.alloc sp o2);
  check_int "contiguous" (o1.O.addr + 64) o2.O.addr;
  check_int "space id set" 0 o2.O.space;
  check_int "used" 96 (Bump_space.used_bytes sp);
  check_int "population" 2 (Kg_util.Vec.length (Bump_space.objects sp))

let test_bump_full_and_reset () =
  let sp = Bump_space.create ~id:0 ~name:"n" ~arena:(fresh_arena ()) ~size:128 in
  check_bool "fits" true (Bump_space.alloc sp (obj ~size:128 1));
  check_bool "full" false (Bump_space.alloc sp (obj ~size:8 2));
  Bump_space.reset sp;
  check_bool "empty after reset" true (Bump_space.is_empty sp);
  check_bool "reusable" true (Bump_space.alloc sp (obj ~size:8 3))

let test_bump_live_bytes () =
  let sp = Bump_space.create ~id:0 ~name:"n" ~arena:(fresh_arena ()) ~size:mib in
  ignore (Bump_space.alloc sp (obj ~size:64 ~death:50.0 1));
  ignore (Bump_space.alloc sp (obj ~size:32 ~death:200.0 2));
  check_int "live at 100" 32 (Bump_space.live_bytes sp ~now:100.0)

(* ------------------------------------------------------------------ *)
(* Immix space                                                         *)

let mk_immix ?(arena = fresh_arena ()) () =
  Immix_space.create ~id:3 ~name:"mature" ~arena ()

let test_immix_alloc_in_blocks () =
  let sp = mk_immix () in
  let o1 = obj ~size:100 1 in
  check_bool "alloc" true (Immix_space.alloc sp o1);
  check_bool "addr assigned" true (o1.O.addr > 0);
  check_int "space" 3 o1.O.space;
  check_int "one region" 1 (Immix_space.region_count sp);
  check_int "footprint" Layout.mature_region (Immix_space.footprint_bytes sp)

let test_immix_objects_never_cross_blocks () =
  let sp = mk_immix () in
  for i = 1 to 5000 do
    let o = obj ~size:(16 + 8 * (i mod 900)) i in
    check_bool "alloc ok" true (Immix_space.alloc sp o);
    let block_of a = a / Layout.block in
    check_int "within one block" (block_of o.O.addr) (block_of (o.O.addr + o.O.size - 1))
  done

let test_immix_rejects_large () =
  let sp = mk_immix () in
  Alcotest.check_raises "large rejected" (Invalid_argument "Immix_space.alloc: large object")
    (fun () -> ignore (Immix_space.alloc sp (obj ~size:(16 * 1024) 1)))

let test_immix_sweep_reclaims () =
  let sp = mk_immix () in
  for i = 1 to 100 do
    ignore (Immix_space.alloc sp (obj ~size:256 ~death:(if i mod 2 = 0 then 10.0 else infinity) i))
  done;
  let dead = ref 0 in
  let stats = Immix_space.sweep sp ~now:20.0 ~on_dead:(fun _ -> incr dead) () in
  check_int "dead objects" 50 stats.Immix_space.swept_objects;
  check_int "on_dead callback" 50 !dead;
  check_int "survivors" 50 (Kg_util.Vec.length (Immix_space.objects sp));
  check_int "live bytes" (50 * 256) (Immix_space.live_bytes sp)

let test_immix_recycles_lines () =
  let arena = fresh_arena ~size:(2 * Layout.mature_region) () in
  let sp = mk_immix ~arena () in
  (* fill one region with short-lived objects, sweep, then refill: the
     space must reuse the freed lines instead of growing *)
  let per_region = Layout.mature_region / 256 in
  for i = 1 to per_region do
    ignore (Immix_space.alloc sp (obj ~size:256 ~death:10.0 i))
  done;
  check_int "one region so far" 1 (Immix_space.region_count sp);
  ignore (Immix_space.sweep sp ~now:20.0 ());
  for i = 1 to per_region do
    ignore (Immix_space.alloc sp (obj ~size:256 i))
  done;
  check_int "no growth after sweep" 1 (Immix_space.region_count sp)

let test_immix_sweep_stats_classify () =
  let sp = mk_immix () in
  (* one immortal object pins one block's lines *)
  ignore (Immix_space.alloc sp (obj ~size:256 1));
  let stats = Immix_space.sweep sp ~now:0.0 () in
  check_int "one recyclable" 1 stats.Immix_space.recyclable_blocks;
  check_int "rest free" (Layout.mature_region / Layout.block - 1) stats.Immix_space.free_blocks;
  check_int "one line marked" 1 stats.Immix_space.marked_lines

let test_immix_write_meta_callback () =
  let sp = mk_immix () in
  ignore (Immix_space.alloc sp (obj ~size:600 1));
  let lines_seen = ref 0 in
  ignore
    (Immix_space.sweep sp ~now:0.0 ~write_meta:(fun ~block_index:_ ~lines -> lines_seen := lines) ());
  (* 600 bytes starting at a line boundary -> 3 lines *)
  check_int "marked lines reported" 3 !lines_seen

let test_immix_region_lookup () =
  let sp = mk_immix () in
  let o = obj ~size:64 1 in
  ignore (Immix_space.alloc sp o);
  let base = Immix_space.region_base_of_addr sp o.O.addr in
  check_bool "addr within region" true (o.O.addr >= base && o.O.addr < base + Layout.mature_region);
  check_bool "region registered" true (Array.mem base (Immix_space.region_bases sp))

let test_immix_remove_foreign () =
  let sp = mk_immix () in
  let o = obj ~size:64 1 in
  ignore (Immix_space.alloc sp o);
  o.O.space <- 2;
  (* simulated move to another space *)
  Immix_space.remove_foreign sp;
  check_int "foreign removed" 0 (Kg_util.Vec.length (Immix_space.objects sp))

let test_immix_fragmentation () =
  let sp = mk_immix () in
  (* objects spaced so each pins one line of its block, then die in
     alternation: half-empty recyclable blocks result *)
  let objs = ref [] in
  for i = 1 to 512 do
    let o = obj ~size:256 ~death:(if i mod 2 = 0 then 10.0 else infinity) i in
    ignore (Immix_space.alloc sp o);
    objs := o :: !objs
  done;
  check_float "no recyclable blocks yet" 0.0 (Immix_space.fragmentation sp);
  ignore (Immix_space.sweep sp ~now:20.0 ());
  check_bool "fragmentation appears" true (Immix_space.fragmentation sp >= 0.45)

let test_immix_defrag_candidates () =
  let sp = mk_immix () in
  (* one survivor per block: blocks are maximally sparse *)
  for i = 1 to 16 do
    ignore (Immix_space.alloc sp (obj ~size:256 i));
    for j = 1 to 127 do
      ignore (Immix_space.alloc sp (obj ~size:256 ~death:1.0 (1000 + (i * 128) + j)))
    done
  done;
  ignore (Immix_space.sweep sp ~now:5.0 ());
  let victims = Immix_space.defrag_candidates sp ~max_bytes:(4 * 256) in
  check_int "budget-bounded victims" 4 (List.length victims);
  List.iter (fun (o : O.t) -> check_bool "victims live" true (O.is_live o 5.0)) victims

(* No two live objects may overlap, across arbitrary alloc/sweep
   interleavings: the load-bearing allocator invariant. *)
(* Sharded allocation: real domains bump-allocating through their own
   shards concurrently must produce a consistent population — every
   object registered once, no address overlap, live bytes summing. *)
let test_immix_parallel_shards () =
  let shards = 4 and per_domain = 2000 in
  let sp = Immix_space.create ~id:3 ~name:"mature" ~arena:(fresh_arena ()) ~shards () in
  check_int "shard count" shards (Immix_space.shard_count sp);
  let worker shard () =
    for i = 0 to per_domain - 1 do
      let o = obj ~size:(64 + (16 * (i mod 8))) ((shard * per_domain) + i) in
      if not (Immix_space.alloc ~shard sp o) then failwith "arena exhausted"
    done
  in
  let doms = Array.init (shards - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  Array.iter Domain.join doms;
  check_int "all objects registered" (shards * per_domain)
    (Kg_util.Vec.length (Immix_space.objects sp));
  let sum =
    Kg_util.Vec.fold (fun a (o : O.t) -> a + o.O.size) 0 (Immix_space.objects sp)
  in
  check_int "live bytes sum" sum (Immix_space.live_bytes sp);
  Alcotest.(check (list string)) "audit clean" [] (Immix_space.audit sp)

let test_immix_one_shard_matches_default () =
  (* shards:1 must be exactly the pre-shard space: same addresses for
     the same allocation sequence. *)
  let run sp =
    List.init 200 (fun i ->
        let o = obj ~size:(64 + (8 * (i mod 16))) i in
        ignore (Immix_space.alloc sp o);
        o.O.addr)
  in
  let a = run (mk_immix ()) in
  let b =
    run (Immix_space.create ~id:3 ~name:"mature" ~arena:(fresh_arena ()) ~shards:1 ())
  in
  check_bool "identical address streams" true (a = b)

let immix_no_overlap_qcheck =
  QCheck.Test.make ~name:"immix: live objects never overlap" ~count:30
    QCheck.(pair (small_list (int_range 16 4096)) (small_list (int_range 16 4096)))
    (fun (sizes1, sizes2) ->
      let sp = mk_immix () in
      let now = ref 0.0 in
      let alloc_batch sizes =
        List.iteri
          (fun i s ->
            let death = if i mod 3 = 0 then !now +. 1.0 else infinity in
            ignore
              (Immix_space.alloc sp
                 (O.make ~id:i ~size:(Layout.align_object_size s) ~heat:O.Cold ~death
                    ~ref_fields:1)))
          sizes
      in
      alloc_batch sizes1;
      now := !now +. 10.0;
      ignore (Immix_space.sweep sp ~now:!now ());
      alloc_batch sizes2;
      let objs =
        Kg_util.Vec.to_array (Immix_space.objects sp)
        |> Array.to_list
        |> List.filter (fun o -> O.is_live o !now)
      in
      let sorted = List.sort (fun (a : O.t) b -> compare a.addr b.addr) objs in
      let rec no_overlap = function
        | a :: (b : O.t) :: rest -> O.end_addr a <= b.addr && no_overlap (b :: rest)
        | _ -> true
      in
      no_overlap sorted)

(* ------------------------------------------------------------------ *)
(* Large object space                                                  *)

let test_los_alloc_and_iter () =
  let los = Los.create ~id:5 ~name:"los" ~arena:(fresh_arena ()) in
  let o = obj ~size:(16 * 1024) 1 in
  check_bool "alloc" true (Los.alloc los o);
  check_int "count" 1 (Los.object_count los);
  check_int "live bytes" (16 * 1024) (Los.live_bytes los);
  let seen = ref 0 in
  Los.iter los (fun _ -> incr seen);
  check_int "iter" 1 !seen

let test_los_collect_keep_and_evict () =
  let los = Los.create ~id:5 ~name:"los" ~arena:(fresh_arena ()) in
  let keepme = obj ~size:(16 * 1024) 1 in
  let evictme = obj ~size:(16 * 1024) 2 in
  let dead = obj ~size:(16 * 1024) ~death:5.0 3 in
  List.iter (fun o -> ignore (Los.alloc los o)) [ keepme; evictme; dead ];
  evictme.O.written <- true;
  let deaths = ref 0 in
  let evicted =
    Los.collect los ~now:10.0 ~keep:(fun o -> not o.O.written) ~on_dead:(fun _ -> incr deaths) ()
  in
  check_int "one evicted" 1 (List.length evicted);
  check_int "evicted is written one" 2 (List.hd evicted).O.id;
  check_int "one died" 1 !deaths;
  check_int "one kept" 1 (Los.object_count los)

let test_los_adopt () =
  let a = Los.create ~id:5 ~name:"a" ~arena:(fresh_arena ()) in
  let b = Los.create ~id:4 ~name:"b" ~arena:(fresh_arena ~kind:Kg_mem.Device.Dram ()) in
  let o = obj ~size:(12 * 1024) 1 in
  ignore (Los.alloc a o);
  let evicted = Los.collect a ~now:0.0 ~keep:(fun _ -> false) () in
  List.iter (Los.adopt b) evicted;
  check_int "moved" 1 (Los.object_count b);
  check_int "source emptied" 0 (Los.object_count a);
  check_int "new space id" 4 o.O.space

let test_los_allocation_rate_counter () =
  let los = Los.create ~id:5 ~name:"los" ~arena:(fresh_arena ()) in
  ignore (Los.alloc los (obj ~size:(16 * 1024) 1));
  ignore (Los.alloc los (obj ~size:(16 * 1024) ~death:0.0 2));
  ignore (Los.collect los ~now:1.0 ~keep:(fun _ -> true) ());
  (* cumulative allocation is unaffected by collection *)
  check_int "total allocated" (32 * 1024) (Los.allocated_bytes_total los)

(* ------------------------------------------------------------------ *)
(* Free-list mark-sweep space                                          *)

let test_freelist_size_classes () =
  let cls = Freelist_space.size_classes in
  check_int "smallest" 16 cls.(0);
  check_int "largest = small-object limit" Layout.max_small_object cls.(Array.length cls - 1);
  Array.iteri (fun i c -> if i > 0 then check_bool "ascending" true (c > cls.(i - 1))) cls

let test_freelist_alloc_rounds_up () =
  let sp = Freelist_space.create ~id:3 ~name:"fl" ~arena:(fresh_arena ()) in
  let o = obj ~size:48 1 in
  check_bool "alloc" true (Freelist_space.alloc sp o);
  check_int "live is object size" 48 (Freelist_space.live_bytes sp);
  check_int "cell is class size" 48 (Freelist_space.cell_bytes sp);
  let o2 = obj ~size:50 2 in
  ignore (Freelist_space.alloc sp o2);
  (* 50 rounds to the 56-byte class *)
  check_int "rounded cell" (48 + 56) (Freelist_space.cell_bytes sp)

let test_freelist_same_class_adjacent () =
  let sp = Freelist_space.create ~id:3 ~name:"fl" ~arena:(fresh_arena ()) in
  let a = obj ~size:64 1 and b = obj ~size:64 2 in
  ignore (Freelist_space.alloc sp a);
  ignore (Freelist_space.alloc sp b);
  check_int "consecutive cells" 64 (b.O.addr - a.O.addr)

let test_freelist_sweep_reuses_cells () =
  let sp = Freelist_space.create ~id:3 ~name:"fl" ~arena:(fresh_arena ()) in
  let doomed = obj ~size:64 ~death:5.0 1 in
  ignore (Freelist_space.alloc sp doomed);
  let dead_addr = doomed.O.addr in
  let reclaimed = Freelist_space.sweep sp ~now:10.0 () in
  check_int "reclaimed bytes" 64 reclaimed;
  check_int "population empty" 0 (Kg_util.Vec.length (Freelist_space.objects sp));
  let fresh = obj ~size:64 2 in
  ignore (Freelist_space.alloc sp fresh);
  check_int "cell reused (LIFO)" dead_addr fresh.O.addr

let test_freelist_no_moving () =
  let sp = Freelist_space.create ~id:3 ~name:"fl" ~arena:(fresh_arena ()) in
  let o = obj ~size:128 1 in
  ignore (Freelist_space.alloc sp o);
  let addr = o.O.addr in
  ignore (Freelist_space.sweep sp ~now:10.0 ());
  check_int "objects never move" addr o.O.addr

let test_freelist_rejects_large () =
  let sp = Freelist_space.create ~id:3 ~name:"fl" ~arena:(fresh_arena ()) in
  Alcotest.check_raises "large rejected"
    (Invalid_argument "Freelist_space.alloc: large object") (fun () ->
      ignore (Freelist_space.alloc sp (obj ~size:(16 * 1024) 1)))

let freelist_no_overlap_qcheck =
  QCheck.Test.make ~name:"freelist: live cells never overlap" ~count:30
    QCheck.(small_list (int_range 16 8192))
    (fun sizes ->
      let sp = Freelist_space.create ~id:3 ~name:"fl" ~arena:(fresh_arena ()) in
      List.iteri
        (fun i s ->
          let death = if i mod 2 = 0 then 5.0 else infinity in
          ignore
            (Freelist_space.alloc sp
               (O.make ~id:i ~size:(Layout.align_object_size s) ~heat:O.Cold ~death
                  ~ref_fields:1)))
        sizes;
      ignore (Freelist_space.sweep sp ~now:10.0 ());
      List.iteri
        (fun i s ->
          ignore
            (Freelist_space.alloc sp
               (O.make ~id:(1000 + i) ~size:(Layout.align_object_size s) ~heat:O.Cold
                  ~death:infinity ~ref_fields:1)))
        sizes;
      let objs = Kg_util.Vec.to_array (Freelist_space.objects sp) in
      let sorted = Array.to_list objs |> List.sort (fun (a : O.t) b -> compare a.addr b.addr) in
      let rec ok = function
        | (a : O.t) :: (b : O.t) :: rest -> O.end_addr a <= b.addr && ok (b :: rest)
        | _ -> true
      in
      ok sorted)

(* ------------------------------------------------------------------ *)
(* Meta space                                                          *)

let test_meta_accounting () =
  let m = Meta_space.create ~id:6 ~name:"meta" ~arena:(fresh_arena ()) in
  let a1 = Meta_space.alloc_table m 1000 in
  let a2 = Meta_space.alloc_table m 1000 in
  check_bool "distinct" true (a1 <> a2);
  check_int "usage" 2000 (Meta_space.usage_bytes m);
  Meta_space.free_table m 1000;
  check_int "freed" 1000 (Meta_space.usage_bytes m);
  check_int "high water" 2000 (Meta_space.high_water_bytes m)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kg_heap"
    [
      ( "layout+object",
        [
          Alcotest.test_case "constants" `Quick test_layout_constants;
          Alcotest.test_case "alignment" `Quick test_layout_align;
          Alcotest.test_case "predicates" `Quick test_object_predicates;
          Alcotest.test_case "liveness" `Quick test_object_liveness;
          Alcotest.test_case "field addresses" `Quick test_object_field_addr;
          Alcotest.test_case "size validation" `Quick test_object_size_validation;
        ] );
      ( "arena",
        [
          Alcotest.test_case "reserve" `Quick test_arena_reserve;
          Alcotest.test_case "exhaustion" `Quick test_arena_exhaustion;
        ] );
      ( "bump_space",
        [
          Alcotest.test_case "contiguous" `Quick test_bump_contiguous;
          Alcotest.test_case "full and reset" `Quick test_bump_full_and_reset;
          Alcotest.test_case "live bytes" `Quick test_bump_live_bytes;
        ] );
      ( "immix",
        [
          Alcotest.test_case "alloc in blocks" `Quick test_immix_alloc_in_blocks;
          Alcotest.test_case "no block crossing" `Quick test_immix_objects_never_cross_blocks;
          Alcotest.test_case "rejects large" `Quick test_immix_rejects_large;
          Alcotest.test_case "sweep reclaims" `Quick test_immix_sweep_reclaims;
          Alcotest.test_case "recycles lines" `Quick test_immix_recycles_lines;
          Alcotest.test_case "sweep classifies blocks" `Quick test_immix_sweep_stats_classify;
          Alcotest.test_case "write_meta callback" `Quick test_immix_write_meta_callback;
          Alcotest.test_case "region lookup" `Quick test_immix_region_lookup;
          Alcotest.test_case "remove foreign" `Quick test_immix_remove_foreign;
          Alcotest.test_case "fragmentation" `Quick test_immix_fragmentation;
          Alcotest.test_case "defrag candidates" `Quick test_immix_defrag_candidates;
          Alcotest.test_case "parallel shards" `Quick test_immix_parallel_shards;
          Alcotest.test_case "one shard matches default" `Quick
            test_immix_one_shard_matches_default;
          q immix_no_overlap_qcheck;
        ] );
      ( "los",
        [
          Alcotest.test_case "alloc and iter" `Quick test_los_alloc_and_iter;
          Alcotest.test_case "collect keep/evict" `Quick test_los_collect_keep_and_evict;
          Alcotest.test_case "adopt" `Quick test_los_adopt;
          Alcotest.test_case "allocation counter" `Quick test_los_allocation_rate_counter;
        ] );
      ( "freelist",
        [
          Alcotest.test_case "size classes" `Quick test_freelist_size_classes;
          Alcotest.test_case "rounds up" `Quick test_freelist_alloc_rounds_up;
          Alcotest.test_case "same class adjacent" `Quick test_freelist_same_class_adjacent;
          Alcotest.test_case "sweep reuses cells" `Quick test_freelist_sweep_reuses_cells;
          Alcotest.test_case "non-moving" `Quick test_freelist_no_moving;
          Alcotest.test_case "rejects large" `Quick test_freelist_rejects_large;
          q freelist_no_overlap_qcheck;
        ] );
      ("meta", [ Alcotest.test_case "accounting" `Quick test_meta_accounting ]);
    ]
