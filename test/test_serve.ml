(* Differential and SLO tests for the Kg_serve request/response
   mutator.

   Serve runs ride the same epoch protocol as the batch mutator, so
   they inherit its promise: a run is a pure function of
   (seed, schedule_seed, domains, config). The headline check is the
   inline oracle differential — statistics, request counters and both
   SLO histograms must match the Domain-parallel path exactly — plus
   non-degeneracy of the histograms themselves (a pause profile with
   max <= P50 or a zero P50 means the recorder is wired wrong). *)

open Kg_sim
module GS = Kg_gc.Gc_stats
module H = Kg_util.Hdr_histogram
module S = Kg_serve.Server

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let serve_run ?(seed = 11) ?(schedule_seed = 0) ?(oracle = false) ?(rate = 1024.0)
    ?(spec = Run.kg_w) ?(mode = Run.Count) ?(parallel_gc = false) threads =
  Run.run ~seed ~scale:512 ~heap_scale:8 ~cap_mb:8 ~threads ~schedule_seed ~oracle
    ~parallel_gc ~serve:{ S.default_config with S.rate } ~mode spec
    (Kg_workload.Descriptor.find "pjbb")

let metrics (r : Run.result) =
  match r.Run.serve with
  | Some s -> s
  | None -> Alcotest.fail "serve run carries no serve metrics"

(* Everything a serve run exposes that could diverge between the
   parallel path and the oracle. *)
let agree (a : Run.result) (b : Run.result) =
  let sa = metrics a and sb = metrics b in
  GS.equal a.Run.stats b.Run.stats
  && sa.Run.requests = sb.Run.requests
  && sa.Run.t1_hits = sb.Run.t1_hits
  && sa.Run.t2_hits = sb.Run.t2_hits
  && sa.Run.backend_fills = sb.Run.backend_fills
  && sa.Run.sessions_churned = sb.Run.sessions_churned
  && H.equal sa.Run.pause_hist sb.Run.pause_hist
  && H.equal sa.Run.latency_hist sb.Run.latency_hist

(* The headline differential: for any domain count, seed and schedule
   seed, the Domain-parallel serve path and the inline oracle agree on
   every statistic, counter and histogram bucket. *)
let serve_matches_oracle_qcheck =
  QCheck.Test.make ~name:"serve parallel path is bit-identical to the interleaved oracle"
    ~count:6
    QCheck.(triple (int_range 2 4) (int_bound 1000) (int_bound 1000))
    (fun (threads, seed, schedule_seed) ->
      agree
        (serve_run ~seed ~schedule_seed ~oracle:false threads)
        (serve_run ~seed ~schedule_seed ~oracle:true threads))

let test_serve_oracle_parallel_gc () =
  check_bool "parallel-gc serve matches oracle" true
    (agree
       (serve_run ~parallel_gc:true ~oracle:false 2)
       (serve_run ~parallel_gc:true ~oracle:true 2))

let test_serve_repeat_determinism () =
  List.iter
    (fun threads ->
      let fp r =
        let s = metrics r in
        (s.Run.requests, s.Run.t1_hits, H.nonzero s.Run.latency_hist,
         H.nonzero s.Run.pause_hist, GS.equal r.Run.stats r.Run.stats)
      in
      let a = fp (serve_run threads) and b = fp (serve_run threads) in
      check_bool (Printf.sprintf "%d domains reproducible" threads) true (a = b))
    [ 1; 2 ]

(* Non-degenerate SLO histograms: requests flowed, every request got a
   latency sample, pauses were recorded, and the profile has spread
   sane enough to read percentiles off (max >= P50 > 0). *)
let test_serve_histograms_non_degenerate () =
  let r = serve_run 1 in
  let s = metrics r in
  check_bool "requests served" true (s.Run.requests > 0);
  check_int "one latency sample per request" s.Run.requests (H.count s.Run.latency_hist);
  let st = r.Run.stats in
  (* One pause per stop-the-world event. Observer and major
     collections subsume a nursery collection (§4.2.2), so every STW
     event bumps [nursery_gcs] exactly once while the GC hook — and
     hence the histogram — fires once per event. *)
  check_int "one pause per STW event" st.GS.nursery_gcs (H.count s.Run.pause_hist);
  check_bool "pause P50 positive" true (H.p50 s.Run.pause_hist > 0.0);
  check_bool "pause max >= P50" true
    (H.max_value s.Run.pause_hist >= H.p50 s.Run.pause_hist *. (1.0 -. H.relative_error s.Run.pause_hist));
  check_bool "latency P50 positive" true (H.p50 s.Run.latency_hist > 0.0);
  check_bool "latency P99 >= P50" true (H.p99 s.Run.latency_hist >= H.p50 s.Run.latency_hist)

(* The latency model's load dependence: driving the arrival rate
   toward the per-domain service capacity must raise queueing delay. *)
let test_serve_latency_rises_with_rate () =
  let p99 rate = H.p99 (metrics (serve_run ~rate 1)).Run.latency_hist in
  check_bool "P99 latency grows with offered load" true (p99 1792.0 > p99 256.0)

(* The cache and session machinery actually runs: hits, fills and
   churn all present under the default config. *)
let test_serve_cache_activity () =
  let s = metrics (serve_run 1) in
  check_bool "tier1 hits" true (s.Run.t1_hits > 0);
  check_bool "backend fills" true (s.Run.backend_fills > 0);
  check_bool "sessions churned" true (s.Run.sessions_churned > 0)

(* Direct driver sanity: attach_pause_recorder refuses a second
   attach, and Server.create rejects a thread/runtime mismatch like
   the batch mutator does. *)
let test_serve_attach_twice () =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Kg_gc.Gc_config.make ~heap_mb:48 Kg_gc.Gc_config.kg_w_default in
  let mem = Kg_gc.Mem_iface.null () in
  let rt = Kg_gc.Runtime.create ~config:cfg ~mem ~map ~seed:3 () in
  let srv = S.create ~live_mb:16 (Kg_workload.Descriptor.find "pjbb") ~rt ~seed:4 in
  let pause_ms = Run.pause_model () in
  S.attach_pause_recorder srv ~pause_ms;
  try
    S.attach_pause_recorder srv ~pause_ms;
    Alcotest.fail "second attach should raise"
  with Invalid_argument _ -> ()

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kg_serve"
    [
      ( "differential",
        [
          q serve_matches_oracle_qcheck;
          Alcotest.test_case "parallel-gc composes" `Quick test_serve_oracle_parallel_gc;
          Alcotest.test_case "repeat determinism" `Quick test_serve_repeat_determinism;
        ] );
      ( "slo",
        [
          Alcotest.test_case "histograms non-degenerate" `Quick
            test_serve_histograms_non_degenerate;
          Alcotest.test_case "latency rises with load" `Quick test_serve_latency_rises_with_rate;
          Alcotest.test_case "cache activity" `Quick test_serve_cache_activity;
          Alcotest.test_case "pause recorder attaches once" `Quick test_serve_attach_twice;
        ] );
    ]
