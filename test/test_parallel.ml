(* Differential tests for the simulated multicore mutators.

   The epoch protocol promises that a run with N mutator domains is a
   pure function of (seed, schedule_seed, N): real [Domain]s generate
   op streams that a schedule-seeded merge applies deterministically.
   The headline check is the single-domain interleaved oracle — the
   identical protocol with generation run inline — which must match
   the parallel path bit for bit on every statistic, write count, and
   (through the order-sensitive cache hierarchy) every byte of device
   traffic. *)

open Kg_sim
module GS = Kg_gc.Gc_stats

let check_bool = Alcotest.(check bool)

(* Everything a run exposes that could diverge: collection counts,
   allocation and write demographics, remset activity, and the
   memory-level traffic (order-sensitive under Simulate). *)
let fingerprint (r : Run.result) =
  let st = r.Run.stats in
  ( ( st.GS.nursery_gcs,
      st.GS.observer_gcs,
      st.GS.major_gcs,
      st.GS.nursery_alloc_bytes,
      st.GS.large_allocs ),
    ( st.GS.ref_writes,
      st.GS.prim_writes,
      st.GS.reads,
      st.GS.gen_remset_inserts,
      st.GS.obs_remset_inserts ),
    ( st.GS.app_write_bytes_pcm,
      st.GS.app_write_bytes_dram,
      st.GS.copied_bytes_nursery,
      st.GS.monitor_header_writes,
      st.GS.barrier_fast_paths ),
    ( r.Run.mem_pcm_write_bytes,
      r.Run.mem_dram_write_bytes,
      r.Run.mem_pcm_read_bytes,
      r.Run.mem_dram_read_bytes ) )

let quick ?(seed = 11) ?(schedule_seed = 0) ?(oracle = false) ?(mode = Run.Count)
    ?(spec = Run.pcm_only) ?(bench = "xalan") threads =
  fingerprint
    (Run.run ~seed ~scale:512 ~heap_scale:8 ~cap_mb:8 ~threads ~schedule_seed ~oracle
       ~mode spec (Kg_workload.Descriptor.find bench))

(* The headline differential: for any domain count, seed and schedule
   seed, the Domain-parallel path and the inline oracle agree on every
   statistic and write count. *)
let parallel_matches_oracle_qcheck =
  QCheck.Test.make ~name:"parallel path is bit-identical to the interleaved oracle"
    ~count:6
    QCheck.(triple (int_range 2 4) (int_bound 1000) (int_bound 1000))
    (fun (threads, seed, schedule_seed) ->
      quick ~seed ~schedule_seed ~oracle:false threads
      = quick ~seed ~schedule_seed ~oracle:true threads)

(* Under full simulation the cache hierarchy makes device traffic a
   function of the exact merged access order, so agreement here pins
   the merged flush order, not just the totals. *)
let test_parallel_oracle_simulate () =
  List.iter
    (fun threads ->
      check_bool
        (Printf.sprintf "simulate, %d domains" threads)
        true
        (quick ~mode:Run.Simulate ~oracle:false threads
        = quick ~mode:Run.Simulate ~oracle:true threads))
    [ 2; 4 ]

(* KG-W exercises the observer space, both remsets and the write-word
   monitor across domains. *)
let test_parallel_oracle_kgw () =
  check_bool "kg-w, 2 domains" true
    (quick ~spec:Run.kg_w ~oracle:false 2 = quick ~spec:Run.kg_w ~oracle:true 2)

(* Satellite 3: determinism stress — domains in {1, 2, 4}, three
   repeats each, every repeat byte-identical for its domain count. *)
let test_repeat_determinism () =
  List.iter
    (fun threads ->
      let a = quick threads and b = quick threads and c = quick threads in
      check_bool (Printf.sprintf "%d domains reproducible" threads) true
        (a = b && b = c))
    [ 1; 2; 4 ]

(* The schedule seed is a real degree of freedom: different merges
   must (for this workload) produce different interleavings, visible
   in the remset insert counts — while each stays reproducible. *)
let test_schedule_seed_varies () =
  let a = quick ~schedule_seed:0 2
  and b = quick ~schedule_seed:1 2
  and a' = quick ~schedule_seed:0 2 in
  check_bool "seed 0 reproducible" true (a = a');
  check_bool "different schedules differ" true (a <> b)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kg_parallel"
    [
      ( "differential",
        [
          q parallel_matches_oracle_qcheck;
          Alcotest.test_case "simulate mode order" `Quick test_parallel_oracle_simulate;
          Alcotest.test_case "kg-w observer + monitor" `Quick test_parallel_oracle_kgw;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "repeat stress 1/2/4" `Quick test_repeat_determinism;
          Alcotest.test_case "schedule seed varies" `Quick test_schedule_seed_varies;
        ] );
    ]
