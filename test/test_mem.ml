open Kg_mem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let gib = Kg_util.Units.gib

(* ------------------------------------------------------------------ *)
(* Device                                                              *)

let test_device_params () =
  check_float "dram read" 45.0 Device.dram.Device.read_latency_ns;
  check_float "pcm read 4x dram" 180.0 Device.pcm.Device.read_latency_ns;
  check_float "pcm write 450" 450.0 Device.pcm.Device.write_latency_ns;
  check_float "endurance" 30e6 Device.pcm.Device.endurance;
  check_bool "dram endurance infinite" true (Device.dram.Device.endurance = infinity)

let test_device_energy () =
  (* 3 W for 450 ns = 1350 nJ per line write *)
  check_bool "pcm write energy" true
    (Float.abs (Device.write_energy_j Device.pcm -. 1.35e-6) < 1e-9);
  check_bool "pcm write costlier than dram" true
    (Device.write_energy_j Device.pcm > 10.0 *. Device.write_energy_j Device.dram)

let test_device_endurance_sweep () =
  let d = Device.pcm_with_endurance 100e6 in
  check_float "sweep endurance" 100e6 d.Device.endurance;
  Alcotest.(check string) "kind name" "PCM" (Device.kind_to_string d.Device.kind)

(* ------------------------------------------------------------------ *)
(* Address map                                                         *)

let test_map_dram_only () =
  let m = Address_map.dram_only () in
  check_int "32 GB" (32 * gib) (Address_map.total_size m);
  check_int "no pcm" 0 (Address_map.pcm_size m);
  check_bool "kind" true (Address_map.kind_of m 0 = Device.Dram)

let test_map_hybrid_boundaries () =
  let m = Address_map.hybrid () in
  check_int "dram base" 0 (Address_map.dram_base m);
  check_int "pcm base" gib (Address_map.pcm_base m);
  check_bool "last dram byte" true (Address_map.kind_of m (gib - 1) = Device.Dram);
  check_bool "first pcm byte" true (Address_map.kind_of m gib = Device.Pcm);
  check_bool "last pcm byte" true (Address_map.kind_of m ((33 * gib) - 1) = Device.Pcm)

let test_map_unmapped () =
  let m = Address_map.pcm_only ~size:4096 () in
  Alcotest.check_raises "unmapped" (Invalid_argument "Address_map.kind_of: address 0x1000 unmapped")
    (fun () -> ignore (Address_map.kind_of m 4096))

let test_map_missing_region () =
  let m = Address_map.pcm_only () in
  Alcotest.check_raises "no dram" (Invalid_argument "Address_map.dram_base: map has no such region")
    (fun () -> ignore (Address_map.dram_base m))

(* ------------------------------------------------------------------ *)
(* Wear-leveling                                                       *)

let test_wear_counts () =
  let w = Wear.create ~size:(1024 * 1024) () in
  for _ = 1 to 100 do
    Wear.record_write w 0
  done;
  check_int "writes" 100 (Wear.total_writes w);
  check_int "bytes" (100 * 256) (Wear.bytes_written w)

let test_wear_remapping_moves () =
  let w = Wear.create ~size:(64 * 1024) ~gap_interval:4 () in
  let before = Wear.line_of_offset w 0 in
  for _ = 1 to 8 * 1024 do
    Wear.record_write w 0
  done;
  check_bool "mapping moved" true (Wear.line_of_offset w 0 <> before || Wear.rotations w > 0)

let test_wear_spreads_hot_line () =
  (* A single hot logical line must wear many physical lines. *)
  let w = Wear.create ~size:(64 * 1024) ~gap_interval:4 () in
  let n = 200_000 in
  for _ = 1 to n do
    Wear.record_write w 256
  done;
  check_bool "max physical line below total" true (Wear.max_line_writes w < n / 8);
  check_bool "spread across lines" true (Wear.write_distribution_cov w < 1.0)

let test_wear_invalid () =
  Alcotest.check_raises "bad size"
    (Invalid_argument "Wear.create: size must be a positive multiple of line_size") (fun () ->
      ignore (Wear.create ~size:100 ()));
  let w = Wear.create ~size:4096 () in
  Alcotest.check_raises "offset range" (Invalid_argument "Wear.line_of_offset: offset out of range")
    (fun () -> ignore (Wear.line_of_offset w 4096))

(* ------------------------------------------------------------------ *)
(* Lifetime                                                            *)

let test_lifetime_formula () =
  (* 32 GB at 30M endurance and 7.3 GB/s wears out in ~3.9 years *)
  let y =
    Lifetime.years
      ~size_bytes:(float_of_int (32 * gib))
      ~endurance:30e6
      ~write_rate_bytes_per_s:(7.3 *. float_of_int gib)
  in
  check_bool "about 4 years" true (Float.abs (y -. 3.92) < 0.05)

let test_lifetime_linear_in_endurance () =
  let y e = Lifetime.years ~size_bytes:1e9 ~endurance:e ~write_rate_bytes_per_s:1e9 in
  check_bool "linear" true (Float.abs ((y 100e6 /. y 10e6) -. 10.0) < 1e-6)

let test_lifetime_zero_rate () =
  check_bool "infinite" true
    (Lifetime.years ~size_bytes:1e9 ~endurance:1e6 ~write_rate_bytes_per_s:0.0 = infinity)

let test_lifetime_helpers () =
  check_float "rate" 2.0 (Lifetime.write_rate ~bytes_written:10.0 ~elapsed_s:5.0);
  check_float "relative" 4.0 (Lifetime.relative ~baseline_rate:8.0 ~rate:2.0)

(* ------------------------------------------------------------------ *)
(* Port                                                                *)

let port_map () = Address_map.hybrid ~dram_size:4096 ~pcm_size:8192 ()

let counting_port ?capacity () =
  let c = Port.fresh_counters ~phases:8 in
  (Port.create ?capacity ~sink:(Port.Counting (port_map (), c)) (), c)

let test_port_meta_packing () =
  for tag = 0 to 7 do
    let w = Port.meta ~write:true ~tag and r = Port.meta ~write:false ~tag in
    check_bool "write bit set" true (Port.is_write w);
    check_bool "read bit clear" false (Port.is_write r);
    check_int "tag survives write" tag (Port.tag_of w);
    check_int "tag survives read" tag (Port.tag_of r)
  done

let test_port_counting_sink () =
  let p, c = counting_port () in
  Port.write p ~addr:0 ~size:10;
  Port.read p ~addr:100 ~size:3;
  Port.set_phase_tag p 2;
  Port.write p ~addr:4096 ~size:7;
  Port.read p ~addr:5000 ~size:5;
  check_int "nothing delivered before flush" 0 c.Port.dram_write_bytes;
  Port.flush p;
  check_int "dram writes" 10 c.Port.dram_write_bytes;
  check_int "dram reads" 3 c.Port.dram_read_bytes;
  check_int "pcm writes" 7 c.Port.pcm_write_bytes;
  check_int "pcm reads" 5 c.Port.pcm_read_bytes;
  check_int "phase attribution" 7 c.Port.pcm_write_bytes_by_phase.(2);
  let s = Port.stats p in
  check_int "stats mirror counters" 7 s.Port.s_pcm_write_bytes

let test_port_flush_on_full () =
  let p, c = counting_port ~capacity:4 () in
  for _ = 1 to 10 do
    Port.write p ~addr:0 ~size:1
  done;
  (* two full batches auto-flushed, two records still buffered *)
  check_int "auto-flush on capacity" 8 c.Port.dram_write_bytes;
  Port.flush p;
  check_int "explicit flush drains the rest" 10 c.Port.dram_write_bytes;
  Port.flush p;
  check_int "empty flush is a no-op" 10 c.Port.dram_write_bytes

let test_port_phase_travels_with_record () =
  (* phase changes between buffered appends must not retag earlier
     records: attribution is fixed at issue time, not flush time *)
  let p, c = counting_port () in
  Port.set_phase_tag p 1;
  Port.write p ~addr:4096 ~size:11;
  Port.set_phase_tag p 3;
  Port.write p ~addr:4096 ~size:13;
  Port.flush p;
  check_int "first record keeps tag 1" 11 c.Port.pcm_write_bytes_by_phase.(1);
  check_int "second record keeps tag 3" 13 c.Port.pcm_write_bytes_by_phase.(3)

let test_port_tee_counts_once_per_arm () =
  (* both Tee arms and the standalone counting port ride through the
     single count_batch implementation, so all three tallies agree *)
  let map = port_map () in
  let c1 = Port.fresh_counters ~phases:8 and c2 = Port.fresh_counters ~phases:8 in
  let tee =
    Port.create ~sink:(Port.Tee (Port.Counting (map, c1), Port.Counting (map, c2))) ()
  in
  let solo, c3 = counting_port () in
  let drive p =
    Port.set_phase_tag p 0;
    Port.write p ~addr:0 ~size:9;
    Port.set_phase_tag p 4;
    Port.write p ~addr:6000 ~size:21;
    Port.read p ~addr:2000 ~size:5;
    Port.flush p
  in
  drive tee;
  drive solo;
  List.iter
    (fun c ->
      check_int "dram writes agree" 9 c.Port.dram_write_bytes;
      check_int "pcm writes agree" 21 c.Port.pcm_write_bytes;
      check_int "dram reads agree" 5 c.Port.dram_read_bytes;
      check_int "phase agrees" 21 c.Port.pcm_write_bytes_by_phase.(4))
    [ c1; c2; c3 ]

let test_port_create_validation () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Port.create: capacity must be positive") (fun () ->
      ignore (Port.create ~capacity:0 ~sink:Port.Null ()))

let test_port_sequenced_group_delivery () =
  let c = Port.fresh_counters ~phases:8 in
  let g = Port.sequenced_group ~capacity:64 ~sink:(Port.Counting (port_map (), c)) 3 in
  Port.write g.(0) ~addr:0 ~size:1;
  Port.write g.(2) ~addr:4096 ~size:2;
  Port.write g.(1) ~addr:0 ~size:4;
  Port.write g.(2) ~addr:4096 ~size:8;
  check_int "no delivery before flush" 0 c.Port.dram_write_bytes;
  (* flushing any member drains every member's buffer in stamp order *)
  Port.flush g.(1);
  check_int "dram bytes from members 0 and 1" 5 c.Port.dram_write_bytes;
  check_int "pcm bytes from member 2" 10 c.Port.pcm_write_bytes;
  check_bool "group stamp advanced past all records" true (Port.group_seq g.(0) = Some 4);
  Port.flush g.(0);
  check_int "group flush is idempotent" 5 c.Port.dram_write_bytes

(* Satellite 1: merging K per-domain buffers by issue-order stamp is a
   total order independent of the order the buffers are presented in. *)
let port_group_merge_qcheck =
  QCheck.Test.make ~name:"group merge is a permutation-stable total order" ~count:200
    QCheck.(pair (int_range 1 6) (small_list (int_range 0 96)))
    (fun (k, picks) ->
      (* Assign each global issue index to a member, then build the
         per-member buffers exactly as interleaved appends would. *)
      let by_member = Array.make k [] in
      List.iteri
        (fun seq pick ->
          let d = pick mod k in
          by_member.(d) <- seq :: by_member.(d))
        picks;
      let batch_of rev_seqs =
        let seqs = List.rev rev_seqs in
        let n = List.length seqs in
        let cap = max 1 n in
        let b =
          {
            Port.len = n;
            addrs = Array.make cap 0;
            sizes = Array.make cap 1;
            metas = Array.make cap 0;
            seqs = Array.make cap 0;
          }
        in
        List.iteri
          (fun i s ->
            b.Port.addrs.(i) <- 1000 + s;
            b.Port.seqs.(i) <- s)
          seqs;
        b
      in
      let batches = Array.map batch_of by_member in
      let order (b : Port.batch) = Array.to_list (Array.sub b.Port.addrs 0 b.Port.len) in
      let m1 = order (Port.merge batches) in
      let rotated = Array.init k (fun i -> batches.((i + 1) mod k)) in
      let m2 = order (Port.merge rotated) in
      let reversed = Array.init k (fun i -> batches.(k - 1 - i)) in
      let m3 = order (Port.merge reversed) in
      List.length m1 = List.length picks
      && m1 = m2 && m1 = m3
      && m1 = List.sort compare m1)

let wear_uniformity_qcheck =
  QCheck.Test.make ~name:"wear-leveling spreads any skewed stream" ~count:20
    QCheck.(small_list small_nat)
    (fun offsets ->
      let w = Wear.create ~size:(32 * 1024) ~gap_interval:2 () in
      let offsets = if offsets = [] then [ 0 ] else offsets in
      List.iter
        (fun o ->
          let off = o * 256 mod (32 * 1024) in
          for _ = 1 to 2000 do
            Wear.record_write w off
          done)
        offsets;
      (* no physical line absorbs more than half of all writes *)
      Wear.max_line_writes w * 2 < Wear.total_writes w)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kg_mem"
    [
      ( "device",
        [
          Alcotest.test_case "table 2 parameters" `Quick test_device_params;
          Alcotest.test_case "energy per line" `Quick test_device_energy;
          Alcotest.test_case "endurance sweep" `Quick test_device_endurance_sweep;
        ] );
      ( "address_map",
        [
          Alcotest.test_case "dram only" `Quick test_map_dram_only;
          Alcotest.test_case "hybrid boundaries" `Quick test_map_hybrid_boundaries;
          Alcotest.test_case "unmapped address" `Quick test_map_unmapped;
          Alcotest.test_case "missing region" `Quick test_map_missing_region;
        ] );
      ( "wear",
        [
          Alcotest.test_case "counts" `Quick test_wear_counts;
          Alcotest.test_case "remapping moves" `Quick test_wear_remapping_moves;
          Alcotest.test_case "spreads hot line" `Quick test_wear_spreads_hot_line;
          Alcotest.test_case "invalid input" `Quick test_wear_invalid;
          q wear_uniformity_qcheck;
        ] );
      ( "port",
        [
          Alcotest.test_case "meta packing" `Quick test_port_meta_packing;
          Alcotest.test_case "counting sink" `Quick test_port_counting_sink;
          Alcotest.test_case "flush on full" `Quick test_port_flush_on_full;
          Alcotest.test_case "phase travels with record" `Quick test_port_phase_travels_with_record;
          Alcotest.test_case "tee shares counting" `Quick test_port_tee_counts_once_per_arm;
          Alcotest.test_case "creation validation" `Quick test_port_create_validation;
          Alcotest.test_case "sequenced group delivery" `Quick
            test_port_sequenced_group_delivery;
          q port_group_merge_qcheck;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "equation 1" `Quick test_lifetime_formula;
          Alcotest.test_case "linear in endurance" `Quick test_lifetime_linear_in_endurance;
          Alcotest.test_case "zero rate" `Quick test_lifetime_zero_rate;
          Alcotest.test_case "helpers" `Quick test_lifetime_helpers;
        ] );
    ]
