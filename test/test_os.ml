open Kg_os
module WP = Write_partition
module H = Kg_cache.Hierarchy
module Mem = Kg_gc.Mem_iface

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let page = Kg_heap.Layout.page
let mib = Kg_util.Units.mib

(* A small hybrid machine with a WP engine whose quantum fires after
   very few accesses, so tests can step the policy deterministically. *)
let mk ?(quantum = 50) () =
  let map = Kg_mem.Address_map.hybrid ~dram_size:mib ~pcm_size:(16 * mib) () in
  let ctrl = Kg_cache.Controller.create ~map ~line_size:64 () in
  let hier = H.create ~controller:ctrl () in
  let cfg = { WP.default_config with WP.quantum_accesses = quantum } in
  let wp = WP.create ~config:cfg ~hier ~virt_size:(8 * mib) () in
  (wp, WP.port wp, ctrl, hier)

(* A demand write immediately flushed through the port and drained out
   of the caches, so the memory controller observes one writeback per
   call (the signal WP ranks pages by). Drain is sticky; reopen lets
   demand traffic resume. *)
let write_through mem hier vaddr =
  Mem.write mem ~addr:vaddr ~size:8;
  Mem.flush mem;
  H.drain hier;
  H.reopen hier

(* Make one page hot enough to reach the promotion queues (rank 4 needs
   2^4 = 16 observed writes) and spin enough accesses for quanta. *)
let heat_page mem hier vaddr =
  for _ = 1 to 40 do
    write_through mem hier vaddr
  done;
  for _ = 1 to 200 do
    Mem.read mem ~addr:(7 * mib) ~size:8
  done;
  Mem.flush mem

let test_wp_fresh_pages_in_pcm () =
  let _, mem, ctrl, _ = mk () in
  Mem.read mem ~addr:0 ~size:8;
  Mem.read mem ~addr:(4 * mib) ~size:8;
  Mem.flush mem;
  check_int "both reads from pcm" 2 (Kg_cache.Controller.reads ctrl Kg_mem.Device.Pcm)

let test_wp_hot_page_promotes () =
  let wp, mem, _, hier = mk () in
  heat_page mem hier 0;
  check_int "page resident in DRAM" 1 (WP.dram_pages wp);
  check_int "one migration" 1 (WP.migrations_to_dram wp)

let test_wp_cold_pages_stay () =
  let wp, mem, _, hier = mk () in
  (* a handful of writes never reaches rank 4 *)
  for _ = 1 to 5 do
    write_through mem hier 0
  done;
  for _ = 1 to 200 do
    Mem.read mem ~addr:(7 * mib) ~size:8
  done;
  Mem.flush mem;
  check_int "no promotion" 0 (WP.dram_pages wp)

let test_wp_translation_changes_after_promotion () =
  let wp, mem, ctrl, hier = mk () in
  heat_page mem hier 0;
  check_int "promoted" 1 (WP.dram_pages wp);
  (* demand traffic on the hot page now lands in DRAM *)
  let dram_before = Kg_cache.Controller.reads ctrl Kg_mem.Device.Dram in
  Mem.read mem ~addr:128 ~size:8;
  Mem.flush mem;
  check_bool "reads hit the DRAM frame" true
    (Kg_cache.Controller.reads ctrl Kg_mem.Device.Dram > dram_before)

let test_wp_migration_traffic_tagged () =
  let wp, mem, ctrl, hier = mk () in
  heat_page mem hier 0;
  let tags = Kg_cache.Controller.writes_by_tag ctrl Kg_mem.Device.Dram in
  let mig_tag = Kg_gc.Phase.to_tag Kg_gc.Phase.Migration in
  check_int "page copy writes tagged as migration" (WP.migrations_to_dram wp * (page / 64))
    tags.(mig_tag)

let test_wp_demotion_returns_pages () =
  let wp, mem, _, hier = mk () in
  heat_page mem hier 0;
  check_int "promoted first" 1 (WP.migrations_to_dram wp);
  (* idle traffic elsewhere: ranks decay every 5th quantum until the
     page falls below the threshold and migrates back *)
  for _ = 1 to 3000 do
    Mem.read mem ~addr:(7 * mib) ~size:8
  done;
  Mem.flush mem;
  check_int "demoted back to PCM" 1 (WP.migrations_to_pcm wp);
  check_int "pcm migration lines counted" (page / 64) (WP.migration_pcm_line_writes wp);
  check_int "dram empty again" 0 (WP.dram_pages wp)

let test_wp_peak_tracking () =
  let wp, mem, _, hier = mk () in
  heat_page mem hier 0;
  heat_page mem hier (2 * mib);
  for _ = 1 to 3000 do
    Mem.read mem ~addr:(7 * mib) ~size:8
  done;
  Mem.flush mem;
  check_int "peak saw both" 2 (WP.peak_dram_pages wp);
  check_bool "current below peak" true (WP.dram_pages wp < WP.peak_dram_pages wp)

let test_wp_dram_writes_keep_page_hot () =
  let wp, mem, _, hier = mk () in
  heat_page mem hier 0;
  (* keep writing the page while it is in DRAM: demotions decay its
     rank but continued writes re-promote it, so it must still be in
     DRAM after moderate idling *)
  for _ = 1 to 20 do
    for _ = 1 to 30 do
      write_through mem hier 0
    done;
    for _ = 1 to 60 do
      Mem.read mem ~addr:(7 * mib) ~size:8
    done;
    Mem.flush mem
  done;
  check_int "hot page pinned in DRAM" 1 (WP.dram_pages wp)

let test_wp_default_config () =
  check_int "8 queues" 8 WP.default_config.WP.queues;
  check_int "promote rank 4" 4 WP.default_config.WP.promote_rank;
  check_int "demote every 5 quanta" 5 WP.default_config.WP.demote_period

let test_wp_virt_size_validation () =
  let map = Kg_mem.Address_map.hybrid ~dram_size:mib ~pcm_size:(2 * mib) () in
  let ctrl = Kg_cache.Controller.create ~map ~line_size:64 () in
  let hier = H.create ~controller:ctrl () in
  Alcotest.check_raises "too big"
    (Invalid_argument "Write_partition.create: virtual range exceeds PCM capacity") (fun () ->
      ignore (WP.create ~hier ~virt_size:(4 * mib) ()))

let () =
  Alcotest.run "kg_os"
    [
      ( "write_partition",
        [
          Alcotest.test_case "fresh pages in PCM" `Quick test_wp_fresh_pages_in_pcm;
          Alcotest.test_case "hot page promotes" `Quick test_wp_hot_page_promotes;
          Alcotest.test_case "cold pages stay" `Quick test_wp_cold_pages_stay;
          Alcotest.test_case "translation changes" `Quick test_wp_translation_changes_after_promotion;
          Alcotest.test_case "migration traffic tagged" `Quick test_wp_migration_traffic_tagged;
          Alcotest.test_case "demotion returns pages" `Quick test_wp_demotion_returns_pages;
          Alcotest.test_case "peak tracking" `Quick test_wp_peak_tracking;
          Alcotest.test_case "dram writes keep page hot" `Quick test_wp_dram_writes_keep_page_hot;
          Alcotest.test_case "default config" `Quick test_wp_default_config;
          Alcotest.test_case "virt size validation" `Quick test_wp_virt_size_validation;
        ] );
    ]
