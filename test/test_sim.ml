open Kg_sim
module R = Run
module D = Kg_workload.Descriptor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Tiny runs: every Run.run here is capped to a few MB. *)
let quick ?(spec = R.kg_w) ?(mode = R.Count) ?(trace = false) name =
  R.run ~seed:5 ~scale:512 ~heap_scale:8 ~cap_mb:16 ~trace ~mode spec (D.find name)

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)

let test_machine_maps () =
  let gib = Kg_util.Units.gib in
  check_int "dram-only" (32 * gib) (Kg_mem.Address_map.dram_size (Machine.map_of Machine.Dram_only));
  check_int "pcm-only" (32 * gib) (Kg_mem.Address_map.pcm_size (Machine.map_of Machine.Pcm_only));
  check_int "hybrid dram" gib (Kg_mem.Address_map.dram_size (Machine.map_of Machine.Hybrid));
  check_int "hybrid pcm" (32 * gib) (Kg_mem.Address_map.pcm_size (Machine.map_of Machine.Hybrid))

let test_machine_build () =
  let m = Machine.build Machine.Hybrid in
  check_bool "wear present" true (m.Machine.wear <> None);
  check_int "no traffic yet" 0 (Machine.pcm_write_bytes m);
  let d = Machine.build Machine.Dram_only in
  check_bool "no pcm, no wear" true (d.Machine.wear = None)

let test_machine_endurance_override () =
  let m = Machine.build ~endurance:100e6 Machine.Pcm_only in
  let dev = Kg_cache.Controller.device m.Machine.ctrl Kg_mem.Device.Pcm in
  check_bool "endurance" true (dev.Kg_mem.Device.endurance = 100e6)

(* ------------------------------------------------------------------ *)
(* Time and energy models                                              *)

let test_time_parts_sum () =
  let p =
    {
      Time_model.app_ns = 1.0;
      gc_ns = 2.0;
      remset_ns = 3.0;
      monitor_ns = 4.0;
      mem_base_ns = 5.0;
      mem_pcm_extra_ns = 6.0;
    }
  in
  check_bool "total" true (Time_model.total_ns p = 21.0);
  check_bool "seconds" true (Float.abs (Time_model.seconds p -. 21e-9) < 1e-18)

let test_time_cpu_parts_from_stats () =
  let st = Kg_gc.Gc_stats.create () in
  st.Kg_gc.Gc_stats.reads <- 1000;
  st.Kg_gc.Gc_stats.nursery_gcs <- 2;
  st.Kg_gc.Gc_stats.monitor_header_writes <- 50;
  let p = Time_model.cpu_parts st ~alloc_bytes:1_000_000 in
  check_bool "app time positive" true (p.Time_model.app_ns > 0.0);
  check_bool "gc fixed cost" true (p.Time_model.gc_ns >= 2.0 *. Costs.t_gc_fixed_ns);
  check_bool "monitor" true (p.Time_model.monitor_ns = 50.0 *. Costs.t_monitor_ns);
  check_bool "no memory part" true (p.Time_model.mem_base_ns = 0.0)

let test_energy_statics () =
  let m = Machine.build Machine.Dram_only in
  let e = Energy.of_run ~machine:m ~time_s:2.0 in
  check_bool "dram static dominates" true
    (e.Energy.static_dram_j = Costs.dram_static_w_per_gb *. 32.0 *. 2.0);
  check_bool "edp" true (Energy.edp e ~time_s:2.0 = Energy.total_j e *. 2.0)

let test_energy_pcm_write_cost () =
  let m = Machine.build Machine.Pcm_only in
  Kg_cache.Controller.line_write m.Machine.ctrl 0 ~tag:0;
  let e = Energy.of_run ~machine:m ~time_s:1.0 in
  check_bool "dynamic energy recorded" true (e.Energy.dynamic_j > 1e-6)

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)

let test_run_count_mode_basics () =
  let r = quick "xalan" in
  check_bool "allocated" true (r.R.alloc_bytes = 16 * 1048576);
  check_bool "collections happened" true (r.R.stats.Kg_gc.Gc_stats.nursery_gcs > 0);
  check_bool "no machine traffic in count mode" true (r.R.edp = 0.0);
  check_bool "time modeled anyway" true (r.R.time_s > 0.0);
  check_bool "usage sampled" true (r.R.pcm_avg_mb > 0.0)

let test_run_labels () =
  Alcotest.(check string) "kg-w" "KG-W" (R.label R.kg_w);
  Alcotest.(check string) "kg-n-12" "KG-N-12" (R.label R.kg_n_12);
  Alcotest.(check string) "wp" "WP" (R.label R.wp);
  Alcotest.(check string) "dram" "DRAM-only" (R.label R.dram_only);
  Alcotest.(check string) "pm" "KG-W-PM" (R.label R.kg_w_no_pm)

let test_run_deterministic () =
  let a = quick "pmd" and b = quick "pmd" in
  check_bool "same barrier writes" true
    (a.R.stats.Kg_gc.Gc_stats.app_write_bytes_pcm = b.R.stats.Kg_gc.Gc_stats.app_write_bytes_pcm);
  check_bool "same time" true (a.R.time_s = b.R.time_s)

let test_run_kgw_saves_barrier_pcm_writes () =
  let n = quick ~spec:R.kg_n "hsqldb" in
  let w = quick ~spec:R.kg_w "hsqldb" in
  check_bool "KG-W < KG-N barrier PCM writes" true
    (w.R.stats.Kg_gc.Gc_stats.app_write_bytes_pcm < n.R.stats.Kg_gc.Gc_stats.app_write_bytes_pcm)

let test_run_trace () =
  let r = quick ~trace:true "pmd" in
  check_bool "trace collected" true (List.length r.R.trace > 0);
  List.iter
    (fun (clock, pcm, dram) ->
      check_bool "clock grows" true (clock > 0.0);
      check_bool "non-negative" true (pcm >= 0.0 && dram >= 0.0))
    r.R.trace

let test_run_simulate_mode () =
  let rp = quick ~mode:R.Simulate ~spec:R.pcm_only "lu.fix" in
  let rd = quick ~mode:R.Simulate ~spec:R.dram_only "lu.fix" in
  check_bool "pcm traffic recorded" true (rp.R.mem_pcm_write_bytes > 0.0);
  check_bool "dram-only has no pcm traffic" true (rd.R.mem_pcm_write_bytes = 0.0);
  check_bool "pcm slower" true (rp.R.time_s > rd.R.time_s);
  check_bool "energy present" true (rp.R.energy <> None && rp.R.edp > 0.0);
  check_bool "lifetime finite" true (R.lifetime_years rp < 1e6);
  (* at this tiny scale only a sliver of the 32 GB sees writes; the
     full uniformity property is covered by the kg_mem wear tests *)
  check_bool "wear stats present" true (rp.R.wear_cov >= 0.0)

let test_run_kingsguard_beats_pcm_only () =
  let rp = quick ~mode:R.Simulate ~spec:R.pcm_only "lu.fix" in
  let rn = quick ~mode:R.Simulate ~spec:R.kg_n "lu.fix" in
  check_bool "KG-N cuts memory-level PCM writes" true
    (rn.R.mem_pcm_write_bytes < 0.8 *. rp.R.mem_pcm_write_bytes);
  check_bool "lifetime extends" true (R.lifetime_years rn > R.lifetime_years rp)

let test_run_wp_mode () =
  let r = quick ~mode:R.Simulate ~spec:R.wp "lu.fix" in
  check_bool "runs" true (r.R.mem_pcm_write_bytes > 0.0);
  check_bool "phase array sized" true (Array.length r.R.pcm_writes_by_phase = Kg_gc.Phase.count)

let test_run_phase_attribution () =
  let r = quick ~mode:R.Simulate ~spec:R.kg_n "lu.fix" in
  let total = Array.fold_left ( +. ) 0.0 r.R.pcm_writes_by_phase in
  check_bool "phases account for all pcm writes" true
    (Float.abs (total -. r.R.mem_pcm_write_bytes) < 1e-6);
  check_bool "application phase present" true (r.R.pcm_writes_by_phase.(0) > 0.0)

let test_write_rate_scaling () =
  let r = quick ~mode:R.Simulate ~spec:R.pcm_only "antlr" in
  let r4 = R.pcm_write_rate_4core_gbs r in
  let r32 = R.pcm_write_rate_32core_gbs r in
  check_bool "32-core rate = scaling x 4-core" true
    (Float.abs (r32 -. (r4 *. 52.0)) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Experiments                                                         *)

let tiny_env () =
  Experiments.make_env { Experiments.scale = 512; heap_scale = 8; cap_mb = 12; seed = 5 }

let test_experiments_registry () =
  check_int "25 experiments" 25 (List.length Experiments.all);
  List.iter
    (fun (e : Experiments.experiment) ->
      check_bool (e.Experiments.id ^ " described") true
        (String.length e.Experiments.doc > 0))
    Experiments.all

let test_experiments_static_tables () =
  let env = tiny_env () in
  let t1 = Experiments.run_by_name env "tab1" in
  check_bool "tab1 renders" true (String.length (Kg_util.Table.render t1) > 100);
  let t2 = Experiments.run_by_name env "tab2" in
  check_bool "tab2 renders" true (String.length (Kg_util.Table.render t2) > 100)

let test_experiments_fig11_runs () =
  (* fig11 covers all 18 benchmarks at tiny scale; smoke the pipeline *)
  let env = tiny_env () in
  let t = Experiments.run_by_name env "fig11" in
  let rendered = Kg_util.Table.render t in
  check_bool "has average row" true
    (List.exists
       (fun line -> String.length line >= 7 && String.sub line 0 7 = "Average")
       (String.split_on_char '\n' rendered))

let test_experiments_unknown () =
  let env = tiny_env () in
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      ignore (Experiments.run_by_name env "fig99"))

let test_pause_ordering () =
  (* pick a high-survival benchmark so all three collection kinds fire *)
  let r =
    R.run ~seed:5 ~scale:8 ~heap_scale:6 ~cap_mb:64 ~mode:R.Count R.kg_w (D.find "hsqldb")
  in
  let acc = Hashtbl.create 4 in
  Kg_util.Vec.iter
    (fun (phase, copied, scanned) ->
      let sum, n = Option.value (Hashtbl.find_opt acc phase) ~default:(0.0, 0) in
      Hashtbl.replace acc phase (sum +. Time_model.pause_ms ~copied ~scanned (), n + 1))
    r.R.stats.Kg_gc.Gc_stats.collection_log;
  let avg phase =
    match Hashtbl.find_opt acc phase with
    | Some (sum, n) when n > 0 -> sum /. float_of_int n
    | _ -> 0.0
  in
  let nursery = avg Kg_gc.Phase.Nursery_gc in
  let observer = avg Kg_gc.Phase.Observer_gc in
  let major = avg Kg_gc.Phase.Major_gc in
  check_bool "all kinds fired" true (nursery > 0.0 && observer > 0.0 && major > 0.0);
  check_bool "nursery < observer" true (nursery < observer);
  check_bool "observer < major" true (observer < major)

let test_modes_agree_at_barrier_level () =
  (* Barrier-level accounting is architecture-independent: Count and
     Simulate modes must report identical collector-side statistics for
     the same seed, differing only below the caches. *)
  let spec = R.kg_w and d = D.find "fop" in
  let a = R.run ~seed:9 ~scale:512 ~heap_scale:8 ~cap_mb:8 ~mode:R.Count spec d in
  let b = R.run ~seed:9 ~scale:512 ~heap_scale:8 ~cap_mb:8 ~mode:R.Simulate spec d in
  let key (r : R.result) =
    let st = r.R.stats in
    ( st.Kg_gc.Gc_stats.app_write_bytes_pcm,
      st.Kg_gc.Gc_stats.nursery_gcs,
      st.Kg_gc.Gc_stats.ref_writes,
      st.Kg_gc.Gc_stats.gen_remset_inserts )
  in
  check_bool "identical barrier-level stats" true (key a = key b)

let test_experiments_cache_reuse () =
  let env = tiny_env () in
  let d = D.find "fop" in
  let a = Experiments.fetch env R.Count R.kg_n d in
  let b = Experiments.fetch env R.Count R.kg_n d in
  check_bool "memoised (same physical result)" true (a == b)

let () =
  Alcotest.run "kg_sim"
    [
      ( "machine",
        [
          Alcotest.test_case "maps" `Quick test_machine_maps;
          Alcotest.test_case "build" `Quick test_machine_build;
          Alcotest.test_case "endurance override" `Quick test_machine_endurance_override;
        ] );
      ( "models",
        [
          Alcotest.test_case "time parts sum" `Quick test_time_parts_sum;
          Alcotest.test_case "cpu parts" `Quick test_time_cpu_parts_from_stats;
          Alcotest.test_case "energy statics" `Quick test_energy_statics;
          Alcotest.test_case "pcm write energy" `Quick test_energy_pcm_write_cost;
        ] );
      ( "run",
        [
          Alcotest.test_case "count mode basics" `Quick test_run_count_mode_basics;
          Alcotest.test_case "labels" `Quick test_run_labels;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "KG-W saves PCM writes" `Quick test_run_kgw_saves_barrier_pcm_writes;
          Alcotest.test_case "trace" `Quick test_run_trace;
          Alcotest.test_case "simulate mode" `Slow test_run_simulate_mode;
          Alcotest.test_case "kingsguard beats pcm-only" `Slow test_run_kingsguard_beats_pcm_only;
          Alcotest.test_case "wp mode" `Slow test_run_wp_mode;
          Alcotest.test_case "phase attribution" `Slow test_run_phase_attribution;
          Alcotest.test_case "write-rate scaling" `Slow test_write_rate_scaling;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_experiments_registry;
          Alcotest.test_case "static tables" `Quick test_experiments_static_tables;
          Alcotest.test_case "fig11 pipeline" `Slow test_experiments_fig11_runs;
          Alcotest.test_case "pause ordering (4.2.1)" `Slow test_pause_ordering;
          Alcotest.test_case "unknown id" `Quick test_experiments_unknown;
          Alcotest.test_case "cache reuse" `Quick test_experiments_cache_reuse;
          Alcotest.test_case "modes agree at barrier level" `Slow test_modes_agree_at_barrier_level;
        ] );
    ]
