(* Differential tests for the domain-parallel collection phases.

   The collector's parallel phases follow one protocol: plan in
   parallel over contiguous index ranges into slice-private buffers,
   then apply the buffers sequentially in slice order. That apply
   order reproduces sequential iteration exactly, so a run with
   [parallel_gc:true] must be bit-identical to the inline collector at
   the same domain count — same statistics, same device counters, same
   allocation-id stream (visible through the event trace). The inline
   collector IS the oracle; these tests hold the two sides together
   over random full runs and over the phase-partition edge cases
   (empty mature space, single live object, more domains than live
   objects, a defrag-triggering heap). *)

open Kg_gc
open Kg_sim
module O = Kg_heap.Object_model
module Rt = Runtime
module GS = Gc_stats

let check_bool = Alcotest.(check bool)
let mib = Kg_util.Units.mib

(* ------------------------------------------------------------------ *)
(* Full-run differential: parallel collector vs inline collector       *)

(* Everything a run exposes that could diverge, including the traffic
   totals the counting port accumulates in retirement order. *)
let fingerprint (r : Run.result) =
  let st = r.Run.stats in
  ( ( st.GS.nursery_gcs,
      st.GS.observer_gcs,
      st.GS.major_gcs,
      st.GS.nursery_alloc_bytes,
      st.GS.copied_bytes_nursery,
      st.GS.copied_bytes_observer,
      st.GS.copied_bytes_major ),
    ( st.GS.ref_writes,
      st.GS.prim_writes,
      st.GS.reads,
      st.GS.gen_remset_inserts,
      st.GS.obs_remset_inserts,
      st.GS.mark_header_writes,
      st.GS.scanned_objects ),
    ( st.GS.mature_moves_to_dram,
      st.GS.mature_moves_to_pcm,
      st.GS.app_write_bytes_pcm,
      st.GS.app_write_bytes_dram ),
    ( r.Run.mem_pcm_write_bytes,
      r.Run.mem_dram_write_bytes,
      r.Run.mem_pcm_read_bytes,
      r.Run.mem_dram_read_bytes ) )

let quick ?(seed = 11) ?(mode = Run.Count) ?(spec = Run.kg_w) ?(bench = "xalan")
    ~parallel_gc threads =
  Run.run ~seed ~scale:512 ~heap_scale:8 ~cap_mb:8 ~threads ~parallel_gc ~mode spec
    (Kg_workload.Descriptor.find bench)

let agree ?seed ?mode ?spec ?bench threads =
  let rp = quick ?seed ?mode ?spec ?bench ~parallel_gc:true threads in
  let ri = quick ?seed ?mode ?spec ?bench ~parallel_gc:false threads in
  fingerprint rp = fingerprint ri && GS.equal rp.Run.stats ri.Run.stats

(* The headline differential: for any domain count, seed and
   collector, the team collector and the inline collector agree on
   every statistic and counter. *)
let parallel_gc_matches_inline_qcheck =
  QCheck.Test.make ~name:"team collector is bit-identical to the inline collector"
    ~count:6
    QCheck.(triple (int_range 1 4) (int_bound 1000) (int_bound 2))
    (fun (threads, seed, spec_i) ->
      let spec = [| Run.pcm_only; Run.kg_w; Run.kg_n |].(spec_i) in
      agree ~seed ~spec threads)

(* Under full simulation the cache hierarchy makes device traffic a
   function of the exact retirement order, so agreement here pins the
   order of every port record the collection phases emit. *)
let test_parallel_gc_simulate () =
  List.iter
    (fun threads ->
      check_bool
        (Printf.sprintf "simulate, %d domains" threads)
        true
        (agree ~mode:Run.Simulate ~bench:"antlr" threads))
    [ 2; 4 ]

(* Only the modeled collection time may differ — and it must shrink
   when there is collection work to divide. *)
let test_parallel_gc_shrinks_gc_time () =
  let rp = quick ~mode:Run.Simulate ~bench:"antlr" ~parallel_gc:true 4 in
  let ri = quick ~mode:Run.Simulate ~bench:"antlr" ~parallel_gc:false 4 in
  check_bool "stats equal" true (GS.equal rp.Run.stats ri.Run.stats);
  check_bool "inline run collected" true
    (ri.Run.time_parts.Time_model.gc_ns > 0.0);
  check_bool "team gc time smaller" true
    (rp.Run.time_parts.Time_model.gc_ns < ri.Run.time_parts.Time_model.gc_ns)

(* The heap auditor must stay green while the phases run on the team. *)
let test_parallel_gc_auditor_green () =
  let r =
    Run.run ~seed:11 ~scale:512 ~heap_scale:8 ~cap_mb:8 ~threads:4 ~parallel_gc:true
      ~check:true ~mode:Run.Count Run.kg_w
      (Kg_workload.Descriptor.find "xalan")
  in
  Alcotest.(check (list string)) "no violations" [] r.Run.check_violations

(* ------------------------------------------------------------------ *)
(* Phase-partition edge cases                                          *)

(* Drive one scripted heap population on a bare runtime, force a final
   major collection, and return everything observable: statistics,
   device-counter totals, the event trace (which carries the
   runtime-assigned object ids, so it pins the allocation stream), and
   the auditor's verdict on the final heap. *)
let observe ?(domains = 4) ?defrag_threshold ~parallel_gc script =
  let cfg =
    Gc_config.make ~nursery_mb:1 ?defrag_threshold ~heap_mb:8 Gc_config.kg_w_default
  in
  let map = Kg_mem.Address_map.hybrid () in
  let mem, counters = Mem_iface.counting ~map in
  let rt = Rt.create ~domains ~parallel_gc ~config:cfg ~mem ~map ~seed:1 () in
  Fun.protect ~finally:(fun () -> Rt.shutdown rt) @@ fun () ->
  let rcd = Trace.recorder () in
  Rt.set_event_hook rt (Trace.record rcd);
  script rt;
  Rt.major_gc rt;
  Mem_iface.flush mem;
  let violations = List.map Verify.to_string (Verify.audit ~counters rt) in
  (Rt.stats rt, Mem_iface.stats mem, Trace.events rcd, violations)

(* Both sides of one scenario: stats equal, counters equal, traces
   byte-identical, auditor green on each. *)
let scenario ?domains ?defrag_threshold name script =
  let sp, cp, tp, vp = observe ?domains ?defrag_threshold ~parallel_gc:true script in
  let si, ci, ti, vi = observe ?domains ?defrag_threshold ~parallel_gc:false script in
  Alcotest.(check (list string)) (name ^ ": stats diff") [] (GS.diff si sp);
  check_bool (name ^ ": device counters equal") true (cp = ci);
  check_bool (name ^ ": traces byte-identical") true (tp = ti);
  Alcotest.(check (list string)) (name ^ ": auditor green (team)") [] vp;
  Alcotest.(check (list string)) (name ^ ": auditor green (inline)") [] vi;
  (sp, si)

let alloc ?(size = 128) ?(death = infinity) rt =
  Rt.alloc rt ~size ~heat:O.Cold ~death ~ref_fields:2

let test_edge_empty_mature () =
  ignore (scenario "empty mature space" (fun _ -> ()))

let test_edge_single_live () =
  ignore (scenario "single live object" (fun rt -> ignore (alloc rt)))

(* More plan slices than live objects: most ranges are empty, the
   merge must still replay the populated ones in slice order. *)
let test_edge_domains_exceed_live () =
  let sp, _ =
    scenario ~domains:4 "domains > live objects" (fun rt ->
        ignore (alloc rt);
        ignore (alloc rt))
  in
  check_bool "collected" true (sp.GS.major_gcs >= 1)

(* A fragmented mature heap under an always-on defragmentation
   threshold: most promoted objects die mid-run, so the majors leave
   sparse blocks and the sweep's evacuation planning runs too. *)
let test_edge_defrag () =
  let populate rt =
    (* 6 MiB of 128-byte objects; 1 in 16 immortal, the rest dying at
       the 5 MiB mark — late enough to reach the mature space alive
       (observer evacuations land around the 3 MiB mark), early enough
       to be swept by the final major, which strands the immortals on
       ~12%-marked blocks: exactly the §6.3 evacuation case. (1 in 8
       would mark exactly lines_per_block/4 lines per block — one line
       per four — and sit right on the candidate cutoff.) *)
    for i = 1 to (6 * mib) / 128 do
      let death = if i land 15 = 0 then infinity else float_of_int (5 * mib) in
      ignore (alloc ~death rt)
    done;
    Rt.major_gc rt
  in
  let sp, _ = scenario ~defrag_threshold:0.1 "defrag-triggering heap" populate in
  check_bool "majors ran" true (sp.GS.major_gcs >= 2);
  check_bool "defrag moved objects" true (sp.GS.copied_bytes_major > 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kg_parallel_gc"
    [
      ( "differential",
        [
          q parallel_gc_matches_inline_qcheck;
          Alcotest.test_case "simulate mode traffic order" `Quick
            test_parallel_gc_simulate;
          Alcotest.test_case "only modeled gc time shrinks" `Quick
            test_parallel_gc_shrinks_gc_time;
          Alcotest.test_case "auditor green on the team" `Quick
            test_parallel_gc_auditor_green;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty mature space" `Quick test_edge_empty_mature;
          Alcotest.test_case "single live object" `Quick test_edge_single_live;
          Alcotest.test_case "domains > live objects" `Quick
            test_edge_domains_exceed_live;
          Alcotest.test_case "defrag-triggering heap" `Quick test_edge_defrag;
        ] );
    ]
