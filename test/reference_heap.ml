(* The record-based object model this repo used before the flat-word
   heap (PR 6), kept verbatim as a differential oracle: the QCheck
   test in test_heap drives it and Heap_words through identical
   operation sequences and demands bit-identical observations.

   [death] is an IEEE double here exactly as it was in the record
   field; Heap_words stores it in a float64 table, so round-trips are
   exact and [is_live] comparisons agree bit-for-bit (including
   [infinity] for immortal objects). *)

type heat = Kg_heap.Object_model.heat = Cold | Warm | Hot

type t = {
  id : int;
  size : int;
  heat : heat;
  death : float;
  ref_fields : int;
  mutable addr : int;
  mutable space : int;
  mutable written : bool;
  mutable marked : bool;
  mutable age : int;
  mutable writes : int;
  mutable epoch_writes : int;
}

let make ~id ~size ~heat ~death ~ref_fields =
  if size < Kg_heap.Layout.min_object then
    invalid_arg "Reference_heap.make: size below minimum";
  {
    id;
    size;
    heat;
    death;
    ref_fields;
    addr = -1;
    space = -1;
    written = false;
    marked = false;
    age = 0;
    writes = 0;
    epoch_writes = 0;
  }

let is_live o now = o.death > now
