open Kg_workload
module D = Descriptor
module O = Kg_heap.Object_model
module Rt = Kg_gc.Runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mib = Kg_util.Units.mib

(* ------------------------------------------------------------------ *)
(* Descriptors                                                         *)

let test_descriptor_population () =
  check_int "18 benchmarks" 18 (List.length D.all);
  check_int "7 simulated" 7 (List.length D.simulated);
  let sim_names = List.map (fun d -> d.D.name) D.simulated in
  List.iter
    (fun n -> check_bool n true (List.mem n sim_names))
    [ "xalan"; "pmd"; "pmd.s"; "lusearch"; "lu.fix"; "antlr"; "bloat" ]

let test_descriptor_find () =
  check_bool "case-insensitive" true ((D.find "Xalan").D.name = "xalan");
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (D.find "nosuch"))

let test_descriptor_sanity () =
  List.iter
    (fun d ->
      check_bool (d.D.name ^ " survival") true
        (d.D.nursery_survival >= 0.0 && d.D.nursery_survival <= 1.0);
      check_bool (d.D.name ^ " obs survival") true
        (d.D.observer_survival >= 0.0 && d.D.observer_survival <= 1.0);
      check_bool (d.D.name ^ " nursery write frac") true
        (d.D.nursery_write_frac > 0.0 && d.D.nursery_write_frac < 1.0);
      check_bool (d.D.name ^ " top ordering") true (d.D.top2_frac <= d.D.top10_frac);
      check_bool (d.D.name ^ " alloc") true (d.D.alloc_mb > 0);
      check_int (d.D.name ^ " live") (d.D.heap_mb / 2) (D.live_mb d))
    D.all

let test_descriptor_figure2_average () =
  (* the paper: nursery writes average ~70% across the suite *)
  let avg =
    Kg_util.Stats.mean (Array.of_list (List.map (fun d -> d.D.nursery_write_frac) D.all))
  in
  check_bool "average near 0.70" true (Float.abs (avg -. 0.70) < 0.03)

let test_descriptor_table3 () =
  List.iter
    (fun d ->
      check_bool (d.D.name ^ " has scaling") true (d.D.scaling_32core > 1.0);
      check_bool (d.D.name ^ " has rate") true (d.D.write_rate_gbs > 0.0))
    D.simulated

(* ------------------------------------------------------------------ *)
(* Lifetime model                                                      *)

let mk_life ?(live_mb = 32) name =
  Lifetime.make ~live_mb (D.find name) ~nursery_bytes:(4 * mib) ~observer_bytes:(8 * mib)

let test_lifetime_p_long () =
  let d = D.find "xalan" in
  let l = mk_life "xalan" in
  check_bool "p_long = ns*os" true
    (Float.abs (Lifetime.p_long l -. (d.D.nursery_survival *. d.D.observer_survival)) < 1e-9);
  check_bool "target recorded" true
    (Lifetime.expected_nursery_survival l = d.D.nursery_survival)

let test_lifetime_draw_classes () =
  let l = mk_life "xalan" in
  let rng = Kg_util.Rng.of_seed 5 in
  let shorts = ref 0 and mediums = ref 0 and longs = ref 0 in
  for _ = 1 to 20_000 do
    match Lifetime.draw l rng ~nursery_remaining:(2.0 *. float_of_int mib) with
    | Lifetime.Short, life ->
      incr shorts;
      check_bool "short clamped or modest" true (life <= float_of_int mib +. 1.0)
    | Lifetime.Medium, life ->
      incr mediums;
      check_bool "medium survives nursery" true (life >= 4.0 *. float_of_int mib)
    | Lifetime.Long, life ->
      incr longs;
      check_bool "long survives nursery" true (life >= 4.0 *. float_of_int mib)
    | Lifetime.Immortal, _ -> Alcotest.fail "draw never returns immortal"
  done;
  check_bool "mostly short" true (!shorts > !mediums + !longs);
  check_bool "some long" true (!longs > 0)

let test_lifetime_clamping_bounds_survival () =
  (* jython: survival ~0; clamped shorts must die before the next GC *)
  let l = mk_life "jython" in
  let rng = Kg_util.Rng.of_seed 6 in
  let leaked = ref 0 and n = 20_000 in
  let remaining = 0.5 *. float_of_int mib in
  for _ = 1 to n do
    let _, life = Lifetime.draw l rng ~nursery_remaining:remaining in
    if life >= remaining then incr leaked
  done;
  check_bool "almost nothing outlives the GC" true (float_of_int !leaked /. float_of_int n < 0.01)

let test_lifetime_immortal () =
  let cls, life = Lifetime.immortal in
  check_bool "immortal class" true (cls = Lifetime.Immortal);
  check_bool "infinite" true (life = infinity)

(* ------------------------------------------------------------------ *)
(* Mutator                                                             *)

let mk_rt ?(heap_mb = 48) ?(domains = 1) collector =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Kg_gc.Gc_config.make ~heap_mb collector in
  let mem = Kg_gc.Mem_iface.null () in
  Rt.create ~domains ~config:cfg ~mem ~map ~seed:3 ()

let test_mutator_run_allocates_target () =
  let rt = mk_rt Kg_gc.Gc_config.Gen_immix in
  let m = Mutator.create ~live_mb:16 (D.find "pmd") ~rt ~seed:4 in
  Mutator.run m ~alloc_bytes:(8 * mib) ();
  check_bool "allocated at least target" true (Rt.now rt >= 8.0 *. float_of_int mib);
  check_bool "but not wildly more" true (Rt.now rt < 10.0 *. float_of_int mib)

let test_mutator_startup_builds_boot_image () =
  let rt = mk_rt Kg_gc.Gc_config.kg_w_default in
  let m = Mutator.create ~live_mb:20 (D.find "pmd") ~rt ~seed:4 in
  Mutator.allocate_startup m;
  (* 40% of the live target, directly into mature spaces *)
  check_bool "~8MB boot" true (Rt.heap_used rt >= 7 * mib && Rt.heap_used rt <= 11 * mib);
  check_int "no collections during boot" 0 (Rt.stats rt).Kg_gc.Gc_stats.nursery_gcs

let test_mutator_survival_calibration () =
  List.iter
    (fun name ->
      let d = D.find name in
      let rt = mk_rt Kg_gc.Gc_config.Gen_immix in
      let m = Mutator.create ~live_mb:16 d ~rt ~seed:7 in
      Mutator.allocate_startup m;
      Kg_gc.Gc_stats.reset (Rt.stats rt);
      Mutator.run m ~alloc_bytes:(24 * mib) ();
      let measured = Kg_gc.Gc_stats.nursery_survival (Rt.stats rt) in
      let target = d.D.nursery_survival in
      check_bool
        (Printf.sprintf "%s survival %.3f vs target %.3f" name measured target)
        true
        (Float.abs (measured -. target) < Float.max 0.06 (0.45 *. target)))
    [ "xalan"; "lusearch"; "hsqldb"; "pmd"; "jython" ]

let test_mutator_write_split_calibration () =
  let d = D.find "bloat" in
  let rt = mk_rt Kg_gc.Gc_config.Gen_immix in
  let m = Mutator.create ~live_mb:16 d ~rt ~seed:8 in
  Mutator.allocate_startup m;
  Kg_gc.Gc_stats.reset (Rt.stats rt);
  Mutator.run m ~alloc_bytes:(24 * mib) ();
  let mf = Kg_gc.Gc_stats.mature_write_fraction (Rt.stats rt) in
  check_bool
    (Printf.sprintf "bloat mature frac %.2f vs %.2f" mf (1.0 -. d.D.nursery_write_frac))
    true
    (Float.abs (mf -. (1.0 -. d.D.nursery_write_frac)) < 0.16)

let test_mutator_generates_all_event_kinds () =
  let rt = mk_rt Kg_gc.Gc_config.kg_w_default in
  let m = Mutator.create ~live_mb:16 (D.find "pmd") ~rt ~seed:9 in
  Mutator.allocate_startup m;
  Mutator.run m ~alloc_bytes:(12 * mib) ();
  let st = Rt.stats rt in
  check_bool "ref writes" true (st.Kg_gc.Gc_stats.ref_writes > 0);
  check_bool "prim writes" true (st.Kg_gc.Gc_stats.prim_writes > 0);
  check_bool "reads" true (st.Kg_gc.Gc_stats.reads > 0);
  check_bool "remset activity" true (st.Kg_gc.Gc_stats.gen_remset_inserts > 0);
  check_bool "large objects" true (st.Kg_gc.Gc_stats.large_allocs > 0)

let test_mutator_tick_callback () =
  let rt = mk_rt Kg_gc.Gc_config.Gen_immix in
  let m = Mutator.create ~live_mb:16 (D.find "pmd") ~rt ~seed:10 in
  let ticks = ref 0 in
  Mutator.run m ~alloc_bytes:(4 * mib) ~on_tick:(fun _ -> incr ticks) ~tick_bytes:mib ();
  check_bool "ticks fired" true (!ticks >= 3 && !ticks <= 5)

let test_mutator_threads () =
  let run threads =
    let rt = mk_rt ~domains:threads Kg_gc.Gc_config.Gen_immix in
    let m = Mutator.create ~live_mb:16 ~threads (D.find "xalan") ~rt ~seed:12 in
    Mutator.run m ~alloc_bytes:(6 * mib) ();
    Rt.stats rt
  in
  let st1 = run 1 and st4 = run 4 in
  check_bool "both allocate" true
    (st1.Kg_gc.Gc_stats.nursery_alloc_bytes > 0 && st4.Kg_gc.Gc_stats.nursery_alloc_bytes > 0);
  (* interleaving changes streams but not the global write character *)
  let mf s = Kg_gc.Gc_stats.mature_write_fraction s in
  check_bool "write split stable across threads" true (Float.abs (mf st1 -. mf st4) < 0.1)

let test_mutator_threads_need_domains () =
  let rt = mk_rt Kg_gc.Gc_config.Gen_immix in
  Alcotest.check_raises "domain mismatch rejected"
    (Invalid_argument "Mutator.create: 4 threads need a runtime with 4 domains (has 1)")
    (fun () -> ignore (Mutator.create ~live_mb:16 ~threads:4 (D.find "xalan") ~rt ~seed:12))

(* Satellite 5: thread 0 has no privileged role at startup — boot
   allocation round-robins, so the per-thread boot counts are level. *)
let test_mutator_startup_symmetry () =
  let threads = 4 in
  let rt = mk_rt ~domains:threads Kg_gc.Gc_config.kg_w_default in
  let m = Mutator.create ~live_mb:20 ~threads (D.find "pmd") ~rt ~seed:4 in
  Mutator.allocate_startup m;
  let counts = Mutator.boot_allocs_by_thread m in
  check_int "all threads recorded" threads (Array.length counts);
  let mn = Array.fold_left min counts.(0) counts in
  let mx = Array.fold_left max counts.(0) counts in
  check_bool "round-robin spread" true (mx - mn <= 1);
  check_bool "everyone allocated" true (mn > 0);
  (* single-thread runs keep the whole boot image on thread 0 *)
  let rt1 = mk_rt Kg_gc.Gc_config.kg_w_default in
  let m1 = Mutator.create ~live_mb:20 (D.find "pmd") ~rt:rt1 ~seed:4 in
  Mutator.allocate_startup m1;
  check_int "one thread, one counter" 1 (Array.length (Mutator.boot_allocs_by_thread m1))

let test_mutator_determinism () =
  let run () =
    let rt = mk_rt Kg_gc.Gc_config.kg_w_default in
    let m = Mutator.create ~live_mb:16 (D.find "xalan") ~rt ~seed:11 in
    Mutator.allocate_startup m;
    Mutator.run m ~alloc_bytes:(8 * mib) ();
    let st = Rt.stats rt in
    (st.Kg_gc.Gc_stats.ref_writes, st.Kg_gc.Gc_stats.nursery_gcs, Rt.heap_used rt)
  in
  let a = run () and b = run () in
  check_bool "bit-identical runs" true (a = b)

let test_scaled_alloc_bounds () =
  let d = D.find "als" in
  (* 14245 MB *)
  check_int "scaled" (890 * mib) (Mutator.scaled_alloc_bytes d ~scale:16 ~cap_mb:2000);
  check_int "capped" (256 * mib) (Mutator.scaled_alloc_bytes d ~scale:16 ~cap_mb:256);
  let small = D.find "luindex" in
  (* 37 MB: floor keeps the full workload *)
  check_int "small runs whole" (37 * mib) (Mutator.scaled_alloc_bytes small ~scale:16 ~cap_mb:256)

(* ------------------------------------------------------------------ *)
(* Trace input                                                         *)

let test_trace_parse () =
  let ok line =
    match Trace_input.parse_line line with
    | Ok (Some e) -> e
    | Ok None -> Alcotest.fail ("unexpectedly blank: " ^ line)
    | Error m -> Alcotest.failf "parse %S: %s" line m
  in
  (match ok "alloc 64 1000 hot" with
  | Trace_input.Alloc { size = 64; heat = O.Hot; lifetime } ->
    check_bool "lifetime" true (lifetime = 1000.0)
  | _ -> Alcotest.fail "wrong alloc");
  (match ok "alloc 64 inf" with
  | Trace_input.Alloc { lifetime; heat = O.Cold; _ } ->
    check_bool "immortal" true (lifetime = infinity)
  | _ -> Alcotest.fail "wrong alloc inf");
  (match ok "write 3 ref" with
  | Trace_input.Write { back = 3; is_ref = true } -> ()
  | _ -> Alcotest.fail "wrong write");
  (match ok "read 0 8" with
  | Trace_input.Read { back = 0; burst = 8 } -> ()
  | _ -> Alcotest.fail "wrong read");
  (match Trace_input.parse_line "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment not skipped");
  (match Trace_input.parse_line "frobnicate 1" with
  | Error _ -> ()
  | _ -> Alcotest.fail "bad verb accepted")

let test_trace_parse_string_errors () =
  match Trace_input.parse_string "alloc 64 100\nwrite nope" with
  | Error m -> check_bool "line number in error" true (String.length m > 6)
  | Ok _ -> Alcotest.fail "bad trace accepted"

let test_trace_edge_cases () =
  (* empty trace: parses to no events, replays to no effect *)
  (match Trace_input.parse_string "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty trace produced events"
  | Error m -> Alcotest.fail m);
  (match Trace_input.parse_string "# only a comment\n\n" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "comment-only trace produced events"
  | Error m -> Alcotest.fail m);
  (* single record *)
  (match Trace_input.parse_string "alloc 64 1000" with
  | Ok [ Trace_input.Alloc { size = 64; _ } ] -> ()
  | Ok _ -> Alcotest.fail "single-record trace misparsed"
  | Error m -> Alcotest.fail m);
  (match Trace_input.parse_string "req 0.5" with
  | Ok [ Trace_input.Request { issue } ] -> check_bool "issue stamp" true (issue = 0.5)
  | Ok _ -> Alcotest.fail "single req misparsed"
  | Error m -> Alcotest.fail m)

let test_trace_req_out_of_order () =
  (* issue stamps must be monotone; the error names the line and both
     stamps so the offending record is findable in a big trace *)
  (match Trace_input.parse_string "req 1.0\nalloc 64 100\nreq 0.5" with
  | Error m ->
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    check_bool "names the line" true (String.length m >= 7 && String.sub m 0 7 = "line 3:");
    check_bool "mentions the order" true (contains "out of order" m)
  | Ok _ -> Alcotest.fail "out-of-order issue stamps accepted");
  (* equal stamps are fine (simultaneous arrivals) *)
  (match Trace_input.parse_string "req 1.0\nreq 1.0" with
  | Ok [ _; _ ] -> ()
  | _ -> Alcotest.fail "equal issue stamps rejected");
  (* malformed stamps *)
  (match Trace_input.parse_line "req" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "req without stamp accepted");
  match Trace_input.parse_line "req soon" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric stamp accepted"

let test_trace_replay () =
  let rt = mk_rt Kg_gc.Gc_config.kg_w_default in
  let trace =
    String.concat "\n"
      ("# tiny synthetic trace"
      :: List.concat_map
           (fun _ -> [ "alloc 128 2000000 cold"; "write 0 prim"; "read 0 4"; "write 1 ref" ])
           (List.init 40000 Fun.id))
  in
  match Trace_input.parse_string trace with
  | Error m -> Alcotest.fail m
  | Ok events ->
    Trace_input.replay rt events;
    let st = Rt.stats rt in
    check_bool "allocated ~5MB" true (st.Kg_gc.Gc_stats.nursery_alloc_bytes > 4 * mib);
    check_bool "writes executed" true (st.Kg_gc.Gc_stats.prim_writes > 10_000);
    check_bool "reads executed" true (st.Kg_gc.Gc_stats.reads > 10_000);
    check_bool "collections ran" true (st.Kg_gc.Gc_stats.nursery_gcs >= 1);
    check_bool "invariants hold" true (Rt.check_invariants rt = Ok ())

let mutator_any_benchmark_qcheck =
  QCheck.Test.make ~name:"every benchmark runs on every collector" ~count:12
    QCheck.(pair (int_bound 17) (int_bound 2))
    (fun (bi, ci) ->
      let d = List.nth D.all bi in
      let collector =
        match ci with
        | 0 -> Kg_gc.Gc_config.Gen_immix
        | 1 -> Kg_gc.Gc_config.Kg_nursery
        | _ -> Kg_gc.Gc_config.kg_w_default
      in
      let rt = mk_rt collector in
      let m = Mutator.create ~live_mb:16 d ~rt ~seed:(bi + ci) in
      Mutator.allocate_startup m;
      Mutator.run m ~alloc_bytes:(6 * mib) ();
      Rt.heap_used rt > 0 && Kg_gc.Gc_stats.nursery_survival (Rt.stats rt) <= 1.0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kg_workload"
    [
      ( "descriptor",
        [
          Alcotest.test_case "population" `Quick test_descriptor_population;
          Alcotest.test_case "find" `Quick test_descriptor_find;
          Alcotest.test_case "sanity" `Quick test_descriptor_sanity;
          Alcotest.test_case "figure 2 average" `Quick test_descriptor_figure2_average;
          Alcotest.test_case "table 3" `Quick test_descriptor_table3;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "p_long" `Quick test_lifetime_p_long;
          Alcotest.test_case "draw classes" `Quick test_lifetime_draw_classes;
          Alcotest.test_case "clamping bounds survival" `Quick test_lifetime_clamping_bounds_survival;
          Alcotest.test_case "immortal" `Quick test_lifetime_immortal;
        ] );
      ( "trace",
        [
          Alcotest.test_case "parse" `Quick test_trace_parse;
          Alcotest.test_case "parse errors" `Quick test_trace_parse_string_errors;
          Alcotest.test_case "edge cases" `Quick test_trace_edge_cases;
          Alcotest.test_case "req stamps out of order" `Quick test_trace_req_out_of_order;
          Alcotest.test_case "replay" `Quick test_trace_replay;
        ] );
      ( "mutator",
        [
          Alcotest.test_case "run allocates target" `Quick test_mutator_run_allocates_target;
          Alcotest.test_case "startup boot image" `Quick test_mutator_startup_builds_boot_image;
          Alcotest.test_case "survival calibration" `Slow test_mutator_survival_calibration;
          Alcotest.test_case "write split calibration" `Slow test_mutator_write_split_calibration;
          Alcotest.test_case "all event kinds" `Quick test_mutator_generates_all_event_kinds;
          Alcotest.test_case "tick callback" `Quick test_mutator_tick_callback;
          Alcotest.test_case "threads" `Quick test_mutator_threads;
          Alcotest.test_case "threads need domains" `Quick test_mutator_threads_need_domains;
          Alcotest.test_case "startup symmetry" `Quick test_mutator_startup_symmetry;
          Alcotest.test_case "determinism" `Quick test_mutator_determinism;
          Alcotest.test_case "scaled alloc bounds" `Quick test_scaled_alloc_bounds;
          q mutator_any_benchmark_qcheck;
        ] );
    ]
