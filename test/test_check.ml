(* The auditor/trace/replay test suite: trace serialization round
   trips, model-based random mutator programs audited under every
   collector family, cross-collector differential runs, record/replay
   bit-determinism, and negative tests proving the auditor actually
   detects corruption. *)

open Kg_gc
module O = Kg_heap.Object_model
module Rt = Runtime
module Vec = Kg_util.Vec
module D = Kg_workload.Descriptor
module Mut = Kg_workload.Mutator
module R = Kg_sim.Run

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mib = Kg_util.Units.mib

let mk ?(nursery_mb = 1) ?(heap_mb = 8) ?(map = Kg_mem.Address_map.hybrid ()) collector =
  let cfg = Gc_config.make ~nursery_mb ~heap_mb collector in
  let mem, counters = Mem_iface.counting ~map in
  let rt = Rt.create ~config:cfg ~mem ~map ~seed:1 () in
  (rt, counters)

let strings_of vs = List.map Verify.to_string vs

(* ------------------------------------------------------------------ *)
(* Trace serialization                                                 *)

let sample_events =
  [
    Trace.Alloc { id = 1; size = 64; heat = O.Cold; death = infinity; ref_fields = 2 };
    Trace.Alloc { id = 2; size = 9 * 1024; heat = O.Hot; death = 1234567.8901234567; ref_fields = 0 };
    Trace.Alloc { id = 3; size = 72; heat = O.Warm; death = 0x1.5p20; ref_fields = 31 };
    Trace.Alloc_boot { id = 4; size = 16; heat = O.Warm; ref_fields = 1 };
    Trace.Write_ref { src = 1; tgt = 2 };
    Trace.Write_prim { obj = 4 };
    Trace.Read { obj = 1 };
    Trace.Read_burst { obj = 2; words = 128 };
    Trace.Major_gc;
    Trace.Reset_stats;
    Trace.Flush_retirement;
  ]

let test_trace_json_roundtrip () =
  List.iter
    (fun e ->
      let line = Trace.to_json e in
      check_bool (Printf.sprintf "roundtrip %s" line) true (Trace.of_json line = e))
    sample_events

let test_trace_file_roundtrip () =
  let f = Filename.temp_file "kg_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove f)
    (fun () ->
      let evs = Array.of_list sample_events in
      Trace.save f evs;
      check_bool "file roundtrip" true (Trace.load f = evs))

let test_trace_malformed () =
  let bad line =
    match Trace.of_json line with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "accepted malformed line %S" line
  in
  bad "";
  bad "{}";
  bad {|{"ev":"teleport"}|};
  bad {|{"ev":"alloc","id":1}|};
  bad {|{"ev":"alloc","id":"x","size":64,"heat":0,"death":"inf","rf":2}|}

(* ------------------------------------------------------------------ *)
(* Model-based testing: random mutator programs under every collector,
   auditing after every collection, with a shadow model of the write
   barrier predicting remembered-set inserts.                          *)

type op =
  | OAlloc of { large : bool; life : int }
  | OWrite_ref of int * int
  | OWrite_prim of int
  | ORead of int
  | OChurn of int  (** a burst of short-lived allocation, to force GCs *)
  | OMajor

let op_to_string = function
  | OAlloc { large; life } -> Printf.sprintf "alloc(large=%b,life=%d)" large life
  | OWrite_ref (a, b) -> Printf.sprintf "wref(%d,%d)" a b
  | OWrite_prim a -> Printf.sprintf "wprim(%d)" a
  | ORead a -> Printf.sprintf "read(%d)" a
  | OChurn n -> Printf.sprintf "churn(%d)" n
  | OMajor -> "major"

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      ( 5,
        map2
          (fun l life -> OAlloc { large = l = 0; life })
          (int_bound 19) (int_bound 2) );
      (6, map2 (fun a b -> OWrite_ref (a, b)) (int_bound 999) (int_bound 999));
      (3, map (fun a -> OWrite_prim a) (int_bound 999));
      (2, map (fun a -> ORead a) (int_bound 999));
      (2, map (fun n -> OChurn (1 + n)) (int_bound 3));
      (1, return OMajor);
    ]

let program_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_to_string ops))
    QCheck.Gen.(list_size (int_range 20 120) op_gen)

let run_model collector ops =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Gc_config.make ~nursery_mb:1 ~heap_mb:8 collector in
  let mem, counters = Mem_iface.counting ~map in
  let rt = Rt.create ~config:cfg ~mem ~map ~seed:7 () in
  let violations = Verify.attach ~counters rt in
  let has_obs = Gc_config.has_observer cfg in
  let pool = Vec.create () in
  let shadow_gen = ref 0 and shadow_obs = ref 0 in
  let shadow_ref = ref 0 and shadow_prim = ref 0 in
  (* A mutator only writes objects it can still reach, so targets are
     picked among the oracle-live. *)
  let live_pick sel =
    let now = Rt.now rt in
    let w = Rt.words rt in
    let live = Vec.fold (fun acc o -> if O.is_live w o now then o :: acc else acc) [] pool in
    match live with [] -> None | l -> Some (List.nth l (sel mod List.length l))
  in
  List.iter
    (fun opn ->
      match opn with
      | OAlloc { large; life } ->
        let size = if large then (9 * 1024) + (517 * life) else 64 + (32 * life) in
        let death =
          match life with
          | 0 -> Rt.now rt +. 200_000.0 (* dies young *)
          | 1 -> Rt.now rt +. 3_000_000.0 (* reaches maturity *)
          | _ -> infinity
        in
        Vec.push pool (Rt.alloc rt ~size ~heat:O.Cold ~death ~ref_fields:4)
      | OWrite_ref (a, b) -> (
        match (live_pick a, live_pick b) with
        | Some src, Some tgt ->
          (* Shadow barrier (Figure 4): predict the remembered-set
             inserts from the spaces as the runtime sees them. Nothing
             can move objects between this prediction and the call. *)
          let w = Rt.words rt in
          if O.space w src <> Rt.sp_nursery && O.space w tgt = Rt.sp_nursery then
            incr shadow_gen;
          if has_obs && O.space w src > Rt.sp_observer && O.space w tgt <= Rt.sp_observer then
            incr shadow_obs;
          incr shadow_ref;
          Rt.write_ref rt ~src ~tgt
        | _ -> ())
      | OWrite_prim a -> (
        match live_pick a with
        | Some o ->
          incr shadow_prim;
          Rt.write_prim rt o
        | None -> ())
      | ORead a -> (
        match live_pick a with Some o -> Rt.read_burst rt o 16 | None -> ())
      | OChurn n ->
        for _ = 1 to n * 1024 do
          ignore (Rt.alloc rt ~size:256 ~heat:O.Cold ~death:(Rt.now rt +. 100_000.0) ~ref_fields:2)
        done
      | OMajor -> Rt.major_gc rt)
    ops;
  Rt.major_gc rt;
  let final = Verify.audit ~counters ~phase:Phase.Application rt in
  let vs = Array.to_list (Vec.to_array violations) @ final in
  (vs, Rt.stats rt, (!shadow_gen, !shadow_obs, !shadow_ref, !shadow_prim))

let model_collectors =
  [
    ("genimmix", Gc_config.Gen_immix);
    ("kg-n", Gc_config.Kg_nursery);
    ("kg-w", Gc_config.kg_w_default);
    ("kg-w-loo", Gc_config.Kg_writers { loo = false; mdo = true; pm = true });
    ("kg-w-mdo", Gc_config.Kg_writers { loo = true; mdo = false; pm = true });
    ("kg-w-pm", Gc_config.Kg_writers { loo = true; mdo = true; pm = false });
  ]

let model_qcheck =
  QCheck.Test.make ~count:20
    ~name:"random programs: zero violations + shadow barrier model, all collectors" program_arb
    (fun ops ->
      List.iter
        (fun (name, collector) ->
          let vs, st, (sg, so, sr, sp) = run_model collector ops in
          if vs <> [] then
            QCheck.Test.fail_reportf "%s: %d violation(s):\n%s" name (List.length vs)
              (String.concat "\n" (strings_of vs));
          let expect what got want =
            if got <> want then
              QCheck.Test.fail_reportf "%s: %s = %d, shadow model predicts %d" name what got
                want
          in
          expect "gen_remset_inserts" st.Gc_stats.gen_remset_inserts sg;
          expect "obs_remset_inserts" st.Gc_stats.obs_remset_inserts so;
          expect "ref_writes" st.Gc_stats.ref_writes sr;
          expect "prim_writes" st.Gc_stats.prim_writes sp)
        model_collectors;
      true)

(* ------------------------------------------------------------------ *)
(* Cross-collector differential runs: the mutator's stream depends
   only on the allocation clock and nursery headroom, which evolve
   identically under every collector (absent LOO diversion), so runs
   must agree on everything collector-independent.                     *)

let differential_run d collector =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Gc_config.make ~nursery_mb:4 ~heap_mb:32 collector in
  let mem, _counters = Mem_iface.counting ~map in
  let rt = Rt.create ~config:cfg ~mem ~map ~seed:5 () in
  let m = Mut.create ~live_mb:16 d ~rt ~seed:12 in
  Mut.allocate_startup m;
  Mut.run m ~alloc_bytes:(24 * mib) ();
  rt

let differential_check name base other =
  Alcotest.(check (float 0.0))
    (name ^ ": allocation clock") (Rt.now base) (Rt.now other);
  let bc, bb = Verify.live_census base and oc, ob = Verify.live_census other in
  check_int (name ^ ": live objects") bc oc;
  check_int (name ^ ": live bytes") bb ob;
  let bs = Rt.stats base and os = Rt.stats other in
  check_int (name ^ ": ref writes") bs.Gc_stats.ref_writes os.Gc_stats.ref_writes;
  check_int (name ^ ": prim writes") bs.Gc_stats.prim_writes os.Gc_stats.prim_writes;
  check_int (name ^ ": reads") bs.Gc_stats.reads os.Gc_stats.reads;
  check_int (name ^ ": large allocs") bs.Gc_stats.large_allocs os.Gc_stats.large_allocs;
  check_int (name ^ ": nursery allocs")
    bs.Gc_stats.nursery_alloc_bytes os.Gc_stats.nursery_alloc_bytes

let test_differential_collectors () =
  let d = D.find "lusearch" in
  let base = differential_run d Gc_config.Gen_immix in
  let kgn = differential_run d Gc_config.Kg_nursery in
  (* LOO stays off: diverting large objects into the nursery changes
     the nursery headroom the lifetime model sees, so the full KG-W
     stream legitimately diverges from the baselines (even lusearch's
     3% large allocations enable LOO — its large objects are heavy-
     tailed enough to outpace the small ones between collections). *)
  let kgw = differential_run d (Gc_config.Kg_writers { loo = false; mdo = true; pm = true }) in
  check_int "kg-w: no LOO diversion" 0 (Rt.stats kgw).Gc_stats.large_allocs_in_nursery;
  differential_check "genimmix vs kg-n" base kgn;
  differential_check "genimmix vs kg-w" base kgw

let test_differential_large_heavy () =
  (* luindex is 50% large allocation; with LOO forced off the streams
     still agree across collector families. *)
  let d = D.find "luindex" in
  let base = differential_run d Gc_config.Gen_immix in
  let kgw = differential_run d (Gc_config.Kg_writers { loo = false; mdo = true; pm = true }) in
  differential_check "genimmix vs kg-w-no-loo (large-heavy)" base kgw

(* ------------------------------------------------------------------ *)
(* Record -> replay bit-determinism                                    *)

let test_replay_determinism () =
  let d = D.find "lusearch" in
  List.iter
    (fun (name, spec) ->
      let r, events = R.record ~scale:512 ~cap_mb:4 ~check:true spec d in
      Alcotest.(check (list string)) (name ^ ": recorded run audits clean") []
        r.R.check_violations;
      check_bool (name ^ ": trace is non-trivial") true (Array.length events > 1000);
      match R.replay spec d events with
      | Error m -> Alcotest.failf "%s: replay diverged: %s" name m
      | Ok (st, c) ->
        Alcotest.(check (list string)) (name ^ ": statistics bit-identical") []
          (Gc_stats.diff r.R.stats st);
        check_int (name ^ ": PCM write bytes")
          (int_of_float r.R.mem_pcm_write_bytes)
          c.Mem_iface.pcm_write_bytes;
        check_int (name ^ ": DRAM write bytes")
          (int_of_float r.R.mem_dram_write_bytes)
          c.Mem_iface.dram_write_bytes;
        check_int (name ^ ": PCM read bytes")
          (int_of_float r.R.mem_pcm_read_bytes)
          c.Mem_iface.pcm_read_bytes;
        check_int (name ^ ": DRAM read bytes")
          (int_of_float r.R.mem_dram_read_bytes)
          c.Mem_iface.dram_read_bytes;
        Array.iteri
          (fun i v ->
            check_int
              (Printf.sprintf "%s: PCM writes in %s" name (Phase.to_string (Phase.of_tag i)))
              (int_of_float v)
              c.Mem_iface.pcm_write_bytes_by_phase.(i))
          r.R.pcm_writes_by_phase)
    [ ("kg-n", R.kg_n); ("kg-w", R.kg_w) ]

let test_replay_through_file () =
  let d = D.find "lusearch" in
  let r, events = R.record ~scale:512 ~cap_mb:4 R.kg_w d in
  let f = Filename.temp_file "kg_replay" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove f)
    (fun () ->
      Trace.save f events;
      let events = Trace.load f in
      match R.replay R.kg_w d events with
      | Error m -> Alcotest.failf "replay of reloaded trace diverged: %s" m
      | Ok (st, _) ->
        Alcotest.(check (list string)) "stats identical after file round trip" []
          (Gc_stats.diff r.R.stats st))

let test_replay_wrong_config_diverges () =
  (* A KG-W trace replayed under KG-N must be detected, not silently
     produce different numbers: collections fire at different points,
     so an allocation id eventually mismatches or stats differ. *)
  let d = D.find "lusearch" in
  let r, events = R.record ~scale:512 ~cap_mb:4 R.kg_w d in
  match R.replay R.kg_n d events with
  | Error _ -> ()
  | Ok (st, _) ->
    check_bool "stats must differ under the wrong collector" true
      (Gc_stats.diff r.R.stats st <> [])

(* ------------------------------------------------------------------ *)
(* Negative tests: corrupt the heap / the statistics and prove the
   auditor reports it.                                                 *)

let has_invariant inv vs = List.exists (fun (v : Verify.violation) -> v.invariant = inv) vs

let test_detects_space_id_corruption () =
  let rt, counters = mk Gc_config.Kg_nursery in
  let o = Rt.alloc_boot rt ~size:64 ~heat:O.Cold ~ref_fields:1 in
  Alcotest.(check (list string)) "clean before corruption" []
    (strings_of (Verify.audit ~counters rt));
  O.set_space (Rt.words rt) o 9;
  let vs = Verify.audit ~counters rt in
  check_bool "space-id corruption detected" true (has_invariant "immix" vs);
  O.set_space (Rt.words rt) o Rt.sp_mature_pcm;
  Alcotest.(check (list string)) "clean after restore" []
    (strings_of (Verify.audit ~counters rt))

let test_detects_stats_corruption () =
  let rt, counters = mk Gc_config.kg_w_default in
  let a = Rt.alloc rt ~size:64 ~heat:O.Cold ~death:infinity ~ref_fields:2 in
  let b = Rt.alloc rt ~size:64 ~heat:O.Cold ~death:infinity ~ref_fields:2 in
  Rt.write_ref rt ~src:a ~tgt:b;
  Alcotest.(check (list string)) "clean before corruption" []
    (strings_of (Verify.audit ~counters rt));
  let st = Rt.stats rt in
  st.Gc_stats.ref_writes <- st.Gc_stats.ref_writes + 1;
  check_bool "counter corruption detected" true
    (has_invariant "write-conservation" (Verify.audit ~counters rt));
  st.Gc_stats.ref_writes <- st.Gc_stats.ref_writes - 1

let test_detects_leftover_remset () =
  let rt, counters = mk Gc_config.kg_w_default in
  let o = Rt.alloc rt ~size:64 ~heat:O.Cold ~death:infinity ~ref_fields:2 in
  (* An unconsumed generational entry after a "nursery collection". *)
  ignore (Remset.insert (Rt.gen_remset rt) ~slot_addr:4096 ~target:o);
  check_bool "leftover gen entry detected" true
    (has_invariant "remset" (Verify.audit ~counters ~phase:Phase.Nursery_gc rt));
  (* A dangling observer entry still targeting a live nursery object. *)
  (match Rt.obs_remset rt with
  | Some rs ->
    ignore (Remset.insert rs ~slot_addr:8192 ~target:o);
    check_bool "dangling obs entry detected" true
      (List.exists
         (fun (v : Verify.violation) ->
           v.invariant = "remset"
           && String.length v.detail > 8
           && String.sub v.detail 0 8 = "observer")
         (Verify.audit ~counters ~phase:Phase.Nursery_gc rt))
  | None -> Alcotest.fail "KG-W must have an observer remset")

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "check"
    [
      ( "trace",
        [
          Alcotest.test_case "json roundtrip" `Quick test_trace_json_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_trace_file_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_trace_malformed;
        ] );
      ("model", [ q model_qcheck ]);
      ( "differential",
        [
          Alcotest.test_case "genimmix/kg-n/kg-w agree" `Quick test_differential_collectors;
          Alcotest.test_case "large-heavy, LOO off" `Quick test_differential_large_heavy;
        ] );
      ( "replay",
        [
          Alcotest.test_case "record/replay bit-identical" `Quick test_replay_determinism;
          Alcotest.test_case "through a trace file" `Quick test_replay_through_file;
          Alcotest.test_case "wrong config diverges" `Quick test_replay_wrong_config_diverges;
        ] );
      ( "negative",
        [
          Alcotest.test_case "space-id corruption" `Quick test_detects_space_id_corruption;
          Alcotest.test_case "stats corruption" `Quick test_detects_stats_corruption;
          Alcotest.test_case "leftover remset entries" `Quick test_detects_leftover_remset;
        ] );
    ]
