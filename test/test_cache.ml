open Kg_cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_cache () = Cache.create ~name:"t" ~size:(4 * 64 * 2) ~ways:2 ~line_size:64 ~latency_ns:1.0
(* 4 sets x 2 ways x 64 B *)

(* ------------------------------------------------------------------ *)
(* Single cache                                                        *)

let test_cache_miss_then_hit () =
  let c = small_cache () in
  check_bool "first touch misses" false (Cache.probe c ~addr:0 ~write:false ~tag:0);
  ignore (Cache.fill c ~addr:0 ~write:false ~tag:0);
  check_bool "then hits" true (Cache.probe c ~addr:0 ~write:false ~tag:0);
  check_bool "same line hits" true (Cache.probe c ~addr:63 ~write:false ~tag:0);
  check_bool "next line misses" false (Cache.probe c ~addr:64 ~write:false ~tag:0)

let test_cache_clean_eviction_silent () =
  let c = small_cache () in
  (* three blocks mapping to set 0 in a 2-way set: 0, 4*64, 8*64 *)
  ignore (Cache.fill c ~addr:0 ~write:false ~tag:0);
  ignore (Cache.fill c ~addr:(4 * 64) ~write:false ~tag:0);
  let wb = Cache.fill c ~addr:(8 * 64) ~write:false ~tag:0 in
  check_bool "clean victim: no writeback" true (wb = None)

let test_cache_dirty_eviction_carries_tag () =
  let c = small_cache () in
  ignore (Cache.fill c ~addr:0 ~write:true ~tag:3);
  ignore (Cache.fill c ~addr:(4 * 64) ~write:false ~tag:0);
  match Cache.fill c ~addr:(8 * 64) ~write:false ~tag:0 with
  | Some { Cache.wb_addr; wb_tag } ->
    check_int "victim address" 0 wb_addr;
    check_int "writer tag preserved" 3 wb_tag
  | None -> Alcotest.fail "expected dirty writeback"

let test_cache_lru_order () =
  let c = small_cache () in
  ignore (Cache.fill c ~addr:0 ~write:false ~tag:0);
  ignore (Cache.fill c ~addr:(4 * 64) ~write:false ~tag:0);
  (* touch block 0 so block 4*64 becomes LRU *)
  ignore (Cache.probe c ~addr:0 ~write:false ~tag:0);
  ignore (Cache.fill c ~addr:(8 * 64) ~write:false ~tag:0);
  check_bool "recently used stays" true (Cache.probe c ~addr:0 ~write:false ~tag:0);
  check_bool "LRU evicted" false (Cache.probe c ~addr:(4 * 64) ~write:false ~tag:0)

let test_cache_write_hit_sets_dirty () =
  let c = small_cache () in
  ignore (Cache.fill c ~addr:0 ~write:false ~tag:0);
  ignore (Cache.probe c ~addr:0 ~write:true ~tag:2);
  ignore (Cache.fill c ~addr:(4 * 64) ~write:false ~tag:0);
  (match Cache.fill c ~addr:(8 * 64) ~write:false ~tag:0 with
  | Some { Cache.wb_tag; _ } -> check_int "dirtied by probe" 2 wb_tag
  | None -> Alcotest.fail "expected writeback")

let test_cache_invalidate_all () =
  let c = small_cache () in
  ignore (Cache.fill c ~addr:0 ~write:true ~tag:1);
  ignore (Cache.fill c ~addr:128 ~write:false ~tag:0);
  ignore (Cache.fill c ~addr:256 ~write:true ~tag:2);
  let wbs = Cache.invalidate_all c in
  check_int "two dirty lines" 2 (List.length wbs);
  check_bool "all invalid now" false (Cache.probe c ~addr:0 ~write:false ~tag:0)

let test_cache_stats () =
  let c = small_cache () in
  ignore (Cache.probe c ~addr:0 ~write:false ~tag:0);
  ignore (Cache.fill c ~addr:0 ~write:false ~tag:0);
  ignore (Cache.probe c ~addr:0 ~write:false ~tag:0);
  let s = Cache.stats c in
  check_int "hits" 1 s.Cache.hits;
  check_int "misses" 1 s.Cache.misses;
  Cache.reset_stats c;
  check_int "reset" 0 (Cache.stats c).Cache.hits

let test_cache_create_validation () =
  Alcotest.check_raises "non-pow2"
    (Invalid_argument "Cache.create: sets and line_size must be powers of two") (fun () ->
      ignore (Cache.create ~name:"x" ~size:(3 * 64 * 2) ~ways:2 ~line_size:64 ~latency_ns:1.0))

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)

let hybrid_ctrl () =
  let map = Kg_mem.Address_map.hybrid ~dram_size:4096 ~pcm_size:8192 () in
  Controller.create ~map ~line_size:64 ()

let test_controller_routing () =
  let c = hybrid_ctrl () in
  Controller.line_read c 0;
  Controller.line_write c 0 ~tag:0;
  Controller.line_write c 4096 ~tag:1;
  check_int "dram reads" 1 (Controller.reads c Kg_mem.Device.Dram);
  check_int "dram writes" 1 (Controller.writes c Kg_mem.Device.Dram);
  check_int "pcm writes" 1 (Controller.writes c Kg_mem.Device.Pcm);
  check_int "pcm bytes" 64 (Controller.bytes_written c Kg_mem.Device.Pcm)

let test_controller_tags () =
  let c = hybrid_ctrl () in
  Controller.line_write c 4096 ~tag:2;
  Controller.line_write c 4160 ~tag:2;
  Controller.line_write c 4224 ~tag:3;
  let tags = Controller.writes_by_tag c Kg_mem.Device.Pcm in
  check_int "tag 2" 2 tags.(2);
  check_int "tag 3" 1 tags.(3)

let test_controller_wear_feed () =
  let map = Kg_mem.Address_map.hybrid ~dram_size:4096 ~pcm_size:8192 () in
  let wear = Kg_mem.Wear.create ~size:8192 () in
  let c = Controller.create ~map ~wear ~line_size:64 () in
  Controller.line_write c 4096 ~tag:0;
  Controller.line_write c 0 ~tag:0;
  (* dram: not counted *)
  check_int "wear sees pcm writes only" 1 (Kg_mem.Wear.total_writes wear)

let test_controller_time_energy () =
  let c = hybrid_ctrl () in
  Controller.line_read c 4096;
  (* pcm read: 180 ns *)
  check_bool "time accumulates" true (Float.abs (Controller.access_time_ns c -. 180.0) < 1e-9);
  check_bool "energy accumulates" true (Controller.access_energy_j c > 0.0);
  Controller.reset c;
  check_bool "reset" true (Controller.access_time_ns c = 0.0)

let test_controller_on_write_hook () =
  let map = Kg_mem.Address_map.hybrid ~dram_size:4096 ~pcm_size:8192 () in
  let seen = ref [] in
  let c = Controller.create ~on_write:(fun a -> seen := a :: !seen) ~map ~line_size:64 () in
  Controller.line_write c 4096 ~tag:0;
  Controller.line_write c 128 ~tag:0;
  Alcotest.(check (list int)) "hook sees all writes" [ 128; 4096 ] !seen

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)

let tiny_hier () =
  let map = Kg_mem.Address_map.hybrid ~dram_size:65536 ~pcm_size:65536 () in
  let ctrl = Controller.create ~map ~line_size:64 () in
  let l1 = { Hierarchy.size = 512; ways = 2; latency_ns = 1.0 } in
  let l2 = { Hierarchy.size = 1024; ways = 2; latency_ns = 2.0 } in
  let l3 = { Hierarchy.size = 2048; ways = 2; latency_ns = 3.0 } in
  (Hierarchy.create ~l1 ~l2 ~l3 ~controller:ctrl (), ctrl)

let test_hierarchy_read_miss_reaches_memory () =
  let h, ctrl = tiny_hier () in
  Hierarchy.read h 0;
  check_int "memory read" 1 (Controller.reads ctrl Kg_mem.Device.Dram);
  Hierarchy.read h 0;
  check_int "second read cached" 1 (Controller.reads ctrl Kg_mem.Device.Dram)

let test_hierarchy_dirty_line_drains () =
  let h, ctrl = tiny_hier () in
  Hierarchy.set_phase h 3;
  Hierarchy.write h 65536;
  (* pcm side *)
  check_int "no writeback yet" 0 (Controller.writes ctrl Kg_mem.Device.Pcm);
  Hierarchy.drain h;
  check_int "drained to pcm" 1 (Controller.writes ctrl Kg_mem.Device.Pcm);
  let tags = Controller.writes_by_tag ctrl Kg_mem.Device.Pcm in
  check_int "phase tag survives hierarchy" 1 tags.(3)

let test_hierarchy_caches_absorb_rewrites () =
  let h, ctrl = tiny_hier () in
  for _ = 1 to 1000 do
    Hierarchy.write h 65536
  done;
  Hierarchy.drain h;
  check_int "1000 writes, one writeback" 1 (Controller.writes ctrl Kg_mem.Device.Pcm)

let test_hierarchy_access_range_spans_lines () =
  let h, _ = tiny_hier () in
  Hierarchy.access_range h ~addr:32 ~size:90 ~write:false;
  (* [32,122) touches the lines at 0 and 64 *)
  check_int "two line accesses" 2 (Hierarchy.accesses h);
  Hierarchy.access_range h ~addr:0 ~size:257 ~write:false;
  (* [0,257) touches lines 0,64,128,192,256 *)
  check_int "five more" 7 (Hierarchy.accesses h)

let test_hierarchy_capacity_eviction_to_memory () =
  let h, ctrl = tiny_hier () in
  (* dirty far more lines than total cache capacity (56 lines) *)
  for i = 0 to 299 do
    Hierarchy.write h (65536 + (i * 64))
  done;
  check_bool "capacity evictions reach pcm" true (Controller.writes ctrl Kg_mem.Device.Pcm > 100)

let test_hierarchy_stats_levels () =
  let h, _ = tiny_hier () in
  Hierarchy.read h 0;
  Hierarchy.read h 0;
  let s = Hierarchy.level_stats h in
  check_int "3 levels" 3 (Array.length s);
  check_int "l1 hit on re-read" 1 s.(0).Cache.hits;
  check_bool "hit time accumulates" true (Hierarchy.hit_time_ns h > 0.0)

let test_hierarchy_drain_fail_fast () =
  let h, ctrl = tiny_hier () in
  Hierarchy.write h 65536;
  Hierarchy.drain h;
  let wb = Controller.writes ctrl Kg_mem.Device.Pcm in
  Hierarchy.drain h;
  check_int "double drain adds no writebacks" wb (Controller.writes ctrl Kg_mem.Device.Pcm);
  check_bool "drained flag set" true (Hierarchy.drained h);
  Alcotest.check_raises "post-drain access fails fast"
    (Invalid_argument "Kg_cache.Hierarchy: access after drain (use reopen to resume)")
    (fun () -> Hierarchy.read h 0);
  Hierarchy.reopen h;
  check_bool "reopen clears the flag" false (Hierarchy.drained h);
  Hierarchy.read h 0;
  check_bool "demand traffic resumes" true (Hierarchy.accesses h >= 2)

(* The tentpole equivalence: delivering a stream as access_run batches
   must be indistinguishable from the per-access read/write loop —
   same per-level cache stats, same controller traffic per device and
   tag, same access count and hit time. A deliberately tiny port
   capacity forces mid-stream flushes so batch boundaries land at
   arbitrary positions. *)
let batch_equivalence_qcheck =
  QCheck.Test.make ~name:"hierarchy: access_run batch == per-access loop" ~count:60
    QCheck.(
      pair (int_bound 2)
        (small_list (quad bool (int_bound 120_000) (int_range 1 300) (int_bound 6))))
    (fun (map_idx, ops) ->
      let mk_map () =
        match map_idx with
        | 0 -> Kg_mem.Address_map.hybrid ~dram_size:65536 ~pcm_size:65536 ()
        | 1 -> Kg_mem.Address_map.dram_only ~size:(2 * 65536) ()
        | _ -> Kg_mem.Address_map.pcm_only ~size:(2 * 65536) ()
      in
      let mk_hier map =
        let ctrl = Controller.create ~map ~line_size:64 () in
        let l1 = { Hierarchy.size = 512; ways = 2; latency_ns = 1.0 } in
        let l2 = { Hierarchy.size = 1024; ways = 2; latency_ns = 2.0 } in
        let l3 = { Hierarchy.size = 2048; ways = 2; latency_ns = 3.0 } in
        (Hierarchy.create ~l1 ~l2 ~l3 ~controller:ctrl (), ctrl)
      in
      let h1, c1 = mk_hier (mk_map ()) in
      List.iter
        (fun (write, addr, size, tag) ->
          Hierarchy.set_phase h1 tag;
          Hierarchy.access_range h1 ~addr ~size ~write)
        ops;
      let h2, c2 = mk_hier (mk_map ()) in
      let port =
        Kg_mem.Port.create ~capacity:7
          ~sink:
            (Kg_mem.Port.Cache_sim
               {
                 Kg_mem.Port.run = (fun b -> Hierarchy.access_run h2 b);
                 drv_stats = (fun () -> Kg_mem.Port.zero_stats ~phases:8);
               })
          ()
      in
      List.iter
        (fun (write, addr, size, tag) ->
          Kg_mem.Port.set_phase_tag port tag;
          if write then Kg_mem.Port.write port ~addr ~size
          else Kg_mem.Port.read port ~addr ~size)
        ops;
      Kg_mem.Port.flush port;
      Hierarchy.drain h1;
      Hierarchy.drain h2;
      let dev_eq d =
        Controller.reads c1 d = Controller.reads c2 d
        && Controller.writes c1 d = Controller.writes c2 d
        && Controller.writes_by_tag c1 d = Controller.writes_by_tag c2 d
      in
      Hierarchy.accesses h1 = Hierarchy.accesses h2
      && Hierarchy.hit_time_ns h1 = Hierarchy.hit_time_ns h2
      && Array.for_all2
           (fun (a : Cache.stats) (b : Cache.stats) ->
             a.Cache.hits = b.Cache.hits && a.Cache.misses = b.Cache.misses
             && a.Cache.writebacks = b.Cache.writebacks)
           (Hierarchy.level_stats h1) (Hierarchy.level_stats h2)
      && dev_eq Kg_mem.Device.Dram && dev_eq Kg_mem.Device.Pcm)

(* ------------------------------------------------------------------ *)
(* Satellite: deterministic drain order.                               *)

let test_invalidate_all_ascending () =
  let c = small_cache () in
  (* set-major way order: set0 way0, set0 way1, set1 way0, set3 way0 *)
  ignore (Cache.fill c ~addr:0 ~write:true ~tag:1);
  ignore (Cache.fill c ~addr:(4 * 64) ~write:true ~tag:2);
  ignore (Cache.fill c ~addr:64 ~write:true ~tag:3);
  ignore (Cache.fill c ~addr:(3 * 64) ~write:true ~tag:4);
  let wbs = Cache.invalidate_all c in
  Alcotest.(check (list int))
    "writebacks in ascending way-index order" [ 0; 256; 64; 192 ]
    (List.map (fun wb -> wb.Cache.wb_addr) wbs)

(* ------------------------------------------------------------------ *)
(* Satellite: same-line run coalescer edge cases. Batches are built by
   hand so record boundaries are exactly what the coalescer sees.     *)

let batch_of records =
  let n = List.length records in
  let b =
    {
      Kg_mem.Port.len = n;
      addrs = Array.make n 0;
      sizes = Array.make n 0;
      metas = Array.make n 0;
      seqs = Array.make n 0;
    }
  in
  List.iteri
    (fun i (addr, size, write, tag) ->
      b.Kg_mem.Port.addrs.(i) <- addr;
      b.Kg_mem.Port.sizes.(i) <- size;
      b.Kg_mem.Port.metas.(i) <- Kg_mem.Port.meta ~write ~tag)
    records;
  b

let test_coalescer_write_upgrade () =
  (* A read then a write to one resident line: the folded write must
     still dirty the line, so the drained writeback carries its tag. *)
  let h, ctrl = tiny_hier () in
  Hierarchy.access_run h (batch_of [ (65536, 8, false, 0); (65540, 8, true, 5) ]);
  let l1 = (Hierarchy.level_stats h).(0) in
  check_int "one demand miss" 1 l1.Cache.misses;
  check_int "folded record counts as a hit" 1 l1.Cache.hits;
  check_int "both records counted" 2 (Hierarchy.accesses h);
  Hierarchy.drain h;
  check_int "write-after-read still drains dirty" 1 (Controller.writes ctrl Kg_mem.Device.Pcm);
  check_int "writeback carries the writer's tag" 1
    (Controller.writes_by_tag ctrl Kg_mem.Device.Pcm).(5)

let test_coalescer_last_writer_tag () =
  (* Two writes folded into one run: the line's phase tag must end up
     as the last writer's, exactly as per-access writes would leave it. *)
  let h, ctrl = tiny_hier () in
  Hierarchy.access_run h (batch_of [ (65536, 8, true, 2); (65544, 8, true, 6) ]);
  Hierarchy.drain h;
  let tags = Controller.writes_by_tag ctrl Kg_mem.Device.Pcm in
  check_int "first writer's tag overwritten" 0 tags.(2);
  check_int "last writer's tag wins" 1 tags.(6)

let test_coalescer_set_conflict_breaks_run () =
  (* a / b / a with a and b conflicting in a 1-way L1: the middle
     record evicts a, so the third access must be a fresh miss, not a
     coalesced hit. *)
  let map = Kg_mem.Address_map.hybrid ~dram_size:65536 ~pcm_size:65536 () in
  let ctrl = Controller.create ~map ~line_size:64 () in
  let l1 = { Hierarchy.size = 128; ways = 1; latency_ns = 1.0 } in
  let l2 = { Hierarchy.size = 256; ways = 1; latency_ns = 2.0 } in
  let l3 = { Hierarchy.size = 512; ways = 1; latency_ns = 3.0 } in
  let h = Hierarchy.create ~l1 ~l2 ~l3 ~controller:ctrl () in
  Hierarchy.access_run h (batch_of [ (0, 8, false, 0); (128, 8, false, 0); (0, 8, false, 0) ]);
  let s1 = (Hierarchy.level_stats h).(0) in
  check_int "all three accesses miss L1" 3 s1.Cache.misses;
  check_int "no false coalescing across the conflict" 0 s1.Cache.hits

(* ------------------------------------------------------------------ *)
(* Satellite: differential oracle. Random streams through the fused
   kernel (via a small-capacity port, so batch boundaries, spill
   flushes and coalescer runs land arbitrarily) and through
   Reference_cache, the pre-kernel implementation kept as simple,
   obviously correct code. Everything observable must match exactly:
   per-level stats, access counts, hit time, per-device controller
   counters, the byte-for-byte order of memory writebacks, and the
   float time/energy accumulators (the kernel's batching claims
   bit-identical accumulation order). *)

let differential_qcheck =
  QCheck.Test.make ~name:"hierarchy: fused kernel == reference oracle" ~count:80
    QCheck.(
      small_list
        (pair (int_bound 19) (quad bool (int_bound 120_000) (int_range 0 300) (int_bound 6))))
    (fun ops ->
      let mk_map () = Kg_mem.Address_map.hybrid ~dram_size:65536 ~pcm_size:65536 () in
      let l1 = { Hierarchy.size = 512; ways = 2; latency_ns = 1.0 } in
      let l2 = { Hierarchy.size = 1024; ways = 2; latency_ns = 2.0 } in
      let l3 = { Hierarchy.size = 2048; ways = 2; latency_ns = 3.0 } in
      (* reference side: per-access closures, one controller call per
         memory event *)
      let wb1 = ref [] in
      let c1 =
        Controller.create ~on_write:(fun a -> wb1 := a :: !wb1) ~map:(mk_map ()) ~line_size:64 ()
      in
      let r = Reference_cache.create ~l1 ~l2 ~l3 ~controller:c1 () in
      List.iter
        (fun (kind, (write, addr, size, tag)) ->
          if kind = 0 then begin
            Reference_cache.drain r;
            Reference_cache.reopen r
          end
          else begin
            Reference_cache.set_phase r tag;
            Reference_cache.access_range r ~addr ~size ~write
          end)
        ops;
      Reference_cache.drain r;
      (* kernel side: batched port into the fused hierarchy *)
      let wb2 = ref [] in
      let c2 =
        Controller.create ~on_write:(fun a -> wb2 := a :: !wb2) ~map:(mk_map ()) ~line_size:64 ()
      in
      let h = Hierarchy.create ~l1 ~l2 ~l3 ~controller:c2 () in
      let port =
        Kg_mem.Port.create ~capacity:5
          ~sink:
            (Kg_mem.Port.Cache_sim
               {
                 Kg_mem.Port.run = (fun b -> Hierarchy.access_run h b);
                 drv_stats = (fun () -> Kg_mem.Port.zero_stats ~phases:8);
               })
          ()
      in
      List.iter
        (fun (kind, (write, addr, size, tag)) ->
          if kind = 0 then begin
            Kg_mem.Port.flush port;
            Hierarchy.drain h;
            Hierarchy.reopen h
          end
          else begin
            Kg_mem.Port.set_phase_tag port tag;
            if write then Kg_mem.Port.write port ~addr ~size
            else Kg_mem.Port.read port ~addr ~size
          end)
        ops;
      Kg_mem.Port.flush port;
      Hierarchy.drain h;
      let dev_eq d =
        Controller.reads c1 d = Controller.reads c2 d
        && Controller.writes c1 d = Controller.writes c2 d
        && Controller.writes_by_tag c1 d = Controller.writes_by_tag c2 d
        && Controller.bytes_read c1 d = Controller.bytes_read c2 d
        && Controller.bytes_written c1 d = Controller.bytes_written c2 d
      in
      Reference_cache.accesses r = Hierarchy.accesses h
      && Reference_cache.hit_time_ns r = Hierarchy.hit_time_ns h
      && Array.for_all2
           (fun (a : Cache.stats) (b : Cache.stats) ->
             a.Cache.hits = b.Cache.hits && a.Cache.misses = b.Cache.misses
             && a.Cache.writebacks = b.Cache.writebacks)
           (Reference_cache.level_stats r) (Hierarchy.level_stats h)
      && dev_eq Kg_mem.Device.Dram && dev_eq Kg_mem.Device.Pcm
      && !wb1 = !wb2
      && Controller.access_time_ns c1 = Controller.access_time_ns c2
      && Controller.access_energy_j c1 = Controller.access_energy_j c2)

let hierarchy_conservation_qcheck =
  QCheck.Test.make ~name:"hierarchy: writebacks bounded, drain idempotent" ~count:50
    QCheck.(small_list (pair bool (int_bound 100_000)))
    (fun ops ->
      let h, ctrl = tiny_hier () in
      let writes = ref 0 in
      List.iter
        (fun (is_write, addr) ->
          if is_write then begin
            incr writes;
            Hierarchy.write h addr
          end
          else Hierarchy.read h addr)
        ops;
      Hierarchy.drain h;
      let wb =
        Controller.writes ctrl Kg_mem.Device.Dram + Controller.writes ctrl Kg_mem.Device.Pcm
      in
      let before = wb in
      Hierarchy.drain h;
      let after =
        Controller.writes ctrl Kg_mem.Device.Dram + Controller.writes ctrl Kg_mem.Device.Pcm
      in
      (* a line writeback needs at least one demand write, and a second
         drain with no traffic in between finds nothing dirty *)
      wb <= !writes && after = before)

let () =
  Alcotest.run "kg_cache"
    [
      ( "cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_cache_miss_then_hit;
          Alcotest.test_case "clean eviction silent" `Quick test_cache_clean_eviction_silent;
          Alcotest.test_case "dirty eviction carries tag" `Quick test_cache_dirty_eviction_carries_tag;
          Alcotest.test_case "lru order" `Quick test_cache_lru_order;
          Alcotest.test_case "write hit dirties" `Quick test_cache_write_hit_sets_dirty;
          Alcotest.test_case "invalidate all" `Quick test_cache_invalidate_all;
          Alcotest.test_case "drain order ascending" `Quick test_invalidate_all_ascending;
          Alcotest.test_case "stats" `Quick test_cache_stats;
          Alcotest.test_case "creation validation" `Quick test_cache_create_validation;
        ] );
      ( "controller",
        [
          Alcotest.test_case "routing" `Quick test_controller_routing;
          Alcotest.test_case "per-tag writes" `Quick test_controller_tags;
          Alcotest.test_case "wear feed" `Quick test_controller_wear_feed;
          Alcotest.test_case "time and energy" `Quick test_controller_time_energy;
          Alcotest.test_case "on_write hook" `Quick test_controller_on_write_hook;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "read miss reaches memory" `Quick test_hierarchy_read_miss_reaches_memory;
          Alcotest.test_case "dirty line drains" `Quick test_hierarchy_dirty_line_drains;
          Alcotest.test_case "caches absorb rewrites" `Quick test_hierarchy_caches_absorb_rewrites;
          Alcotest.test_case "access_range spans lines" `Quick test_hierarchy_access_range_spans_lines;
          Alcotest.test_case "capacity evictions" `Quick test_hierarchy_capacity_eviction_to_memory;
          Alcotest.test_case "level stats" `Quick test_hierarchy_stats_levels;
          Alcotest.test_case "drain fail-fast and reopen" `Quick test_hierarchy_drain_fail_fast;
          Alcotest.test_case "coalescer: write upgrades read run" `Quick test_coalescer_write_upgrade;
          Alcotest.test_case "coalescer: last writer's tag wins" `Quick test_coalescer_last_writer_tag;
          Alcotest.test_case "coalescer: set conflict breaks run" `Quick
            test_coalescer_set_conflict_breaks_run;
          QCheck_alcotest.to_alcotest batch_equivalence_qcheck;
          QCheck_alcotest.to_alcotest differential_qcheck;
          QCheck_alcotest.to_alcotest hierarchy_conservation_qcheck;
        ] );
    ]
