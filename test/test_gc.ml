open Kg_gc
module O = Kg_heap.Object_model
module Rt = Runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mib = Kg_util.Units.mib

(* Small heaps so collections trigger quickly in tests. *)
let mk ?(nursery_mb = 1) ?(heap_mb = 8) ?(map = Kg_mem.Address_map.hybrid ()) collector =
  let cfg = Gc_config.make ~nursery_mb ~heap_mb collector in
  let mem, counters = Mem_iface.counting ~map in
  let rt = Rt.create ~config:cfg ~mem ~map ~seed:1 () in
  (rt, counters)

let alloc ?(size = 64) ?(death = infinity) rt =
  Rt.alloc rt ~size ~heat:O.Cold ~death ~ref_fields:2

let fill_mb rt mb ~death =
  (* churn allocation to force collections *)
  for _ = 1 to mb * mib / 128 do
    ignore (alloc ~size:128 ~death rt)
  done

(* ------------------------------------------------------------------ *)
(* Config, phase, remset                                               *)

let test_config_names () =
  let n c = Gc_config.name (Gc_config.make ~heap_mb:64 c) in
  Alcotest.(check string) "genimmix" "GenImmix" (n Gc_config.Gen_immix);
  Alcotest.(check string) "kg-n" "KG-N" (n Gc_config.Kg_nursery);
  Alcotest.(check string) "kg-w" "KG-W" (n Gc_config.kg_w_default);
  Alcotest.(check string) "kg-w-loo" "KG-W-LOO"
    (n (Gc_config.Kg_writers { loo = false; mdo = true; pm = true }));
  Alcotest.(check string) "kg-w-loo-mdo" "KG-W-LOO-MDO"
    (n (Gc_config.Kg_writers { loo = false; mdo = false; pm = true }));
  Alcotest.(check string) "kg-w-pm" "KG-W-PM"
    (n (Gc_config.Kg_writers { loo = true; mdo = true; pm = false }));
  Alcotest.(check string) "kg-n-12" "KG-N-12"
    (Gc_config.name (Gc_config.make ~nursery_mb:12 ~heap_mb:64 Gc_config.Kg_nursery))

let test_config_observer_default () =
  let cfg = Gc_config.make ~nursery_mb:4 ~heap_mb:64 Gc_config.kg_w_default in
  check_int "observer = 2x nursery" (8 * mib) cfg.Gc_config.observer_bytes;
  check_bool "has observer" true (Gc_config.has_observer cfg);
  check_bool "genimmix has none" false
    (Gc_config.has_observer (Gc_config.make ~heap_mb:64 Gc_config.Gen_immix))

let test_phase_roundtrip () =
  List.iter
    (fun p -> check_bool "roundtrip" true (Phase.of_tag (Phase.to_tag p) = p))
    Phase.all;
  Alcotest.check_raises "invalid" (Invalid_argument "Phase.of_tag: 7") (fun () ->
      ignore (Phase.of_tag 7))

let test_remset_basic () =
  let rs = Remset.create ~name:"t" ~buffer_base:1000 ~buffer_bytes:64 () in
  let w = Kg_heap.Heap_words.create () in
  let o = O.make w ~size:64 ~heat:O.Cold ~death:infinity ~ref_fields:1 in
  let a1 = Remset.insert rs ~slot_addr:42 ~target:o in
  check_bool "entry addr in buffer" true (a1 >= 1000 && a1 < 1064);
  for _ = 1 to 20 do
    let a = Remset.insert rs ~slot_addr:43 ~target:o in
    check_bool "cycles within buffer" true (a >= 1000 && a < 1064)
  done;
  check_int "length" 21 (Remset.length rs);
  check_int "total" 21 (Remset.total_inserts rs);
  let seen = ref 0 in
  Remset.iter rs (fun _ -> incr seen);
  check_int "iter" 21 !seen;
  Remset.clear rs;
  check_int "cleared" 0 (Remset.length rs);
  check_int "total persists" 21 (Remset.total_inserts rs)

(* Satellite 2a: model-based check of the multicore front end. Any
   interleaving of per-domain records and handshakes must leave the
   shared set holding exactly the published entries, with each
   handshake publishing pending buffers in domain order. *)
let remset_handshake_model_qcheck =
  QCheck.Test.make ~name:"remset handshake publishes pending in domain order" ~count:200
    QCheck.(pair (int_range 1 4) (small_list (int_range 0 99)))
    (fun (domains, ops) ->
      let rs =
        Remset.create ~domains ~name:"model" ~buffer_base:0 ~buffer_bytes:4096 ()
      in
      let w = Kg_heap.Heap_words.create () in
      let o = O.make w ~size:64 ~heat:O.Cold ~death:infinity ~ref_fields:1 in
      (* Reference model: per-domain pending queues + published list. *)
      let m_pending = Array.make domains [] in
      let m_published = ref [] in
      let next_slot = ref 0 in
      let m_handshake () =
        Array.iteri
          (fun d q ->
            m_published := !m_published @ List.rev q;
            m_pending.(d) <- [])
          m_pending
      in
      let ok = ref true in
      List.iter
        (fun op ->
          if op mod 10 = 0 then begin
            ignore (Remset.handshake rs);
            m_handshake ()
          end
          else begin
            let d = op mod domains in
            incr next_slot;
            ignore (Remset.record rs ~domain:d ~slot_addr:!next_slot ~target:o);
            m_pending.(d) <- !next_slot :: m_pending.(d)
          end;
          let m_pending_total = Array.fold_left (fun a q -> a + List.length q) 0 m_pending in
          ok :=
            !ok
            && Remset.pending_total rs = m_pending_total
            && Remset.length rs = List.length !m_published)
        ops;
      (* Final handshake: the shared set must list every entry in
         publication order. *)
      ignore (Remset.handshake rs);
      m_handshake ();
      let seen = ref [] in
      Remset.iter rs (fun e -> seen := e.Remset.slot_addr :: !seen);
      !ok && List.rev !seen = !m_published && Remset.pending_total rs = 0)

let test_remset_record_slices () =
  (* Each domain's pending entries write into its own slice of the
     metadata store, so concurrent barrier hits never share lines. *)
  let rs = Remset.create ~domains:2 ~name:"s" ~buffer_base:1000 ~buffer_bytes:64 () in
  let w = Kg_heap.Heap_words.create () in
  let o = O.make w ~size:64 ~heat:O.Cold ~death:infinity ~ref_fields:1 in
  for _ = 1 to 10 do
    let a0 = Remset.record rs ~domain:0 ~slot_addr:1 ~target:o in
    let a1 = Remset.record rs ~domain:1 ~slot_addr:2 ~target:o in
    check_bool "domain 0 slice" true (a0 >= 1000 && a0 < 1032);
    check_bool "domain 1 slice" true (a1 >= 1032 && a1 < 1064)
  done;
  check_int "pending per domain" 10 (Remset.pending_length rs ~domain:0);
  check_int "published" 20 (Remset.handshake rs);
  check_int "handshake count" 1 (Remset.handshakes rs)

(* Satellite 2b: a pending entry still unpublished when a collection
   phase ends is a protocol violation the auditor must flag. *)
let test_verify_catches_missed_handshake () =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Gc_config.make ~nursery_mb:1 ~heap_mb:8 Gc_config.Kg_nursery in
  let mem, _ = Mem_iface.counting ~map in
  let rt = Rt.create ~domains:2 ~config:cfg ~mem ~map ~seed:1 () in
  let src = Rt.alloc_boot rt ~size:64 ~heat:O.Cold ~ref_fields:2 in
  let tgt = Rt.alloc ~domain:1 rt ~size:64 ~heat:O.Cold ~death:infinity ~ref_fields:2 in
  Rt.write_ref ~domain:1 rt ~src ~tgt;
  check_bool "barrier hit is pending" true (Remset.pending_total (Rt.gen_remset rt) > 0);
  let flags phase =
    Verify.audit ~phase rt
    |> List.exists (fun v -> v.Verify.invariant = "remset-handshake")
  in
  check_bool "mutator phase is fine" false (flags Phase.Application);
  check_bool "nursery gc phase flags it" true (flags Phase.Nursery_gc);
  ignore (Remset.handshake (Rt.gen_remset rt));
  check_bool "handshake clears the violation" false (flags Phase.Nursery_gc)

let test_counting_mem () =
  let map = Kg_mem.Address_map.hybrid () in
  let mem, c = Mem_iface.counting ~map in
  Mem_iface.write mem ~addr:0 ~size:10;
  Mem_iface.set_phase mem Phase.Major_gc;
  Mem_iface.write mem ~addr:(2 * Kg_util.Units.gib) ~size:7;
  Mem_iface.read mem ~addr:(2 * Kg_util.Units.gib) ~size:5;
  Mem_iface.flush mem;
  check_int "dram writes" 10 c.Mem_iface.dram_write_bytes;
  check_int "pcm writes" 7 c.Mem_iface.pcm_write_bytes;
  check_int "pcm reads" 5 c.Mem_iface.pcm_read_bytes;
  check_int "phase attribution" 7 c.Mem_iface.pcm_write_bytes_by_phase.(Phase.to_tag Phase.Major_gc)

(* ------------------------------------------------------------------ *)
(* Allocation and promotion                                            *)

let test_alloc_in_nursery () =
  let rt, _ = mk Gc_config.Gen_immix in
  let o = alloc rt in
  check_bool "in nursery" true (Rt.in_nursery rt o);
  check_bool "young" true (Rt.is_young rt o);
  check_int "no collections yet" 0 (Rt.stats rt).Gc_stats.nursery_gcs

let test_nursery_gc_triggers_and_promotes () =
  let rt, _ = mk Gc_config.Gen_immix in
  let survivor = alloc rt in
  fill_mb rt 2 ~death:0.0;
  (* all dead churn *)
  check_bool "gc happened" true ((Rt.stats rt).Gc_stats.nursery_gcs >= 1);
  check_bool "survivor promoted" false (Rt.is_young rt survivor);
  check_bool "survivor aged" true (O.age (Rt.words rt) survivor >= 1)

let test_survival_stats_extremes () =
  let rt, _ = mk Gc_config.Gen_immix in
  fill_mb rt 3 ~death:0.0;
  check_bool "all-dead churn ~0 survival" true (Gc_stats.nursery_survival (Rt.stats rt) < 0.02)

let test_kgn_placement () =
  let rt, _ = mk Gc_config.Kg_nursery in
  let o = alloc rt in
  check_bool "nursery object in DRAM" false (Rt.object_in_pcm rt o);
  fill_mb rt 2 ~death:0.0;
  check_bool "promoted to PCM" true (Rt.object_in_pcm rt o)

let test_kgw_survivors_enter_observer () =
  let rt, _ = mk Gc_config.kg_w_default in
  let o = alloc rt in
  fill_mb rt 2 ~death:0.0;
  check_bool "left nursery" false (Rt.in_nursery rt o);
  check_bool "still young (observer)" true (Rt.is_young rt o);
  check_bool "observer is DRAM" false (Rt.object_in_pcm rt o)

let test_genimmix_promotes_directly () =
  let rt, _ = mk Gc_config.Gen_immix in
  let o = alloc rt in
  fill_mb rt 2 ~death:0.0;
  check_bool "not young after one gc" false (Rt.is_young rt o)

let test_boot_alloc () =
  let rt, _ = mk Gc_config.kg_w_default in
  let o = Rt.alloc_boot rt ~size:64 ~heat:O.Cold ~ref_fields:1 in
  check_bool "boot object mature" false (Rt.is_young rt o);
  check_bool "boot in PCM" true (Rt.object_in_pcm rt o);
  check_int "age 1" 1 (O.age (Rt.words rt) o);
  check_int "boot skips demographics" 0 (Rt.stats rt).Gc_stats.nursery_alloc_bytes

let test_nursery_12mb_variant () =
  let rt, _ = mk ~nursery_mb:12 ~heap_mb:64 Gc_config.Kg_nursery in
  fill_mb rt 11 ~death:0.0;
  check_int "no gc below 12MB" 0 (Rt.stats rt).Gc_stats.nursery_gcs;
  fill_mb rt 2 ~death:0.0;
  check_bool "gc above 12MB" true ((Rt.stats rt).Gc_stats.nursery_gcs >= 1)

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)

let test_write_barrier_remset () =
  let rt, _ = mk Gc_config.Gen_immix in
  let mature = alloc rt in
  fill_mb rt 2 ~death:0.0;
  (* mature is now in the mature space *)
  let young = alloc rt in
  Rt.write_ref rt ~src:mature ~tgt:young;
  check_int "old->young remembered" 1 (Rt.stats rt).Gc_stats.gen_remset_inserts;
  Rt.write_ref rt ~src:young ~tgt:mature;
  check_int "young->old not remembered" 1 (Rt.stats rt).Gc_stats.gen_remset_inserts

let test_kgw_observer_remset () =
  let rt, _ = mk Gc_config.kg_w_default in
  let obs_obj = alloc rt in
  fill_mb rt 2 ~death:0.0;
  (* obs_obj now in observer *)
  let mature = Rt.alloc_boot rt ~size:64 ~heat:O.Cold ~ref_fields:1 in
  Rt.write_ref rt ~src:mature ~tgt:obs_obj;
  check_bool "observer remset insert" true ((Rt.stats rt).Gc_stats.obs_remset_inserts >= 1)

let test_kgw_monitoring_sets_write_bit () =
  let rt, _ = mk Gc_config.kg_w_default in
  let o = alloc rt in
  Rt.write_prim rt o;
  check_bool "nursery writes unmonitored" false (O.written (Rt.words rt) o);
  fill_mb rt 2 ~death:0.0;
  Rt.write_prim rt o;
  check_bool "observer write monitored" true (O.written (Rt.words rt) o);
  check_bool "header write counted" true ((Rt.stats rt).Gc_stats.monitor_header_writes >= 1)

let test_genimmix_never_monitors () =
  let rt, _ = mk Gc_config.Gen_immix in
  let o = alloc rt in
  fill_mb rt 2 ~death:0.0;
  Rt.write_prim rt o;
  Rt.write_ref rt ~src:o ~tgt:o;
  check_bool "no write bit" false (O.written (Rt.words rt) o);
  check_int "no monitor writes" 0 (Rt.stats rt).Gc_stats.monitor_header_writes

let test_pm_variant_skips_primitives () =
  let rt, _ = mk (Gc_config.Kg_writers { loo = true; mdo = true; pm = false }) in
  let o = alloc rt in
  fill_mb rt 2 ~death:0.0;
  Rt.write_prim rt o;
  check_bool "primitive unmonitored" false (O.written (Rt.words rt) o);
  Rt.write_ref rt ~src:o ~tgt:o;
  check_bool "reference still monitored" true (O.written (Rt.words rt) o)

let test_write_classification () =
  let rt, _ = mk Gc_config.kg_w_default in
  let o = alloc rt in
  Rt.write_prim rt o;
  check_int "nursery write" 1 (Rt.stats rt).Gc_stats.app_writes_nursery;
  fill_mb rt 2 ~death:0.0;
  Rt.write_prim rt o;
  check_int "observer write" 1 (Rt.stats rt).Gc_stats.app_writes_observer

(* ------------------------------------------------------------------ *)
(* Observer classification and major-GC movement                       *)

let test_observer_classifies_written_to_dram () =
  let rt, _ = mk Gc_config.kg_w_default in
  let written = alloc rt in
  let clean = alloc rt in
  fill_mb rt 2 ~death:0.0;
  (* both in observer now *)
  Rt.write_prim rt written;
  (* fill the observer (2 MB) with survivors to force an observer GC *)
  fill_mb rt 4 ~death:(Rt.now rt +. (3.0 *. float_of_int mib));
  check_bool "observer gc ran" true ((Rt.stats rt).Gc_stats.observer_gcs >= 1);
  check_bool "written object left young gen" false (Rt.is_young rt written);
  check_bool "written object in DRAM" false (Rt.object_in_pcm rt written);
  check_bool "clean object in PCM" true (Rt.object_in_pcm rt clean);
  check_bool "write bit reset on placement" false (O.written (Rt.words rt) written)

let test_major_moves_written_pcm_to_dram () =
  let rt, _ = mk Gc_config.kg_w_default in
  let o = Rt.alloc_boot rt ~size:64 ~heat:O.Hot ~ref_fields:1 in
  check_bool "starts in PCM" true (Rt.object_in_pcm rt o);
  Rt.write_prim rt o;
  check_bool "monitored in mature PCM" true (O.written (Rt.words rt) o);
  Rt.major_gc rt;
  check_bool "moved to mature DRAM" false (Rt.object_in_pcm rt o);
  check_bool "bit reset after move" false (O.written (Rt.words rt) o);
  check_bool "stat recorded" true ((Rt.stats rt).Gc_stats.mature_moves_to_dram >= 1)

let test_major_moves_unwritten_dram_to_pcm () =
  let rt, _ = mk Gc_config.kg_w_default in
  let o = Rt.alloc_boot rt ~size:64 ~heat:O.Hot ~ref_fields:1 in
  Rt.write_prim rt o;
  Rt.major_gc rt;
  check_bool "in DRAM" false (Rt.object_in_pcm rt o);
  (* not written since: next major sends it back to PCM capacity *)
  Rt.major_gc rt;
  check_bool "unwritten object returns to PCM" true (Rt.object_in_pcm rt o)

let test_major_reclaims_dead_mature () =
  let rt, _ = mk Gc_config.Gen_immix in
  let doomed = alloc ~death:(10.0 *. float_of_int mib) rt in
  fill_mb rt 2 ~death:0.0;
  check_bool "promoted" false (Rt.is_young rt doomed);
  let used_before = Rt.heap_used rt in
  fill_mb rt 9 ~death:0.0;
  (* doomed now dead *)
  Rt.major_gc rt;
  check_bool "heap shrank or stable" true (Rt.heap_used rt <= used_before + (2 * mib))

let test_heap_trigger_fires_major () =
  let rt, _ = mk ~heap_mb:8 Gc_config.Gen_immix in
  (* allocate > 8 MB of immortal data; trigger must fire *)
  for _ = 1 to 10 * mib / 4096 do
    ignore (alloc ~size:4096 rt)
  done;
  check_bool "major happened" true ((Rt.stats rt).Gc_stats.major_gcs >= 1)

let test_kgn_nursery_gc_writes_pcm_slots () =
  (* §6.1.6: "KG-N incurs writes to PCM during a nursery collection
     both due to copying survivors into the PCM mature space and due to
     updating the references in PCM that point to them." *)
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Gc_config.make ~nursery_mb:1 ~heap_mb:8 Gc_config.Kg_nursery in
  let mem, c = Mem_iface.counting ~map in
  let rt = Rt.create ~config:cfg ~mem ~map ~seed:1 () in
  let pcm_holder = Rt.alloc_boot rt ~size:64 ~heat:O.Cold ~ref_fields:4 in
  let young = alloc rt in
  Rt.write_ref rt ~src:pcm_holder ~tgt:young;
  let tag = Phase.to_tag Phase.Nursery_gc in
  Mem_iface.flush mem;
  let before = c.Mem_iface.pcm_write_bytes_by_phase.(tag) in
  fill_mb rt 2 ~death:0.0;
  Mem_iface.flush mem;
  check_bool "nursery GC wrote PCM (survivor copies + slot updates)" true
    (c.Mem_iface.pcm_write_bytes_by_phase.(tag) > before);
  check_bool "slot update recorded" true ((Rt.stats rt).Gc_stats.remset_slot_updates >= 1)

let test_loo_enables_dynamically () =
  (* §4.2.4: LOO turns on when the large PCM space allocates faster
     than the nursery; large objects then start life in the nursery. *)
  let rt, _ = mk ~heap_mb:64 Gc_config.kg_w_default in
  let early = alloc ~size:(16 * 1024) rt in
  check_bool "LOO off at start: large goes to PCM" true (Rt.object_in_pcm rt early);
  (* out-allocate the nursery with large objects, then force exactly
     one nursery GC so the rate comparison runs (each further GC
     re-evaluates the rates) *)
  for _ = 1 to 128 do
    ignore (alloc ~size:(32 * 1024) ~death:0.0 rt)
  done;
  while (Rt.stats rt).Gc_stats.nursery_gcs = 0 do
    ignore (alloc ~size:128 ~death:0.0 rt)
  done;
  let late = alloc ~size:(16 * 1024) rt in
  check_bool "LOO on: large allocates in the nursery" true (Rt.in_nursery rt late);
  check_bool "counted" true ((Rt.stats rt).Gc_stats.large_allocs_in_nursery >= 1)

(* ------------------------------------------------------------------ *)
(* Large objects                                                       *)

let test_large_goes_to_los () =
  let rt, _ = mk Gc_config.kg_w_default in
  let o = alloc ~size:(16 * 1024) rt in
  check_bool "large flagged" true (O.is_large (Rt.words rt) o);
  check_bool "in PCM los" true (Rt.object_in_pcm rt o);
  check_bool "not young" false (Rt.is_young rt o);
  check_int "counted" 1 (Rt.stats rt).Gc_stats.large_allocs

let test_written_large_moves_to_dram_los_once () =
  let rt, _ = mk Gc_config.kg_w_default in
  let o = alloc ~size:(16 * 1024) rt in
  Rt.write_prim rt o;
  check_bool "monitored" true (O.written (Rt.words rt) o);
  Rt.major_gc rt;
  check_bool "moved to DRAM los" false (Rt.object_in_pcm rt o);
  check_int "stat" 1 (Rt.stats rt).Gc_stats.los_moves_to_dram;
  (* "once a large object is copied to DRAM, we never move it back" *)
  Rt.major_gc rt;
  check_bool "never moves back" false (Rt.object_in_pcm rt o)

let test_large_in_genimmix_single_los () =
  let rt, _ = mk Gc_config.Gen_immix ~map:(Kg_mem.Address_map.pcm_only ()) in
  let o = alloc ~size:(64 * 1024) rt in
  Rt.write_prim rt o;
  Rt.major_gc rt;
  check_bool "baseline never moves large" true (Rt.object_in_pcm rt o)

(* ------------------------------------------------------------------ *)
(* MDO                                                                 *)

let test_mdo_redirects_mark_writes () =
  let major_pcm_writes mdo =
    let rt, c = mk (Gc_config.Kg_writers { loo = true; mdo; pm = true }) in
    for _ = 1 to 2000 do
      ignore (Rt.alloc_boot rt ~size:256 ~heat:O.Cold ~ref_fields:2)
    done;
    (* boot objects live in mature PCM; a major marks them all *)
    Rt.major_gc rt;
    Rt.flush_mem rt;
    (Rt.stats rt).Gc_stats.mark_table_writes
    + (c.Mem_iface.pcm_write_bytes_by_phase.(Phase.to_tag Phase.Major_gc) * 0)
    |> fun table_writes ->
    (table_writes, c.Mem_iface.pcm_write_bytes_by_phase.(Phase.to_tag Phase.Major_gc))
  in
  let tw_on, pcm_on = major_pcm_writes true in
  let tw_off, pcm_off = major_pcm_writes false in
  check_bool "mdo writes tables" true (tw_on > 0);
  check_int "no tables without mdo" 0 tw_off;
  check_bool "mdo reduces major-GC PCM writes" true (pcm_on < pcm_off)

let test_mdo_small_objects_use_header () =
  let rt, _ = mk Gc_config.kg_w_default in
  for _ = 1 to 2000 do
    ignore (Rt.alloc_boot rt ~size:16 ~heat:O.Cold ~ref_fields:1)
  done;
  Rt.major_gc rt;
  check_bool "small objects mark in header" true ((Rt.stats rt).Gc_stats.mark_header_writes > 0)

(* ------------------------------------------------------------------ *)
(* Metadata placement (Figure 3): KG-N keeps JVM metadata in PCM,
   KG-W moves it (remsets, mark tables) to DRAM.                        *)

let test_metadata_device_placement () =
  (* Remset insert traffic lands where the metadata space lives. *)
  let run collector =
    let map = Kg_mem.Address_map.hybrid () in
    let cfg = Gc_config.make ~nursery_mb:1 ~heap_mb:8 collector in
    let mem, c = Mem_iface.counting ~map in
    let rt = Rt.create ~config:cfg ~mem ~map ~seed:1 () in
    let mature = Rt.alloc_boot rt ~size:64 ~heat:O.Cold ~ref_fields:1 in
    let young = alloc rt in
    (* isolate the remset-insert traffic *)
    Mem_iface.flush mem;
    let dram0 = c.Mem_iface.dram_write_bytes and pcm0 = c.Mem_iface.pcm_write_bytes in
    Rt.write_ref rt ~src:mature ~tgt:young;
    Mem_iface.flush mem;
    (c.Mem_iface.dram_write_bytes - dram0, c.Mem_iface.pcm_write_bytes - pcm0)
  in
  (* KG-N: metadata in PCM, and the store itself hits the PCM-resident
     mature object -> all barrier traffic is PCM *)
  let dram_n, pcm_n = run Gc_config.Kg_nursery in
  check_int "KG-N: nothing lands in DRAM" 0 dram_n;
  check_bool "KG-N: remset insert + store hit PCM" true (pcm_n >= 2 * Kg_heap.Layout.word);
  (* KG-W: the remset buffer and monitoring get DRAM writes *)
  let dram_w, _ = run Gc_config.kg_w_default in
  check_bool "KG-W: metadata writes land in DRAM" true (dram_w >= Kg_heap.Layout.word)

let test_observer_gc_cheaper_than_major () =
  (* §6.2.2: observer collections reclaim objects without full-heap
     work. An observer GC must not touch (scan) boot-image objects. *)
  let rt, _ = mk Gc_config.kg_w_default in
  for _ = 1 to 1000 do
    ignore (Rt.alloc_boot rt ~size:256 ~heat:O.Cold ~ref_fields:2)
  done;
  let scanned0 = (Rt.stats rt).Gc_stats.scanned_objects in
  (* force observer GCs with surviving churn, but no major *)
  fill_mb rt 4 ~death:(Rt.now rt +. (3.0 *. float_of_int mib));
  check_bool "observer gcs ran" true ((Rt.stats rt).Gc_stats.observer_gcs >= 1);
  check_int "no major ran" 0 (Rt.stats rt).Gc_stats.major_gcs;
  check_bool "boot objects never scanned" true
    ((Rt.stats rt).Gc_stats.scanned_objects - scanned0 < 1000)

(* ------------------------------------------------------------------ *)
(* Extensions: threshold placement and write-triggered majors          *)

let mk_threshold k =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Gc_config.make ~nursery_mb:1 ~write_threshold:k ~heap_mb:8 Gc_config.kg_w_default in
  let mem, _ = Mem_iface.counting ~map in
  Rt.create ~config:cfg ~mem ~map ~seed:1 ()

let test_threshold_placement () =
  let rt = mk_threshold 3 in
  let once = alloc rt and thrice = alloc rt in
  fill_mb rt 2 ~death:0.0;
  (* both now observed *)
  Rt.write_prim rt once;
  for _ = 1 to 3 do
    Rt.write_prim rt thrice
  done;
  check_bool "below threshold: not written" false (O.written (Rt.words rt) once);
  check_bool "at threshold: written" true (O.written (Rt.words rt) thrice);
  (* classification follows the thresholded bit *)
  fill_mb rt 4 ~death:(Rt.now rt +. (3.0 *. float_of_int mib));
  check_bool "once-written object still goes to PCM" true (Rt.object_in_pcm rt once);
  check_bool "hot object goes to DRAM" false (Rt.object_in_pcm rt thrice)

let test_threshold_one_matches_paper_bit () =
  let rt = mk_threshold 1 in
  let o = alloc rt in
  fill_mb rt 2 ~death:0.0;
  Rt.write_prim rt o;
  check_bool "single write sets the bit" true (O.written (Rt.words rt) o)

let test_write_trigger_fires_major () =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg =
    Gc_config.make ~nursery_mb:1 ~pcm_write_trigger_mb:1 ~heap_mb:64 Gc_config.kg_w_default
  in
  let mem, _ = Mem_iface.counting ~map in
  let rt = Rt.create ~config:cfg ~mem ~map ~seed:1 () in
  let o = Rt.alloc_boot rt ~size:4096 ~heat:O.Hot ~ref_fields:8 in
  (* hammer the PCM-resident object: > 1 MB of barrier-observed PCM
     writes must fire a major even though the heap is nearly empty *)
  for _ = 1 to 200_000 do
    Rt.write_prim rt o;
    ignore (alloc ~size:64 ~death:0.0 rt)
  done;
  check_bool "write-triggered major fired" true ((Rt.stats rt).Gc_stats.major_gcs >= 1);
  check_bool "hot object rescued to DRAM" false (Rt.object_in_pcm rt o)

let test_no_write_trigger_by_default () =
  let rt, _ = mk ~heap_mb:64 Gc_config.kg_w_default in
  let o = Rt.alloc_boot rt ~size:4096 ~heat:O.Hot ~ref_fields:8 in
  for _ = 1 to 50_000 do
    Rt.write_prim rt o
  done;
  check_int "no major without the extension" 0 (Rt.stats rt).Gc_stats.major_gcs

let test_defrag_under_pressure () =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg =
    Gc_config.make ~nursery_mb:1 ~defrag_threshold:0.2 ~heap_mb:8 Gc_config.Gen_immix
  in
  let mem, _ = Mem_iface.counting ~map in
  let rt = Rt.create ~config:cfg ~mem ~map ~seed:1 () in
  (* interleave immortal and churn objects so mature blocks go sparse,
     then force majors: the defrag pass must not corrupt the heap *)
  for round = 1 to 3 do
    ignore round;
    for i = 1 to 8192 do
      let death = if i mod 8 = 0 then infinity else Rt.now rt +. 300_000.0 in
      ignore (alloc ~size:256 ~death rt)
    done;
    Rt.major_gc rt
  done;
  check_bool "survived repeated defragging majors" true ((Rt.stats rt).Gc_stats.major_gcs >= 3);
  check_bool "copies attributed to majors" true ((Rt.stats rt).Gc_stats.copied_bytes_major >= 0)

let test_observer_size_override () =
  let cfg = Gc_config.make ~nursery_mb:1 ~observer_mb:5 ~heap_mb:8 Gc_config.kg_w_default in
  check_int "observer override" (5 * mib) cfg.Gc_config.observer_bytes

(* ------------------------------------------------------------------ *)
(* Stats plumbing                                                      *)

let test_stats_reset () =
  let rt, _ = mk Gc_config.Gen_immix in
  fill_mb rt 2 ~death:0.0;
  Gc_stats.reset (Rt.stats rt);
  check_int "gcs zeroed" 0 (Rt.stats rt).Gc_stats.nursery_gcs;
  check_int "alloc zeroed" 0 (Rt.stats rt).Gc_stats.nursery_alloc_bytes

let test_flush_retirement () =
  let rt, _ = mk Gc_config.Gen_immix in
  let o = alloc rt in
  fill_mb rt 2 ~death:0.0;
  Rt.write_prim rt o;
  check_int "nothing retired yet" 0 (Kg_util.Vec.length (Rt.stats rt).Gc_stats.retired_mature_writes);
  Rt.flush_retirement_stats rt;
  check_bool "live mature flushed" true
    (Kg_util.Vec.length (Rt.stats rt).Gc_stats.retired_mature_writes >= 1);
  check_bool "top fraction computes" true (Gc_stats.top_fraction_writes (Rt.stats rt) 0.02 > 0.0)

let test_invariants_after_collections () =
  let rt, _ = mk ~heap_mb:8 Gc_config.kg_w_default in
  fill_mb rt 6 ~death:(Rt.now rt +. (2.0 *. float_of_int mib));
  Rt.major_gc rt;
  (match Rt.check_invariants rt with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant violated: %s" m);
  check_bool "collections happened" true ((Rt.stats rt).Gc_stats.nursery_gcs > 0)

let test_gc_hook_fires () =
  let rt, _ = mk Gc_config.Gen_immix in
  let fired = ref [] in
  Rt.set_gc_hook rt (fun p -> fired := p :: !fired);
  fill_mb rt 2 ~death:0.0;
  check_bool "hook saw nursery gc" true (List.mem Phase.Nursery_gc !fired)

(* Random operation storm: no exception, and bookkeeping invariants
   hold at every scale. *)
let runtime_storm_qcheck =
  QCheck.Test.make ~name:"runtime survives random op streams with sane accounting" ~count:10
    QCheck.(pair int (small_list (int_range 16 20000)))
    (fun (seed, sizes) ->
      let rt, _ = mk ~heap_mb:8 Gc_config.kg_w_default in
      let rng = Kg_util.Rng.of_seed seed in
      let pool = ref [] in
      List.iter
        (fun s ->
          let death =
            if Kg_util.Rng.bernoulli rng 0.5 then Rt.now rt +. Kg_util.Rng.float rng 2e6
            else infinity
          in
          let o = Rt.alloc rt ~size:s ~heat:O.Cold ~death ~ref_fields:2 in
          pool := o :: !pool;
          List.iter
            (fun tgt ->
              if O.is_live (Rt.words rt) tgt (Rt.now rt) then
                if Kg_util.Rng.bernoulli rng 0.5 then Rt.write_prim rt tgt
                else Rt.write_ref rt ~src:tgt ~tgt:o)
            (List.filteri (fun i _ -> i < 3) !pool))
        sizes;
      let u = Rt.usage rt in
      let sum =
        u.Rt.nursery_used + u.Rt.observer_used + u.Rt.mature_dram_used + u.Rt.mature_pcm_used
        + u.Rt.los_dram_used + u.Rt.los_pcm_used
      in
      sum = Rt.heap_used rt
      && Rt.dram_used rt >= 0
      && Rt.pcm_used rt >= 0
      && Rt.dram_used rt + Rt.pcm_used rt = sum + u.Rt.meta_used
      && Gc_stats.nursery_survival (Rt.stats rt) <= 1.0
      && Rt.check_invariants rt = Ok ())

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kg_gc"
    [
      ( "config+phase+remset",
        [
          Alcotest.test_case "config names" `Quick test_config_names;
          Alcotest.test_case "observer default" `Quick test_config_observer_default;
          Alcotest.test_case "phase roundtrip" `Quick test_phase_roundtrip;
          Alcotest.test_case "remset" `Quick test_remset_basic;
          Alcotest.test_case "remset record slices" `Quick test_remset_record_slices;
          q remset_handshake_model_qcheck;
          Alcotest.test_case "missed handshake flagged" `Quick
            test_verify_catches_missed_handshake;
          Alcotest.test_case "counting mem" `Quick test_counting_mem;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "alloc in nursery" `Quick test_alloc_in_nursery;
          Alcotest.test_case "nursery gc promotes" `Quick test_nursery_gc_triggers_and_promotes;
          Alcotest.test_case "survival extremes" `Quick test_survival_stats_extremes;
          Alcotest.test_case "KG-N placement" `Quick test_kgn_placement;
          Alcotest.test_case "KG-W observer path" `Quick test_kgw_survivors_enter_observer;
          Alcotest.test_case "GenImmix direct promote" `Quick test_genimmix_promotes_directly;
          Alcotest.test_case "boot alloc" `Quick test_boot_alloc;
          Alcotest.test_case "12MB nursery" `Quick test_nursery_12mb_variant;
        ] );
      ( "barriers",
        [
          Alcotest.test_case "generational remset" `Quick test_write_barrier_remset;
          Alcotest.test_case "observer remset" `Quick test_kgw_observer_remset;
          Alcotest.test_case "monitoring write bit" `Quick test_kgw_monitoring_sets_write_bit;
          Alcotest.test_case "genimmix never monitors" `Quick test_genimmix_never_monitors;
          Alcotest.test_case "PM variant" `Quick test_pm_variant_skips_primitives;
          Alcotest.test_case "write classification" `Quick test_write_classification;
        ] );
      ( "collections",
        [
          Alcotest.test_case "observer classification" `Quick test_observer_classifies_written_to_dram;
          Alcotest.test_case "major: written PCM->DRAM" `Quick test_major_moves_written_pcm_to_dram;
          Alcotest.test_case "major: clean DRAM->PCM" `Quick test_major_moves_unwritten_dram_to_pcm;
          Alcotest.test_case "major reclaims" `Quick test_major_reclaims_dead_mature;
          Alcotest.test_case "heap trigger" `Quick test_heap_trigger_fires_major;
          Alcotest.test_case "KG-N nursery GC writes PCM" `Quick test_kgn_nursery_gc_writes_pcm_slots;
          Alcotest.test_case "LOO enables dynamically" `Quick test_loo_enables_dynamically;
        ] );
      ( "large objects",
        [
          Alcotest.test_case "to LOS" `Quick test_large_goes_to_los;
          Alcotest.test_case "written -> DRAM, once" `Quick test_written_large_moves_to_dram_los_once;
          Alcotest.test_case "baseline single LOS" `Quick test_large_in_genimmix_single_los;
        ] );
      ( "mdo",
        [
          Alcotest.test_case "redirects mark writes" `Quick test_mdo_redirects_mark_writes;
          Alcotest.test_case "small objects in header" `Quick test_mdo_small_objects_use_header;
        ] );
      ( "placement",
        [
          Alcotest.test_case "metadata device placement" `Quick test_metadata_device_placement;
          Alcotest.test_case "observer GC is partial" `Quick test_observer_gc_cheaper_than_major;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "threshold placement" `Quick test_threshold_placement;
          Alcotest.test_case "threshold 1 = paper bit" `Quick test_threshold_one_matches_paper_bit;
          Alcotest.test_case "write trigger fires major" `Quick test_write_trigger_fires_major;
          Alcotest.test_case "no trigger by default" `Quick test_no_write_trigger_by_default;
          Alcotest.test_case "observer size override" `Quick test_observer_size_override;
          Alcotest.test_case "defrag under pressure" `Quick test_defrag_under_pressure;
        ] );
      ( "stats",
        [
          Alcotest.test_case "reset" `Quick test_stats_reset;
          Alcotest.test_case "flush retirement" `Quick test_flush_retirement;
          Alcotest.test_case "invariants after collections" `Quick test_invariants_after_collections;
          Alcotest.test_case "gc hook" `Quick test_gc_hook_fires;
          q runtime_storm_qcheck;
        ] );
    ]
