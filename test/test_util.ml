open Kg_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_determinism () =
  let a = Rng.of_seed 7 and b = Rng.of_seed 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.of_seed 1 and b = Rng.of_seed 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  check_bool "different seeds diverge" true (!same < 8)

let test_rng_split_independent () =
  let parent = Rng.of_seed 3 in
  let child = Rng.split parent in
  let c1 = Rng.int child 1000 in
  (* drawing more from the parent must not affect the child's stream *)
  let parent2 = Rng.of_seed 3 in
  let child2 = Rng.split parent2 in
  ignore (Rng.int parent2 10);
  check_int "split streams reproducible" c1 (Rng.int child2 1000)

let test_rng_copy () =
  let a = Rng.of_seed 9 in
  ignore (Rng.int a 5);
  let b = Rng.copy a in
  check_int "copy replays" (Rng.int a 1 lsl 20) (Rng.int b 1 lsl 20)

let test_rng_int_bounds () =
  let r = Rng.of_seed 11 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in [0,17)" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound must be positive" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.of_seed 12 in
  for _ = 1 to 500 do
    let v = Rng.int_in r (-3) 4 in
    check_bool "in [-3,4]" true (v >= -3 && v <= 4)
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.of_seed 13 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Rng.bernoulli r 0.0)
  done;
  for _ = 1 to 100 do
    check_bool "p=1 always" true (Rng.bernoulli r 1.0)
  done

let test_rng_exponential_mean () =
  let r = Rng.of_seed 14 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r 3.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 3" true (Float.abs (mean -. 3.0) < 0.1)

let test_rng_geometric_mean () =
  let r = Rng.of_seed 15 in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric r 0.25
  done;
  (* mean of failures-before-success = (1-p)/p = 3 *)
  let mean = float_of_int !sum /. float_of_int n in
  check_bool "mean near 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_rng_pareto_min () =
  let r = Rng.of_seed 16 in
  for _ = 1 to 1000 do
    check_bool "above xmin" true (Rng.pareto r ~alpha:1.5 ~xmin:10.0 >= 10.0)
  done

let test_rng_zipf_range_and_skew () =
  let r = Rng.of_seed 17 in
  let n = 100 in
  let counts = Array.make n 0 in
  for _ = 1 to 50_000 do
    let k = Rng.zipf r ~n ~s:1.1 in
    check_bool "in range" true (k >= 0 && k < n);
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank 0 beats rank 50" true (counts.(0) > counts.(50))

let test_rng_shuffle_permutation () =
  let r = Rng.of_seed 18 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "empty" 0.0 (Stats.mean [||])

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "non-positive" (Invalid_argument "Stats.geomean: non-positive value")
    (fun () -> ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_stats_stddev () =
  check_float "stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]);
  check_float "single" 0.0 (Stats.stddev [| 5.0 |])

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 4.0 (Stats.percentile xs 100.0);
  check_float "p50 interpolates" 2.5 (Stats.percentile xs 50.0)

let test_stats_minmax () =
  check_float "min" (-1.0) (Stats.minimum [| 3.0; -1.0; 2.0 |]);
  check_float "max" 3.0 (Stats.maximum [| 3.0; -1.0; 2.0 |])

let test_stats_acc_matches_batch () =
  let r = Rng.of_seed 19 in
  let xs = Array.init 1000 (fun _ -> Rng.float r 100.0) in
  let acc = Stats.Acc.create () in
  Array.iter (Stats.Acc.add acc) xs;
  check_int "count" 1000 (Stats.Acc.count acc);
  check_bool "mean" true (Float.abs (Stats.Acc.mean acc -. Stats.mean xs) < 1e-6);
  check_bool "stddev" true (Float.abs (Stats.Acc.stddev acc -. Stats.stddev xs) < 1e-6);
  check_bool "min" true (Stats.Acc.min acc = Stats.minimum xs);
  check_bool "max" true (Stats.Acc.max acc = Stats.maximum xs)

let test_stats_normalize () =
  Alcotest.(check (array (float 1e-9)))
    "normalize" [| 0.5; 1.0 |]
    (Stats.normalize_to 2.0 [| 1.0; 2.0 |])

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check_int "get" i (Vec.get v i)
  done

let test_vec_bounds () =
  let v = Vec.of_array [| 1; 2 |] in
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get: index 2 out of bounds (len 2)")
    (fun () -> ignore (Vec.get v 2))

let test_vec_pop () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.(check (option int)) "pop" (Some 3) (Vec.pop v);
  check_int "len" 2 (Vec.length v);
  ignore (Vec.pop v);
  ignore (Vec.pop v);
  Alcotest.(check (option int)) "empty pop" None (Vec.pop v)

let test_vec_swap_remove () =
  let v = Vec.of_array [| 10; 20; 30; 40 |] in
  check_int "removed" 20 (Vec.swap_remove v 1);
  check_int "len" 3 (Vec.length v);
  check_int "last moved in" 40 (Vec.get v 1)

let test_vec_truncate_clear () =
  let v = Vec.of_array [| 1; 2; 3; 4 |] in
  Vec.truncate v 2;
  check_int "truncated" 2 (Vec.length v);
  Vec.clear v;
  check_bool "cleared" true (Vec.is_empty v)

let test_vec_filter_in_place () =
  let v = Vec.of_array [| 1; 2; 3; 4; 5; 6 |] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (array int)) "evens in order" [| 2; 4; 6 |] (Vec.to_array v)

let test_vec_fold_exists_iteri () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  check_int "fold" 6 (Vec.fold ( + ) 0 v);
  check_bool "exists" true (Vec.exists (fun x -> x = 2) v);
  check_bool "not exists" false (Vec.exists (fun x -> x = 9) v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check_int "iteri count" 3 (List.length !acc)

let vec_model_qcheck =
  QCheck.Test.make ~name:"vec behaves like list under push/swap_remove" ~count:300
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun (is_push, x) ->
          if is_push || !model = [] then begin
            Vec.push v x;
            model := !model @ [ x ]
          end
          else begin
            let i = x mod List.length !model in
            let removed = Vec.swap_remove v i in
            let mi = List.nth !model i in
            if removed <> mi then QCheck.Test.fail_report "removed wrong element";
            (* model swap-remove *)
            let arr = Array.of_list !model in
            let last = arr.(Array.length arr - 1) in
            arr.(i) <- last;
            model := Array.to_list (Array.sub arr 0 (Array.length arr - 1))
          end)
        ops;
      Vec.to_array v = Array.of_list !model)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let test_hist_linear () =
  let h = Histogram.create ~hi:10.0 ~bins:10 () in
  Histogram.add h 0.5;
  Histogram.add h 9.5;
  Histogram.add h 42.0;
  (* clamped to last bin *)
  check_int "bin0" 1 (Histogram.bin_count h 0);
  check_int "bin9" 2 (Histogram.bin_count h 9);
  check_int "count" 3 (Histogram.count h)

let test_hist_log2 () =
  let h = Histogram.create_log2 ~bins:8 in
  Histogram.add h 1.0;
  Histogram.add h 3.0;
  Histogram.add h 1000.0;
  check_int "bin0 [1,2)" 1 (Histogram.bin_count h 0);
  check_int "bin1 [2,4)" 1 (Histogram.bin_count h 1);
  check_int "clamped top" 1 (Histogram.bin_count h 7)

let test_hist_bounds_fraction () =
  let h = Histogram.create ~hi:100.0 ~bins:10 () in
  let lo, hi = Histogram.bin_bounds h 3 in
  check_float "lo" 30.0 lo;
  check_float "hi" 40.0 hi;
  Histogram.addn h 5.0 3;
  Histogram.addn h 95.0 1;
  check_bool "fraction above 90" true (Float.abs (Histogram.fraction_above h 90.0 -. 0.25) < 1e-9)

let test_hist_cov_uniform () =
  let h = Histogram.create ~hi:4.0 ~bins:4 () in
  List.iter (fun x -> Histogram.add h x) [ 0.5; 1.5; 2.5; 3.5 ];
  check_float "uniform CoV" 0.0 (Histogram.coefficient_of_variation h)

(* ------------------------------------------------------------------ *)
(* Hdr_histogram                                                       *)

module H = Hdr_histogram

let test_hdr_empty () =
  let h = H.create () in
  check_int "count" 0 (H.count h);
  check_float "max" 0.0 (H.max_value h);
  check_float "quantile" 0.0 (H.quantile h 0.5);
  check_float "relative error" (1.0 /. 32.0) (H.relative_error h)

let test_hdr_basics () =
  let h = H.create () in
  List.iter (H.add h) [ 1.0; 2.0; 4.0; 8.0 ];
  H.addn h 100.0 2;
  check_int "count" 6 (H.count h);
  check_float "max exact" 100.0 (H.max_value h);
  check_bool "p50 near 4" true (H.p50 h >= 4.0 && H.p50 h <= 4.0 *. (1.0 +. H.relative_error h));
  check_bool "summary renders" true (String.length (H.summary h) > 0)

let test_hdr_restore_roundtrip () =
  let h = H.create ~unit_value:1e-3 ~sub:16 ~octaves:30 () in
  List.iter (H.add h) [ 0.0001; 0.5; 3.25; 777.0; 1e9 ];
  let h' =
    H.restore ~unit_value:(H.unit_value h) ~sub:(H.sub h) ~octaves:(H.octaves h)
      ~max_value:(H.max_value h) (H.nonzero h)
  in
  check_bool "roundtrip equal" true (H.equal h h')

let test_hdr_merge_mismatch () =
  let a = H.create ~sub:16 () and b = H.create ~sub:32 () in
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Hdr_histogram.merge: geometry mismatch") (fun () ->
      ignore (H.merge a b))

(* The documented error bound against an exact nearest-rank oracle:
   exact <= quantile <= exact * (1 + 1/sub), one float rounding each
   side, for samples above unit_value. *)
let hdr_quantile_qcheck =
  QCheck.Test.make ~name:"hdr quantile within bucket error of exact nearest-rank" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_range 2e-3 1e4)) (float_range 0.0 1.0))
    (fun (samples, q) ->
      let h = H.create () in
      List.iter (H.add h) samples;
      let sorted = Array.of_list (List.sort compare samples) in
      let n = Array.length sorted in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let exact = sorted.(rank - 1) in
      let est = H.quantile h q in
      if est < exact *. (1.0 -. 1e-9) then
        QCheck.Test.fail_reportf "quantile %g below exact %g at q=%g" est exact q;
      if est > exact *. (1.0 +. H.relative_error h +. 1e-9) then
        QCheck.Test.fail_reportf "quantile %g above bound for exact %g at q=%g" est exact q;
      true)

let hdr_merge_assoc_qcheck =
  QCheck.Test.make ~name:"hdr merge is associative and commutative" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 60) (float_range 1e-4 1e6))
        (list_of_size Gen.(0 -- 60) (float_range 1e-4 1e6))
        (list_of_size Gen.(0 -- 60) (float_range 1e-4 1e6)))
    (fun (xs, ys, zs) ->
      let mk l =
        let h = H.create () in
        List.iter (H.add h) l;
        h
      in
      let a = mk xs and b = mk ys and c = mk zs in
      let all = mk (xs @ ys @ zs) in
      H.equal (H.merge (H.merge a b) c) (H.merge a (H.merge b c))
      && H.equal (H.merge a b) (H.merge b a)
      && H.equal (H.merge (H.merge a b) c) all)

(* ------------------------------------------------------------------ *)
(* Table and Units                                                     *)

let test_table_render () =
  let t = Table.create ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "xxx"; "y" ];
  Table.add_row t [ "z" ];
  let s = Table.render t in
  check_bool "header present" true (String.length s > 0);
  check_bool "pads short rows" true (String.length (List.nth (String.split_on_char '\n' s) 3) > 0)

let test_table_too_many_cells () =
  let t = Table.create ~columns:[ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: more cells than columns")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_csv_quoting () =
  let t = Table.create ~columns:[ "a" ] in
  Table.add_row t [ "he,llo\"x" ];
  let csv = Table.to_csv t in
  check_bool "quoted" true (String.length csv > 0 && String.contains csv '"')

let test_table_cells () =
  Alcotest.(check string) "pct" "81.0%" (Table.cell_pct 0.81);
  Alcotest.(check string) "big float" "123" (Table.cell_f 123.4);
  Alcotest.(check string) "small float" "1.23" (Table.cell_f 1.234)

let test_units () =
  check_int "mib" (1024 * 1024) Units.mib;
  check_int "of_mib" (4 * 1024 * 1024) (Units.bytes_of_mib 4);
  check_float "mib_of_bytes" 4.0 (Units.mib_of_bytes (4 * 1024 * 1024));
  let s = Format.asprintf "%a" Units.pp_bytes (3 * Units.mib) in
  Alcotest.(check string) "pp" "3.0 MiB" s;
  check_float "year" (2.0 ** 25.0) Units.seconds_per_year

(* ------------------------------------------------------------------ *)
(* SVG charts                                                          *)

let test_svg_bar_chart () =
  let svg =
    Svg_chart.bar_chart ~title:"t" ~categories:[ "a"; "b" ]
      ~series:[ ("s1", [| 1.0; 2.0 |]); ("s2", [| 0.5; 0.25 |]) ]
      ()
  in
  check_bool "is svg" true (String.length svg > 100);
  check_bool "has rects" true
    (String.split_on_char '\n' svg |> List.exists (fun l -> String.length l > 5 && String.sub l 0 5 = "<rect"));
  check_bool "closes" true
    (let n = String.length svg in String.sub svg (n - 7) 6 = "</svg>")

let test_svg_bar_chart_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Svg_chart.bar_chart: series \"s\" length mismatch") (fun () ->
      ignore (Svg_chart.bar_chart ~title:"t" ~categories:[ "a" ] ~series:[ ("s", [| 1.; 2. |]) ] ()))

let test_svg_line_chart () =
  let svg =
    Svg_chart.line_chart ~title:"trace"
      ~series:[ ("pcm", [| (0.0, 1.0); (10.0, 5.0) |]) ]
      ()
  in
  check_bool "has path" true
    (String.split_on_char '\n' svg |> List.exists (fun l -> String.length l > 5 && String.sub l 0 5 = "<path"))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "kg_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "pareto min" `Quick test_rng_pareto_min;
          Alcotest.test_case "zipf range and skew" `Quick test_rng_zipf_range_and_skew;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "acc matches batch" `Quick test_stats_acc_matches_batch;
          Alcotest.test_case "normalize" `Quick test_stats_normalize;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "truncate/clear" `Quick test_vec_truncate_clear;
          Alcotest.test_case "filter_in_place" `Quick test_vec_filter_in_place;
          Alcotest.test_case "fold/exists/iteri" `Quick test_vec_fold_exists_iteri;
          q vec_model_qcheck;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "linear" `Quick test_hist_linear;
          Alcotest.test_case "log2" `Quick test_hist_log2;
          Alcotest.test_case "bounds/fraction" `Quick test_hist_bounds_fraction;
          Alcotest.test_case "uniform CoV" `Quick test_hist_cov_uniform;
        ] );
      ( "hdr_histogram",
        [
          Alcotest.test_case "empty" `Quick test_hdr_empty;
          Alcotest.test_case "basics" `Quick test_hdr_basics;
          Alcotest.test_case "restore roundtrip" `Quick test_hdr_restore_roundtrip;
          Alcotest.test_case "merge geometry mismatch" `Quick test_hdr_merge_mismatch;
          q hdr_quantile_qcheck;
          q hdr_merge_assoc_qcheck;
        ] );
      ( "svg",
        [
          Alcotest.test_case "bar chart" `Quick test_svg_bar_chart;
          Alcotest.test_case "series mismatch" `Quick test_svg_bar_chart_mismatch;
          Alcotest.test_case "line chart" `Quick test_svg_line_chart;
        ] );
      ( "table+units",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "csv quoting" `Quick test_table_csv_quoting;
          Alcotest.test_case "cells" `Quick test_table_cells;
          Alcotest.test_case "units" `Quick test_units;
        ] );
    ]
