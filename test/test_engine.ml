(* Engine tests: the domain pool, the persistent result store, and the
   headline determinism guarantee — the full figure set resolved on a
   multi-domain pool (cold and warm store) is field-for-field and
   byte-for-byte identical to a sequential uncached resolution.

   The determinism suite runs the complete experiment registry but at a
   tiny workload setting so `dune runtest` stays fast; set
   KG_ENGINE_OPTS=quick (CI does) to run it at the quick_opts scale the
   issue describes. *)

module E = Kg_sim.Experiments
module R = Kg_sim.Run
module D = Kg_workload.Descriptor
module GS = Kg_gc.Gc_stats
module Pool = Kg_engine.Pool
module Store = Kg_engine.Store
module Exec = Kg_engine.Exec

let check_int msg = Alcotest.(check int) msg
let check_bool msg = Alcotest.(check bool) msg
let check_str msg = Alcotest.(check string) msg

let check_float_bits msg a b =
  (* bit equality, so identical NaNs compare equal and -0.0 <> 0.0 *)
  Alcotest.(check int64) msg (Int64.bits_of_float a) (Int64.bits_of_float b)

let quick_mode = Sys.getenv_opt "KG_ENGINE_OPTS" = Some "quick"

let engine_opts =
  if quick_mode then E.quick_opts
  else { E.scale = 512; heap_scale = 8; cap_mb = 8; seed = 11 }

(* Cold-resolving the full matrix on a pool is dominated by domain-GC
   contention on small CI boxes, so the default (tiny) configuration
   uses a 2-wide cold pool; quick mode uses the full 4. The warm pass
   always runs 4-wide — store hits make it cheap at any width. *)
let cold_jobs = if quick_mode then 4 else 2

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "kg-engine-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (* Store.create mkdir-p's it *)
    d

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_values () =
  List.iter
    (fun jobs ->
      let p = Pool.create ~jobs () in
      let vals = Pool.run_all p (List.init 20 (fun i ~seed:_ -> i * i)) in
      check_bool
        (Printf.sprintf "jobs=%d: values in submission order" jobs)
        true
        (vals = List.init 20 (fun i -> i * i));
      let tot = Pool.totals p in
      check_int (Printf.sprintf "jobs=%d: submitted" jobs) 20 tot.Pool.submitted;
      check_int (Printf.sprintf "jobs=%d: completed" jobs) 20 tot.Pool.completed;
      check_int (Printf.sprintf "jobs=%d: failed" jobs) 0 tot.Pool.failed;
      check_bool
        (Printf.sprintf "jobs=%d: throughput positive" jobs)
        true
        (Pool.throughput tot > 0.0);
      Pool.shutdown p)
    [ 1; 3 ]

let test_pool_seeds () =
  (* per-job seeds depend on (pool seed, ticket) only: same list at any
     pool width, different list under a different pool seed *)
  let seeds_at ~seed jobs =
    let p = Pool.create ~seed ~jobs () in
    let ss = Pool.run_all p (List.init 16 (fun _ ~seed -> seed)) in
    Pool.shutdown p;
    ss
  in
  let s1 = seeds_at ~seed:7 1 in
  let s4 = seeds_at ~seed:7 4 in
  check_bool "same seeds at jobs=1 and jobs=4" true (s1 = s4);
  check_bool "same seeds on a second pool" true (s1 = seeds_at ~seed:7 1);
  check_bool "different pool seed, different job seeds" true (s1 <> seeds_at ~seed:8 1);
  check_int "seeds decorrelated (all distinct)" 16
    (List.length (List.sort_uniq compare s1))

let test_pool_cancel () =
  (* inline pool: deterministic — the failure settles before the next
     submission, so every later job is discarded as Cancelled *)
  let p = Pool.create ~jobs:1 () in
  let ran = ref 0 in
  let fs =
    (fun ~seed:_ -> incr ran)
    :: (fun ~seed:_ -> failwith "boom")
    :: List.init 5 (fun _ ~seed:_ -> incr ran)
  in
  (try
     ignore (Pool.run_all p fs);
     Alcotest.fail "run_all should re-raise"
   with Failure m -> check_str "original error, not Cancelled" "boom" m);
  check_int "jobs after the failure never ran" 1 !ran;
  let tot = Pool.totals p in
  check_int "one failure" 1 tot.Pool.failed;
  check_int "rest cancelled" 5 tot.Pool.cancelled;
  Pool.shutdown p;
  (* parallel pool: whatever the interleaving, run_all re-raises the
     real error, never Cancelled *)
  let p = Pool.create ~jobs:4 () in
  let fs = List.init 12 (fun i ~seed:_ -> if i = 3 then failwith "boom" else i) in
  (try
     ignore (Pool.run_all p fs);
     Alcotest.fail "run_all should re-raise"
   with Failure m -> check_str "real error surfaces from parallel pool" "boom" m);
  Pool.shutdown p

let test_pool_shutdown () =
  let p = Pool.create ~jobs:2 () in
  ignore (Pool.run_all p [ (fun ~seed:_ -> ()) ]);
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  (try
     ignore (Pool.submit p (fun ~seed:_ -> ()));
     Alcotest.fail "submit after shutdown should raise"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let compare_results msg (a : R.result) (b : R.result) =
  check_str (msg ^ ": bench") a.R.bench.D.name b.R.bench.D.name;
  check_str (msg ^ ": spec label") (R.label a.R.spec) (R.label b.R.spec);
  check_bool (msg ^ ": stats field-for-field") true (GS.equal a.R.stats b.R.stats);
  check_int (msg ^ ": alloc_bytes") a.R.alloc_bytes b.R.alloc_bytes;
  check_float_bits (msg ^ ": mem_pcm_write_bytes") a.R.mem_pcm_write_bytes
    b.R.mem_pcm_write_bytes;
  check_float_bits (msg ^ ": mem_dram_write_bytes") a.R.mem_dram_write_bytes
    b.R.mem_dram_write_bytes;
  check_float_bits (msg ^ ": mem_pcm_read_bytes") a.R.mem_pcm_read_bytes b.R.mem_pcm_read_bytes;
  check_float_bits (msg ^ ": mem_dram_read_bytes") a.R.mem_dram_read_bytes
    b.R.mem_dram_read_bytes;
  check_int (msg ^ ": phase array length") (Array.length a.R.pcm_writes_by_phase)
    (Array.length b.R.pcm_writes_by_phase);
  Array.iteri
    (fun i v -> check_float_bits (Printf.sprintf "%s: pcm_writes_by_phase[%d]" msg i) v
        b.R.pcm_writes_by_phase.(i))
    a.R.pcm_writes_by_phase;
  check_float_bits (msg ^ ": wear_cov") a.R.wear_cov b.R.wear_cov;
  check_float_bits (msg ^ ": migration_pcm_bytes") a.R.migration_pcm_bytes
    b.R.migration_pcm_bytes;
  check_float_bits (msg ^ ": wp_dram_mb") a.R.wp_dram_mb b.R.wp_dram_mb;
  check_float_bits (msg ^ ": time_s") a.R.time_s b.R.time_s;
  check_float_bits (msg ^ ": edp") a.R.edp b.R.edp;
  (match (a.R.energy, b.R.energy) with
  | None, None -> ()
  | Some ea, Some eb ->
    check_float_bits (msg ^ ": energy total") (Kg_sim.Energy.total_j ea)
      (Kg_sim.Energy.total_j eb)
  | _ -> Alcotest.fail (msg ^ ": energy presence differs"));
  check_float_bits (msg ^ ": dram_avg_mb") a.R.dram_avg_mb b.R.dram_avg_mb;
  check_float_bits (msg ^ ": dram_max_mb") a.R.dram_max_mb b.R.dram_max_mb;
  check_float_bits (msg ^ ": pcm_avg_mb") a.R.pcm_avg_mb b.R.pcm_avg_mb;
  check_float_bits (msg ^ ": pcm_max_mb") a.R.pcm_max_mb b.R.pcm_max_mb;
  check_float_bits (msg ^ ": mature_dram_avg_mb") a.R.mature_dram_avg_mb
    b.R.mature_dram_avg_mb;
  check_float_bits (msg ^ ": meta_mb") a.R.meta_mb b.R.meta_mb;
  check_int (msg ^ ": trace length") (List.length a.R.trace) (List.length b.R.trace);
  check_bool (msg ^ ": trace samples") true (a.R.trace = b.R.trace);
  check_bool (msg ^ ": check_violations") true (a.R.check_violations = b.R.check_violations);
  match (a.R.serve, b.R.serve) with
  | None, None -> ()
  | Some sa, Some sb ->
    let module H = Kg_util.Hdr_histogram in
    check_int (msg ^ ": serve requests") sa.R.requests sb.R.requests;
    check_float_bits (msg ^ ": serve rate") sa.R.rate sb.R.rate;
    check_int (msg ^ ": serve t1_hits") sa.R.t1_hits sb.R.t1_hits;
    check_int (msg ^ ": serve t2_hits") sa.R.t2_hits sb.R.t2_hits;
    check_int (msg ^ ": serve backend_fills") sa.R.backend_fills sb.R.backend_fills;
    check_int (msg ^ ": serve sessions_churned") sa.R.sessions_churned sb.R.sessions_churned;
    check_bool (msg ^ ": serve pause_hist") true (H.equal sa.R.pause_hist sb.R.pause_hist);
    check_bool (msg ^ ": serve latency_hist") true
      (H.equal sa.R.latency_hist sb.R.latency_hist)
  | _ -> Alcotest.fail (msg ^ ": serve presence differs")

let o = engine_opts

let test_store_roundtrip_count () =
  (* trace sampling and the heap auditor on, so the optional fields are
     non-trivially populated *)
  let r =
    R.run ~seed:o.E.seed ~scale:o.E.scale ~heap_scale:o.E.heap_scale ~cap_mb:o.E.cap_mb
      ~trace:true ~check:true ~mode:R.Count R.kg_w (D.find "pr")
  in
  check_bool "trace populated" true (r.R.trace <> []);
  let r' = Store.of_json (Store.to_json r) in
  compare_results "count round-trip" r r'

let test_store_roundtrip_simulate () =
  let bench = List.hd D.simulated in
  let r =
    R.run ~seed:o.E.seed ~scale:o.E.scale ~heap_scale:o.E.heap_scale ~cap_mb:o.E.cap_mb
      ~mode:R.Simulate R.kg_w bench
  in
  check_bool "energy present" true (r.R.energy <> None);
  let r' = Store.of_json (Store.to_json r) in
  compare_results "simulate round-trip" r r'

let test_store_roundtrip_serve () =
  let r = E.run_job o (E.job ~serve:512 R.Count R.kg_w (D.find "pjbb")) in
  (match r.R.serve with
  | None -> Alcotest.fail "serve metrics missing from a serve run"
  | Some s ->
    check_bool "requests served" true (s.R.requests > 0);
    check_bool "latency histogram populated" true
      (Kg_util.Hdr_histogram.count s.R.latency_hist = s.R.requests));
  let r' = Store.of_json (Store.to_json r) in
  compare_results "serve round-trip" r r'

let test_store_key () =
  let j = E.job R.Count R.kg_w (D.find "fop") in
  let k = Store.key ~opts:o j in
  check_str "key is stable" k (Store.key ~opts:o j);
  check_bool "key is versioned" true
    (String.length k > 3 && String.sub k 0 2 = Printf.sprintf "v%d" Store.format_version);
  check_bool "seed is part of the key" true
    (k <> Store.key ~opts:{ o with E.seed = o.E.seed + 1 } j);
  check_bool "trace flag is part of the key" true
    (k <> Store.key ~opts:o (E.job ~trace:true R.Count R.kg_w (D.find "fop")));
  check_bool "mode is part of the key" true
    (k <> Store.key ~opts:o (E.job R.Simulate R.kg_w (D.find "fop")));
  check_bool "spec is part of the key" true
    (k <> Store.key ~opts:o (E.job R.Count R.kg_n (D.find "fop")));
  check_bool "serve rate is part of the key" true
    (k <> Store.key ~opts:o (E.job ~serve:512 R.Count R.kg_w (D.find "fop")))

let test_store_find_store () =
  let s = Store.create ~dir:(temp_dir ()) () in
  let j = E.job R.Count R.kg_n (D.find "fop") in
  let k = Store.key ~opts:o j in
  check_bool "empty store misses" true (Store.find s k = None);
  let r = E.run_job o j in
  Store.store s k r;
  (match Store.find s k with
  | None -> Alcotest.fail "stored entry not found"
  | Some r' -> compare_results "store round-trip" r r');
  check_bool "other key still misses" true
    (Store.find s (Store.key ~opts:{ o with E.seed = 999 } j) = None)

let test_store_corruption () =
  let s = Store.create ~dir:(temp_dir ()) () in
  let j = E.job R.Count R.kg_n (D.find "fop") in
  let k = Store.key ~opts:o j in
  let r = E.run_job o j in
  (* truncated garbage *)
  Store.store s k r;
  let oc = open_out (Store.path s k) in
  output_string oc "{\"store\":\"kingsguard-result\"";
  close_out oc;
  check_bool "corrupt entry reads as a miss" true (Store.find s k = None);
  check_bool "corrupt entry is removed" false (Sys.file_exists (Store.path s k));
  (* valid JSON, wrong format version *)
  Store.store s k r;
  let lines =
    let ic = open_in (Store.path s k) in
    let a = input_line ic in
    let b = input_line ic in
    close_in ic;
    (a, b)
  in
  let oc = open_out (Store.path s k) in
  output_string oc
    (Printf.sprintf "{\"store\":\"kingsguard-result\",\"v\":%d,\"key\":\"old\"}\n"
       (Store.format_version + 1));
  output_string oc (snd lines);
  close_out oc;
  check_bool "old-version entry reads as a miss" true (Store.find s k = None);
  check_bool "old-version entry is removed" false (Sys.file_exists (Store.path s k));
  (* a fresh store call repopulates *)
  Store.store s k r;
  check_bool "repopulated entry hits" true (Store.find s k <> None)

let test_exec_recompute_on_corruption () =
  (* the engine recomputes through a corrupted entry instead of dying *)
  let dir = temp_dir () in
  let j = E.job R.Count R.kg_w (D.find "fop") in
  let ex = Exec.create ~cache_dir:dir o in
  let r = Exec.fetch ex j in
  check_int "first resolution computes" 1 (Exec.misses ex);
  Exec.shutdown ex;
  let s = Store.create ~dir () in
  let oc = open_out (Store.path s (Store.key ~opts:o j)) in
  output_string oc "not json at all\n";
  close_out oc;
  let ex = Exec.create ~cache_dir:dir o in
  let r' = Exec.fetch ex j in
  check_int "corrupted entry recomputed, no crash" 1 (Exec.misses ex);
  check_int "corruption is a miss, not a hit" 0 (Exec.hits ex);
  compare_results "recomputed equals original" r r';
  check_bool "store healed" true (Store.find s (Store.key ~opts:o j) <> None);
  Exec.shutdown ex

(* ------------------------------------------------------------------ *)
(* Determinism: parallel + store == sequential, cold and warm          *)

let all_ids = List.map (fun (e : E.experiment) -> e.E.id) E.all

let render_all env =
  List.map (fun (e : E.experiment) -> (e.E.id, Kg_util.Table.render (e.E.table env))) E.all

let test_determinism () =
  let dir = temp_dir () in
  (* cold store, parallel pool *)
  let ex4 = Exec.create ~jobs:cold_jobs ~cache_dir:dir o in
  Exec.prefetch_experiments ex4 all_ids;
  check_int "cold pass: everything computed" 0 (Exec.hits ex4);
  check_bool "cold pass: something computed" true (Exec.misses ex4 > 0);
  let tables4 = render_all (Exec.env ex4) in
  (* cold, sequential, no store at all *)
  let ex1 = Exec.create ~jobs:1 ~cache:false o in
  let tables1 = render_all (Exec.env ex1) in
  List.iter2
    (fun (id4, t4) (id1, t1) ->
      check_str "registry order" id4 id1;
      check_str
        (Printf.sprintf "%s: table byte-identical, jobs=%d vs jobs=1" id4 cold_jobs)
        t1 t4)
    tables4 tables1;
  (* field-for-field on every job the figure set declares *)
  let planned = List.concat_map (fun (e : E.experiment) -> e.E.runs o) E.all in
  check_bool "figure set declares runs" true (planned <> []);
  List.iter
    (fun j ->
      compare_results
        (Printf.sprintf "planned job %s" (E.job_key o j))
        (Exec.fetch ex1 j) (Exec.fetch ex4 j))
    planned;
  Exec.shutdown ex1;
  Exec.shutdown ex4;
  (* warm store, fresh engine: zero recomputation, identical bytes *)
  let ex4w = Exec.create ~jobs:4 ~cache_dir:dir o in
  Exec.prefetch_experiments ex4w all_ids;
  check_int "warm pass: zero recomputed runs" 0 (Exec.misses ex4w);
  check_bool "warm pass: served from the store" true (Exec.hits ex4w > 0);
  List.iter2
    (fun (id, cold) (idw, warm) ->
      check_str "registry order (warm)" id idw;
      check_str (id ^ ": table byte-identical, warm vs cold") cold warm)
    tables4
    (render_all (Exec.env ex4w));
  Exec.shutdown ex4w

(* ------------------------------------------------------------------ *)
(* Byte-identity against the recorded pre-refactor figure set.

   test/fixtures/pre_refactor/ holds every table rendered by the code
   as it stood before the batched memory-port refactor, generated with
     kingsguard experiments --scale 512 --heap-scale 8 --cap-mb 8 \
       --seed 11 --no-cache --out test/fixtures/pre_refactor
   The options are pinned here (not taken from KG_ENGINE_OPTS) so the
   comparison always runs at the scale the fixture was recorded at. *)

let fixture_opts = { E.scale = 512; heap_scale = 8; cap_mb = 8; seed = 11 }
let fixture_dir = Filename.concat "fixtures" "pre_refactor"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_pre_refactor_fixture () =
  let ex = Exec.create ~jobs:cold_jobs ~cache:false fixture_opts in
  Exec.prefetch_experiments ex all_ids;
  let env = Exec.env ex in
  List.iter
    (fun (e : E.experiment) ->
      let expected = read_file (Filename.concat fixture_dir (e.E.id ^ ".txt")) in
      check_str (e.E.id ^ ": byte-identical to pre-refactor fixture") expected
        (Kg_util.Table.render (e.E.table env)))
    E.all;
  Exec.shutdown ex

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kg_engine"
    [
      ( "pool",
        [
          Alcotest.test_case "values in order" `Quick test_pool_values;
          Alcotest.test_case "deterministic seeds" `Quick test_pool_seeds;
          Alcotest.test_case "cancel on first error" `Quick test_pool_cancel;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
        ] );
      ( "store",
        [
          Alcotest.test_case "count round-trip (trace+check)" `Quick test_store_roundtrip_count;
          Alcotest.test_case "simulate round-trip (energy)" `Quick test_store_roundtrip_simulate;
          Alcotest.test_case "serve round-trip (histograms)" `Quick test_store_roundtrip_serve;
          Alcotest.test_case "key scheme" `Quick test_store_key;
          Alcotest.test_case "find/store" `Quick test_store_find_store;
          Alcotest.test_case "corruption and version invalidation" `Quick test_store_corruption;
          Alcotest.test_case "engine recomputes through corruption" `Quick
            test_exec_recompute_on_corruption;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel == sequential, cold and warm" `Slow test_determinism;
          Alcotest.test_case "byte-identical to pre-refactor fixture" `Slow
            test_pre_refactor_fixture;
        ] );
    ]
