(* Behaviour oracle for the fused cache kernel: the pre-kernel
   (PR 3-era) cache and hierarchy, kept verbatim as simple, obviously
   correct code — per-way state in four separate arrays, per-set LRU
   clocks, a recursive per-access demand/writeback walk, one float add
   per level visit, and one controller call per memory event.

   test_cache.ml drives random access streams through this and through
   Kg_cache.Hierarchy and asserts identical stats, writeback sequences
   and controller counters, which is what licenses every hot-path trick
   in the real kernel (fused probe_fill, global LRU clock, same-line
   run coalescing, spill batching, visit-counter latency folding).

   The single deliberate difference from the PR 3 source: invalidation
   emits writebacks in ascending way-index order, matching the order
   Cache.invalidate_all now documents (the old code consed ascending
   and so returned the list reversed). *)

module Cache = struct
  type writeback = { wb_addr : int; wb_tag : int }

  type t = {
    line_bits : int;
    set_mask : int;
    ways : int;
    latency_ns : float;
    tags : int array;
    dirty : Bytes.t;
    phase : int array;
    lru : int array; (* per-way last-use stamp *)
    clock : int array; (* per-set use counter *)
    mutable hits : int;
    mutable misses : int;
    mutable writebacks : int;
  }

  let log2 n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    go 0 n

  let create ~size ~ways ~line_size ~latency_ns =
    let sets = size / (ways * line_size) in
    {
      line_bits = log2 line_size;
      set_mask = sets - 1;
      ways;
      latency_ns;
      tags = Array.make (sets * ways) (-1);
      dirty = Bytes.make (sets * ways) '\000';
      phase = Array.make (sets * ways) 0;
      lru = Array.make (sets * ways) 0;
      clock = Array.make sets 0;
      hits = 0;
      misses = 0;
      writebacks = 0;
    }

  let touch t set way =
    t.clock.(set) <- t.clock.(set) + 1;
    t.lru.((set * t.ways) + way) <- t.clock.(set)

  let probe t ~addr ~write ~tag =
    let block = addr lsr t.line_bits in
    let set = block land t.set_mask in
    let base = set * t.ways in
    let rec find way =
      if way = t.ways then -1
      else if t.tags.(base + way) = block then way
      else find (way + 1)
    in
    let way = find 0 in
    if way >= 0 then begin
      t.hits <- t.hits + 1;
      touch t set way;
      if write then begin
        Bytes.set t.dirty (base + way) '\001';
        t.phase.(base + way) <- tag
      end;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      false
    end

  let fill t ~addr ~write ~tag =
    let block = addr lsr t.line_bits in
    let set = block land t.set_mask in
    let base = set * t.ways in
    (* Victim: an invalid way if present, else least-recently used. *)
    let victim = ref 0 in
    let best = ref max_int in
    (try
       for way = 0 to t.ways - 1 do
         if t.tags.(base + way) = -1 then begin
           victim := way;
           raise Exit
         end;
         if t.lru.(base + way) < !best then begin
           best := t.lru.(base + way);
           victim := way
         end
       done
     with Exit -> ());
    let idx = base + !victim in
    let wb =
      if t.tags.(idx) >= 0 && Bytes.get t.dirty idx = '\001' then begin
        t.writebacks <- t.writebacks + 1;
        Some { wb_addr = t.tags.(idx) lsl t.line_bits; wb_tag = t.phase.(idx) }
      end
      else None
    in
    t.tags.(idx) <- block;
    Bytes.set t.dirty idx (if write then '\001' else '\000');
    t.phase.(idx) <- (if write then tag else 0);
    touch t set !victim;
    wb

  let invalidate_all t =
    let acc = ref [] in
    for idx = Array.length t.tags - 1 downto 0 do
      if t.tags.(idx) >= 0 && Bytes.get t.dirty idx = '\001' then
        acc := { wb_addr = t.tags.(idx) lsl t.line_bits; wb_tag = t.phase.(idx) } :: !acc;
      t.tags.(idx) <- -1;
      Bytes.set t.dirty idx '\000'
    done;
    !acc

  let stats t : Kg_cache.Cache.stats =
    { hits = t.hits; misses = t.misses; writebacks = t.writebacks }
end

type t = {
  levels : Cache.t array;
  ctrl : Kg_cache.Controller.t;
  line_size : int;
  mutable phase : int;
  mutable accesses : int;
  mutable hit_time_ns : float;
  mutable drained : bool;
}

let create ?(l1 = Kg_cache.Hierarchy.default_l1) ?(l2 = Kg_cache.Hierarchy.default_l2)
    ?(l3 = Kg_cache.Hierarchy.default_l3) ?(line_size = 64) ~controller () =
  let mk (c : Kg_cache.Hierarchy.level_config) =
    Cache.create ~size:c.size ~ways:c.ways ~line_size ~latency_ns:c.latency_ns
  in
  {
    levels = [| mk l1; mk l2; mk l3 |];
    ctrl = controller;
    line_size;
    phase = 0;
    accesses = 0;
    hit_time_ns = 0.0;
    drained = false;
  }

let set_phase t p = t.phase <- p

let nlevels = 3

(* Install a dirty victim one level down. A writeback carries a full
   line, so on miss we fill without fetching from below. *)
let rec writeback t lvl (wb : Cache.writeback) =
  if lvl >= nlevels then Kg_cache.Controller.line_write t.ctrl wb.Cache.wb_addr ~tag:wb.Cache.wb_tag
  else begin
    let c = t.levels.(lvl) in
    if not (Cache.probe c ~addr:wb.Cache.wb_addr ~write:true ~tag:wb.Cache.wb_tag) then
      match Cache.fill c ~addr:wb.Cache.wb_addr ~write:true ~tag:wb.Cache.wb_tag with
      | Some victim -> writeback t (lvl + 1) victim
      | None -> ()
  end

(* Demand access: on a miss, fetch the line from the next level (a read,
   regardless of the demand type) and then fill. *)
let rec demand t lvl addr write tag =
  if lvl >= nlevels then Kg_cache.Controller.line_read t.ctrl addr
  else begin
    let c = t.levels.(lvl) in
    t.hit_time_ns <- t.hit_time_ns +. c.Cache.latency_ns;
    if not (Cache.probe c ~addr ~write ~tag) then begin
      demand t (lvl + 1) addr false tag;
      match Cache.fill c ~addr ~write ~tag with
      | Some victim -> writeback t (lvl + 1) victim
      | None -> ()
    end
  end

let check_open t =
  if t.drained then invalid_arg "Reference_cache: access after drain"

let read t addr =
  check_open t;
  t.accesses <- t.accesses + 1;
  demand t 0 addr false t.phase

let write t addr =
  check_open t;
  t.accesses <- t.accesses + 1;
  demand t 0 addr true t.phase

let split_lines t addr size write tag =
  if size > 0 then begin
    let first = addr / t.line_size in
    let last = (addr + size - 1) / t.line_size in
    for line = first to last do
      let a = line * t.line_size in
      t.accesses <- t.accesses + 1;
      demand t 0 a write tag
    done
  end

let access_range t ~addr ~size ~write =
  check_open t;
  split_lines t addr size write t.phase

let access_run t (b : Kg_mem.Port.batch) =
  check_open t;
  for i = 0 to b.Kg_mem.Port.len - 1 do
    let m = b.Kg_mem.Port.metas.(i) in
    split_lines t b.Kg_mem.Port.addrs.(i) b.Kg_mem.Port.sizes.(i)
      (Kg_mem.Port.is_write m) (Kg_mem.Port.tag_of m)
  done

let drain t =
  if not t.drained then begin
    for lvl = 0 to nlevels - 1 do
      let wbs = Cache.invalidate_all t.levels.(lvl) in
      List.iter (fun wb -> writeback t (lvl + 1) wb) wbs
    done;
    t.drained <- true
  end

let reopen t = t.drained <- false
let level_stats t = Array.map Cache.stats t.levels
let hit_time_ns t = t.hit_time_ns
let accesses t = t.accesses
