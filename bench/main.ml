(* Benchmark harness.

   Part 1 microbenchmarks the simulator's hot primitives with Bechamel
   (one Test.make per primitive): these bound how large a workload the
   experiment suite can replay.

   Part 2 regenerates every table and figure of the paper — one bench
   entry per experiment — timing each regeneration and printing the
   rows the paper reports. By default it runs at a reduced scale so the
   whole harness finishes in a few minutes; pass --full (or set
   KG_BENCH_FULL=1) for the EXPERIMENTS.md setting.

   Part 3 benchmarks the experiment engine itself: regenerating one
   figure sequentially versus on a --jobs-wide domain pool, both with
   the store disabled so every sample really recomputes the matrix. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: primitive microbenchmarks                                   *)

let bench_rng () =
  let rng = Kg_util.Rng.of_seed 1 in
  Test.make ~name:"rng-draw" (Staged.stage (fun () -> ignore (Kg_util.Rng.int rng 64)))

let bench_cache () =
  let map = Kg_mem.Address_map.pcm_only () in
  let ctrl = Kg_cache.Controller.create ~map ~line_size:64 () in
  let hier = Kg_cache.Hierarchy.create ~controller:ctrl () in
  let rng = Kg_util.Rng.of_seed 2 in
  Test.make ~name:"cache-hierarchy-access"
    (Staged.stage (fun () ->
         Kg_cache.Hierarchy.write hier (Kg_util.Rng.int rng (64 * 1024 * 1024))))

let bench_wear () =
  let wear = Kg_mem.Wear.create ~size:(256 * 1024 * 1024) () in
  let rng = Kg_util.Rng.of_seed 3 in
  Test.make ~name:"wear-record-write"
    (Staged.stage (fun () ->
         Kg_mem.Wear.record_write wear (Kg_util.Rng.int rng (1024 * 1024) * 256)))

let bench_barrier () =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Kg_gc.Gc_config.make ~heap_mb:512 Kg_gc.Gc_config.kg_w_default in
  let rt = Kg_gc.Runtime.create ~config:cfg ~mem:(Kg_gc.Mem_iface.null ()) ~map ~seed:4 () in
  let o = Kg_gc.Runtime.alloc_boot rt ~size:64 ~heat:Kg_heap.Object_model.Cold ~ref_fields:2 in
  Test.make ~name:"write-barrier-ref"
    (Staged.stage (fun () -> Kg_gc.Runtime.write_ref rt ~src:o ~tgt:o))

let bench_alloc () =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Kg_gc.Gc_config.make ~heap_mb:64 Kg_gc.Gc_config.kg_w_default in
  let rt = Kg_gc.Runtime.create ~config:cfg ~mem:(Kg_gc.Mem_iface.null ()) ~map ~seed:5 () in
  Test.make ~name:"alloc-with-gc-churn"
    (Staged.stage (fun () ->
         ignore
           (Kg_gc.Runtime.alloc rt ~size:64 ~heat:Kg_heap.Object_model.Cold
              ~death:(Kg_gc.Runtime.now rt +. 100_000.0)
              ~ref_fields:2)))

let ols_report results =
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let est = match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan in
      let r2 = match Analyze.OLS.r_square r with Some r2 -> r2 | None -> nan in
      Printf.printf "  %-40s %10.1f ns/op  (r2=%.3f)\n%!" name est r2)
    (List.sort compare rows)

let run_micro () =
  print_endline "== primitive microbenchmarks (Bechamel OLS, ns/op) ==";
  let tests =
    Test.make_grouped ~name:"primitives" ~fmt:"%s/%s"
      [ bench_rng (); bench_cache (); bench_wear (); bench_barrier (); bench_alloc () ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  ols_report results

(* ------------------------------------------------------------------ *)
(* Part 2: one bench per table/figure                                  *)

let run_experiments full =
  let module E = Kg_sim.Experiments in
  let opts =
    if full then E.default_opts else { E.scale = 64; heap_scale = 5; cap_mb = 32; seed = 42 }
  in
  Printf.printf "\n== experiment regeneration (%s scale) ==\n%!"
    (if full then "full" else "reduced");
  let env = E.make_env opts in
  List.iter
    (fun (e : E.experiment) ->
      let t0 = Unix.gettimeofday () in
      let table = e.E.table env in
      Printf.printf "\n-- %s : %s [%.1f s] --\n%s%!" e.E.id e.E.doc
        (Unix.gettimeofday () -. t0)
        (Kg_util.Table.render table))
    E.all

(* ------------------------------------------------------------------ *)
(* Part 3: engine scaling — sequential vs parallel figure regeneration *)

let engine_figure = "fig2"

let bench_engine_regen ~name ~jobs opts =
  let module E = Kg_sim.Experiments in
  Test.make ~name
    (Staged.stage (fun () ->
         (* A fresh uncached engine per sample: every iteration resolves
            the figure's full run matrix from scratch. *)
         let ex = Kg_engine.Exec.create ~jobs ~cache:false opts in
         Kg_engine.Exec.prefetch_experiments ex [ engine_figure ];
         let e = List.find (fun (e : E.experiment) -> e.E.id = engine_figure) E.all in
         ignore (e.E.table (Kg_engine.Exec.env ex));
         Kg_engine.Exec.shutdown ex))

let run_engine jobs =
  let module E = Kg_sim.Experiments in
  let opts = { E.scale = 64; heap_scale = 5; cap_mb = 32; seed = 42 } in
  Printf.printf "\n== engine scaling: %s sequential vs %d-domain pool (Bechamel OLS) ==\n%!"
    engine_figure jobs;
  let tests =
    Test.make_grouped ~name:"engine" ~fmt:"%s/%s"
      [
        bench_engine_regen ~name:(engine_figure ^ "-seq") ~jobs:1 opts;
        bench_engine_regen ~name:(Printf.sprintf "%s-jobs%d" engine_figure jobs) ~jobs opts;
      ]
  in
  let cfg = Benchmark.cfg ~limit:8 ~quota:(Time.second 2.0) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  ols_report results

let () =
  let full =
    Array.exists (( = ) "--full") Sys.argv || Sys.getenv_opt "KG_BENCH_FULL" = Some "1"
  in
  let jobs =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = "--jobs" then int_of_string_opt Sys.argv.(i + 1)
      else find (i + 1)
    in
    match find 0 with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  run_micro ();
  run_experiments full;
  run_engine jobs
