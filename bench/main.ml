(* Benchmark harness.

   Part 1 microbenchmarks the simulator's hot primitives with Bechamel
   (one Test.make per primitive): these bound how large a workload the
   experiment suite can replay.

   Part 2 regenerates every table and figure of the paper — one bench
   entry per experiment — timing each regeneration and printing the
   rows the paper reports. By default it runs at a reduced scale so the
   whole harness finishes in a few minutes; pass --full (or set
   KG_BENCH_FULL=1) for the EXPERIMENTS.md setting.

   Part 3 benchmarks the experiment engine itself: regenerating one
   figure sequentially versus on a --jobs-wide domain pool, both with
   the store disabled so every sample really recomputes the matrix.

   Part 4 benchmarks the batched memory port: one fixed synthetic
   access stream replayed through the Null, Counting and Cache_sim
   sink stacks, against a per-access closure-record interface shaped
   like the port's predecessor. Pass --ports to run only this part
   (the CI smoke step does), and --ports-json FILE to write the
   accesses/sec table as JSON (BENCH_port_sinks.json in the repo is a
   checked-in trajectory point from this). --assert-port-speedup makes
   the process exit nonzero if port/cache-sim falls below 0.95x the
   closure baseline — a noise-tolerant guard against reintroducing the
   pre-kernel port dispatch regression.

   Part 5 benchmarks the fused cache kernel on three characteristic
   streams (uniform random storm, sequential streaming writes, an
   L1-resident hot set), closure vs port cache-sim stacks. The
   streaming and hot streams are where the batch path's same-line run
   coalescer and lookahead prefetch pay off; the random storm is bound
   by host-memory latency on the simulator's own L2/L3 metadata and
   moves little. Pass --cache-kernel to run only this part;
   BENCH_cache_kernel.json is a checked-in trajectory point.

   Part 6 benchmarks the epoch-parallel multicore mutators: one
   Count-mode run per domain count in {1, 2, 4}, timing the wall clock
   of the Domain-parallel path against the inline interleaved oracle
   (same op streams, no parallel generation) and reporting the
   simulated execution-time scaling. Pass --parallel-mutators to run
   only this part, and --parallel-json FILE for the JSON trajectory
   point (BENCH_parallel_mutators.json in the repo).

   Part 7 benchmarks the flat-word heap: the packed Bigarray object
   tables against the record-per-object store they replaced, on three
   kernels shaped like the simulator's hot loops (store build,
   mark/sweep metadata sweeps, and a liveness-filtered walk feeding
   the counting port). Pass --heap-words to run only this part,
   --heap-words-json FILE for the JSON trajectory point
   (BENCH_heap_words.json in the repo), and --assert-heap-speedup to
   exit nonzero if the counting-port kernel falls below 1.1x the
   record baseline.

   Part 8 benchmarks the domain-parallel collection phases: one
   Count-mode KG-W run at 4 domains with the collector planning its
   phases on the worker-domain team, against the identical run with
   the inline collector. The pair doubles as a differential check
   (every Gc_stats counter must match bit-for-bit; divergence exits
   nonzero) and reports the modeled GC-phase time reduction. Pass
   --parallel-gc to run only this part, --parallel-gc-json FILE for
   the JSON trajectory point (BENCH_parallel_gc.json in the repo), and
   --assert-gc-speedup to exit nonzero if the modeled speedup falls
   below 1.5x.

   Part 9 benchmarks the server-scale serve mutator: a KG-W run of the
   request/response workload at an offered-rate sweep, reporting wall
   clock, request throughput and the two SLO histograms
   (per-collection GC pauses and per-request latency). The sweep is
   followed by an oracle differential at 2 domains with the team
   collector on — every Gc_stats counter, request counter and
   histogram bucket must match the inline oracle bit-for-bit;
   divergence exits nonzero. Pass --serve to run only this part,
   --serve-json FILE for the JSON trajectory point (BENCH_serve.json
   in the repo), and --assert-serve-histogram to exit nonzero if any
   rate's pause profile is degenerate (max pause > P50 > 0 must
   hold). *)

open Bechamel
open Toolkit
module Port = Kg_mem.Port

(* ------------------------------------------------------------------ *)
(* Part 1: primitive microbenchmarks                                   *)

let bench_rng () =
  let rng = Kg_util.Rng.of_seed 1 in
  Test.make ~name:"rng-draw" (Staged.stage (fun () -> ignore (Kg_util.Rng.int rng 64)))

let bench_cache () =
  let map = Kg_mem.Address_map.pcm_only () in
  let ctrl = Kg_cache.Controller.create ~map ~line_size:64 () in
  let hier = Kg_cache.Hierarchy.create ~controller:ctrl () in
  let rng = Kg_util.Rng.of_seed 2 in
  Test.make ~name:"cache-hierarchy-access"
    (Staged.stage (fun () ->
         Kg_cache.Hierarchy.write hier (Kg_util.Rng.int rng (64 * 1024 * 1024))))

let bench_wear () =
  let wear = Kg_mem.Wear.create ~size:(256 * 1024 * 1024) () in
  let rng = Kg_util.Rng.of_seed 3 in
  Test.make ~name:"wear-record-write"
    (Staged.stage (fun () ->
         Kg_mem.Wear.record_write wear (Kg_util.Rng.int rng (1024 * 1024) * 256)))

let bench_barrier () =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Kg_gc.Gc_config.make ~heap_mb:512 Kg_gc.Gc_config.kg_w_default in
  let rt = Kg_gc.Runtime.create ~config:cfg ~mem:(Kg_gc.Mem_iface.null ()) ~map ~seed:4 () in
  let o = Kg_gc.Runtime.alloc_boot rt ~size:64 ~heat:Kg_heap.Object_model.Cold ~ref_fields:2 in
  Test.make ~name:"write-barrier-ref"
    (Staged.stage (fun () -> Kg_gc.Runtime.write_ref rt ~src:o ~tgt:o))

let bench_alloc () =
  let map = Kg_mem.Address_map.hybrid () in
  let cfg = Kg_gc.Gc_config.make ~heap_mb:64 Kg_gc.Gc_config.kg_w_default in
  let rt = Kg_gc.Runtime.create ~config:cfg ~mem:(Kg_gc.Mem_iface.null ()) ~map ~seed:5 () in
  Test.make ~name:"alloc-with-gc-churn"
    (Staged.stage (fun () ->
         ignore
           (Kg_gc.Runtime.alloc rt ~size:64 ~heat:Kg_heap.Object_model.Cold
              ~death:(Kg_gc.Runtime.now rt +. 100_000.0)
              ~ref_fields:2)))

let ols_report results =
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let est = match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan in
      let r2 = match Analyze.OLS.r_square r with Some r2 -> r2 | None -> nan in
      Printf.printf "  %-40s %10.1f ns/op  (r2=%.3f)\n%!" name est r2)
    (List.sort compare rows)

let run_micro () =
  print_endline "== primitive microbenchmarks (Bechamel OLS, ns/op) ==";
  let tests =
    Test.make_grouped ~name:"primitives" ~fmt:"%s/%s"
      [ bench_rng (); bench_cache (); bench_wear (); bench_barrier (); bench_alloc () ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  ols_report results

(* ------------------------------------------------------------------ *)
(* Part 2: one bench per table/figure                                  *)

let run_experiments full =
  let module E = Kg_sim.Experiments in
  let opts =
    if full then E.default_opts else { E.scale = 64; heap_scale = 5; cap_mb = 32; seed = 42 }
  in
  Printf.printf "\n== experiment regeneration (%s scale) ==\n%!"
    (if full then "full" else "reduced");
  let env = E.make_env opts in
  List.iter
    (fun (e : E.experiment) ->
      let t0 = Unix.gettimeofday () in
      let table = e.E.table env in
      Printf.printf "\n-- %s : %s [%.1f s] --\n%s%!" e.E.id e.E.doc
        (Unix.gettimeofday () -. t0)
        (Kg_util.Table.render table))
    E.all

(* ------------------------------------------------------------------ *)
(* Part 3: engine scaling — sequential vs parallel figure regeneration *)

let engine_figure = "fig2"

let bench_engine_regen ~name ~jobs opts =
  let module E = Kg_sim.Experiments in
  Test.make ~name
    (Staged.stage (fun () ->
         (* A fresh uncached engine per sample: every iteration resolves
            the figure's full run matrix from scratch. *)
         let ex = Kg_engine.Exec.create ~jobs ~cache:false opts in
         Kg_engine.Exec.prefetch_experiments ex [ engine_figure ];
         let e = List.find (fun (e : E.experiment) -> e.E.id = engine_figure) E.all in
         ignore (e.E.table (Kg_engine.Exec.env ex));
         Kg_engine.Exec.shutdown ex))

let run_engine jobs =
  let module E = Kg_sim.Experiments in
  let opts = { E.scale = 64; heap_scale = 5; cap_mb = 32; seed = 42 } in
  Printf.printf "\n== engine scaling: %s sequential vs %d-domain pool (Bechamel OLS) ==\n%!"
    engine_figure jobs;
  let tests =
    Test.make_grouped ~name:"engine" ~fmt:"%s/%s"
      [
        bench_engine_regen ~name:(engine_figure ^ "-seq") ~jobs:1 opts;
        bench_engine_regen ~name:(Printf.sprintf "%s-jobs%d" engine_figure jobs) ~jobs opts;
      ]
  in
  let cfg = Benchmark.cfg ~limit:8 ~quota:(Time.second 2.0) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  ols_report results

(* ------------------------------------------------------------------ *)
(* Part 4: batched port vs per-access closure dispatch                 *)

(* The pre-refactor interface shape: a record of per-access closures.
   Kept here (only) as the benchmark baseline. *)
type closure_iface = {
  c_read : addr:int -> size:int -> unit;
  c_write : addr:int -> size:int -> unit;
  c_set_phase : int -> unit;
}

type stream = {
  s_addrs : int array;
  s_sizes : int array;
  s_writes : bool array;
  s_tags : int array;
}

let make_stream n =
  let rng = Kg_util.Rng.of_seed 7 in
  {
    (* 4-byte-aligned addresses over the first 2 GiB of the hybrid
       map, so the stream hits both devices *)
    s_addrs = Array.init n (fun _ -> 4 * Kg_util.Rng.int rng (1 lsl 29));
    s_sizes = Array.init n (fun _ -> 8 + Kg_util.Rng.int rng 248);
    s_writes = Array.init n (fun _ -> Kg_util.Rng.bernoulli rng 0.5);
    s_tags = Array.init n (fun _ -> Kg_util.Rng.int rng Kg_gc.Phase.count);
  }

let fresh_hier () =
  let map = Kg_mem.Address_map.hybrid () in
  let ctrl = Kg_cache.Controller.create ~map ~line_size:64 () in
  (Kg_cache.Hierarchy.create ~controller:ctrl (), map)

(* One closure-record assembly per sink kind, dispatching per access
   exactly as the old interface did. *)
let closure_counting map =
  let c = Port.fresh_counters ~phases:Kg_gc.Phase.count in
  let phase = ref 0 in
  let one ~write ~addr ~size =
    match Kg_mem.Address_map.kind_of map addr with
    | Kg_mem.Device.Dram ->
      if write then c.Port.dram_write_bytes <- c.Port.dram_write_bytes + size
      else c.Port.dram_read_bytes <- c.Port.dram_read_bytes + size
    | Kg_mem.Device.Pcm ->
      if write then begin
        c.Port.pcm_write_bytes <- c.Port.pcm_write_bytes + size;
        c.Port.pcm_write_bytes_by_phase.(!phase) <-
          c.Port.pcm_write_bytes_by_phase.(!phase) + size
      end
      else c.Port.pcm_read_bytes <- c.Port.pcm_read_bytes + size
  in
  {
    c_read = (fun ~addr ~size -> one ~write:false ~addr ~size);
    c_write = (fun ~addr ~size -> one ~write:true ~addr ~size);
    c_set_phase = (fun p -> phase := p);
  }

let closure_cache hier =
  {
    c_read = (fun ~addr ~size -> Kg_cache.Hierarchy.access_range hier ~addr ~size ~write:false);
    c_write = (fun ~addr ~size -> Kg_cache.Hierarchy.access_range hier ~addr ~size ~write:true);
    c_set_phase = (fun p -> Kg_cache.Hierarchy.set_phase hier p);
  }

let drive_closure iface s =
  let n = Array.length s.s_addrs in
  let cur = ref (-1) in
  for i = 0 to n - 1 do
    let tag = s.s_tags.(i) in
    if tag <> !cur then begin
      cur := tag;
      iface.c_set_phase tag
    end;
    if s.s_writes.(i) then iface.c_write ~addr:s.s_addrs.(i) ~size:s.s_sizes.(i)
    else iface.c_read ~addr:s.s_addrs.(i) ~size:s.s_sizes.(i)
  done

let drive_port port s =
  let n = Array.length s.s_addrs in
  let cur = ref (-1) in
  for i = 0 to n - 1 do
    let tag = s.s_tags.(i) in
    if tag <> !cur then begin
      cur := tag;
      Port.set_phase_tag port tag
    end;
    if s.s_writes.(i) then Port.write port ~addr:s.s_addrs.(i) ~size:s.s_sizes.(i)
    else Port.read port ~addr:s.s_addrs.(i) ~size:s.s_sizes.(i)
  done;
  Port.flush port

let run_ports ?(json_out = None) () =
  let n = 100_000 and repeats = 5 in
  let s = make_stream n in
  let time name f =
    f ();
    (* warmup *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repeats do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let aps = float_of_int (n * repeats) /. dt in
    Printf.printf "  %-28s %12.0f accesses/s\n%!" name aps;
    (name, aps)
  in
  Printf.printf "\n== port sinks: batched port vs per-access closures (%d accesses x%d) ==\n%!"
    n repeats;
  let map = Kg_mem.Address_map.hybrid () in
  let results =
    [
      time "closure/counting" (fun () -> drive_closure (closure_counting map) s);
      time "port/null" (fun () ->
          drive_port (Port.create ~sink:Port.Null ()) s);
      time "port/counting" (fun () ->
          drive_port (fst (Kg_gc.Mem_iface.counting ~map)) s);
      time "closure/cache-sim" (fun () ->
          let hier, _ = fresh_hier () in
          drive_closure (closure_cache hier) s);
      time "port/cache-sim" (fun () ->
          let hier, _ = fresh_hier () in
          drive_port (Kg_gc.Mem_iface.of_hierarchy hier) s);
    ]
  in
  let find k = List.assoc k results in
  let speedup num den = find num /. find den in
  Printf.printf "  speedup counting: %.2fx, cache-sim: %.2fx\n%!"
    (speedup "port/counting" "closure/counting")
    (speedup "port/cache-sim" "closure/cache-sim");
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc "{\n  \"bench\": \"port_sinks\",\n  \"accesses\": %d,\n  \"repeats\": %d,\n  \"accesses_per_sec\": {\n%s\n  },\n  \"speedup\": {\n    \"counting\": %.3f,\n    \"cache_sim\": %.3f\n  }\n}\n"
        n repeats
        (String.concat ",\n"
           (List.map (fun (k, v) -> Printf.sprintf "    %S: %.0f" k v) results))
        (speedup "port/counting" "closure/counting")
        (speedup "port/cache-sim" "closure/cache-sim");
      close_out oc;
      Printf.printf "  wrote %s\n%!" path)
    json_out;
  speedup "port/cache-sim" "closure/cache-sim"

(* ------------------------------------------------------------------ *)
(* Part 5: fused cache kernel on characteristic access streams        *)

(* Streaming init / bump allocation shape: sequential 8-byte writes,
   eight single-line records per cache line — the batch path folds
   seven of every eight into one bulk LRU update (same-line run
   coalescing), which the per-access closure interface cannot. *)
let stream_seq n =
  let region = 8 * 1024 * 1024 in
  {
    s_addrs = Array.init n (fun i -> i * 8 mod region);
    s_sizes = Array.make n 8;
    s_writes = Array.make n true;
    s_tags = Array.make n 1;
  }

(* L1-resident working set: random 8-byte accesses within 16 KiB, so
   every access after warmup is an L1 hit and the kernel's fast path
   (fused probe, no float arithmetic) dominates. *)
let stream_hot n =
  let rng = Kg_util.Rng.of_seed 11 in
  {
    s_addrs = Array.init n (fun _ -> 8 * Kg_util.Rng.int rng (16 * 1024 / 8));
    s_sizes = Array.make n 8;
    s_writes = Array.init n (fun _ -> Kg_util.Rng.bernoulli rng 0.5);
    s_tags = Array.make n 2;
  }

let run_cache_kernel ?(json_out = None) () =
  let n = 200_000 and repeats = 5 in
  Printf.printf
    "\n== cache kernel: closure vs port cache-sim per stream (%d accesses x%d) ==\n%!" n
    repeats;
  let time name f =
    f ();
    (* warmup *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repeats do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let aps = float_of_int (n * repeats) /. dt in
    Printf.printf "  %-28s %12.0f accesses/s\n%!" name aps;
    (name, aps)
  in
  let results =
    List.concat_map
      (fun (sname, s) ->
        let c =
          time (sname ^ "/closure") (fun () ->
              let hier, _ = fresh_hier () in
              drive_closure (closure_cache hier) s)
        in
        let p =
          time (sname ^ "/port") (fun () ->
              let hier, _ = fresh_hier () in
              drive_port (Kg_gc.Mem_iface.of_hierarchy hier) s)
        in
        Printf.printf "  %-28s %11.2fx\n%!" (sname ^ " port speedup") (snd p /. snd c);
        [ c; p ])
      [ ("random", make_stream n); ("seq-stream", stream_seq n); ("hot-set", stream_hot n) ]
  in
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"bench\": \"cache_kernel\",\n  \"accesses\": %d,\n  \"repeats\": %d,\n  \"accesses_per_sec\": {\n%s\n  }\n}\n"
        n repeats
        (String.concat ",\n"
           (List.map (fun (k, v) -> Printf.sprintf "    %S: %.0f" k v) results));
      close_out oc;
      Printf.printf "  wrote %s\n%!" path)
    json_out

(* ------------------------------------------------------------------ *)
(* Part 6: epoch-parallel multicore mutators                           *)

let run_parallel_mutators ?(json_out = None) () =
  Printf.printf "\n== parallel mutators: domain scaling, parallel vs oracle ==\n%!";
  let bench = Kg_workload.Descriptor.find "xalan" in
  let go ~threads ~oracle =
    let t0 = Unix.gettimeofday () in
    let r =
      Kg_sim.Run.run ~seed:11 ~scale:512 ~heap_scale:8 ~cap_mb:32 ~threads ~oracle
        ~mode:Kg_sim.Run.Count Kg_sim.Run.pcm_only bench
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let r1, wall1 = go ~threads:1 ~oracle:false in
  Printf.printf "  %-24s wall %6.2fs  sim %.3fs\n%!" "domains=1" wall1 r1.Kg_sim.Run.time_s;
  let rows =
    List.map
      (fun threads ->
        let rp, wallp = go ~threads ~oracle:false in
        let ro, wallo = go ~threads ~oracle:true in
        if Kg_gc.Gc_stats.(rp.Kg_sim.Run.stats.ref_writes <> ro.Kg_sim.Run.stats.ref_writes)
        then begin
          Printf.eprintf "FAIL: parallel and oracle diverged at %d domains\n%!" threads;
          exit 1
        end;
        let sim_speedup = r1.Kg_sim.Run.time_s /. rp.Kg_sim.Run.time_s in
        Printf.printf
          "  domains=%-2d               wall %6.2fs  (oracle %5.2fs)  sim %.3fs  %.2fx vs 1\n%!"
          threads wallp wallo rp.Kg_sim.Run.time_s sim_speedup;
        (threads, wallp, wallo, rp.Kg_sim.Run.time_s, sim_speedup))
      [ 2; 4 ]
  in
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"bench\": \"parallel_mutators\",\n  \"benchmark\": \"xalan\",\n  \"cap_mb\": 32,\n  \"baseline\": { \"wall_s\": %.3f, \"sim_s\": %.4f },\n  \"domains\": [\n%s\n  ]\n}\n"
        wall1 r1.Kg_sim.Run.time_s
        (String.concat ",\n"
           (List.map
              (fun (threads, wallp, wallo, sim_s, speedup) ->
                Printf.sprintf
                  "    { \"domains\": %d, \"wall_s\": %.3f, \"oracle_wall_s\": %.3f, \"sim_s\": %.4f, \"sim_speedup\": %.3f }"
                  threads wallp wallo sim_s speedup)
              rows));
      close_out oc;
      Printf.printf "  wrote %s\n%!" path)
    json_out

(* ------------------------------------------------------------------ *)
(* Part 7: flat-word heap vs record object store                       *)

module O = Kg_heap.Object_model

(* The record-per-object store the flat-word heap replaced. Kept here
   (only) as the benchmark baseline: one heap block per object, with
   the float death timestamp boxed beside the int fields, exactly as
   the pre-refactor [Object_model.t] laid it out. *)
module Record_store = struct
  type obj = {
    id : int;
    size : int;
    heat : O.heat;
    death : float;
    ref_fields : int;
    mutable addr : int;
    mutable space : int;
    mutable written : bool;
    mutable marked : bool;
    mutable age : int;
    mutable writes : int;
    mutable epoch_writes : int;
  }

  type t = { mutable objs : obj array; mutable len : int }

  let dummy =
    {
      id = 0;
      size = 0;
      heat = O.Cold;
      death = 0.0;
      ref_fields = 0;
      addr = -1;
      space = -1;
      written = false;
      marked = false;
      age = 0;
      writes = 0;
      epoch_writes = 0;
    }

  let create ?(capacity = 4096) () = { objs = Array.make capacity dummy; len = 0 }

  let alloc t ~size ~heat ~death ~ref_fields =
    if t.len = Array.length t.objs then begin
      let bigger = Array.make (2 * t.len) dummy in
      Array.blit t.objs 0 bigger 0 t.len;
      t.objs <- bigger
    end;
    let o =
      {
        id = t.len + 1;
        size;
        heat;
        death;
        ref_fields;
        addr = -1;
        space = -1;
        written = false;
        marked = false;
        age = 0;
        writes = 0;
        epoch_writes = 0;
      }
    in
    t.objs.(t.len) <- o;
    t.len <- t.len + 1;
    o
end

(* One synthetic population, drawn once and replayed into both stores:
   sizes, heats and oracle deaths in the ranges the workloads use. *)
type heap_pop = {
  p_sizes : int array;
  p_heats : O.heat array;
  p_deaths : float array;
}

let make_pop n =
  let rng = Kg_util.Rng.of_seed 23 in
  {
    p_sizes =
      Array.init n (fun _ -> Kg_heap.Layout.min_object + 8 * Kg_util.Rng.int rng 30);
    p_heats =
      Array.init n (fun _ ->
          match Kg_util.Rng.int rng 10 with
          | 0 -> O.Hot
          | 1 | 2 -> O.Warm
          | _ -> O.Cold);
    p_deaths =
      Array.init n (fun _ ->
          if Kg_util.Rng.bernoulli rng 0.25 then infinity
          else Kg_util.Rng.float rng 1.0e6);
  }

let build_record pop =
  let n = Array.length pop.p_sizes in
  let s = Record_store.create () in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    let o =
      Record_store.alloc s ~size:pop.p_sizes.(i) ~heat:pop.p_heats.(i)
        ~death:pop.p_deaths.(i) ~ref_fields:2
    in
    o.Record_store.addr <- !cursor;
    o.Record_store.space <- i land 3;
    cursor := !cursor + pop.p_sizes.(i)
  done;
  s

let build_words pop =
  let n = Array.length pop.p_sizes in
  let w = Kg_heap.Heap_words.create () in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    let o =
      O.make w ~size:pop.p_sizes.(i) ~heat:pop.p_heats.(i) ~death:pop.p_deaths.(i)
        ~ref_fields:2
    in
    O.set_addr w o !cursor;
    O.set_space w o (i land 3);
    cursor := !cursor + pop.p_sizes.(i)
  done;
  w

(* Mark/sweep-shaped metadata pass: mark everything the oracle keeps
   alive at [now], then sweep — clear marks, age survivors, sum their
   bytes. Returns the survivor byte count as a sink. *)
let mark_sweep_record (s : Record_store.t) now =
  let bytes = ref 0 in
  for i = 0 to s.Record_store.len - 1 do
    let o = s.Record_store.objs.(i) in
    if o.Record_store.death > now then o.Record_store.marked <- true
  done;
  for i = 0 to s.Record_store.len - 1 do
    let o = s.Record_store.objs.(i) in
    if o.Record_store.marked then begin
      o.Record_store.marked <- false;
      o.Record_store.age <- o.Record_store.age + 1;
      bytes := !bytes + o.Record_store.size
    end
  done;
  !bytes

let mark_sweep_words w now =
  let bytes = ref 0 in
  let len = Kg_heap.Heap_words.length w in
  for o = 1 to len do
    if O.is_live w o now then O.set_marked w o true
  done;
  for o = 1 to len do
    if O.marked w o then begin
      O.set_marked w o false;
      O.set_age w o (O.age w o + 1);
      bytes := !bytes + O.size w o
    end
  done;
  !bytes

(* Liveness-filtered walk feeding the counting port — the shape of the
   simulator's write-traffic loops: read the oracle, then the address
   and size, and emit one access per survivor. *)
let count_record (s : Record_store.t) port now =
  for i = 0 to s.Record_store.len - 1 do
    let o = s.Record_store.objs.(i) in
    if o.Record_store.death > now then
      Port.write port ~addr:o.Record_store.addr ~size:o.Record_store.size
  done;
  Port.flush port

let count_words w port now =
  let len = Kg_heap.Heap_words.length w in
  for o = 1 to len do
    if O.is_live w o now then Port.write port ~addr:(O.addr w o) ~size:(O.size w o)
  done;
  Port.flush port

let run_heap_words ?(json_out = None) () =
  let n = 200_000 and repeats = 10 in
  Printf.printf
    "\n== heap words: flat Bigarray tables vs record objects (%d objects x%d) ==\n%!" n
    repeats;
  let pop = make_pop n in
  let time name f =
    f ();
    (* warmup *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repeats do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let ops = float_of_int (n * repeats) /. dt in
    Printf.printf "  %-28s %12.0f objects/s\n%!" name ops;
    (name, ops)
  in
  let rs = build_record pop and ws = build_words pop in
  let now = 5.0e5 in
  let map = Kg_mem.Address_map.hybrid () in
  let sink = ref 0 in
  let results =
    [
      time "record/build" (fun () -> ignore (build_record pop));
      time "words/build" (fun () -> ignore (build_words pop));
      time "record/mark-sweep" (fun () -> sink := !sink + mark_sweep_record rs now);
      time "words/mark-sweep" (fun () -> sink := !sink + mark_sweep_words ws now);
      time "record/counting" (fun () ->
          count_record rs (fst (Kg_gc.Mem_iface.counting ~map)) now);
      time "words/counting" (fun () ->
          count_words ws (fst (Kg_gc.Mem_iface.counting ~map)) now);
    ]
  in
  ignore !sink;
  let find k = List.assoc k results in
  let speedup num den = find num /. find den in
  Printf.printf "  speedup build: %.2fx, mark-sweep: %.2fx, counting: %.2fx\n%!"
    (speedup "words/build" "record/build")
    (speedup "words/mark-sweep" "record/mark-sweep")
    (speedup "words/counting" "record/counting");
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"bench\": \"heap_words\",\n  \"objects\": %d,\n  \"repeats\": %d,\n  \"objects_per_sec\": {\n%s\n  },\n  \"speedup\": {\n    \"build\": %.3f,\n    \"mark_sweep\": %.3f,\n    \"counting\": %.3f\n  }\n}\n"
        n repeats
        (String.concat ",\n"
           (List.map (fun (k, v) -> Printf.sprintf "    %S: %.0f" k v) results))
        (speedup "words/build" "record/build")
        (speedup "words/mark-sweep" "record/mark-sweep")
        (speedup "words/counting" "record/counting");
      close_out oc;
      Printf.printf "  wrote %s\n%!" path)
    json_out;
  speedup "words/counting" "record/counting"

(* ------------------------------------------------------------------ *)
(* Part 8: domain-parallel collection phases                           *)

(* The plan/apply collector is measurement-neutral by construction:
   every counter of the team run must equal the inline run at the same
   domain count, so this pair is both a benchmark and a differential
   check. The reported speedup is the modeled GC-phase time
   (Time_model.gc_ns). Host wall time is printed too, but the
   simulator's collection phases are a small slice of a run dominated
   by workload generation, so wall clock is informational only; the
   modeled figure is what the time model feeds into every table. *)
let run_parallel_gc ?(json_out = None) () =
  Printf.printf "\n== parallel GC: worker-domain team vs inline collector ==\n%!";
  (* xalan under KG-W at this cap runs a nursery-heavy schedule plus
     major collections, so every parallel phase (scavenge, mark,
     movement, sweep) is exercised. *)
  let bench = Kg_workload.Descriptor.find "xalan" in
  let domains = 4 in
  let go ~parallel_gc =
    let t0 = Unix.gettimeofday () in
    let r =
      Kg_sim.Run.run ~seed:11 ~scale:512 ~heap_scale:8 ~cap_mb:64 ~threads:domains
        ~parallel_gc ~mode:Kg_sim.Run.Count Kg_sim.Run.kg_w bench
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let rs, wall_s = go ~parallel_gc:false in
  let rp, wall_p = go ~parallel_gc:true in
  if not (Kg_gc.Gc_stats.equal rs.Kg_sim.Run.stats rp.Kg_sim.Run.stats) then begin
    Printf.eprintf "FAIL: team and inline collector stats diverged at %d domains\n%!"
      domains;
    List.iter
      (Printf.eprintf "  %s\n%!")
      (Kg_gc.Gc_stats.diff rs.Kg_sim.Run.stats rp.Kg_sim.Run.stats);
    exit 1
  end;
  let gc_seq = rs.Kg_sim.Run.time_parts.Kg_sim.Time_model.gc_ns in
  let gc_par = rp.Kg_sim.Run.time_parts.Kg_sim.Time_model.gc_ns in
  let speedup = gc_seq /. Float.max 1e-9 gc_par in
  Printf.printf "  %-16s wall %5.2fs  modeled GC %11.0f ns\n%!"
    (Printf.sprintf "inline @%d" domains)
    wall_s gc_seq;
  Printf.printf "  %-16s wall %5.2fs  modeled GC %11.0f ns  %.2fx GC-phase speedup\n%!"
    (Printf.sprintf "team @%d" domains)
    wall_p gc_par speedup;
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"parallel_gc\",\n\
        \  \"benchmark\": \"xalan\",\n\
        \  \"collector\": \"kg-w\",\n\
        \  \"cap_mb\": 64,\n\
        \  \"domains\": %d,\n\
        \  \"inline\": { \"wall_s\": %.3f, \"modeled_gc_ns\": %.0f },\n\
        \  \"team\": { \"wall_s\": %.3f, \"modeled_gc_ns\": %.0f },\n\
        \  \"modeled_gc_speedup\": %.3f,\n\
        \  \"stats_equal\": true\n\
         }\n"
        domains wall_s gc_seq wall_p gc_par speedup;
      close_out oc;
      Printf.printf "  wrote %s\n%!" path)
    json_out;
  speedup

(* ------------------------------------------------------------------ *)
(* Part 9: server-scale serve mutator with SLO histograms              *)

(* The serve mutator rides the same epoch protocol as the batch
   mutators, so the oracle differential is the same promise part 6
   makes — extended to the request counters and both SLO histograms,
   which is where a nondeterministic pause attribution would show up
   first. The histogram gate is structural, not a timing threshold:
   the modeled pause profile is a pure function of the run, so a
   degenerate shape (zero P50, or max below P50) means the recorder
   is wired wrong, not wind. *)
let run_serve ?(json_out = None) () =
  let module R = Kg_sim.Run in
  let module S = Kg_serve.Server in
  let module H = Kg_util.Hdr_histogram in
  let module GS = Kg_gc.Gc_stats in
  Printf.printf "\n== serve: offered-rate sweep + 2-domain oracle differential ==\n%!";
  let bench = Kg_workload.Descriptor.find "pjbb" in
  let go ?(threads = 1) ?(parallel_gc = false) ?(oracle = false) rate =
    let t0 = Unix.gettimeofday () in
    let r =
      R.run ~seed:11 ~scale:512 ~heap_scale:8 ~cap_mb:8 ~threads ~oracle ~parallel_gc
        ~serve:{ S.default_config with S.rate = float_of_int rate }
        ~mode:R.Count R.kg_w bench
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let metrics (r : R.result) =
    match r.R.serve with
    | Some s -> s
    | None ->
      Printf.eprintf "FAIL: serve run carries no serve metrics\n%!";
      exit 1
  in
  let rows =
    List.map
      (fun rate ->
        let r, wall = go rate in
        let s = metrics r in
        Printf.printf
          "  rate=%-5d  wall %5.2fs  %6d reqs  gc pause p50/p99/max %5.3f/%5.3f/%5.3f ms  \
           req p50/p99 %5.3f/%5.3f ms\n\
           %!"
          rate wall s.R.requests (H.p50 s.R.pause_hist) (H.p99 s.R.pause_hist)
          (H.max_value s.R.pause_hist) (H.p50 s.R.latency_hist) (H.p99 s.R.latency_hist);
        (rate, wall, s))
      [ 256; 1024; 1792 ]
  in
  (* Differential: team-collector parallel serve vs the inline oracle
     at the middle rate. Agreement must be total. *)
  let rp, wall_p = go ~threads:2 ~parallel_gc:true 1024 in
  let ro, wall_o = go ~threads:2 ~parallel_gc:true ~oracle:true 1024 in
  let sp = metrics rp and so = metrics ro in
  let identical =
    GS.equal rp.R.stats ro.R.stats
    && sp.R.requests = so.R.requests
    && sp.R.t1_hits = so.R.t1_hits
    && sp.R.t2_hits = so.R.t2_hits
    && sp.R.backend_fills = so.R.backend_fills
    && sp.R.sessions_churned = so.R.sessions_churned
    && H.equal sp.R.pause_hist so.R.pause_hist
    && H.equal sp.R.latency_hist so.R.latency_hist
  in
  if not identical then begin
    Printf.eprintf "FAIL: parallel serve and oracle diverged at 2 domains\n%!";
    List.iter (Printf.eprintf "  %s\n%!") (GS.diff rp.R.stats ro.R.stats);
    exit 1
  end;
  Printf.printf "  differential: 2-domain team run matches oracle (wall %.2fs vs %.2fs)\n%!"
    wall_p wall_o;
  let degenerate =
    List.filter
      (fun (_, _, (s : R.serve_metrics)) ->
        not (H.max_value s.R.pause_hist > H.p50 s.R.pause_hist && H.p50 s.R.pause_hist > 0.0))
      rows
  in
  List.iter
    (fun (rate, _, _) ->
      Printf.printf "  WARN: degenerate pause histogram at rate=%d\n%!" rate)
    degenerate;
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"serve\",\n\
        \  \"benchmark\": \"pjbb\",\n\
        \  \"collector\": \"kg-w\",\n\
        \  \"cap_mb\": 8,\n\
        \  \"rates\": [\n\
         %s\n\
        \  ],\n\
        \  \"differential\": { \"domains\": 2, \"parallel_gc\": true, \"rate\": 1024, \
         \"identical\": true }\n\
         }\n"
        (String.concat ",\n"
           (List.map
              (fun (rate, wall, (s : R.serve_metrics)) ->
                Printf.sprintf
                  "    { \"rate\": %d, \"wall_s\": %.3f, \"requests\": %d, \
                   \"gc_pause_ms\": { \"p50\": %.4f, \"p99\": %.4f, \"p999\": %.4f, \
                   \"max\": %.4f }, \"req_latency_ms\": { \"p50\": %.4f, \"p99\": %.4f, \
                   \"p999\": %.4f } }"
                  rate wall s.R.requests (H.p50 s.R.pause_hist) (H.p99 s.R.pause_hist)
                  (H.p999 s.R.pause_hist) (H.max_value s.R.pause_hist)
                  (H.p50 s.R.latency_hist) (H.p99 s.R.latency_hist)
                  (H.p999 s.R.latency_hist))
              rows));
      close_out oc;
      Printf.printf "  wrote %s\n%!" path)
    json_out;
  degenerate = []

let () =
  let full =
    Array.exists (( = ) "--full") Sys.argv || Sys.getenv_opt "KG_BENCH_FULL" = Some "1"
  in
  let jobs =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = "--jobs" then int_of_string_opt Sys.argv.(i + 1)
      else find (i + 1)
    in
    match find 0 with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  let flag_arg name =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 0
  in
  let json_out = flag_arg "--ports-json" in
  let ck_json_out = flag_arg "--cache-kernel-json" in
  let pm_json_out = flag_arg "--parallel-json" in
  let hw_json_out = flag_arg "--heap-words-json" in
  let pg_json_out = flag_arg "--parallel-gc-json" in
  let srv_json_out = flag_arg "--serve-json" in
  (* Exit nonzero if the batched port's cache-sim stack is slower than
     the per-access closure baseline. The threshold is 0.95x, not 1.0x:
     the two stacks are within a few percent of each other on the
     random storm (both bound by host-memory latency on simulator
     metadata) and run-to-run noise on shared CI hardware is of that
     order; the guard is against reintroducing a real dispatch
     regression (the pre-kernel port measured ~0.93x), not against
     wind. *)
  let check_port_speedup su =
    if Array.exists (( = ) "--assert-port-speedup") Sys.argv && su < 0.95 then begin
      Printf.eprintf
        "FAIL: port/cache-sim is %.3fx the closure baseline (threshold 0.95x)\n%!" su;
      exit 1
    end
  in
  (* Same guard shape for the flat-word heap, but demanding a real win:
     the packed tables must beat the record store by 1.1x on the
     counting-port kernel, the one closest to the simulator's hot
     loops. The tables win by construction (no per-object pointer
     chase, no boxed death float), so a fall below 1.1x means a
     regression in the accessor packing, not wind. *)
  let check_heap_speedup su =
    if Array.exists (( = ) "--assert-heap-speedup") Sys.argv && su < 1.1 then begin
      Printf.eprintf
        "FAIL: words/counting is %.3fx the record baseline (threshold 1.10x)\n%!" su;
      exit 1
    end
  in
  (* Modeled figure, so no wind: the team collector divides the
     per-collection work term by the domain count and adds a fixed
     sync cost per collection. Falling below 1.5x at 4 domains on a
     major-heavy run means the collector stopped planning phases on
     the team (or sync costs swamped the work term), not noise. *)
  let check_gc_speedup su =
    if Array.exists (( = ) "--assert-gc-speedup") Sys.argv && su < 1.5 then begin
      Printf.eprintf
        "FAIL: modeled GC-phase speedup is %.3fx at 4 domains (threshold 1.50x)\n%!" su;
      exit 1
    end
  in
  (* Structural gate, not a timing one: the pause histogram is a pure
     function of the modeled run, so a degenerate profile means the
     recorder broke, not that the machine was loaded. *)
  let check_serve_histogram ok =
    if Array.exists (( = ) "--assert-serve-histogram") Sys.argv && not ok then begin
      Printf.eprintf
        "FAIL: serve pause histogram degenerate (need max pause > P50 > 0 at every rate)\n%!";
      exit 1
    end
  in
  let ports_only = Array.exists (( = ) "--ports") Sys.argv in
  let ck_only = Array.exists (( = ) "--cache-kernel") Sys.argv in
  let pm_only = Array.exists (( = ) "--parallel-mutators") Sys.argv in
  let hw_only = Array.exists (( = ) "--heap-words") Sys.argv in
  let pg_only = Array.exists (( = ) "--parallel-gc") Sys.argv in
  let srv_only = Array.exists (( = ) "--serve") Sys.argv in
  if ports_only || ck_only || pm_only || hw_only || pg_only || srv_only then begin
    if ports_only then check_port_speedup (run_ports ~json_out ());
    if ck_only then run_cache_kernel ~json_out:ck_json_out ();
    if pm_only then run_parallel_mutators ~json_out:pm_json_out ();
    if hw_only then check_heap_speedup (run_heap_words ~json_out:hw_json_out ());
    if pg_only then check_gc_speedup (run_parallel_gc ~json_out:pg_json_out ());
    if srv_only then check_serve_histogram (run_serve ~json_out:srv_json_out ())
  end
  else begin
    run_micro ();
    run_experiments full;
    check_port_speedup (run_ports ~json_out ());
    run_cache_kernel ~json_out:ck_json_out ();
    run_parallel_mutators ~json_out:pm_json_out ();
    check_heap_speedup (run_heap_words ~json_out:hw_json_out ());
    check_gc_speedup (run_parallel_gc ~json_out:pg_json_out ());
    check_serve_histogram (run_serve ~json_out:srv_json_out ());
    run_engine jobs
  end
