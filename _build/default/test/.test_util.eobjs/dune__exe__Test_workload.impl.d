test/test_workload.ml: Alcotest Array Descriptor Float Fun Kg_gc Kg_heap Kg_mem Kg_util Kg_workload Lifetime List Mutator Printf QCheck QCheck_alcotest String Trace_input
