test/test_sim.ml: Alcotest Array Costs Energy Experiments Float Hashtbl Kg_cache Kg_gc Kg_mem Kg_sim Kg_util Kg_workload List Machine Option Run String Time_model
