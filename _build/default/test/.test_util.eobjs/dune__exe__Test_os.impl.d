test/test_os.ml: Alcotest Array Kg_cache Kg_gc Kg_heap Kg_mem Kg_os Kg_util Write_partition
