test/test_util.ml: Alcotest Array Float Format Fun Histogram Kg_util List QCheck QCheck_alcotest Rng Stats String Svg_chart Table Units Vec
