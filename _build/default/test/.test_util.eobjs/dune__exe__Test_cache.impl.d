test/test_cache.ml: Alcotest Array Cache Controller Float Hierarchy Kg_cache Kg_mem List QCheck QCheck_alcotest
