test/test_mem.ml: Address_map Alcotest Device Float Kg_mem Kg_util Lifetime List QCheck QCheck_alcotest Wear
