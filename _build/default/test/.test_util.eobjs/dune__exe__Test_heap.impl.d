test/test_heap.ml: Alcotest Arena Array Bump_space Freelist_space Immix_space Kg_heap Kg_mem Kg_util Layout List Los Meta_space Object_model QCheck QCheck_alcotest
