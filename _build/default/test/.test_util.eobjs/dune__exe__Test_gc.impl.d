test/test_gc.ml: Alcotest Array Gc_config Gc_stats Kg_gc Kg_heap Kg_mem Kg_util List Mem_iface Phase QCheck QCheck_alcotest Remset Runtime
