(* GC-directed placement vs OS write partitioning (the Figure 7
   comparison): both use the same hybrid hardware, but WP reacts to
   page-level write counts while the Kingsguard collectors place
   individual objects by their observed behaviour.

     dune exec examples/wp_vs_kingsguard.exe [benchmark] *)

open Kingsguard
module R = Sim.Run

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "pmd" in
  let bench = Workload.Descriptor.find name in
  let run spec = R.run ~seed:9 ~scale:16 ~heap_scale:3 ~cap_mb:128 ~mode:R.Simulate spec bench in
  Printf.printf "simulating %s...\n%!" name;
  let base = run R.pcm_only in
  let wp = run R.wp in
  let kgn = run R.kg_n in
  let kgw = run R.kg_w in
  let rel (r : R.result) = r.R.mem_pcm_write_bytes /. base.R.mem_pcm_write_bytes in
  Printf.printf "\nPCM writes relative to PCM-only (lower is better):\n";
  Printf.printf "  WP    %.2f  (of which %.2f is page-migration traffic)\n" (rel wp)
    (wp.R.migration_pcm_bytes /. base.R.mem_pcm_write_bytes);
  Printf.printf "  KG-N  %.2f\n" (rel kgn);
  Printf.printf "  KG-W  %.2f\n" (rel kgw);
  Printf.printf "\nDRAM consumed:\n";
  Printf.printf "  WP    %.1f MB peak partition (%.1f MB of pages migrated back to PCM)\n"
    wp.R.wp_dram_mb
    (wp.R.migration_pcm_bytes /. 1048576.);
  Printf.printf "  KG-W  %.1f MB average / %.1f MB max heap in DRAM\n" kgw.R.dram_avg_mb
    kgw.R.dram_max_mb;
  Printf.printf
    "\nWhy WP loses (§6.1.3): it is reactive and page-grained — it keeps\n\
     re-detecting the nursery as hot, and pages it migrates to DRAM cool\n\
     down and get written back to PCM, which itself costs PCM writes.\n\
     The collectors place objects correctly at promotion time instead.\n"
