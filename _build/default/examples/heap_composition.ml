(* Figure 13-style heap composition trace: how much of the heap KG-W
   keeps in PCM versus DRAM over the run, for a GraphChi-like workload
   (page rank) and an eclipse-like one.

     dune exec examples/heap_composition.exe *)

open Kingsguard
module R = Sim.Run

let bar width value max_value =
  let n = if max_value <= 0.0 then 0 else int_of_float (value /. max_value *. float_of_int width) in
  String.make (min width n) '#'

let show name =
  let bench = Workload.Descriptor.find name in
  let r =
    R.run ~seed:7 ~scale:16 ~heap_scale:3 ~cap_mb:192 ~trace:true ~mode:R.Count R.kg_w bench
  in
  let trace = Array.of_list r.R.trace in
  let max_pcm = Array.fold_left (fun m (_, p, _) -> Float.max m p) 0.0 trace in
  let max_dram = Array.fold_left (fun m (_, _, d) -> Float.max m d) 0.0 trace in
  Printf.printf "\n%s under KG-W (%d MB allocated; sampled at every collection)\n"
    (String.capitalize_ascii name)
    (r.R.alloc_bytes / 1048576);
  Printf.printf "%-10s %-28s %-28s\n" "alloc MB" "PCM MB" "DRAM MB";
  let n = Array.length trace in
  let samples = min 24 n in
  for i = 0 to samples - 1 do
    let clock, pcm, dram = trace.(i * n / samples) in
    Printf.printf "%-10.0f %6.1f %-21s %6.1f %-21s\n" (clock /. 1048576.) pcm
      (bar 20 pcm max_pcm) dram (bar 20 dram max_dram)
  done;
  Printf.printf "peaks: %.1f MB PCM vs %.1f MB DRAM — KG-W exploits PCM capacity\n" max_pcm
    max_dram;
  Printf.printf "while holding only written objects (plus young spaces) in DRAM.\n"

let () =
  show "pr";
  show "eclipse"
