(* Quickstart: build a Kingsguard-writers runtime by hand, drive it
   with a calibrated workload, and read off what the collector did.

     dune exec examples/quickstart.exe *)

open Kingsguard
module Rt = Gc.Runtime
module GS = Gc.Gc_stats

let mib = Util.Units.mib

let () =
  (* 1. A hybrid machine: 1 GB DRAM + 32 GB PCM behind an L1/L2/L3
     write-back hierarchy (Table 2 of the paper). *)
  let machine = Sim.Machine.build Sim.Machine.Hybrid in

  (* 2. Kingsguard-writers: DRAM nursery + observer space, mature
     DRAM/PCM Immix spaces, large-object treadmills, and the LOO/MDO
     optimizations. *)
  let config = Gc.Gc_config.make ~heap_mb:48 Gc.Gc_config.kg_w_default in
  let rt =
    Rt.create ~config
      ~mem:(Gc.Mem_iface.of_hierarchy machine.Sim.Machine.hier)
      ~map:machine.Sim.Machine.map ~seed:42 ()
  in

  (* 3. A synthetic mutator calibrated to the paper's xalan
     measurements (allocation volume, survival rates, write split). *)
  let bench = Workload.Descriptor.find "xalan" in
  let mutator = Workload.Mutator.create ~live_mb:24 bench ~rt ~seed:1 in
  Workload.Mutator.allocate_startup mutator;
  Workload.Mutator.run mutator ~alloc_bytes:(128 * mib) ();
  Sim.Machine.drain machine;

  (* 4. What happened? *)
  let st = Rt.stats rt in
  Printf.printf "ran %s for 128 MB of allocation under %s\n" bench.Workload.Descriptor.name
    (Gc.Gc_config.name config);
  Printf.printf "collections: %d nursery, %d observer, %d major\n" st.GS.nursery_gcs
    st.GS.observer_gcs st.GS.major_gcs;
  Printf.printf "nursery survival: %.1f%% (paper: %.1f%%)\n"
    (100. *. GS.nursery_survival st)
    (100. *. bench.Workload.Descriptor.nursery_survival);
  Printf.printf "observer verdicts: %.1f MB read-mostly -> PCM, %.1f MB written -> DRAM\n"
    (Util.Units.mib_of_bytes st.GS.observer_to_pcm_bytes)
    (Util.Units.mib_of_bytes st.GS.observer_to_dram_bytes);
  let pcm_mb = Util.Units.mib_of_bytes (Sim.Machine.pcm_write_bytes machine) in
  let dram_mb = Util.Units.mib_of_bytes (Sim.Machine.dram_write_bytes machine) in
  Printf.printf "memory-level writes: %.1f MB to PCM, %.1f MB to DRAM\n" pcm_mb dram_mb;
  Printf.printf "-> the write-rationing collector steered %.0f%% of writeback traffic to DRAM\n"
    (100. *. dram_mb /. (dram_mb +. pcm_mb))
