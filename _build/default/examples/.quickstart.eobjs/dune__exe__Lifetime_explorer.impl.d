examples/lifetime_explorer.ml: Array Kingsguard List Printf Sim Sys Workload
