examples/wp_vs_kingsguard.ml: Array Kingsguard Printf Sim Sys Workload
