examples/heap_composition.ml: Array Float Kingsguard Printf Sim String Workload
