examples/heap_composition.mli:
