examples/quickstart.ml: Gc Kingsguard Printf Sim Util Workload
