examples/wp_vs_kingsguard.mli:
