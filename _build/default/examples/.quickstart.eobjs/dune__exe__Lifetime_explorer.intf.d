examples/lifetime_explorer.mli:
