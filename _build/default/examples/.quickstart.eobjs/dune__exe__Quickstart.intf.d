examples/quickstart.mli:
