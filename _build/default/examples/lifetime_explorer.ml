(* Endurance sweep (the Figure 1 question): how many years does a 32 GB
   PCM last under each collector, as cell endurance varies?

     dune exec examples/lifetime_explorer.exe [benchmark] *)

open Kingsguard
module R = Sim.Run

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lu.fix" in
  let bench = Workload.Descriptor.find name in
  let run spec = R.run ~seed:3 ~scale:16 ~heap_scale:3 ~cap_mb:128 ~mode:R.Simulate spec bench in
  Printf.printf "simulating %s on PCM-only / KG-N / KG-W (cycle-level caches + wear-leveling)...\n%!"
    name;
  let results = List.map (fun s -> (R.label s, run s)) [ R.pcm_only; R.kg_n; R.kg_w ] in
  Printf.printf "\n4-core PCM write rates:\n";
  List.iter
    (fun (label, r) ->
      Printf.printf "  %-9s %6.2f GB/s (%.1f MB of writebacks)\n" label
        (R.pcm_write_rate_4core_gbs r)
        (r.R.mem_pcm_write_bytes /. 1048576.))
    results;
  Printf.printf "\n32 GB PCM lifetime in years, 32-core write rates (Equation 1):\n";
  Printf.printf "%-12s %10s %10s %10s\n" "endurance" "PCM-only" "KG-N" "KG-W";
  List.iter
    (fun (label, endurance) ->
      Printf.printf "%-12s" label;
      List.iter
        (fun (_, r) -> Printf.printf " %9.1fy" (R.lifetime_years ~endurance r))
        results;
      print_newline ())
    [ ("10M/cell", 10e6); ("30M/cell", 30e6); ("100M/cell", 100e6) ];
  let base = List.assoc "PCM-only" results in
  let rel (_, r) = R.pcm_write_rate_4core_gbs base /. R.pcm_write_rate_4core_gbs r in
  Printf.printf "\nrelative to PCM-only: KG-N %.1fx, KG-W %.1fx\n"
    (rel (List.nth results 1))
    (rel (List.nth results 2));
  Printf.printf "(the paper reports 5x and 11x on average across the simulated suite)\n"
