(* kingsguard-plots: turn the CSV tables written by
   `kingsguard-experiments --csv --out DIR` into SVG charts.

     dune exec bin/plots.exe -- results-csv plots *)

let strip_suffix s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then s
  else
    match s.[n - 1] with 'x' | '%' -> String.sub s 0 (n - 1) | _ -> s

let cell_value s = float_of_string_opt (strip_suffix s)

let split_csv line =
  (* our tables never emit quoted cells containing commas except free
     prose columns, which are non-numeric and ignored anyway *)
  String.split_on_char ',' line

let read_csv path =
  let lines =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> None
  | header :: rows -> Some (split_csv header, List.map split_csv rows)

(* Keep the columns where every row parses as a number. *)
let numeric_columns header rows =
  let ncols = List.length header in
  List.filteri (fun _ _ -> true) header |> ignore;
  let is_numeric ci =
    ci > 0
    && List.for_all
         (fun row -> match List.nth_opt row ci with Some c -> cell_value c <> None | None -> false)
         rows
  in
  List.filteri (fun ci _ -> is_numeric ci) (List.mapi (fun i h -> (i, h)) header)
  |> List.map (fun (ci, h) -> (ci, h))
  |> fun cols -> if List.length cols > 0 && ncols > 1 then cols else []

let plot_bar name header rows out =
  match numeric_columns header rows with
  | [] -> false
  | cols ->
    let categories = List.map (fun row -> List.nth row 0) rows in
    let series =
      List.map
        (fun (ci, h) ->
          ( h,
            Array.of_list
              (List.map (fun row -> Option.value (cell_value (List.nth row ci)) ~default:0.0) rows)
          ))
        cols
    in
    let svg = Kg_util.Svg_chart.bar_chart ~title:name ~categories ~series () in
    Out_channel.with_open_text out (fun oc -> output_string oc svg);
    true

let plot_fig13 header rows out =
  (* Benchmark, Alloc (MB), PCM (MB), DRAM (MB) -> one line per
     (benchmark, device) *)
  ignore header;
  let groups = Hashtbl.create 4 in
  List.iter
    (fun row ->
      match row with
      | [ bench; alloc; pcm; dram ] -> (
        match (cell_value alloc, cell_value pcm, cell_value dram) with
        | Some a, Some p, Some d ->
          let cur = Option.value (Hashtbl.find_opt groups bench) ~default:[] in
          Hashtbl.replace groups bench ((a, p, d) :: cur)
        | _ -> ())
      | _ -> ())
    rows;
  let series =
    Hashtbl.fold
      (fun bench pts acc ->
        let pts = List.rev pts in
        (bench ^ " PCM", Array.of_list (List.map (fun (a, p, _) -> (a, p)) pts))
        :: (bench ^ " DRAM", Array.of_list (List.map (fun (a, _, d) -> (a, d)) pts))
        :: acc)
      groups []
  in
  let svg =
    Kg_util.Svg_chart.line_chart ~title:"fig13: heap composition" ~xlabel:"MB allocated"
      ~ylabel:"MB resident" ~series ()
  in
  Out_channel.with_open_text out (fun oc -> output_string oc svg);
  true

let () =
  let src = if Array.length Sys.argv > 1 then Sys.argv.(1) else "results-csv" in
  let dst = if Array.length Sys.argv > 2 then Sys.argv.(2) else "plots" in
  if not (Sys.file_exists src && Sys.is_directory src) then begin
    Printf.eprintf
      "no directory %S; generate it with: kingsguard-experiments --csv --out %s\n" src src;
    exit 1
  end;
  if not (Sys.file_exists dst) then Sys.mkdir dst 0o755;
  let plotted = ref 0 in
  Sys.readdir src |> Array.to_list |> List.sort compare
  |> List.iter (fun file ->
         if Filename.check_suffix file ".csv" then begin
           let name = Filename.chop_suffix file ".csv" in
           match read_csv (Filename.concat src file) with
           | None -> ()
           | Some (header, rows) ->
             let out = Filename.concat dst (name ^ ".svg") in
             let ok =
               if name = "fig13" then plot_fig13 header rows out
               else plot_bar name header rows out
             in
             if ok then begin
               incr plotted;
               Printf.printf "wrote %s\n" out
             end
             else Printf.printf "skipped %s (no numeric columns)\n" name
         end);
  Printf.printf "%d charts\n" !plotted
