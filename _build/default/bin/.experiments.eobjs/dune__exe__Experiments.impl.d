bin/experiments.ml: Arg Cmd Cmdliner Filename Kg_sim Kg_util List Option Printf String Sys Term Unix
