bin/experiments.mli:
