bin/kingsguard_cli.ml: Arg Cmd Cmdliner Kg_gc Kg_sim Kg_workload List Printf String Term
