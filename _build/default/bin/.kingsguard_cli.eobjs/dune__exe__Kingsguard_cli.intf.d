bin/kingsguard_cli.mli:
