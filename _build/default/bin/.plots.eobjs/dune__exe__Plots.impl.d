bin/plots.ml: Array Filename Hashtbl In_channel Kg_util List Option Out_channel Printf String Sys
