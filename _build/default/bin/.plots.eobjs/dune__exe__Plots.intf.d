bin/plots.mli:
