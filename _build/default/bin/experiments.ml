(* kingsguard-experiments: regenerate any or all of the paper's tables
   and figures. *)

open Cmdliner
module E = Kg_sim.Experiments

let run_experiments list_only names quick scale heap_scale cap_mb seed csv out_dir =
  if list_only then begin
    List.iter (fun (id, desc, _) -> Printf.printf "%-18s %s\n" id desc) E.all;
    exit 0
  end;
  let base = if quick then E.quick_opts else E.default_opts in
  let opts =
    {
      E.scale = Option.value scale ~default:base.E.scale;
      heap_scale = Option.value heap_scale ~default:base.E.heap_scale;
      cap_mb = Option.value cap_mb ~default:base.E.cap_mb;
      seed;
    }
  in
  let env = E.make_env opts in
  let selected =
    match names with
    | [] -> E.all
    | names ->
      List.filter_map
        (fun n ->
          match List.find_opt (fun (id, _, _) -> id = n) E.all with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment %S (known: %s)\n" n
              (String.concat ", " (List.map (fun (id, _, _) -> id) E.all));
            exit 1)
        names
  in
  Option.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755) out_dir;
  List.iter
    (fun (id, desc, f) ->
      Printf.printf "== %s — %s ==\n%!" id desc;
      let t0 = Unix.gettimeofday () in
      let table = f env in
      let rendered = if csv then Kg_util.Table.to_csv table else Kg_util.Table.render table in
      print_string rendered;
      Printf.printf "(%.1f s)\n\n%!" (Unix.gettimeofday () -. t0);
      Option.iter
        (fun d ->
          let oc = open_out (Filename.concat d (id ^ if csv then ".csv" else ".txt")) in
          output_string oc rendered;
          close_out oc)
        out_dir)
    selected;
  0

let names_arg =
  let doc = "Experiments to run (default: all). Ids: tab1-tab4, fig1, fig2, fig5-fig13." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_arg =
  let doc = "List experiment ids and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let quick_arg =
  let doc = "Use small quick-run parameters (for smoke testing)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let scale_arg = Arg.(value & opt (some int) None & info [ "scale" ] ~doc:"Allocation scale divisor.")
let heap_arg = Arg.(value & opt (some int) None & info [ "heap-scale" ] ~doc:"Live-heap scale divisor.")
let cap_arg = Arg.(value & opt (some int) None & info [ "cap-mb" ] ~doc:"Run length cap (MB).")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")
let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned tables.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc:"Also write each table to DIR.")

let cmd =
  let term =
    Term.(
      const run_experiments $ list_arg $ names_arg $ quick_arg $ scale_arg $ heap_arg $ cap_arg
      $ seed_arg $ csv_arg $ out_arg)
  in
  Cmd.v (Cmd.info "kingsguard-experiments" ~doc:"Regenerate the paper's tables and figures") term

let () = exit (Cmd.eval' cmd)
