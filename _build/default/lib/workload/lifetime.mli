(** Object lifetime model.

    Lifetimes are drawn in allocation-clock bytes from a four-class
    mixture calibrated per benchmark so that the measured nursery and
    observer survival rates land near the paper's Table 4:

    - [Short]: dies inside the nursery with high probability; a small
      uniform tail survives one collection and then dies in the
      observer — the paper's "tenured garbage" that motivates the
      observer space (§4.2.1);
    - [Medium]: survives the nursery, dies around observer residency;
    - [Long]: exponential residency in the mature space, sized to hold
      the benchmark's live heap steady;
    - [Immortal]: never dies (the startup base the driver allocates to
      model boot/static data).

    The class probabilities solve: nursery survival = short-leak +
    p_medium + p_long, and observer survival ~ p_long / nursery
    survival. *)

type cls = Short | Medium | Long | Immortal

type t

val make : ?live_mb:int -> Descriptor.t -> nursery_bytes:int -> observer_bytes:int -> t
(** Calibrate against the default 4 MB nursery / 8 MB observer (the
    distribution is a workload property and must not depend on the
    collector actually used). [live_mb] overrides the benchmark's live
    target when the experiment scales the heap down. *)

val draw : t -> Kg_util.Rng.t -> nursery_remaining:float -> cls * float
(** A lifetime in bytes of future allocation (never [Immortal]; the
    immortal base is requested explicitly with {!immortal}).
    [nursery_remaining] is the allocation headroom before the next
    nursery collection: most short-class draws are clamped below it so
    measured survival matches the benchmark even when the target is
    near zero, while the objects still live long enough to take
    writes. *)

val immortal : cls * float
(** The class/lifetime pair for startup-immortal objects. *)

val p_long : t -> float
(** Probability mass of the [Long] class (exposed for tests). *)

val expected_nursery_survival : t -> float
(** The survival rate the calibration targets (for tests). *)
