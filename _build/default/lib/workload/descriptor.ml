type t = {
  name : string;
  simulated : bool;
  alloc_mb : int;
  heap_mb : int;
  nursery_survival : float;
  observer_survival : float;
  nursery_write_frac : float;
  top2_frac : float;
  top10_frac : float;
  write_alloc_ratio : float;
  read_write_ratio : float;
  ref_write_frac : float;
  large_frac : float;
  mean_small : int;
  scaling_32core : float;
  write_rate_gbs : float;
  cpu_intensity : float;
}

let mk ?(simulated = false) ?(top2 = 0.81) ?(top10 = 0.93) ?(war = 1.0) ?(rwr = 3.0)
    ?(ref_frac = 0.3) ?(large = 0.03) ?(mean_small = 72) ?(scaling = 1.0) ?(rate = 0.0)
    ?(cpu = 1.0) name ~alloc ~heap ~ns ~os ~nw =
  {
    name;
    simulated;
    alloc_mb = alloc;
    heap_mb = heap;
    nursery_survival = ns;
    observer_survival = os;
    nursery_write_frac = nw;
    top2_frac = top2;
    top10_frac = top10;
    write_alloc_ratio = war;
    read_write_ratio = rwr;
    ref_write_frac = ref_frac;
    large_frac = large;
    mean_small;
    scaling_32core = scaling;
    write_rate_gbs = rate;
    cpu_intensity = cpu;
  }

(* Ordered as in Figure 2. The left-most benchmarks are the
   mature-write-heavy ones: the paper's 6.2.1 says the five left-most
   have more writes in the mature space than the nursery, and its
   per-benchmark notes agree (lusearch's writes hit mature primitive
   arrays; bloat/eclipse are allocation churn). Nursery shares rise
   left to right from ~26% to ~98%, averaging the reported 70%.
   Survival rates and sizes are Table 4; scaling and write rates are
   Table 3. *)
let all =
  [
    mk "lusearch" ~simulated:true ~alloc:4294 ~heap:68 ~ns:0.04 ~os:0.29 ~nw:0.26 ~war:1.9 ~cpu:0.7
      ~large:0.55 ~scaling:5.0 ~rate:9.3;
    mk "pjbb" ~alloc:2314 ~heap:400 ~ns:0.20 ~os:0.84 ~nw:0.33 ~large:0.10;
    mk "lu.fix" ~simulated:true ~alloc:848 ~heap:68 ~ns:0.02 ~os:0.25 ~nw:0.42 ~war:1.3
      ~large:0.05 ~scaling:5.2 ~rate:7.0;
    mk "avrora" ~alloc:64 ~heap:98 ~ns:0.15 ~os:0.0 ~nw:0.48 ~war:0.8;
    mk "luindex" ~alloc:37 ~heap:44 ~ns:0.22 ~os:0.0 ~nw:0.52 ~large:0.50;
    mk "hsqldb" ~alloc:165 ~heap:254 ~ns:0.66 ~os:0.88 ~nw:0.58;
    mk "xalan" ~simulated:true ~alloc:980 ~heap:108 ~ns:0.17 ~os:0.09 ~nw:0.62 ~war:1.4 ~cpu:1.3
      ~large:0.55 ~scaling:7.3 ~rate:8.5;
    mk "sunflow" ~alloc:1920 ~heap:108 ~ns:0.02 ~os:0.13 ~nw:0.66 ~war:1.2;
    mk "pmd" ~simulated:true ~alloc:364 ~heap:98 ~ns:0.23 ~os:0.68 ~nw:0.70 ~war:0.6 ~cpu:8.0
      ~scaling:7.7 ~rate:3.1;
    mk "jython" ~alloc:1150 ~heap:80 ~ns:0.00001 ~os:0.12 ~nw:0.74;
    mk "pr" ~alloc:6946 ~heap:512 ~ns:0.36 ~os:0.99 ~nw:0.78 ~large:0.15 ~war:0.9;
    mk "pmd.s" ~simulated:true ~alloc:202 ~heap:98 ~ns:0.27 ~os:0.47 ~nw:0.80 ~war:0.7 ~cpu:4.0
      ~scaling:10.0 ~rate:7.0;
    mk "cc" ~alloc:5507 ~heap:512 ~ns:0.24 ~os:0.97 ~nw:0.84 ~large:0.30 ~war:0.9;
    mk "als" ~alloc:14245 ~heap:512 ~ns:0.09 ~os:0.63 ~nw:0.87 ~large:0.15 ~war:0.9;
    mk "fop" ~alloc:56 ~heap:80 ~ns:0.20 ~os:0.82 ~nw:0.90 ~war:0.8;
    mk "antlr" ~simulated:true ~alloc:246 ~heap:48 ~ns:0.15 ~os:0.0016 ~nw:0.93 ~war:0.8 ~cpu:9.0
      ~scaling:52.0 ~rate:19.0;
    mk "eclipse" ~alloc:3082 ~heap:160 ~ns:0.15 ~os:0.37 ~nw:0.95;
    mk "bloat" ~simulated:true ~alloc:1246 ~heap:66 ~ns:0.04 ~os:0.19 ~nw:0.98 ~war:0.9 ~cpu:8.5
      ~scaling:63.0 ~rate:24.0;
  ]

let simulated = List.filter (fun d -> d.simulated) all

let find name =
  let lower = String.lowercase_ascii name in
  List.find (fun d -> d.name = lower) all

let names () = List.map (fun d -> d.name) all
let live_mb t = t.heap_mb / 2
