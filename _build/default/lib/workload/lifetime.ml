type cls = Short | Medium | Long | Immortal

type t = {
  p_short : float;
  p_medium : float;
  p_long : float;
  s_max : float;  (* raw short lifetimes are U(0, s_max) *)
  unclamped_frac : float;  (* shorts allowed to outlive the next GC *)
  med_lo : float;
  med_span : float;
  long_mean : float;
  target_ns : float;
}

let make ?live_mb (d : Descriptor.t) ~nursery_bytes ~observer_bytes =
  let ns = d.Descriptor.nursery_survival in
  let os = d.Descriptor.observer_survival in
  let nursery = float_of_int nursery_bytes in
  let p_long = ns *. os in
  (* Split the non-long survival between genuinely medium-lived objects
     and the short class's leak past its first collection. *)
  let leak_target = 0.3 *. ns *. (1.0 -. os) in
  let p_medium = 0.7 *. ns *. (1.0 -. os) in
  let p_short = max 0.0 (1.0 -. p_medium -. p_long) in
  (* Short objects draw a raw lifetime long enough to receive their
     share of writes, but most are clamped to die before the next
     nursery collection; the unclamped fraction supplies exactly the
     target "tenured garbage" leak. An unclamped U(0, s_max) lifetime
     at a uniform nursery position survives with probability
     s_max/(2N). *)
  let s_max = nursery /. 4.0 in
  let unclamped_leak = s_max /. (2.0 *. nursery) in
  let unclamped_frac =
    if p_short <= 0.0 then 0.0
    else Float.min 1.0 (leak_target /. (unclamped_leak *. p_short))
  in
  let obs_period =
    (* Allocation needed to fill the observer with promoted survivors. *)
    float_of_int observer_bytes /. Float.max ns 0.01
  in
  (* Mediums should mostly die while resident in the observer: span a
     bit over half an observer period. *)
  let med_span = Float.min (Float.max (0.6 *. obs_period) (8. *. 1048576.)) (256. *. 1048576.) in
  let live_bytes =
    float_of_int (Option.value live_mb ~default:(Descriptor.live_mb d)) *. 1048576.
  in
  (* The immortal base (allocated by the driver) covers 40% of the live
     target; steady-state long-lived churn covers the rest. *)
  let long_mean =
    if p_long <= 0.0 then 0.0
    else Float.max (16. *. 1048576.) (0.6 *. live_bytes /. p_long)
  in
  {
    p_short;
    p_medium;
    p_long;
    s_max;
    unclamped_frac;
    med_lo = nursery;
    med_span;
    long_mean;
    target_ns = ns;
  }

let draw t rng ~nursery_remaining =
  let open Kg_util in
  let u = Rng.float rng 1.0 in
  if u < t.p_short then begin
    let raw = Rng.float rng t.s_max in
    if Rng.bernoulli rng t.unclamped_frac then (Short, raw)
    else (Short, Float.min raw (0.95 *. nursery_remaining))
  end
  else if u < t.p_short +. t.p_medium then (Medium, t.med_lo +. Rng.float rng t.med_span)
  else (Long, t.med_lo +. Rng.exponential rng t.long_mean)

let immortal = (Immortal, infinity)
let p_long t = t.p_long
let expected_nursery_survival t = t.target_ns
