open Kg_util
open Kg_heap
module O = Object_model
module Rt = Kg_gc.Runtime

let recent_size = 512
let cold_cap = 4096
let large_min = 12 * 1024
let large_alpha = 1.3

(* Per-logical-thread mutator state: its own PRNG stream, window of
   recently allocated objects, and outstanding read/write debts. Pools
   of mature targets are shared (threads share data structures). *)
type thread = {
  rng : Rng.t;
  recent : O.t option array;
  mutable recent_cursor : int;
  mutable write_debt : float;
  mutable read_debt : float;
}

type t = {
  desc : Descriptor.t;
  rt : Rt.t;
  threads : thread array;
  mutable cur : int;  (* round-robin position *)
  life : Lifetime.t;
  hot : O.t Vec.t;
  warm : O.t Vec.t;
  cold : O.t Vec.t;
  mutable allocated : int;  (* objects *)
  p_large : float;
  large_mean : float;
  live_mb : int;
}

let descriptor t = t.desc
let runtime t = t.rt

let create ?live_mb ?(threads = 1) desc ~rt ~seed =
  (* Calibrated against the default sizes regardless of the collector
     under test: lifetimes are a workload property. *)
  let live_mb = Option.value live_mb ~default:(Descriptor.live_mb desc) in
  let life =
    Lifetime.make ~live_mb desc ~nursery_bytes:(4 * Units.mib) ~observer_bytes:(8 * Units.mib)
  in
  (* Mean of the truncated Pareto large-size distribution, to convert
     the byte fraction of large allocation into a per-object draw. *)
  let large_mean =
    let a = large_alpha and x = float_of_int large_min in
    a *. x /. (a -. 1.0)
  in
  let es = float_of_int desc.Descriptor.mean_small in
  let f = desc.Descriptor.large_frac in
  let p_large = if f <= 0.0 then 0.0 else f *. es /. (((1.0 -. f) *. large_mean) +. (f *. es)) in
  let root = Rng.of_seed seed in
  let mk_thread _ =
    {
      rng = Rng.split root;
      recent = Array.make recent_size None;
      recent_cursor = 0;
      write_debt = 0.0;
      read_debt = 0.0;
    }
  in
  {
    desc;
    rt;
    threads = Array.init (max 1 threads) mk_thread;
    cur = 0;
    life;
    hot = Vec.create ();
    warm = Vec.create ();
    cold = Vec.create ();
    allocated = 0;
    p_large;
    large_mean;
    live_mb;
  }

let draw_small_size t th =
  (* Geometric in words around the benchmark mean, 16 B..8 KB. *)
  let mean_words = float_of_int t.desc.Descriptor.mean_small /. 8.0 in
  let p = 1.0 /. Float.max 2.0 mean_words in
  let words = 2 + Rng.geometric th.rng p in
  min Layout.max_small_object (max 16 (words * 8))

let draw_large_size th =
  let s = Rng.pareto th.rng ~alpha:large_alpha ~xmin:(float_of_int large_min) in
  min (2 * Units.mib) (int_of_float s)

let assign_heat t th cls =
  (* Hot objects must end up ~2% of *written* mature objects (Figure
     2). Written mature objects also include the cold sample and the
     warm class, so hot is rare and restricted to long-lived *churn*
     objects (caches, session tables) - allocated at runtime, so they
     pass through the observer where KG-W can classify them. The boot
     image itself is read-mostly static data. *)
  let long_like =
    match cls with
    | Lifetime.Long -> true
    (* Benchmarks with (almost) no long-lived churn still have a hot
       working set; it just lives in the medium class. *)
    | Lifetime.Medium ->
      t.desc.Descriptor.nursery_survival *. t.desc.Descriptor.observer_survival < 0.02
    | _ -> false
  in
  if long_like then begin
    let u = Rng.float th.rng 1.0 in
    if u < 0.04 then O.Hot else if u < 0.20 then O.Warm else O.Cold
  end
  else
    match cls with
    | Lifetime.Short -> O.Cold
    | Lifetime.Medium -> if Rng.bernoulli th.rng 0.02 then O.Warm else O.Cold
    | Lifetime.Immortal -> if Rng.bernoulli th.rng 0.01 then O.Warm else O.Cold
    | Lifetime.Long -> O.Cold

let register t th (o : O.t) =
  th.recent.(th.recent_cursor) <- Some o;
  th.recent_cursor <- (th.recent_cursor + 1) mod recent_size;
  t.allocated <- t.allocated + 1;
  match o.heat with
  | O.Hot -> Vec.push t.hot o
  | O.Warm -> Vec.push t.warm o
  | O.Cold ->
    if Vec.length t.cold < cold_cap then Vec.push t.cold o
    else if Rng.bernoulli th.rng (float_of_int cold_cap /. float_of_int t.allocated) then
      Vec.set t.cold (Rng.int th.rng cold_cap) o

let allocate_one t th =
  let cls, life =
    Lifetime.draw t.life th.rng ~nursery_remaining:(float_of_int (Rt.nursery_free t.rt))
  in
  let large = Rng.bernoulli th.rng t.p_large in
  let size = if large then draw_large_size th else draw_small_size t th in
  (* Large objects draw from the same lifetime mixture: "we find
     empirically that large objects often follow the weak-generational
     hypothesis, i.e., they die quickly" (4.2.4). *)
  let heat = assign_heat t th cls in
  let death = Rt.now t.rt +. life in
  let ref_fields = max 1 (size / 32) in
  let o = Rt.alloc t.rt ~size ~heat ~death ~ref_fields in
  register t th o;
  o

(* Pick a live object from a pool, pruning dead entries on the way.
   Returns None if the pool is effectively empty. *)
let rec pick_live t th pool attempts =
  if attempts = 0 || Vec.length pool = 0 then None
  else begin
    let i = Rng.int th.rng (Vec.length pool) in
    let o = Vec.get pool i in
    if O.is_live o (Rt.now t.rt) then Some o
    else begin
      ignore (Vec.swap_remove pool i);
      pick_live t th pool (attempts - 1)
    end
  end

let pick_recent t th =
  let rec go attempts =
    if attempts = 0 then None
    else begin
      match th.recent.(Rng.int th.rng recent_size) with
      | Some o when O.is_live o (Rt.now t.rt) -> Some o
      | _ -> go (attempts - 1)
    end
  in
  go 4

(* Writes within the hot class are themselves skewed (a few session
   tables/caches dominate), so rank hot picks with a Zipf draw over
   registration order rather than uniformly. *)
let pick_hot t th attempts =
  let pool = t.hot in
  let rec go attempts =
    if attempts = 0 || Vec.length pool = 0 then None
    else begin
      let i = Rng.zipf th.rng ~n:(Vec.length pool) ~s:1.2 in
      let o = Vec.get pool i in
      if O.is_live o (Rt.now t.rt) then Some o
      else begin
        ignore (Vec.swap_remove pool i);
        go (attempts - 1)
      end
    end
  in
  go attempts

let pick_mature t th =
  let d = t.desc in
  let u = Rng.float th.rng 1.0 in
  let primary =
    if u < d.Descriptor.top2_frac then pick_hot t th 8
    else if u < d.Descriptor.top10_frac then pick_live t th t.warm 8
    else pick_live t th t.cold 8
  in
  match primary with
  | Some _ as r -> r
  | None -> (
    match pick_live t th t.cold 8 with Some _ as r -> r | None -> pick_recent t th)

let pick_write_target t th =
  if Rng.bernoulli th.rng t.desc.Descriptor.nursery_write_frac then
    match pick_recent t th with Some o -> Some o | None -> pick_mature t th
  else match pick_mature t th with Some o -> Some o | None -> pick_recent t th

let do_write t th =
  match pick_write_target t th with
  | None -> ()
  | Some src ->
    if Rng.bernoulli th.rng t.desc.Descriptor.ref_write_frac then begin
      let tgt =
        if Rng.bernoulli th.rng 0.5 then
          match pick_recent t th with Some o -> Some o | None -> pick_mature t th
        else pick_mature t th
      in
      match tgt with
      | Some tgt -> Rt.write_ref t.rt ~src ~tgt
      | None -> Rt.write_prim t.rt src
    end
    else Rt.write_prim t.rt src

(* Reads come in streaming bursts over one object (field walks, array
   scans), so one target pick services several load events. *)
let do_reads t th n =
  let target = if Rng.bernoulli th.rng 0.6 then pick_recent t th else pick_mature t th in
  match target with Some o -> Rt.read_burst t.rt o n | None -> ()

let mutate_for t th (o : O.t) =
  let d = t.desc in
  th.write_debt <-
    th.write_debt +. (float_of_int o.size *. d.Descriptor.write_alloc_ratio /. 8.0);
  while th.write_debt >= 1.0 do
    do_write t th;
    th.write_debt <- th.write_debt -. 1.0;
    th.read_debt <- th.read_debt +. d.Descriptor.read_write_ratio;
    if th.read_debt >= 1.0 then begin
      let burst = min 8 (int_of_float th.read_debt) in
      do_reads t th burst;
      th.read_debt <- th.read_debt -. float_of_int burst
    end
  done

let allocate_startup t =
  (* Boot image: immortal objects placed directly in the mature space.
     They still join the target pools, so long-lived hot data (session
     tables, caches) receives its share of mature writes. *)
  let th = t.threads.(0) in
  let target = 0.4 *. float_of_int t.live_mb *. float_of_int Units.mib in
  let start = Rt.now t.rt in
  while Rt.now t.rt -. start < target do
    let large = Rng.bernoulli th.rng t.p_large in
    let size = if large then draw_large_size th else draw_small_size t th in
    let heat = assign_heat t th Lifetime.Immortal in
    let o = Rt.alloc_boot t.rt ~size ~heat ~ref_fields:(max 1 (size / 32)) in
    register t th o
  done

(* Each engine step runs one thread for a small burst of allocations,
   then rotates: the coarse interleaving real schedulers produce. *)
let burst_allocs = 16

let run t ~alloc_bytes ?(on_tick = fun _ -> ()) ?(tick_bytes = Units.mib) () =
  let start = Rt.now t.rt in
  let next_tick = ref (start +. float_of_int tick_bytes) in
  let target = start +. float_of_int alloc_bytes in
  while Rt.now t.rt < target do
    let th = t.threads.(t.cur) in
    t.cur <- (t.cur + 1) mod Array.length t.threads;
    let deadline = Float.min target (Rt.now t.rt +. float_of_int (burst_allocs * 256)) in
    while Rt.now t.rt < deadline do
      let o = allocate_one t th in
      mutate_for t th o
    done;
    if Rt.now t.rt >= !next_tick then begin
      on_tick (Rt.now t.rt);
      next_tick := !next_tick +. float_of_int tick_bytes
    end
  done

let scaled_alloc_bytes (d : Descriptor.t) ~scale ~cap_mb =
  let scaled = d.alloc_mb / max 1 scale in
  let floor_mb = min d.alloc_mb 96 in
  min cap_mb (max floor_mb scaled) * Units.mib
