(** Benchmark descriptors.

    The paper evaluates 12 DaCapo benchmarks, two fixed variants
    (lu.Fix, pmd.S), pseudojbb2005, and three GraphChi programs (PR, CC,
    ALS). We cannot run Java, so each benchmark becomes a synthetic
    mutator parameterised by the paper's published measurements:

    - Table 4: allocation volume, heap size (2x min live), nursery and
      observer survival rates;
    - Figure 2: the nursery/mature write split and the top-2%/top-10%
      mature write concentration;
    - Table 3: 4-to-32-core write-rate scaling and estimated write
      rates for the seven benchmarks the simulator runs;
    - §6.2: which benchmarks are large-object heavy (xalan, lusearch,
      luindex, the GraphChi trio).

    The mutator reproduces the distributions of exactly the quantities
    the collectors can observe, which is what makes the reproduction
    meaningful without the original applications. *)

type t = {
  name : string;
  simulated : bool;  (** in the 7-benchmark cycle-simulation subset *)
  alloc_mb : int;  (** Table 4 col 1 *)
  heap_mb : int;  (** Table 4 col 2 = 2x min live *)
  nursery_survival : float;  (** Table 4 col 3 *)
  observer_survival : float;  (** Table 4 col 16 *)
  nursery_write_frac : float;  (** Figure 2 *)
  top2_frac : float;  (** share of mature writes to hottest 2% *)
  top10_frac : float;
  write_alloc_ratio : float;  (** mutation-write bytes per allocated byte *)
  read_write_ratio : float;  (** loads per store *)
  ref_write_frac : float;  (** stores that are reference stores *)
  large_frac : float;  (** fraction of allocated bytes in >8 KB objects *)
  mean_small : int;  (** mean small-object size, bytes *)
  scaling_32core : float;  (** Table 3 measured scaling (1.0 if unknown) *)
  write_rate_gbs : float;  (** Table 3 estimated 32-core write rate; 0 if n/a *)
  cpu_intensity : float;
      (** application compute per heap access relative to the suite
          baseline; calibrated so simulated 4-core write rates match
          Table 3 (pmd, antlr and bloat do far more computation per
          allocated byte than lusearch) *)
}

val all : t list
(** All 18 benchmarks, in Figure 2's order. *)

val simulated : t list
(** The seven benchmarks of Figures 5-10 and Table 3 (xalan, pmd,
    pmd.S, lusearch, lu.Fix, antlr, bloat). *)

val find : string -> t
(** Case-insensitive lookup by name; raises [Not_found]. *)

val names : unit -> string list

val live_mb : t -> int
(** Minimum live size: half the fixed heap. *)
