lib/workload/mutator.mli: Descriptor Kg_gc
