lib/workload/descriptor.mli:
