lib/workload/trace_input.mli: Kg_gc Kg_heap
