lib/workload/lifetime.mli: Descriptor Kg_util
