lib/workload/lifetime.ml: Descriptor Float Kg_util Option Rng
