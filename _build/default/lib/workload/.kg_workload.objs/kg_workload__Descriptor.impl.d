lib/workload/descriptor.ml: List String
