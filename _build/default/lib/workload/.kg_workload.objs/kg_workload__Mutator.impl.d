lib/workload/mutator.ml: Array Descriptor Float Kg_gc Kg_heap Kg_util Layout Lifetime Object_model Option Rng Units Vec
