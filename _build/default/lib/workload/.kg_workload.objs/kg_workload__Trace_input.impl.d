lib/workload/trace_input.ml: Array In_channel Kg_gc Kg_heap List Printf String
