(** Summary statistics used by the experiment runners. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val geomean : float array -> float
(** Geometric mean; 0 on the empty array. Values must be positive. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays shorter than 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation
    between order statistics. Raises [Invalid_argument] on empty. *)

val minimum : float array -> float
val maximum : float array -> float

val normalize_to : float -> float array -> float array
(** [normalize_to base xs] divides every element by [base]. *)

(** Streaming accumulator (Welford) for mean/variance without storing
    samples; used by long-running simulations. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val sum : t -> float
end
