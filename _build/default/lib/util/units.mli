(** Byte / time unit constants and human-readable formatting. *)

val kib : int
val mib : int
val gib : int

val bytes_of_mib : int -> int
val bytes_of_kib : int -> int

val mib_of_bytes : int -> float
val gib_of_bytes : int -> float

val pp_bytes : Format.formatter -> int -> unit
(** Render a byte count with a binary suffix, e.g. "4.0 MiB". *)

val pp_bytes_f : Format.formatter -> float -> unit
(** Like {!pp_bytes} for fractional byte counts (rates, averages). *)

val ns_per_s : float

val pp_time_ns : Format.formatter -> float -> unit
(** Render nanoseconds with an adaptive unit (ns / us / ms / s). *)

val seconds_per_year : float
(** The paper's lifetime formula uses 2^25 s ~ one year; we keep the
    same constant so lifetime numbers are directly comparable. *)
