(** Plain-text table rendering for experiment output.

    The experiment runners print each figure/table of the paper as an
    aligned ASCII table (and optionally CSV) so results can be eyeballed
    against the published numbers. *)

type t

val create : columns:string list -> t
(** Create a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** Insert a horizontal separator (e.g. before an average row). *)

val render : t -> string
(** Aligned ASCII rendering, column widths fitted to content. *)

val to_csv : t -> string
(** CSV rendering (RFC-4180 quoting for cells containing commas). *)

val cell_f : float -> string
(** Format a float cell with 3 significant-looking decimals. *)

val cell_pct : float -> string
(** Format a ratio as a percentage cell, e.g. 0.81 -> "81.0%". *)
