(** Dependency-free SVG charts.

    Renders the experiment tables as grouped bar charts and line charts
    so regenerated figures can be eyeballed against the paper's. Output
    is a standalone SVG document string. *)

type series = string * float array
(** (legend label, one value per category). *)

val bar_chart :
  ?width:int ->
  ?height:int ->
  ?ylabel:string ->
  title:string ->
  categories:string list ->
  series:series list ->
  unit ->
  string
(** Grouped vertical bars; series lengths must equal the category
    count (raises [Invalid_argument] otherwise). The y-axis starts at
    0 and is scaled to the maximum value with a small headroom. *)

val line_chart :
  ?width:int ->
  ?height:int ->
  ?xlabel:string ->
  ?ylabel:string ->
  title:string ->
  series:(string * (float * float) array) list ->
  unit ->
  string
(** Poly-line chart over (x, y) points (e.g. the Figure 13 heap
    composition traces). *)

val palette : int -> string
(** Stable colour for series index [i]. *)
