(** Growable arrays.

    The heap simulator keeps per-space object populations in vectors and
    compacts them in place during collections, so we need amortised O(1)
    push, O(1) swap-remove, and cheap truncation. OCaml 5.1's stdlib has
    no [Dynarray] yet; this is the small subset we use. *)

type 'a t

val create : unit -> 'a t
val with_capacity : int -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove t i] removes index [i] in O(1) by moving the last
    element into its place, and returns the removed element. Order is
    not preserved. *)

val clear : 'a t -> unit
val truncate : 'a t -> int -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order. *)
