type kind = Linear of { lo : float; hi : float } | Log2

type t = { kind : kind; counts : int array; mutable n : int; mutable sum : float }

let create ?(lo = 0.0) ~hi ~bins () =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  { kind = Linear { lo; hi }; counts = Array.make bins 0; n = 0; sum = 0.0 }

let create_log2 ~bins =
  if bins <= 0 then invalid_arg "Histogram.create_log2: bins must be positive";
  { kind = Log2; counts = Array.make bins 0; n = 0; sum = 0.0 }

let index t x =
  let bins = Array.length t.counts in
  match t.kind with
  | Linear { lo; hi } ->
    let i = int_of_float (float_of_int bins *. (x -. lo) /. (hi -. lo)) in
    max 0 (min (bins - 1) i)
  | Log2 ->
    let i = if x < 1.0 then 0 else int_of_float (Float.log2 x) in
    max 0 (min (bins - 1) i)

let addn t x k =
  t.counts.(index t x) <- t.counts.(index t x) + k;
  t.n <- t.n + k;
  t.sum <- t.sum +. (x *. float_of_int k)

let add t x = addn t x 1
let count t = t.n
let bin_count t i = t.counts.(i)
let bins t = Array.length t.counts
let total t = t.sum

let bin_bounds t i =
  let nbins = Array.length t.counts in
  if i < 0 || i >= nbins then invalid_arg "Histogram.bin_bounds";
  match t.kind with
  | Linear { lo; hi } ->
    let w = (hi -. lo) /. float_of_int nbins in
    (lo +. (float_of_int i *. w), lo +. (float_of_int (i + 1) *. w))
  | Log2 -> ((if i = 0 then 0.0 else 2.0 ** float_of_int i), 2.0 ** float_of_int (i + 1))

let fraction_above t x =
  if t.n = 0 then 0.0
  else begin
    let above = ref 0 in
    for i = 0 to Array.length t.counts - 1 do
      let lo, _ = bin_bounds t i in
      if lo >= x then above := !above + t.counts.(i)
    done;
    float_of_int !above /. float_of_int t.n
  end

let coefficient_of_variation t =
  let xs = Array.map float_of_int t.counts in
  let m = Stats.mean xs in
  if m = 0.0 then 0.0 else Stats.stddev xs /. m
