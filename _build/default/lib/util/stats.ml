let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        acc +. log x) 0.0 xs
    in
    exp (acc /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let minimum xs = Array.fold_left Float.min xs.(0) xs
let maximum xs = Array.fold_left Float.max xs.(0) xs
let normalize_to base xs = Array.map (fun x -> x /. base) xs

module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable sum : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; sum = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let sum t = t.sum
end
