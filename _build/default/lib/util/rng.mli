(** Deterministic pseudo-random number generation.

    All stochastic choices in the simulator (object lifetimes, write
    targets, workload interleavings) flow through this module so that
    every experiment is reproducible from a seed. The generator is the
    stdlib's LXM (L64X128), which is fast, splittable, and
    allocation-free on the [int]/[float] paths the simulator hits
    several times per heap access. *)

type t
(** Mutable generator state. *)

val of_seed : int -> t
(** [of_seed s] creates a generator from a 63-bit seed. Two generators
    built from the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each benchmark / subsystem its own stream so that
    adding draws in one subsystem does not perturb another. *)

val copy : t -> t
(** [copy t] is a generator with identical state that evolves
    independently from [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success
    of a Bernoulli([p]) sequence; mean (1-p)/p. [p] must be in (0,1]. *)

val pareto : t -> alpha:float -> xmin:float -> float
(** Pareto(alpha, xmin) draw; heavy-tailed sizes/lifetimes. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in [\[0, n)] with probability
    proportional to 1/(rank+1)^s, via rejection-inversion. Models the
    skewed "top 2% of objects take 81% of writes" behaviour. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
