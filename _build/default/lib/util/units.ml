let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024
let bytes_of_mib n = n * mib
let bytes_of_kib n = n * kib
let mib_of_bytes b = float_of_int b /. float_of_int mib
let gib_of_bytes b = float_of_int b /. float_of_int gib

let pp_bytes_f fmt b =
  let abs = Float.abs b in
  if abs >= float_of_int gib then Format.fprintf fmt "%.2f GiB" (b /. float_of_int gib)
  else if abs >= float_of_int mib then Format.fprintf fmt "%.1f MiB" (b /. float_of_int mib)
  else if abs >= float_of_int kib then Format.fprintf fmt "%.1f KiB" (b /. float_of_int kib)
  else Format.fprintf fmt "%.0f B" b

let pp_bytes fmt b = pp_bytes_f fmt (float_of_int b)

let ns_per_s = 1e9

let pp_time_ns fmt t =
  let abs = Float.abs t in
  if abs >= 1e9 then Format.fprintf fmt "%.3f s" (t /. 1e9)
  else if abs >= 1e6 then Format.fprintf fmt "%.2f ms" (t /. 1e6)
  else if abs >= 1e3 then Format.fprintf fmt "%.2f us" (t /. 1e3)
  else Format.fprintf fmt "%.0f ns" t

let seconds_per_year = 2.0 ** 25.0
