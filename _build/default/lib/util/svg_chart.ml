type series = string * float array

let colours =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#b07aa1"; "#76b7b2"; "#edc948"; "#9c755f" |]

let palette i = colours.(i mod Array.length colours)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let header w h = Printf.sprintf "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"sans-serif\" font-size=\"11\">\n" w h

let text b ~x ~y ?(anchor = "start") ?(size = 11) ?(rotate = 0.0) s =
  if rotate = 0.0 then
    Printf.bprintf b "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"%s\" font-size=\"%d\">%s</text>\n" x y
      anchor size (escape s)
  else
    Printf.bprintf b
      "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"%s\" font-size=\"%d\" transform=\"rotate(%.0f %.1f %.1f)\">%s</text>\n"
      x y anchor size rotate x y (escape s)

(* Shared frame: title, axes, legend. Returns the plotting rectangle. *)
let frame b ~w ~h ~title ~ylabel ~legend =
  let left = 55.0 and right = 15.0 and top = 35.0 and bottom = 70.0 in
  let px0 = left and py0 = top in
  let px1 = float_of_int w -. right and py1 = float_of_int h -. bottom in
  text b ~x:(float_of_int w /. 2.0) ~y:20.0 ~anchor:"middle" ~size:14 title;
  (match ylabel with
  | Some l -> text b ~x:14.0 ~y:((py0 +. py1) /. 2.0) ~anchor:"middle" ~rotate:(-90.0) l
  | None -> ());
  Printf.bprintf b
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"black\"/>\n" px0 py0 px0 py1;
  Printf.bprintf b
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"black\"/>\n" px0 py1 px1 py1;
  List.iteri
    (fun i label ->
      let lx = px0 +. (float_of_int i *. 120.0) in
      let ly = float_of_int h -. 12.0 in
      Printf.bprintf b "<rect x=\"%.1f\" y=\"%.1f\" width=\"10\" height=\"10\" fill=\"%s\"/>\n" lx
        (ly -. 9.0) (palette i);
      text b ~x:(lx +. 14.0) ~y:ly label)
    legend;
  (px0, py0, px1, py1)

let y_ticks b ~px0 ~py0 ~py1 ~vmax =
  for i = 0 to 4 do
    let v = vmax *. float_of_int i /. 4.0 in
    let y = py1 -. ((py1 -. py0) *. float_of_int i /. 4.0) in
    Printf.bprintf b
      "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ccc\"/>\n" px0 y (px0 -. 4.0)
      y;
    text b ~x:(px0 -. 6.0) ~y:(y +. 4.0) ~anchor:"end" (Printf.sprintf "%.2g" v)
  done

let bar_chart ?(width = 760) ?(height = 360) ?ylabel ~title ~categories ~series () =
  let ncat = List.length categories in
  List.iter
    (fun (name, vs) ->
      if Array.length vs <> ncat then
        invalid_arg (Printf.sprintf "Svg_chart.bar_chart: series %S length mismatch" name))
    series;
  let b = Buffer.create 4096 in
  Buffer.add_string b (header width height);
  let legend = List.map fst series in
  let px0, py0, px1, py1 = frame b ~w:width ~h:height ~title ~ylabel ~legend in
  let vmax =
    List.fold_left (fun m (_, vs) -> Array.fold_left Float.max m vs) 1e-9 series *. 1.1
  in
  y_ticks b ~px0 ~py0 ~py1 ~vmax;
  let nser = max 1 (List.length series) in
  let slot = (px1 -. px0) /. float_of_int (max 1 ncat) in
  let bar_w = slot *. 0.8 /. float_of_int nser in
  List.iteri
    (fun si (_, vs) ->
      Array.iteri
        (fun ci v ->
          let x = px0 +. (float_of_int ci *. slot) +. (slot *. 0.1) +. (float_of_int si *. bar_w) in
          let bh = (py1 -. py0) *. v /. vmax in
          Printf.bprintf b
            "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\"/>\n" x
            (py1 -. bh) bar_w bh (palette si))
        vs)
    series;
  List.iteri
    (fun ci label ->
      let x = px0 +. (float_of_int ci *. slot) +. (slot /. 2.0) in
      text b ~x ~y:(py1 +. 12.0) ~anchor:"end" ~rotate:(-40.0) label)
    categories;
  Buffer.add_string b "</svg>\n";
  Buffer.contents b

let line_chart ?(width = 760) ?(height = 360) ?xlabel ?ylabel ~title ~series () =
  let b = Buffer.create 4096 in
  Buffer.add_string b (header width height);
  let legend = List.map fst series in
  let px0, py0, px1, py1 = frame b ~w:width ~h:height ~title ~ylabel ~legend in
  (match xlabel with
  | Some l -> text b ~x:((px0 +. px1) /. 2.0) ~y:(py1 +. 30.0) ~anchor:"middle" l
  | None -> ());
  let fold f init = List.fold_left (fun acc (_, pts) -> Array.fold_left f acc pts) init series in
  let xmax = fold (fun m (x, _) -> Float.max m x) 1e-9 in
  let vmax = fold (fun m (_, y) -> Float.max m y) 1e-9 *. 1.1 in
  y_ticks b ~px0 ~py0 ~py1 ~vmax;
  for i = 0 to 4 do
    let v = xmax *. float_of_int i /. 4.0 in
    let x = px0 +. ((px1 -. px0) *. float_of_int i /. 4.0) in
    text b ~x ~y:(py1 +. 14.0) ~anchor:"middle" (Printf.sprintf "%.3g" v)
  done;
  List.iteri
    (fun si (_, pts) ->
      let path = Buffer.create 256 in
      Array.iteri
        (fun i (x, y) ->
          let sx = px0 +. ((px1 -. px0) *. x /. xmax) in
          let sy = py1 -. ((py1 -. py0) *. y /. vmax) in
          Printf.bprintf path "%s%.1f,%.1f " (if i = 0 then "M" else "L") sx sy)
        pts;
      Printf.bprintf b "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.8\"/>\n"
        (Buffer.contents path) (palette si))
    series;
  Buffer.add_string b "</svg>\n";
  Buffer.contents b
