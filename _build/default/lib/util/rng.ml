(* Backed by the stdlib's LXM generator (Random.State): deterministic
   from a seed, splittable, and — unlike a hand-rolled xoshiro on boxed
   Int64s — allocation-free on the [int]/[float] fast paths, which the
   simulator hits several times per heap access. *)

type t = Random.State.t

let of_seed seed = Random.State.make [| seed |]
let split t = Random.State.split t
let copy t = Random.State.copy t
let bits64 t = Random.State.bits64 t

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t
let bernoulli t p = Random.State.float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p not in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    int_of_float (floor (log (1.0 -. u) /. log (1.0 -. p)))

let pareto t ~alpha ~xmin =
  let u = float t 1.0 in
  xmin /. ((1.0 -. u) ** (1.0 /. alpha))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if n = 1 then 0
  else if s = 0.0 then int t n
  else begin
    (* Rejection-inversion (Hörmann & Derflinger). H is the integral of
       the density envelope; we invert it and reject against the true
       probability mass. *)
    let nf = float_of_int n in
    let h x = if s = 1.0 then log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h_inv y = if s = 1.0 then exp y else ((1.0 -. s) *. y) ** (1.0 /. (1.0 -. s)) in
    let h_x1 = h 1.5 -. 1.0 in
    let h_n = h (nf +. 0.5) in
    let rec draw () =
      let u = h_x1 +. (float t 1.0 *. (h_n -. h_x1)) in
      let x = h_inv u in
      let k = Float.max 1.0 (Float.round x) in
      if k -. x <= 0.5 || u >= h (k +. 0.5) -. (k ** -.s) then int_of_float k - 1 else draw ()
    in
    draw ()
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
