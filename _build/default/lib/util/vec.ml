type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let with_capacity n = { data = (if n = 0 then [||] else Array.make n (Obj.magic 0)); len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let check t i name =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds (len %d)" name i t.len)

let get t i = check t i "get"; t.data.(i)
let set t i x = check t i "set"; t.data.(i) <- x

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  (* The spare slots beyond [len] are never exposed, so the unsafe
     placeholder cannot escape. *)
  let ndata = Array.make ncap (Obj.magic 0) in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    let x = t.data.(t.len) in
    t.data.(t.len) <- Obj.magic 0;
    Some x
  end

let swap_remove t i =
  check t i "swap_remove";
  let x = t.data.(i) in
  t.len <- t.len - 1;
  t.data.(i) <- t.data.(t.len);
  t.data.(t.len) <- Obj.magic 0;
  x

let clear t =
  Array.fill t.data 0 t.len (Obj.magic 0);
  t.len <- 0

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate";
  Array.fill t.data n (t.len - n) (Obj.magic 0);
  t.len <- n

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = Array.copy a; len = Array.length a }

let filter_in_place p t =
  let keep = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    if p x then begin
      t.data.(!keep) <- x;
      incr keep
    end
  done;
  truncate t !keep
