(** Fixed-bin and power-of-two histograms.

    Used to verify wear-leveling uniformity (per-line write counts) and
    to report object size / lifetime demographics. *)

type t

val create : ?lo:float -> hi:float -> bins:int -> unit -> t
(** Linear histogram over [\[lo, hi)] ([lo] defaults to 0). Samples
    outside the range are clamped to the first/last bin. *)

val create_log2 : bins:int -> t
(** Power-of-two histogram: bin [i] counts samples in [\[2^i, 2^(i+1))];
    bin 0 also receives samples < 1. *)

val add : t -> float -> unit
val addn : t -> float -> int -> unit
val count : t -> int
val bin_count : t -> int -> int
val bins : t -> int
val total : t -> float

val bin_bounds : t -> int -> float * float
(** Inclusive-exclusive bounds of a bin. *)

val fraction_above : t -> float -> float
(** [fraction_above t x] is the fraction of samples in bins whose lower
    bound is >= [x]. *)

val coefficient_of_variation : t -> float
(** stddev/mean over bin counts — 0 means perfectly uniform. Used to
    check that wear-leveling spreads writes evenly. *)
