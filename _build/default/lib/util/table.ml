type row = Cells of string array | Rule

type t = { header : string array; mutable rows : row list (* reversed *) }

let create ~columns = { header = Array.of_list columns; rows = [] }

let add_row t cells =
  let n = Array.length t.header in
  let cells = Array.of_list cells in
  let len = Array.length cells in
  if len > n then invalid_arg "Table.add_row: more cells than columns";
  let padded = Array.make n "" in
  Array.blit cells 0 padded 0 len;
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.header in
  let widths = Array.map String.length t.header in
  let fit = function
    | Rule -> ()
    | Cells cs -> Array.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cs
  in
  List.iter fit rows;
  let buf = Buffer.create 1024 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let emit_cells cs =
    for i = 0 to n - 1 do
      Buffer.add_string buf (pad cs.(i) widths.(i));
      if i < n - 1 then Buffer.add_string buf "  "
    done;
    Buffer.add_char buf '\n'
  in
  let rule_len = Array.fold_left ( + ) (2 * (n - 1)) widths in
  emit_cells t.header;
  Buffer.add_string buf (String.make rule_len '-');
  Buffer.add_char buf '\n';
  List.iter (function Cells cs -> emit_cells cs | Rule -> Buffer.add_string buf (String.make rule_len '-'); Buffer.add_char buf '\n') rows;
  Buffer.contents buf

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then begin
    let b = Buffer.create (String.length c + 2) in
    Buffer.add_char b '"';
    String.iter (fun ch -> if ch = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b ch) c;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else c

let to_csv t =
  let buf = Buffer.create 1024 in
  let emit cs = Buffer.add_string buf (String.concat "," (List.map csv_cell (Array.to_list cs))); Buffer.add_char buf '\n' in
  emit t.header;
  List.iter (function Cells cs -> emit cs | Rule -> ()) (List.rev t.rows);
  Buffer.contents buf

let cell_f x =
  if Float.abs x >= 100.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 10.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.2f" x

let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
