lib/util/svg_chart.mli:
