lib/util/table.mli:
