lib/util/svg_chart.ml: Array Buffer Float List Printf String
