lib/util/stats.mli:
