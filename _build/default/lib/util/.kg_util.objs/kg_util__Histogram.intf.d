lib/util/histogram.mli:
