lib/util/rng.mli:
