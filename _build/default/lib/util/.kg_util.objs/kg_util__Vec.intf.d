lib/util/vec.mli:
