lib/os/write_partition.ml: Controller Float Hashtbl Hierarchy Kg_cache Kg_gc Kg_heap Kg_mem List
