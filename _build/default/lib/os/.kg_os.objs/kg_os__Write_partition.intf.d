lib/os/write_partition.mli: Kg_cache Kg_gc
