type t = {
  cpu_j : float;
  static_dram_j : float;
  static_pcm_j : float;
  dynamic_j : float;
}

let total_j e = e.cpu_j +. e.static_dram_j +. e.static_pcm_j +. e.dynamic_j

let of_run ~(machine : Machine.t) ~time_s =
  let open Kg_mem in
  let dram_gb = Kg_util.Units.gib_of_bytes (Address_map.dram_size machine.Machine.map) in
  let pcm_gb = Kg_util.Units.gib_of_bytes (Address_map.pcm_size machine.Machine.map) in
  {
    cpu_j = Costs.cpu_power_w *. time_s;
    static_dram_j = Costs.dram_static_w_per_gb *. dram_gb *. time_s;
    static_pcm_j = Costs.pcm_static_w_per_gb *. pcm_gb *. time_s;
    dynamic_j = Kg_cache.Controller.access_energy_j machine.Machine.ctrl;
  }

let edp e ~time_s = total_j e *. time_s
