(** Run one (benchmark, memory system, collector) combination and
    collect every metric the paper's figures read. *)

type mode =
  | Simulate  (** full cache + memory simulation (the paper's Sniper runs) *)
  | Count  (** architecture-independent barrier-level counting (the
               paper's real-hardware runs) *)

type spec = {
  system : Machine.system;
  collector : Kg_gc.Gc_config.collector;
  nursery_mb : int;
  wp : bool;  (** OS write-partitioning instead of GC-directed placement *)
  observer_mb : int option;  (** [None] = the paper's 2x nursery *)
  write_threshold : int;  (** counting extension; 1 = the paper's bit *)
  pcm_write_trigger_mb : int option;  (** write-triggered major extension *)
}

val kg_n : spec
val kg_n_12 : spec
val kg_w : spec
val kg_w_no_loo : spec
val kg_w_no_loo_mdo : spec
val kg_w_no_pm : spec
val dram_only : spec
val pcm_only : spec
val wp : spec

val label : spec -> string

type result = {
  bench : Kg_workload.Descriptor.t;
  spec : spec;
  stats : Kg_gc.Gc_stats.t;
  alloc_bytes : int;
  (* memory-level traffic (Simulate mode; zeros in Count mode) *)
  mem_pcm_write_bytes : float;
  mem_dram_write_bytes : float;
  mem_pcm_read_bytes : float;
  mem_dram_read_bytes : float;
  pcm_writes_by_phase : float array;  (** bytes, by {!Kg_gc.Phase.to_tag} *)
  wear_cov : float;  (** wear-leveling uniformity (0 = uniform) *)
  migration_pcm_bytes : float;  (** WP page copies into PCM *)
  wp_dram_mb : float;  (** peak WP DRAM partition usage *)
  (* time and energy *)
  time_parts : Time_model.parts;
  time_s : float;
  energy : Energy.t option;
  edp : float;  (** 0 in Count mode *)
  (* demographics, sampled at every collection *)
  dram_avg_mb : float;
  dram_max_mb : float;
  pcm_avg_mb : float;
  pcm_max_mb : float;
  mature_dram_avg_mb : float;
  meta_mb : float;
  trace : (float * float * float) list;
      (** (allocation clock, PCM MB, DRAM MB), oldest first, when traced *)
}

val pcm_write_rate_4core_gbs : result -> float
(** Simulated PCM write rate: writeback bytes / reconstructed time. *)

val pcm_write_rate_32core_gbs : result -> float
(** Scaled by the benchmark's Table 3 factor, as in §5.2.2. *)

val lifetime_years : ?endurance:float -> result -> float
(** Equation 1 with the 32-core write rate. *)

val run :
  ?seed:int ->
  ?scale:int ->
  ?heap_scale:int ->
  ?cap_mb:int ->
  ?trace:bool ->
  ?threads:int ->
  mode:mode ->
  spec ->
  Kg_workload.Descriptor.t ->
  result
(** [scale] divides the benchmark's allocation volume (default 16);
    [heap_scale] divides its live-heap target (default 3, floor 16 MB)
    so that observer and major collections still fire in shortened
    runs; [cap_mb] bounds the run length (default 256 MB). *)
