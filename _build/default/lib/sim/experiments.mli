(** One runner per table and figure of the paper's evaluation (§6).

    Every runner returns a {!Kg_util.Table.t} whose rows mirror the
    published figure so measured-vs-paper comparison is mechanical.
    Results are memoised per environment: figures share underlying
    (benchmark x system x collector) runs, so regenerating the full set
    costs one pass over the run matrix. *)

type opts = {
  scale : int;  (** divide each benchmark's allocation volume *)
  heap_scale : int;  (** divide each benchmark's live target *)
  cap_mb : int;  (** upper bound on simulated allocation per run *)
  seed : int;
}

val default_opts : opts
(** scale 8, heap_scale 3, cap 256 MB — the setting used for the
    numbers in EXPERIMENTS.md. *)

val quick_opts : opts
(** Small runs for tests and benchmarking harness smoke passes. *)

type env

val make_env : opts -> env
val opts : env -> opts

val fetch : env -> Run.mode -> Run.spec -> Kg_workload.Descriptor.t -> Run.result
(** Memoised access to the underlying runs (exposed for tests and for
    the example programs). *)

val fig1 : env -> Kg_util.Table.t
(** PCM-only vs KG-N vs KG-W average lifetime (years) at 10/30/100 M
    endurance. *)

val fig2 : env -> Kg_util.Table.t
(** Nursery/mature write split and top-10%/top-2% mature write
    concentration per benchmark (instrumented GenImmix). *)

val tab1 : env -> Kg_util.Table.t
(** Collector configuration matrix. *)

val tab2 : env -> Kg_util.Table.t
(** Simulated system parameters. *)

val tab3 : env -> Kg_util.Table.t
(** Measured scaling and estimated 32-core write rates. *)

val fig5 : env -> Kg_util.Table.t
(** PCM lifetime relative to PCM-only. *)

val fig6 : env -> Kg_util.Table.t
(** PCM writes relative to PCM-only: KG-N, KG-W, and the LOO/MDO
    ablations. *)

val fig7 : env -> Kg_util.Table.t
(** KG-N / KG-W / WP writebacks and WP migrations, relative to
    PCM-only. *)

val fig8 : env -> Kg_util.Table.t
(** Energy-delay product relative to DRAM-only. *)

val fig9 : env -> Kg_util.Table.t
(** KG-W overhead breakdown over DRAM-only: PCM, Remsets, GC,
    Monitoring, Other. *)

val fig10 : env -> Kg_util.Table.t
(** Origin of PCM writes (application / nursery / observer / major GC)
    for KG-N and KG-W, relative to KG-N total. *)

val fig11 : env -> Kg_util.Table.t
(** Barrier-observed application writes to PCM: KG-N-12, KG-W,
    KG-W-PM relative to KG-N. *)

val fig12 : env -> Kg_util.Table.t
(** Execution time relative to KG-N: KG-W and its ablations. *)

val fig13 : env -> Kg_util.Table.t
(** Heap composition over time (PCM vs DRAM MB) for PR and eclipse. *)

val tab4 : env -> Kg_util.Table.t
(** Object demographics and per-collector space usage. *)

val ext_threshold : env -> Kg_util.Table.t
(** Extension (§4.2.2 future work): place an object in mature DRAM only
    after k monitored writes; k=1 is the paper's write bit. *)

val ext_write_trigger : env -> Kg_util.Table.t
(** Extension (§6.2.1 future work): trigger major collections when
    barrier-observed PCM writes accumulate, rescuing written PCM
    objects early. *)

val ext_observer_size : env -> Kg_util.Table.t
(** Sensitivity of PCM writes / time / survival to the observer size
    (the paper fixes 2x nursery, §5.1). *)

val ext_pauses : env -> Kg_util.Table.t
(** Average modeled pause per collection kind under KG-W, checking the
    §4.2.1 ordering nursery < observer < full-heap. *)

val ext_allocator : env -> Kg_util.Table.t
(** Immix mark-region vs segregated-fit free-list on an identical
    stream: footprint, internal fragmentation, and cache-filtered
    memory traffic (§3's locality premise). *)

val ext_threads : env -> Kg_util.Table.t
(** PCM write-rate scaling from 1 to 4 interleaved mutator threads on
    one cache hierarchy (the contention effect behind Table 3). *)

val ext_nursery_size : env -> Kg_util.Table.t
(** KG-N nursery-size sweep: §6.2.1's finding that a larger nursery
    helps nursery-write-heavy benchmarks but not mature-write-heavy
    ones. *)

val all : (string * string * (env -> Kg_util.Table.t)) list
(** (id, description, runner) for every experiment above, including the
    three extensions. *)

val run_by_name : env -> string -> Kg_util.Table.t
(** Raises [Not_found] for an unknown id. *)
