(** Energy and energy-delay product (Figure 8).

    Total energy = CPU power x time + per-device static power x time +
    dynamic access energy from the memory controller. The dominant
    effect the paper exploits is that 32 GB of DRAM burns substantial
    background power while PCM's standby power is negligible (§5.2.2),
    so the hybrid systems win on EDP despite PCM's slower, costlier
    writes. *)

type t = {
  cpu_j : float;
  static_dram_j : float;
  static_pcm_j : float;
  dynamic_j : float;
}

val total_j : t -> float

val of_run : machine:Machine.t -> time_s:float -> t

val edp : t -> time_s:float -> float
(** Energy x delay, in joule-seconds. *)
