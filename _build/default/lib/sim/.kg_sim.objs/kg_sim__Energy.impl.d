lib/sim/energy.ml: Address_map Costs Kg_cache Kg_mem Kg_util Machine
