lib/sim/machine.mli: Kg_cache Kg_mem
