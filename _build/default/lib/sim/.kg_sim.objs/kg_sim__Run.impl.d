lib/sim/run.ml: Array Descriptor Energy Gc_config Gc_stats Kg_cache Kg_gc Kg_heap Kg_mem Kg_os Kg_util Kg_workload List Machine Mem_iface Mutator Option Phase Runtime Stats Time_model Units
