lib/sim/time_model.mli: Kg_gc Machine
