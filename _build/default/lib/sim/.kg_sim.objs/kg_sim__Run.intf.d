lib/sim/run.mli: Energy Kg_gc Kg_workload Machine Time_model
