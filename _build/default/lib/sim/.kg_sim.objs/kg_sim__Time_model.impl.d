lib/sim/time_model.ml: Controller Costs Device Gc_stats Hierarchy Kg_cache Kg_gc Kg_mem Machine
