lib/sim/experiments.ml: Array Descriptor Float Hashtbl Kg_cache Kg_gc Kg_heap Kg_mem Kg_util Kg_workload List Option Printf Rng Run Stats String Table Time_model Units
