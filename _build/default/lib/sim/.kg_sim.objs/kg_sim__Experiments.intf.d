lib/sim/experiments.mli: Kg_util Kg_workload Run
