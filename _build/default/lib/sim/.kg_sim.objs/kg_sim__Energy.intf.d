lib/sim/energy.mli: Machine
