lib/sim/costs.mli:
