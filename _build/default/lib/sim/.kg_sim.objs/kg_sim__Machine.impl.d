lib/sim/machine.ml: Address_map Controller Device Hierarchy Kg_cache Kg_mem Kg_util Wear
