lib/sim/costs.ml:
