type t = {
  kind : Kg_mem.Device.kind;
  base : int;
  limit : int;
  mutable cursor : int;
}

let create ~kind ~base ~size = { kind; base; limit = base + size; cursor = base }

let kind t = t.kind

let reserve t bytes =
  let bytes = Layout.align_up bytes Layout.page in
  if t.cursor + bytes > t.limit then
    failwith
      (Printf.sprintf "Arena.reserve: %s arena exhausted (%d requested, %d left)"
         (Kg_mem.Device.kind_to_string t.kind) bytes (t.limit - t.cursor));
  let addr = t.cursor in
  t.cursor <- t.cursor + bytes;
  addr

let reserved_bytes t = t.cursor - t.base
let remaining t = t.limit - t.cursor
let base t = t.base
let limit t = t.limit
