let word = 8
let header_bytes = 8
let write_word_bytes = 8
let line = 256
let block = 32 * 1024
let lines_per_block = block / line
let page = 4096
let max_small_object = 8 * 1024
let min_object = header_bytes
let small_mark_threshold = 16
let mark_table_bytes_per_region = 262 * 1024
let mature_region = 4 * 1024 * 1024

let align_up x a = (x + a - 1) land lnot (a - 1)
let align_object_size s = max min_object (align_up s word)
