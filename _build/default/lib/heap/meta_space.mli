(** Runtime/GC metadata region.

    Holds everything the JVM writes besides objects: remembered-set
    buffers, Immix line/block mark bytes, and (under MDO) the mark-state
    tables for 4 MB PCM mature regions. Its placement decides where that
    metadata traffic lands: the single memory for the baselines, PCM for
    KG-N (Figure 3b), DRAM for KG-W (Figure 3c). *)

type t

val create : id:int -> name:string -> arena:Arena.t -> t

val id : t -> int
val kind : t -> Kg_mem.Device.kind

val alloc_table : t -> int -> int
(** [alloc_table t bytes] reserves a metadata table and returns its
    address. *)

val free_table : t -> int -> unit
(** Account the release of [bytes] of table space (when a 4 MB PCM
    region is freed its DRAM mark table goes too, §4.2.5). Storage is
    bump-allocated, so this only adjusts the usage figure. *)

val usage_bytes : t -> int
(** Current table bytes minus freed ones (Table 4 "metadata MB"). *)

val high_water_bytes : t -> int
