lib/heap/arena.ml: Kg_mem Layout Printf
