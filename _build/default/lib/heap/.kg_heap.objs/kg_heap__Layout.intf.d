lib/heap/layout.mli:
