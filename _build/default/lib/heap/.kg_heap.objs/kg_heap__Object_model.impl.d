lib/heap/object_model.ml: Layout
