lib/heap/arena.mli: Kg_mem
