lib/heap/immix_space.ml: Arena Array Bytes Kg_util Layout List Object_model Vec
