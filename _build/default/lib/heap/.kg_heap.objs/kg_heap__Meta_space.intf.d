lib/heap/meta_space.mli: Arena Kg_mem
