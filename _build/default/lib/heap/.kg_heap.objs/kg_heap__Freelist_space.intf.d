lib/heap/freelist_space.mli: Arena Kg_util Object_model
