lib/heap/freelist_space.ml: Arena Array Hashtbl Kg_util Layout Object_model Vec
