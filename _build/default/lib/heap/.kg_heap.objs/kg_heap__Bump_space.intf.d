lib/heap/bump_space.mli: Arena Kg_mem Kg_util Object_model
