lib/heap/immix_space.mli: Arena Kg_mem Kg_util Object_model
