lib/heap/bump_space.ml: Arena Kg_mem Kg_util Object_model Vec
