lib/heap/layout.ml:
