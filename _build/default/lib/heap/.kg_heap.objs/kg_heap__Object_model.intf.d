lib/heap/object_model.mli:
