lib/heap/los.ml: Arena Layout Object_model
