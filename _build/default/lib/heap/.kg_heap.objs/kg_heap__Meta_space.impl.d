lib/heap/meta_space.ml: Arena
