lib/heap/los.mli: Arena Kg_mem Object_model
