(** Heap layout constants, matching the paper's defaults (§3, §5.1).

    Immix line size equals the PCM line size (256 B); blocks are 32 KB;
    small objects are at most 8 KB; requests to the OS are 4 KB pages. *)

val word : int
(** 8-byte words. *)

val header_bytes : int
(** Standard object header (type/status word). *)

val write_word_bytes : int
(** The extra header word KG-W adds to record writes (§4.2.2). *)

val line : int
(** Immix line size = PCM line size = 256 B. *)

val block : int
(** Immix block size = 32 KB. *)

val lines_per_block : int

val page : int
(** OS page size = 4 KB. *)

val max_small_object : int
(** Objects above this (8 KB) go to the large object space. *)

val min_object : int
(** Smallest object: a header with no payload. *)

val small_mark_threshold : int
(** MDO: objects at most this size (16 B) keep their mark bit in the
    header rather than the DRAM mark table (§4.2.5). *)

val mark_table_bytes_per_region : int
(** MDO: DRAM mark-table bytes reserved per PCM region (262 KB). *)

val mature_region : int
(** MDO: PCM mature space reserves space this many bytes at a time
    (4 MB), each getting a DRAM mark table. *)

val align_up : int -> int -> int
(** [align_up x a] rounds [x] up to a multiple of [a] (a power of 2). *)

val align_object_size : int -> int
(** Round a requested payload+header size to word alignment, clamped to
    at least {!min_object}. *)
