open Kg_util

type t = {
  id : int;
  name : string;
  base : int;
  limit : int;
  kind : Kg_mem.Device.kind;
  mutable cursor : int;
  objects : Object_model.t Vec.t;
}

let create ~id ~name ~arena ~size =
  let base = Arena.reserve arena size in
  {
    id;
    name;
    base;
    limit = base + size;
    kind = Arena.kind arena;
    cursor = base;
    objects = Vec.create ();
  }

let id t = t.id
let name t = t.name
let size t = t.limit - t.base
let base t = t.base
let kind t = t.kind

let alloc t (o : Object_model.t) =
  if t.cursor + o.size > t.limit then false
  else begin
    o.addr <- t.cursor;
    o.space <- t.id;
    t.cursor <- t.cursor + o.size;
    Vec.push t.objects o;
    true
  end

let free_bytes t = t.limit - t.cursor
let used_bytes t = t.cursor - t.base
let is_empty t = Vec.is_empty t.objects

let objects t = t.objects

let reset t =
  Vec.clear t.objects;
  t.cursor <- t.base

let live_bytes t ~now =
  Vec.fold (fun acc o -> if Object_model.is_live o now then acc + o.Object_model.size else acc) 0 t.objects
