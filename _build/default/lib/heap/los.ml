(* Treadmill nodes form a circular doubly-linked list anchored at a
   sentinel, so snap/unsnap are O(1) as in the real collector. *)

type node = {
  mutable obj : Object_model.t option;  (* None for the sentinel *)
  mutable prev : node;
  mutable next : node;
}

type t = {
  id : int;
  name : string;
  arena : Arena.t;
  mutable from_anchor : node;
  mutable live_bytes : int;
  mutable count : int;
  mutable total_allocated : int;
}

let new_anchor () =
  let rec n = { obj = None; prev = n; next = n } in
  n

let create ~id ~name ~arena =
  { id; name; arena; from_anchor = new_anchor (); live_bytes = 0; count = 0; total_allocated = 0 }

let id t = t.id
let name t = t.name
let kind t = Arena.kind t.arena

let snap anchor o =
  let n = { obj = Some o; prev = anchor.prev; next = anchor } in
  anchor.prev.next <- n;
  anchor.prev <- n

let alloc t (o : Object_model.t) =
  if Arena.remaining t.arena < Layout.align_up o.size Layout.page then false
  else begin
    o.addr <- Arena.reserve t.arena o.size;
    o.space <- t.id;
    snap t.from_anchor o;
    t.live_bytes <- t.live_bytes + o.size;
    t.count <- t.count + 1;
    t.total_allocated <- t.total_allocated + o.size;
    true
  end

let adopt t (o : Object_model.t) =
  o.addr <- Arena.reserve t.arena o.size;
  o.space <- t.id;
  snap t.from_anchor o;
  t.live_bytes <- t.live_bytes + o.size;
  t.count <- t.count + 1;
  t.total_allocated <- t.total_allocated + o.size

let collect t ~now ~keep ?(on_dead = fun _ -> ()) () =
  let to_anchor = new_anchor () in
  let evicted = ref [] in
  let live = ref 0 and count = ref 0 in
  let rec walk n =
    if n != t.from_anchor then begin
      let next = n.next in
      (match n.obj with
      | None -> ()
      | Some o ->
        if Object_model.is_live o now then begin
          if keep o then begin
            snap to_anchor o;
            live := !live + o.Object_model.size;
            incr count
          end
          else evicted := o :: !evicted
        end
        else (* not snapped; its pages are reclaimed *) on_dead o);
      walk next
    end
  in
  walk t.from_anchor.next;
  t.from_anchor <- to_anchor;
  t.live_bytes <- !live;
  t.count <- !count;
  !evicted

let iter t f =
  let rec walk n =
    if n != t.from_anchor then begin
      (match n.obj with Some o -> f o | None -> ());
      walk n.next
    end
  in
  walk t.from_anchor.next

let live_bytes t = t.live_bytes
let object_count t = t.count
let allocated_bytes_total t = t.total_allocated
