open Kg_util

type entry = { slot_addr : int; target : Kg_heap.Object_model.t }

type t = {
  name : string;
  buffer_base : int;
  buffer_slots : int;
  entries : entry Vec.t;
  mutable cursor : int;
  mutable total : int;
}

let entry_bytes = Kg_heap.Layout.word

let create ~name ~buffer_base ~buffer_bytes =
  {
    name;
    buffer_base;
    buffer_slots = max 1 (buffer_bytes / entry_bytes);
    entries = Vec.create ();
    cursor = 0;
    total = 0;
  }

let name t = t.name

let insert t ~slot_addr ~target =
  Vec.push t.entries { slot_addr; target };
  let addr = t.buffer_base + (t.cursor * entry_bytes) in
  t.cursor <- (t.cursor + 1) mod t.buffer_slots;
  t.total <- t.total + 1;
  addr

let length t = Vec.length t.entries
let iter t f = Vec.iter f t.entries

let clear t =
  Vec.clear t.entries;
  t.cursor <- 0

let total_inserts t = t.total
