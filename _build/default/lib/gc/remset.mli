(** Sequential-store-buffer remembered set.

    The write barrier (Figure 4) inserts the address of any slot outside
    the nursery (resp. outside nursery+observer) that is written with a
    pointer into it. Insertion writes an entry word into a metadata
    buffer — traffic the caller accounts — and collections consume the
    entries as roots, updating each recorded slot when its target moves
    (the source of GC-time PCM writes in §6.1.6). *)

type entry = { slot_addr : int; target : Kg_heap.Object_model.t }

type t

val create : name:string -> buffer_base:int -> buffer_bytes:int -> t
(** [buffer_base]/[buffer_bytes] locate the backing store in the
    metadata space; entry writes cycle through it. *)

val name : t -> string

val insert : t -> slot_addr:int -> target:Kg_heap.Object_model.t -> int
(** Record an entry; returns the metadata address written so the caller
    can issue the store. *)

val length : t -> int

val iter : t -> (entry -> unit) -> unit

val clear : t -> unit

val total_inserts : t -> int
(** Lifetime insert count (for the Remsets overhead of Figure 9). *)
