open Kg_util

type t = {
  mutable app_writes_nursery : int;
  mutable app_writes_observer : int;
  mutable app_writes_mature : int;
  mutable app_write_bytes_dram : int;
  mutable app_write_bytes_pcm : int;
  mutable ref_writes : int;
  mutable prim_writes : int;
  mutable reads : int;
  mutable gen_remset_inserts : int;
  mutable obs_remset_inserts : int;
  mutable monitor_header_writes : int;
  mutable barrier_fast_paths : int;
  mutable nursery_gcs : int;
  mutable observer_gcs : int;
  mutable major_gcs : int;
  mutable copied_bytes_nursery : int;
  mutable copied_bytes_observer : int;
  mutable copied_bytes_major : int;
  mutable remset_slot_updates : int;
  mutable mark_header_writes : int;
  mutable mark_table_writes : int;
  mutable scanned_objects : int;
  mutable nursery_alloc_bytes : int;
  mutable nursery_survived_bytes : int;
  mutable observer_in_bytes : int;
  mutable observer_survived_bytes : int;
  mutable observer_to_dram_bytes : int;
  mutable observer_to_pcm_bytes : int;
  mutable large_allocs : int;
  mutable large_allocs_in_nursery : int;
  mutable mature_moves_to_dram : int;
  mutable mature_moves_to_pcm : int;
  mutable los_moves_to_dram : int;
  retired_mature_writes : int Vec.t;
  collection_log : (Phase.t * int * int) Vec.t;
}

let create () =
  {
    app_writes_nursery = 0;
    app_writes_observer = 0;
    app_writes_mature = 0;
    app_write_bytes_dram = 0;
    app_write_bytes_pcm = 0;
    ref_writes = 0;
    prim_writes = 0;
    reads = 0;
    gen_remset_inserts = 0;
    obs_remset_inserts = 0;
    monitor_header_writes = 0;
    barrier_fast_paths = 0;
    nursery_gcs = 0;
    observer_gcs = 0;
    major_gcs = 0;
    copied_bytes_nursery = 0;
    copied_bytes_observer = 0;
    copied_bytes_major = 0;
    remset_slot_updates = 0;
    mark_header_writes = 0;
    mark_table_writes = 0;
    scanned_objects = 0;
    nursery_alloc_bytes = 0;
    nursery_survived_bytes = 0;
    observer_in_bytes = 0;
    observer_survived_bytes = 0;
    observer_to_dram_bytes = 0;
    observer_to_pcm_bytes = 0;
    large_allocs = 0;
    large_allocs_in_nursery = 0;
    mature_moves_to_dram = 0;
    mature_moves_to_pcm = 0;
    los_moves_to_dram = 0;
    retired_mature_writes = Vec.create ();
    collection_log = Vec.create ();
  }

let reset t =
  t.app_writes_nursery <- 0;
  t.app_writes_observer <- 0;
  t.app_writes_mature <- 0;
  t.app_write_bytes_dram <- 0;
  t.app_write_bytes_pcm <- 0;
  t.ref_writes <- 0;
  t.prim_writes <- 0;
  t.reads <- 0;
  t.gen_remset_inserts <- 0;
  t.obs_remset_inserts <- 0;
  t.monitor_header_writes <- 0;
  t.barrier_fast_paths <- 0;
  t.nursery_gcs <- 0;
  t.observer_gcs <- 0;
  t.major_gcs <- 0;
  t.copied_bytes_nursery <- 0;
  t.copied_bytes_observer <- 0;
  t.copied_bytes_major <- 0;
  t.remset_slot_updates <- 0;
  t.mark_header_writes <- 0;
  t.mark_table_writes <- 0;
  t.scanned_objects <- 0;
  t.nursery_alloc_bytes <- 0;
  t.nursery_survived_bytes <- 0;
  t.observer_in_bytes <- 0;
  t.observer_survived_bytes <- 0;
  t.observer_to_dram_bytes <- 0;
  t.observer_to_pcm_bytes <- 0;
  t.large_allocs <- 0;
  t.large_allocs_in_nursery <- 0;
  t.mature_moves_to_dram <- 0;
  t.mature_moves_to_pcm <- 0;
  t.los_moves_to_dram <- 0;
  Vec.clear t.retired_mature_writes;
  Vec.clear t.collection_log

let log_collection t phase ~copied ~scanned = Vec.push t.collection_log (phase, copied, scanned)

let retire t (o : Kg_heap.Object_model.t) =
  if o.age >= 1 then Vec.push t.retired_mature_writes o.writes

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let nursery_survival t = ratio t.nursery_survived_bytes t.nursery_alloc_bytes
let observer_survival t = ratio t.observer_survived_bytes t.observer_in_bytes

let mature_write_fraction t =
  ratio (t.app_writes_observer + t.app_writes_mature)
    (t.app_writes_nursery + t.app_writes_observer + t.app_writes_mature)

let top_fraction_writes t frac =
  let written =
    Vec.fold (fun acc w -> if w > 0 then w :: acc else acc) [] t.retired_mature_writes
  in
  let counts = Array.of_list written in
  if Array.length counts = 0 then 0.0
  else begin
    Array.sort (fun a b -> compare b a) counts;
    let total = Array.fold_left ( + ) 0 counts in
    let k = max 1 (int_of_float (frac *. float_of_int (Array.length counts))) in
    let top = ref 0 in
    for i = 0 to k - 1 do
      top := !top + counts.(i)
    done;
    ratio !top total
  end
