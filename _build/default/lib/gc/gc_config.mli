(** Collector configurations (Table 1).

    [Gen_immix] is the unmodified generational Immix baseline, used for
    the DRAM-only and PCM-only systems (and, paired with {!Kg_os}, for
    the WP comparison). [Kg_nursery] maps the nursery to DRAM and
    everything else to PCM (Figure 3b). [Kg_writers] adds the observer
    space, per-object write monitoring and mature DRAM/PCM spaces
    (Figure 3c); its three switches correspond to the paper's ablations:
    LOO (large objects try the nursery first), MDO (PCM mark state kept
    in DRAM tables), and PM (primitive writes monitored in addition to
    reference writes — KG-W–PM in Figure 11 turns this off). *)

type collector =
  | Gen_immix
  | Kg_nursery
  | Kg_writers of { loo : bool; mdo : bool; pm : bool }

type t = {
  collector : collector;
  nursery_bytes : int;  (** default 4 MB; 12 MB for KG-N-12 *)
  observer_bytes : int;  (** default 8 MB = 2x nursery *)
  heap_bytes : int;  (** full-heap trigger: 2x minimum live size *)
  write_threshold : int;
      (** KG-W extension (the paper's §4.2.2 future work): an object
          counts as "written" for placement only after this many
          monitored writes in the epoch. 1 = the paper's write bit. *)
  pcm_write_trigger_bytes : int option;
      (** KG-W extension (§6.2.1 future work): also trigger a major
          collection after this many barrier-observed PCM write bytes,
          so written PCM objects are rescued promptly. *)
  defrag_threshold : float option;
      (** Immix defragmentation (§6.3): when the free fraction of
          partially-filled mature blocks exceeds this after a major
          collection, evacuate the sparsest blocks. Off by default —
          the paper's heaps never trigger it, and extra copies are
          exactly the wrong tradeoff for PCM. *)
}

val kg_w_default : collector
(** KG-W with all optimizations on. *)

val make :
  ?nursery_mb:int ->
  ?observer_mb:int ->
  ?write_threshold:int ->
  ?pcm_write_trigger_mb:int ->
  ?defrag_threshold:float ->
  heap_mb:int ->
  collector ->
  t

val name : t -> string
(** Short name as used in the paper's figures (KG-N, KG-W, KG-W-LOO,
    KG-W-LOO-MDO, KG-W-PM, GenImmix, KG-N-12). *)

val has_observer : t -> bool
val monitors_writes : t -> bool
