(** Execution phases.

    Every memory write carries the phase that issued it; the cache
    hierarchy propagates the tag of the last writer of each line to its
    eventual writeback, which is how Figure 10 attributes PCM writes to
    the application, nursery collections, observer collections, or
    major collections (plus OS page migration for the WP baseline). *)

type t = Application | Nursery_gc | Observer_gc | Major_gc | Migration

val to_tag : t -> int
val of_tag : int -> t
val to_string : t -> string
val all : t list
val count : int
