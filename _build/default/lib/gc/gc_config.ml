type collector =
  | Gen_immix
  | Kg_nursery
  | Kg_writers of { loo : bool; mdo : bool; pm : bool }

type t = {
  collector : collector;
  nursery_bytes : int;
  observer_bytes : int;
  heap_bytes : int;
  write_threshold : int;
  pcm_write_trigger_bytes : int option;
  defrag_threshold : float option;
}

let kg_w_default = Kg_writers { loo = true; mdo = true; pm = true }

let make ?(nursery_mb = 4) ?observer_mb ?(write_threshold = 1) ?pcm_write_trigger_mb
    ?defrag_threshold ~heap_mb collector =
  let nursery_bytes = nursery_mb * Kg_util.Units.mib in
  let observer_bytes =
    match observer_mb with
    | Some mb -> mb * Kg_util.Units.mib
    | None -> 2 * nursery_bytes
  in
  {
    collector;
    nursery_bytes;
    observer_bytes;
    heap_bytes = heap_mb * Kg_util.Units.mib;
    write_threshold;
    pcm_write_trigger_bytes = Option.map (fun mb -> mb * Kg_util.Units.mib) pcm_write_trigger_mb;
    defrag_threshold;
  }

let name t =
  match t.collector with
  | Gen_immix -> "GenImmix"
  | Kg_nursery ->
    if t.nursery_bytes = 12 * Kg_util.Units.mib then "KG-N-12" else "KG-N"
  | Kg_writers { loo; mdo; pm } ->
    let suffix = (if not loo then "-LOO" else "") ^ (if not mdo then "-MDO" else "") ^ if not pm then "-PM" else "" in
    "KG-W" ^ suffix

let has_observer t = match t.collector with Kg_writers _ -> true | _ -> false
let monitors_writes = has_observer
