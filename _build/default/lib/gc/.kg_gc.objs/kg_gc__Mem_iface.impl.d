lib/gc/mem_iface.ml: Array Kg_cache Kg_mem Phase
