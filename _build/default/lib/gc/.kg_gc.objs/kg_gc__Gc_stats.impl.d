lib/gc/gc_stats.ml: Array Kg_heap Kg_util Phase Vec
