lib/gc/remset.mli: Kg_heap
