lib/gc/remset.ml: Kg_heap Kg_util Vec
