lib/gc/mem_iface.mli: Kg_cache Kg_mem Phase
