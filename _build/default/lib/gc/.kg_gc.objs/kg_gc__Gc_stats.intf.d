lib/gc/gc_stats.mli: Kg_heap Kg_util Phase
