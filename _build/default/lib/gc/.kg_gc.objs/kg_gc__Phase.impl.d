lib/gc/phase.ml: Printf
