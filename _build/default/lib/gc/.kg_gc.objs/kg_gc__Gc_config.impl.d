lib/gc/gc_config.ml: Kg_util Option
