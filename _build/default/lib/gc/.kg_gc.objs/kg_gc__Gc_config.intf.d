lib/gc/gc_config.mli:
