lib/gc/phase.mli:
