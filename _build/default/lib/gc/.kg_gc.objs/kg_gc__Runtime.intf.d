lib/gc/runtime.mli: Gc_config Gc_stats Kg_heap Kg_mem Mem_iface Phase
