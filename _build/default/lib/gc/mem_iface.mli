(** What the runtime needs from the machine below it.

    Two implementations: {!of_hierarchy} drives the full cache/memory
    simulator (architecture-dependent results: Figures 5-10), and
    {!counting} tallies raw read/write bytes per device with no cache
    filtering (the architecture-independent write-barrier measurements
    of Figures 2, 11, 12 and Table 4, which the paper gathered on real
    hardware). *)

type t = {
  read : addr:int -> size:int -> unit;
  write : addr:int -> size:int -> unit;
  set_phase : Phase.t -> unit;
  phase : unit -> Phase.t;
}

type counters = {
  mutable dram_read_bytes : int;
  mutable dram_write_bytes : int;
  mutable pcm_read_bytes : int;
  mutable pcm_write_bytes : int;
  pcm_write_bytes_by_phase : int array;  (** indexed by {!Phase.to_tag} *)
  mutable cur_phase : Phase.t;
}

val of_hierarchy : Kg_cache.Hierarchy.t -> t

val counting : map:Kg_mem.Address_map.t -> t * counters

val null : unit -> t
(** Discards traffic entirely; for tests exercising pure heap logic. *)
