type t = {
  read : addr:int -> size:int -> unit;
  write : addr:int -> size:int -> unit;
  set_phase : Phase.t -> unit;
  phase : unit -> Phase.t;
}

type counters = {
  mutable dram_read_bytes : int;
  mutable dram_write_bytes : int;
  mutable pcm_read_bytes : int;
  mutable pcm_write_bytes : int;
  pcm_write_bytes_by_phase : int array;
  mutable cur_phase : Phase.t;
}

let of_hierarchy h =
  {
    read = (fun ~addr ~size -> Kg_cache.Hierarchy.access_range h ~addr ~size ~write:false);
    write = (fun ~addr ~size -> Kg_cache.Hierarchy.access_range h ~addr ~size ~write:true);
    set_phase = (fun p -> Kg_cache.Hierarchy.set_phase h (Phase.to_tag p));
    phase = (fun () -> Phase.of_tag (Kg_cache.Hierarchy.phase h));
  }

let counting ~map =
  let c =
    {
      dram_read_bytes = 0;
      dram_write_bytes = 0;
      pcm_read_bytes = 0;
      pcm_write_bytes = 0;
      pcm_write_bytes_by_phase = Array.make Phase.count 0;
      cur_phase = Phase.Application;
    }
  in
  let kind addr = Kg_mem.Address_map.kind_of map addr in
  let iface =
    {
      read =
        (fun ~addr ~size ->
          match kind addr with
          | Kg_mem.Device.Dram -> c.dram_read_bytes <- c.dram_read_bytes + size
          | Kg_mem.Device.Pcm -> c.pcm_read_bytes <- c.pcm_read_bytes + size);
      write =
        (fun ~addr ~size ->
          match kind addr with
          | Kg_mem.Device.Dram -> c.dram_write_bytes <- c.dram_write_bytes + size
          | Kg_mem.Device.Pcm ->
            c.pcm_write_bytes <- c.pcm_write_bytes + size;
            let tag = Phase.to_tag c.cur_phase in
            c.pcm_write_bytes_by_phase.(tag) <- c.pcm_write_bytes_by_phase.(tag) + size);
      set_phase = (fun p -> c.cur_phase <- p);
      phase = (fun () -> c.cur_phase);
    }
  in
  (iface, c)

let null () =
  let phase = ref Phase.Application in
  {
    read = (fun ~addr:_ ~size:_ -> ());
    write = (fun ~addr:_ ~size:_ -> ());
    set_phase = (fun p -> phase := p);
    phase = (fun () -> !phase);
  }
