type t = Application | Nursery_gc | Observer_gc | Major_gc | Migration

let to_tag = function
  | Application -> 0
  | Nursery_gc -> 1
  | Observer_gc -> 2
  | Major_gc -> 3
  | Migration -> 4

let of_tag = function
  | 0 -> Application
  | 1 -> Nursery_gc
  | 2 -> Observer_gc
  | 3 -> Major_gc
  | 4 -> Migration
  | n -> invalid_arg (Printf.sprintf "Phase.of_tag: %d" n)

let to_string = function
  | Application -> "application"
  | Nursery_gc -> "nursery-GC"
  | Observer_gc -> "observer-GC"
  | Major_gc -> "major-GC"
  | Migration -> "migration"

let all = [ Application; Nursery_gc; Observer_gc; Major_gc; Migration ]
let count = 5
