open Kg_mem

type t = {
  map : Address_map.t;
  dram : Device.t;
  pcm : Device.t;
  wear : Wear.t option;
  line_size : int;
  mutable dram_reads : int;
  mutable dram_writes : int;
  mutable pcm_reads : int;
  mutable pcm_writes : int;
  dram_tag_writes : int array;
  pcm_tag_writes : int array;
  mutable time_ns : float;
  mutable energy_j : float;
  mutable on_write : int -> unit;
}

let create ?(dram = Device.dram) ?(pcm = Device.pcm) ?wear ?(max_tags = 8)
    ?(on_write = fun _ -> ()) ~map ~line_size () =
  {
    map;
    dram;
    pcm;
    wear;
    line_size;
    dram_reads = 0;
    dram_writes = 0;
    pcm_reads = 0;
    pcm_writes = 0;
    dram_tag_writes = Array.make max_tags 0;
    pcm_tag_writes = Array.make max_tags 0;
    time_ns = 0.0;
    energy_j = 0.0;
    on_write;
  }

let set_on_write t f = t.on_write <- f

let map t = t.map
let line_size t = t.line_size

let device t = function Device.Dram -> t.dram | Device.Pcm -> t.pcm

let line_read t addr =
  let kind = Address_map.kind_of t.map addr in
  let dev = device t kind in
  (match kind with
  | Device.Dram -> t.dram_reads <- t.dram_reads + 1
  | Device.Pcm -> t.pcm_reads <- t.pcm_reads + 1);
  t.time_ns <- t.time_ns +. dev.Device.read_latency_ns;
  t.energy_j <- t.energy_j +. Device.read_energy_j dev

let line_write t addr ~tag =
  t.on_write addr;
  let kind = Address_map.kind_of t.map addr in
  let dev = device t kind in
  (match kind with
  | Device.Dram ->
    t.dram_writes <- t.dram_writes + 1;
    if tag < Array.length t.dram_tag_writes then
      t.dram_tag_writes.(tag) <- t.dram_tag_writes.(tag) + 1
  | Device.Pcm ->
    t.pcm_writes <- t.pcm_writes + 1;
    if tag < Array.length t.pcm_tag_writes then
      t.pcm_tag_writes.(tag) <- t.pcm_tag_writes.(tag) + 1;
    Option.iter
      (fun w ->
        let off = addr - Address_map.pcm_base t.map in
        if off >= 0 && off < Address_map.pcm_size t.map then Wear.record_write w off)
      t.wear);
  t.time_ns <- t.time_ns +. dev.Device.write_latency_ns;
  t.energy_j <- t.energy_j +. Device.write_energy_j dev

let reads t = function Device.Dram -> t.dram_reads | Device.Pcm -> t.pcm_reads
let writes t = function Device.Dram -> t.dram_writes | Device.Pcm -> t.pcm_writes

let writes_by_tag t = function
  | Device.Dram -> Array.copy t.dram_tag_writes
  | Device.Pcm -> Array.copy t.pcm_tag_writes

let bytes_written t kind = writes t kind * t.line_size
let bytes_read t kind = reads t kind * t.line_size
let access_time_ns t = t.time_ns
let access_energy_j t = t.energy_j

let reset t =
  t.dram_reads <- 0;
  t.dram_writes <- 0;
  t.pcm_reads <- 0;
  t.pcm_writes <- 0;
  Array.fill t.dram_tag_writes 0 (Array.length t.dram_tag_writes) 0;
  Array.fill t.pcm_tag_writes 0 (Array.length t.pcm_tag_writes) 0;
  t.time_ns <- 0.0;
  t.energy_j <- 0.0
