type writeback = { wb_addr : int; wb_tag : int }

type stats = { hits : int; misses : int; writebacks : int }

type t = {
  name : string;
  line_size : int;
  line_bits : int;
  sets : int;
  set_mask : int;
  ways : int;
  latency_ns : float;
  (* Way state, indexed by set * ways + way. tags.(i) = -1 means invalid;
     otherwise it holds the full block address (addr / line_size). *)
  tags : int array;
  dirty : Bytes.t;
  phase : int array;
  lru : int array;  (* per-way last-use stamp *)
  clock : int array;  (* per-set use counter *)
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~size ~ways ~line_size ~latency_ns =
  if ways <= 0 || line_size <= 0 || size mod (ways * line_size) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of ways * line_size";
  let sets = size / (ways * line_size) in
  if not (is_pow2 sets && is_pow2 line_size) then
    invalid_arg "Cache.create: sets and line_size must be powers of two";
  {
    name;
    line_size;
    line_bits = log2 line_size;
    sets;
    set_mask = sets - 1;
    ways;
    latency_ns;
    tags = Array.make (sets * ways) (-1);
    dirty = Bytes.make (sets * ways) '\000';
    phase = Array.make (sets * ways) 0;
    lru = Array.make (sets * ways) 0;
    clock = Array.make sets 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let name t = t.name
let line_size t = t.line_size
let latency_ns t = t.latency_ns

let block_of t addr = addr lsr t.line_bits
let set_of t block = block land t.set_mask

let touch t set way =
  t.clock.(set) <- t.clock.(set) + 1;
  t.lru.((set * t.ways) + way) <- t.clock.(set)

let probe t ~addr ~write ~tag =
  let block = block_of t addr in
  let set = set_of t block in
  let base = set * t.ways in
  let rec find way =
    if way = t.ways then -1
    else if t.tags.(base + way) = block then way
    else find (way + 1)
  in
  let way = find 0 in
  if way >= 0 then begin
    t.hits <- t.hits + 1;
    touch t set way;
    if write then begin
      Bytes.unsafe_set t.dirty (base + way) '\001';
      t.phase.(base + way) <- tag
    end;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let fill t ~addr ~write ~tag =
  let block = block_of t addr in
  let set = set_of t block in
  let base = set * t.ways in
  (* Victim: an invalid way if present, else least-recently used. *)
  let victim = ref 0 in
  let best = ref max_int in
  (try
     for way = 0 to t.ways - 1 do
       if t.tags.(base + way) = -1 then begin
         victim := way;
         raise Exit
       end;
       if t.lru.(base + way) < !best then begin
         best := t.lru.(base + way);
         victim := way
       end
     done
   with Exit -> ());
  let idx = base + !victim in
  let wb =
    if t.tags.(idx) >= 0 && Bytes.get t.dirty idx = '\001' then begin
      t.writebacks <- t.writebacks + 1;
      Some { wb_addr = t.tags.(idx) lsl t.line_bits; wb_tag = t.phase.(idx) }
    end
    else None
  in
  t.tags.(idx) <- block;
  Bytes.set t.dirty idx (if write then '\001' else '\000');
  t.phase.(idx) <- (if write then tag else 0);
  touch t set !victim;
  wb

let invalidate_all t =
  let acc = ref [] in
  for idx = 0 to Array.length t.tags - 1 do
    if t.tags.(idx) >= 0 && Bytes.get t.dirty idx = '\001' then
      acc := { wb_addr = t.tags.(idx) lsl t.line_bits; wb_tag = t.phase.(idx) } :: !acc;
    t.tags.(idx) <- -1;
    Bytes.set t.dirty idx '\000'
  done;
  !acc

let stats t = { hits = t.hits; misses = t.misses; writebacks = t.writebacks }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0
