lib/cache/controller.ml: Address_map Array Device Kg_mem Option Wear
