lib/cache/cache.mli:
