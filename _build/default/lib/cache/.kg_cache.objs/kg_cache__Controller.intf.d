lib/cache/controller.mli: Kg_mem
