lib/cache/hierarchy.ml: Array Cache Controller List
