lib/cache/cache.ml: Array Bytes
