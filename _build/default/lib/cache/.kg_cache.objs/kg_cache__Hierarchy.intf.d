lib/cache/hierarchy.mli: Cache Controller
