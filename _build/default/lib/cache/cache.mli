(** One level of set-associative write-back cache.

    Caches absorb most heap writes; only dirty-line evictions reach main
    memory, so modeling them faithfully is essential to reproducing the
    paper's PCM write counts (§6.1: caches "are the first line of
    defense in protecting PCM from writes").

    Each line carries a [tag] identifying the execution phase that last
    wrote it (application, nursery GC, observer GC, major GC). The paper
    modified Sniper the same way for Figure 10: "we modify the simulator
    to track which phase last wrote each cache line, since LRU policies
    evict lines to PCM or DRAM well after their last access". *)

type t

type writeback = { wb_addr : int; wb_tag : int }
(** A dirty line evicted by a fill: its block-aligned address and the
    phase tag that last wrote it. *)

val create : name:string -> size:int -> ways:int -> line_size:int -> latency_ns:float -> t
(** [size] must be divisible by [ways * line_size], and the number of
    sets must be a power of two. *)

val name : t -> string
val line_size : t -> int
val latency_ns : t -> float

val probe : t -> addr:int -> write:bool -> tag:int -> bool
(** [probe t ~addr ~write ~tag] looks up the line containing [addr].
    On a hit it updates LRU state and, for a write, the dirty bit and
    phase tag, returning [true]. On a miss it returns [false] without
    allocating; the caller fetches the line from the next level and
    then calls {!fill}. *)

val fill : t -> addr:int -> write:bool -> tag:int -> writeback option
(** Allocate the line containing [addr] (after a miss), evicting the
    LRU way of its set. Returns the dirty victim, if any, which the
    caller must write to the next level. *)

val invalidate_all : t -> writeback list
(** Flush the cache, returning all dirty lines (used at simulation end
    to drain resident dirty data into the traffic counts). *)

(** Hit/miss/writeback counters. *)
type stats = { hits : int; misses : int; writebacks : int }

val stats : t -> stats
val reset_stats : t -> unit
