let years ~size_bytes ~endurance ~write_rate_bytes_per_s =
  if write_rate_bytes_per_s <= 0.0 then infinity
  else size_bytes *. endurance /. (write_rate_bytes_per_s *. Kg_util.Units.seconds_per_year)

let write_rate ~bytes_written ~elapsed_s =
  if elapsed_s <= 0.0 then 0.0 else bytes_written /. elapsed_s

let relative ~baseline_rate ~rate = if rate <= 0.0 then infinity else baseline_rate /. rate
