(** Analytical PCM lifetime model (Equation 1 of the paper).

    With perfect wear-leveling, writes spread uniformly over the whole
    capacity, so lifetime in years is

      Y = (S * E) / (B * 2^25)

    where S is the PCM capacity in bytes, E the per-cell endurance in
    writes, B the application write rate in bytes/second, and 2^25
    approximates the number of seconds in a year. *)

val years : size_bytes:float -> endurance:float -> write_rate_bytes_per_s:float -> float
(** Lifetime in years; [infinity] when the write rate is 0. *)

val write_rate : bytes_written:float -> elapsed_s:float -> float
(** Convenience: B from observed traffic. *)

val relative : baseline_rate:float -> rate:float -> float
(** Lifetime improvement factor of [rate] over [baseline_rate]; because
    Y is inversely proportional to B this is just the write-rate
    ratio. *)
