(** Main-memory device models.

    Latency, power and endurance parameters for DRAM and PCM follow
    Table 2 of the paper: DRAM 45 ns read/write at 0.678 W read /
    0.825 W write; PCM 180 ns read / 450 ns write at 0.617 W read /
    3.0 W write, endurance 30 M writes per cell. Accesses are at cache
    line (64 B) granularity through the memory controller; when writing
    a row buffer back to the PCM array only modified lines are written
    (the paper's §5.2.2), which our controller models by issuing
    line-granularity writebacks in the first place. *)

type kind = Dram | Pcm

val pp_kind : Format.formatter -> kind -> unit
val kind_to_string : kind -> string

type t = {
  kind : kind;
  read_latency_ns : float;
  write_latency_ns : float;
  read_power_w : float;
  write_power_w : float;
  static_power_w : float;  (** background power for the whole device *)
  endurance : float;  (** writes per cell before wear-out; infinite for DRAM *)
}

val dram : t
(** Micron DDR3-like DRAM device (Table 2). *)

val pcm : t
(** PCM device from Lee et al. scaling model (Table 2), 30 M endurance. *)

val pcm_with_endurance : float -> t
(** PCM variant for the Figure 1 endurance sweep (10 M / 30 M / 100 M). *)

val read_energy_j : t -> float
(** Energy to read one cache line: read power x read latency. *)

val write_energy_j : t -> float
(** Energy to write one cache line: write power x write latency. *)
