type t = {
  line_size : int;
  lines : int;  (* logical lines; physical lines = lines + 1 (the gap) *)
  gap_interval : int;
  mutable gap : int;  (* physical position of the gap line *)
  mutable start : int;  (* rotation offset: grows by 1 per full gap sweep *)
  mutable writes_since_move : int;
  mutable total_writes : int;
  mutable rotations : int;
  (* Per-physical-line write counts, bucketed to bound memory: each
     bucket covers [lines_per_bucket] adjacent physical lines. *)
  buckets : int array;
  lines_per_bucket : int;
}

let create ?(line_size = 256) ?(gap_interval = 128) ~size () =
  if size <= 0 || size mod line_size <> 0 then
    invalid_arg "Wear.create: size must be a positive multiple of line_size";
  let lines = size / line_size in
  let nbuckets = min lines 65536 in
  {
    line_size;
    lines;
    gap_interval;
    gap = lines;  (* gap starts just past the last logical line *)
    start = 0;
    writes_since_move = 0;
    total_writes = 0;
    rotations = 0;
    buckets = Array.make nbuckets 0;
    lines_per_bucket = (lines + nbuckets - 1) / nbuckets;
  }

(* Start-Gap address translation: logical line [l] maps to physical
   [(l + start) mod (lines+1)], skipping over the gap by adding one when
   the target is at or past it. *)
let physical_line t logical =
  let p = (logical + t.start) mod (t.lines + 1) in
  if p >= t.gap then (p + 1) mod (t.lines + 1) else p

let line_of_offset t offset =
  if offset < 0 || offset >= t.lines * t.line_size then
    invalid_arg "Wear.line_of_offset: offset out of range";
  physical_line t (offset / t.line_size)

let move_gap t =
  (* The gap swaps with its neighbour, moving down one slot; when it
     wraps, the whole mapping has rotated by one line. *)
  if t.gap = 0 then begin
    t.gap <- t.lines;
    t.start <- (t.start + 1) mod (t.lines + 1);
    if t.start = 0 then t.rotations <- t.rotations + 1
  end
  else t.gap <- t.gap - 1

let record_write t offset =
  let phys = line_of_offset t offset in
  let b = min (Array.length t.buckets - 1) (phys / t.lines_per_bucket) in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.total_writes <- t.total_writes + 1;
  t.writes_since_move <- t.writes_since_move + 1;
  if t.writes_since_move >= t.gap_interval then begin
    t.writes_since_move <- 0;
    move_gap t
  end

let total_writes t = t.total_writes
let bytes_written t = t.total_writes * t.line_size

let rotations t =
  (* Full rotations plus fractional progress give "start sweeps". *)
  t.rotations * (t.lines + 1) + t.start

let write_distribution_cov t =
  let xs = Array.map float_of_int t.buckets in
  let m = Kg_util.Stats.mean xs in
  if m = 0.0 then 0.0 else Kg_util.Stats.stddev xs /. m

let max_line_writes t =
  let mx = Array.fold_left max 0 t.buckets in
  (mx + t.lines_per_bucket - 1) / t.lines_per_bucket
