(** Line-level wear-leveling and write-endurance accounting for PCM.

    The paper's baseline hardware performs fine-grained (line) wear-
    leveling [Qureshi et al., ISCA'09]. We implement Start-Gap: a spare
    "gap" line rotates through the region once every [gap_interval]
    writes, sliding the logical-to-physical line mapping by one, so hot
    logical lines are smeared over all physical lines. With leveling in
    place, lifetime depends only on the total write *rate* (the paper's
    Equation 1); this module both applies the remapping and records the
    per-physical-line write distribution so tests can verify the
    uniformity claim. *)

type t

val create : ?line_size:int -> ?gap_interval:int -> size:int -> unit -> t
(** [create ~size ()] manages a PCM region of [size] bytes. [line_size]
    defaults to 256 (the PCM line size matched by Immix), and
    [gap_interval] to 128 writes per gap movement, the setting from the
    Start-Gap paper. *)

val record_write : t -> int -> unit
(** [record_write t offset] records a line write at byte [offset]
    (relative to the region base), applying the current remapping. *)

val total_writes : t -> int
(** Total line writes recorded. *)

val bytes_written : t -> int
(** [total_writes * line_size]. *)

val rotations : t -> int
(** Number of full gap rotations so far (mapping returned to start). *)

val line_of_offset : t -> int -> int
(** Current physical line for a byte offset; exposed for tests. *)

val write_distribution_cov : t -> float
(** Coefficient of variation of per-physical-line write counts,
    computed over a bucketed approximation. Near 0 once the gap has
    rotated a few times under a skewed write stream. *)

val max_line_writes : t -> int
(** Highest per-bucket write count, normalised to per-line. *)
