lib/mem/lifetime.mli:
