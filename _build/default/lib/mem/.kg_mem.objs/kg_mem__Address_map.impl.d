lib/mem/address_map.ml: Device Kg_util List Printf
