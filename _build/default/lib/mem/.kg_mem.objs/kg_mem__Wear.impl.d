lib/mem/wear.ml: Array Kg_util
