lib/mem/lifetime.ml: Kg_util
