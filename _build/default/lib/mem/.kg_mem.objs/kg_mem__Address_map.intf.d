lib/mem/address_map.mli: Device
