lib/mem/device.ml: Format
