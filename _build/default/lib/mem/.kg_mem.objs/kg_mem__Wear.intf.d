lib/mem/wear.mli:
