lib/mem/device.mli: Format
