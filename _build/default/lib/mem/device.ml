type kind = Dram | Pcm

let kind_to_string = function Dram -> "DRAM" | Pcm -> "PCM"
let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

type t = {
  kind : kind;
  read_latency_ns : float;
  write_latency_ns : float;
  read_power_w : float;
  write_power_w : float;
  static_power_w : float;
  endurance : float;
}

let dram =
  {
    kind = Dram;
    read_latency_ns = 45.0;
    write_latency_ns = 45.0;
    read_power_w = 0.678;
    write_power_w = 0.825;
    (* DDR3 background power per DIMM, TN-41-01 ballpark. *)
    static_power_w = 0.9;
    endurance = infinity;
  }

let pcm_with_endurance endurance =
  {
    kind = Pcm;
    read_latency_ns = 180.0;
    write_latency_ns = 450.0;
    read_power_w = 0.617;
    write_power_w = 3.0;
    (* "The static power of PCM prototypes are negligible compared to
       DRAM" (§5.2.2). *)
    static_power_w = 0.05;
    endurance;
  }

let pcm = pcm_with_endurance 30e6

let read_energy_j t = t.read_power_w *. (t.read_latency_ns *. 1e-9)
let write_energy_j t = t.write_power_w *. (t.write_latency_ns *. 1e-9)
